// Classify: walk through the paper's §4.2 argument on one workload —
// taken-rate classification misses branches that transition-rate
// classification catches.
//
// The demonstration: find branches whose taken rate is moderate (so Chang
// et al. would call them hard and give them long-history predictor slots)
// but whose transition rate is extreme (so a static or 1-2-bit predictor
// handles them), then verify a short-history predictor really does predict
// them well.
package main

import (
	"fmt"
	"log"
	"sort"

	"btr"
)

func main() {
	spec, err := btr.FindWorkload("ijpeg", "vigo.ppm")
	if err != nil {
		log.Fatal(err)
	}
	const scale = 0.05
	prof := btr.ProfileWorkload(spec, scale)

	// Misclassified branches: moderate taken rate, extreme transition rate.
	type victim struct {
		pc    uint64
		p     *btr.Profile
		joint btr.JointClass
	}
	var victims []victim
	for pc, p := range prof.Profiles() {
		jc := btr.ClassOfProfile(p)
		takenExtreme := jc.Taken == 0 || jc.Taken == 10
		transExtreme := jc.Transition <= 1 || jc.Transition >= 9
		if !takenExtreme && transExtreme {
			victims = append(victims, victim{pc, p, jc})
		}
	}
	sort.Slice(victims, func(i, j int) bool { return victims[i].p.Execs > victims[j].p.Execs })

	var victimExecs, total int64
	for _, v := range victims {
		victimExecs += v.p.Execs
	}
	total = prof.Events()
	fmt.Printf("%s: %d/%d dynamic branches (%.1f%%) are misclassified as hard by taken rate\n\n",
		spec.Name(), victimExecs, total, 100*float64(victimExecs)/float64(total))

	fmt.Println("hottest misclassified branches:")
	for i, v := range victims {
		if i >= 8 {
			break
		}
		fmt.Printf("  pc=%#x execs=%-8d taken=%.2f trans=%.2f joint=%s\n",
			v.pc, v.p.Execs, v.p.TakenRate(), v.p.TransitionRate(), v.joint)
	}

	// Show the payoff: a 2-bit-history PAs already nails these branches.
	// Track per-branch misses for the victims under PAs(2) vs PAs(0).
	for _, k := range []int{0, 2} {
		p := btr.NewPAs(k)
		var victimMisses, victimEvents int64
		isVictim := make(map[uint64]bool, len(victims))
		for _, v := range victims {
			isVictim[v.pc] = true
		}
		sink := countingSink{p: p, isVictim: isVictim,
			misses: &victimMisses, events: &victimEvents}
		spec.Run(sink, scale)
		fmt.Printf("\nPAs(k=%d) on misclassified branches: miss rate %.4f (%d/%d)",
			k, rate(victimMisses, victimEvents), victimMisses, victimEvents)
	}
	fmt.Println()
}

type countingSink struct {
	p        btr.Predictor
	isVictim map[uint64]bool
	misses   *int64
	events   *int64
}

func (c countingSink) Branch(pc uint64, taken bool) {
	predicted := c.p.Predict(pc)
	c.p.Update(pc, taken)
	if c.isVictim[pc] {
		*c.events++
		if predicted != taken {
			*c.misses++
		}
	}
}

func rate(m, e int64) float64 {
	if e == 0 {
		return 0
	}
	return float64(m) / float64(e)
}
