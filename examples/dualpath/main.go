// Dualpath: the paper's §5.2.1 feasibility analysis for dual path
// execution. Hard-to-predict branches (joint class 5/5) are candidates
// for executing both paths — but only if they do not cluster: two live
// forks within a short window multiply machine state beyond control.
//
// This example reproduces the Figure 15 measurement for each benchmark:
// the distribution of dynamic-branch distance between consecutive 5/5
// branch executions, over a window of 8.
package main

import (
	"fmt"

	"btr"
)

func main() {
	cfg := btr.SimConfig{Scale: 0.02}
	specs := btr.Workloads()

	// Run the full pipeline per benchmark; the suite aggregation already
	// assembles the Figure 15 histograms.
	suite := btr.RunSuite(specs, cfg)

	fmt.Println("distance to previous 5/5 branch (percent of 5/5 occurrences)")
	fmt.Printf("%-10s", "benchmark")
	for d := 1; d < 8; d++ {
		fmt.Printf("%7d", d)
	}
	fmt.Printf("%7s\n", "8+")
	for _, bench := range suite.Benchmarks() {
		h := suite.HardByBench[bench]
		if h == nil || h.Total() == 0 {
			fmt.Printf("%-10s   (no 5/5 branches)\n", bench)
			continue
		}
		fr := h.Fractions()
		fmt.Printf("%-10s", bench)
		for d := 1; d <= 8; d++ {
			fmt.Printf("%6.1f%%", 100*fr[d])
		}
		fmt.Println()
	}

	fmt.Println("\nreading: mass at 8+ means hard branches rarely cluster, so forking")
	fmt.Println("both paths at each one is tractable; early-bin mass (the paper's")
	fmt.Println("ijpeg) warns that forks would nest.")
}
