// Hybrid: build the paper's §5.4 classification-guided hybrid predictor
// and race it against the Chang-style taken-rate hybrid and monolithic
// predictors on a hard workload.
//
// The transition hybrid steers each static branch by its profiled joint
// class: transition classes 0-1 go to a profile-bias static predictor,
// the alternating classes 9-10 go to a short per-address history, and
// everything else gets the long-history component. Keeping the easy
// branches out of the pattern history tables is also what removes
// interference.
package main

import (
	"fmt"
	"log"

	"btr"
)

func main() {
	const scale = 0.05
	for _, name := range [][2]string{
		{"vortex", "vortex.lit"},
		{"li", "ref.lsp"},
		{"gcc", "expr.i"},
	} {
		spec, err := btr.FindWorkload(name[0], name[1])
		if err != nil {
			log.Fatal(err)
		}
		prof := btr.ProfileWorkload(spec, scale)
		classes := btr.Classify(prof.Profiles())

		predictors := []btr.Predictor{
			btr.NewTransitionHybrid(classes, prof.Profiles()),
			btr.NewTakenHybrid(classes, prof.Profiles()),
			btr.NewGShare(17, 12),
			btr.NewPAs(8),
			btr.NewGAs(10),
			btr.NewBimodal(17),
		}
		fmt.Printf("%s (%d dynamic branches)\n", spec.Name(), prof.Events())
		for _, p := range predictors {
			misses, events := btr.RunPredictor(p, spec, scale)
			fmt.Printf("  %-28s miss=%.4f  state=%7d bits\n",
				p.Name(), float64(misses)/float64(events), p.SizeBits())
		}
		fmt.Println()
	}
}
