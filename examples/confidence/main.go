// Confidence: the paper's §5.3 proposal — use a branch's (taken,
// transition) class as a *static* confidence estimate, with no runtime
// accuracy-tracking hardware — compared against Jacobsen-style dynamic
// estimators.
//
// A branch's joint class determines its expected miss rate (Figures
// 13/14); branches in cheap classes get high confidence, branches near
// the 5/5 cell get low confidence. We measure how well each estimator
// separates correct from incorrect PAs(8) predictions.
package main

import (
	"fmt"
	"log"

	"btr"
	"btr/internal/bpred"
	"btr/internal/conf"
	"btr/internal/core"
	"btr/internal/sim"
	"btr/internal/trace"
)

func main() {
	spec, err := btr.FindWorkload("perl", "scrabbl.pl")
	if err != nil {
		log.Fatal(err)
	}
	const scale = 0.05

	// Profile and estimate per-class miss rates from a calibration run of
	// the same predictor (self-calibration stands in for Fig 13's table).
	profiler, classes := sim.ProfileInput(spec, scale)
	fmt.Printf("profiled %d dynamic branches over %d static sites\n",
		profiler.Events(), profiler.Sites())

	var missRate [core.NumClasses][core.NumClasses]float64
	{
		var miss, exec [core.NumClasses][core.NumClasses]int64
		p := bpred.NewPAs(8)
		sink := trace.SinkFunc(func(pc uint64, taken bool) {
			jc := classes[pc]
			exec[jc.Taken][jc.Transition]++
			if p.Predict(pc) != taken {
				miss[jc.Taken][jc.Transition]++
			}
			p.Update(pc, taken)
		})
		spec.Run(sink, scale)
		for t := 0; t < core.NumClasses; t++ {
			for tr := 0; tr < core.NumClasses; tr++ {
				if exec[t][tr] > 0 {
					missRate[t][tr] = float64(miss[t][tr]) / float64(exec[t][tr])
				}
			}
		}
	}

	estimators := []conf.Estimator{
		conf.NewClassStatic(classes, missRate, 0.08),
		conf.NewOneLevel(12, 15, 8),
		conf.NewTwoLevel(12, 10, 15, 8),
	}
	quads := make([]conf.Quadrants, len(estimators))

	predictor := bpred.NewPAs(8)
	sink := trace.SinkFunc(func(pc uint64, taken bool) {
		correct := predictor.Predict(pc) == taken
		predictor.Update(pc, taken)
		for i, est := range estimators {
			quads[i].Observe(est.HighConfidence(pc), correct)
			est.Update(pc, correct)
		}
	})
	spec.Run(sink, scale)

	fmt.Printf("%s: confidence estimation over PAs(k=8), %d predictions\n\n",
		spec.Name(), quads[0].Total())
	fmt.Printf("%-22s %8s %8s %8s\n", "estimator", "SENS", "PVN", "SPEC")
	for i, est := range estimators {
		q := quads[i]
		fmt.Printf("%-22s %7.2f%% %7.2f%% %7.2f%%\n",
			est.Name(), 100*q.Sensitivity(), 100*q.PredictiveValueNegative(),
			100*q.Specificity())
	}
	fmt.Println("\nSENS: share of mispredictions flagged low-confidence;")
	fmt.Println("PVN:  share of low-confidence flags that were real misses;")
	fmt.Println("the class-static estimator uses zero accuracy-tracking hardware.")
}
