// Quickstart: profile a workload, classify its branches by taken and
// transition rate, and compare the paper's PAs and GAs predictors on it.
package main

import (
	"fmt"
	"log"

	"btr"
)

func main() {
	// Pick one Table 1 row: the LZW compressor with its big input.
	spec, err := btr.FindWorkload("compress", "bigtest.in")
	if err != nil {
		log.Fatal(err)
	}

	// Pass 1: profile. Scale 0.05 runs ~5% of the registry's default
	// dynamic branch count — plenty for rates to converge.
	const scale = 0.05
	prof := btr.ProfileWorkload(spec, scale)
	fmt.Printf("%s: %d dynamic branches over %d static sites\n\n",
		spec.Name(), prof.Events(), prof.Sites())

	// Classify each branch: taken-rate class and transition-rate class.
	classes := btr.Classify(prof.Profiles())
	var static, shortLocal, long, hard int
	for _, jc := range classes {
		switch btr.Advise(jc) {
		case btr.AdviseStatic:
			static++
		case btr.AdviseShortLocal:
			shortLocal++
		case btr.AdviseNonPredictive:
			hard++
		default:
			long++
		}
	}
	fmt.Printf("static sites by advice: static=%d short-local=%d long-history=%d hard(5/5)=%d\n\n",
		static, shortLocal, long, hard)

	// Pass 2: run the paper's 32 KB two-level predictors at a few history
	// lengths and see the classification at work.
	for _, k := range []int{0, 2, 8, 12} {
		pasMiss, events := btr.RunPredictor(btr.NewPAs(k), spec, scale)
		gasMiss, _ := btr.RunPredictor(btr.NewGAs(k), spec, scale)
		fmt.Printf("k=%-2d  PAs miss=%.4f  GAs miss=%.4f  (events=%d)\n",
			k, float64(pasMiss)/float64(events), float64(gasMiss)/float64(events), events)
	}
}
