// Customworkload: instrument your own program and run it through the
// paper's full analysis pipeline.
//
// The workload here is a toy cache simulator: a direct-mapped cache
// servicing a Zipf-ish address stream. Its instrumented branches span the
// taxonomy — a hit/miss test whose bias tracks locality, a never-firing
// assertion, a strict even/odd interleave, and a tag compare on random
// addresses — and the pipeline classifies them exactly as it does the
// built-in SPECint95 analogues.
package main

import (
	"fmt"
	"sort"

	"btr"
)

// Branch site IDs for the custom workload.
const (
	siteMore       = 1 // driver loop
	siteHit        = 2 // cache hit (locality-biased)
	siteAssert     = 3 // invariant check, never fires
	siteInterleave = 4 // strict alternator: double-buffered banks
	siteTagOdd     = 5 // data-dependent tag bit
	siteHotSet     = 6 // address drawn from the hot set
)

func cacheSim(t *btr.WorkloadTracer, r *btr.Rand, target int64) {
	const lines = 256
	var tags [lines]uint64
	access := int64(0)
	for t.B(siteMore, t.N() < target) {
		var addr uint64
		if t.B(siteHotSet, r.Bool(0.8)) {
			addr = uint64(r.Intn(64)) << 6 // hot working set
		} else {
			addr = (r.Uint64() % (1 << 20)) << 6
		}
		line := (addr >> 6) % lines
		tag := addr >> 14
		t.B(siteHit, tags[line] == tag)
		tags[line] = tag
		t.B(siteAssert, line >= lines)     // never taken
		t.B(siteInterleave, access&1 == 0) // strict alternator
		t.B(siteTagOdd, tag&1 == 1)        // ~random for cold misses
		access++
	}
}

func main() {
	spec := btr.NewWorkloadSpec("cachesim", "zipf.trace", 200000, 0xCAFE, cacheSim)

	// Profile and classify, exactly like a built-in benchmark.
	prof := btr.ProfileWorkload(spec, 1.0)
	fmt.Printf("%s: %d dynamic branches, %d sites\n\n", spec.Name(), prof.Events(), prof.Sites())

	type row struct {
		pc uint64
		p  *btr.Profile
	}
	var rows []row
	for pc, p := range prof.Profiles() {
		rows = append(rows, row{pc, p})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].pc < rows[j].pc })
	fmt.Println("site  execs    taken  trans  class  advice")
	for _, r := range rows {
		jc := btr.ClassOfProfile(r.p)
		site := (r.pc - spec.PCBase()) >> 2
		fmt.Printf("%4d  %-8d %.3f  %.3f  %-5s  %s\n",
			site, r.p.Execs, r.p.TakenRate(), r.p.TransitionRate(), jc, btr.Advise(jc))
	}

	// Full two-pass sweep: where is each class best predicted?
	res := btr.RunInput(spec, btr.SimConfig{Scale: 1.0})
	suite := btr.RunSuite([]btr.WorkloadSpec{spec}, btr.SimConfig{Scale: 1.0})
	_ = res
	fmt.Println("\nPAs miss rate by history length (whole workload):")
	for _, k := range []int{0, 1, 2, 4, 8, 12, 16} {
		fmt.Printf("  k=%-2d %.4f\n", k, suite.OverallMissRate(btr.PAs, k))
	}

	// The §6 dynamic hybrid needs no profile at all.
	misses, events := btr.RunPredictor(btr.NewDynamicClassHybrid(12, 64), spec, 1.0)
	fmt.Printf("\nDynamicClassHybrid (no profiling): miss rate %.4f over %d branches\n",
		float64(misses)/float64(events), events)
}
