package btr

import (
	"bytes"
	"strings"
	"testing"
)

const testScale = 0.002

func TestWorkloadsCatalog(t *testing.T) {
	specs := Workloads()
	if len(specs) != 34 {
		t.Fatalf("catalog has %d rows, want 34 (Table 1)", len(specs))
	}
	if _, err := FindWorkload("compress", "bigtest.in"); err != nil {
		t.Fatal(err)
	}
	if _, err := FindWorkload("no", "pe"); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestProfileAndClassify(t *testing.T) {
	spec, err := FindWorkload("li", "ref.lsp")
	if err != nil {
		t.Fatal(err)
	}
	prof := ProfileWorkload(spec, testScale)
	if prof.Events() == 0 || prof.Sites() == 0 {
		t.Fatal("empty profile")
	}
	classes := Classify(prof.Profiles())
	if len(classes) != prof.Sites() {
		t.Fatal("classes/sites mismatch")
	}
	for _, jc := range classes {
		if !jc.Taken.Valid() || !jc.Transition.Valid() {
			t.Fatalf("invalid class %v", jc)
		}
	}
}

func TestRunPredictorFacade(t *testing.T) {
	spec, err := FindWorkload("gcc", "jump.i")
	if err != nil {
		t.Fatal(err)
	}
	misses, events := RunPredictor(NewPAs(4), spec, testScale)
	if events == 0 || misses < 0 || misses > events {
		t.Fatalf("misses=%d events=%d", misses, events)
	}
}

func TestExperimentFacade(t *testing.T) {
	ctx := NewExperimentContext(SimConfig{Scale: 0.0005, Workers: 2})
	var buf bytes.Buffer
	if err := RunExperiment(ctx, "F1", &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "taken rate class") {
		t.Fatalf("unexpected F1 output:\n%s", buf.String())
	}
	if _, err := FindExperiment("T2"); err != nil {
		t.Fatal(err)
	}
	if len(Experiments()) < 20 {
		t.Fatal("experiment catalog too small")
	}
	if err := RunExperiment(ctx, "nope", &buf); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestCustomWorkloadSpec(t *testing.T) {
	spec := NewWorkloadSpec("custom", "unit.test", 500, 3,
		func(tr *WorkloadTracer, r *Rand, target int64) {
			for tr.N() < target {
				tr.B(1, true)
				tr.B(2, r.Bool(0.5))
			}
		})
	prof := ProfileWorkload(spec, 1.0)
	if prof.Sites() != 2 {
		t.Fatalf("sites %d", prof.Sites())
	}
	if prof.Events() < 500 {
		t.Fatalf("events %d", prof.Events())
	}
	jc := ClassOfProfile(prof.Profile(spec.PCBase() + 1<<2))
	if jc.Taken != 10 || jc.Transition != 0 {
		t.Fatalf("guard classified %s", jc)
	}
	// Custom specs work with the whole pipeline.
	res := RunInput(spec, SimConfig{Scale: 1.0})
	if res.Exec.Total() != res.Events {
		t.Fatal("attribution mismatch for custom spec")
	}
}

func TestDynamicClassHybridFacade(t *testing.T) {
	spec, err := FindWorkload("ijpeg", "specmun.ppm")
	if err != nil {
		t.Fatal(err)
	}
	misses, events := RunPredictor(NewDynamicClassHybrid(12, 64), spec, testScale)
	if events == 0 {
		t.Fatal("no events")
	}
	rate := float64(misses) / float64(events)
	if rate <= 0 || rate > 0.5 {
		t.Fatalf("dynamic hybrid miss rate %.3f implausible", rate)
	}
}

// TestPaperShapeIntegration checks the headline qualitative results of the
// paper against a moderate-scale suite run — the fidelity targets from
// DESIGN.md. This is the repository's primary integration test.
func TestPaperShapeIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test; run without -short")
	}
	ctx := NewExperimentContext(SimConfig{Scale: 0.01})
	suite := ctx.Suite()

	// 1. Mass concentrates at the taken edges and low transition classes.
	cov := ComputeCoverage(&suite.Distribution)
	if cov.TakenEasy < 0.35 {
		t.Errorf("taken{0,10} coverage %.3f; paper 0.629", cov.TakenEasy)
	}
	if cov.TransitionEasyGAs <= cov.TakenEasy {
		t.Errorf("transition coverage %.3f must exceed taken %.3f",
			cov.TransitionEasyGAs, cov.TakenEasy)
	}
	if cov.MissedPAs < 0.01 {
		t.Errorf("misclassified mass %.4f too small; paper 0.093", cov.MissedPAs)
	}

	// 2. Figure 3/4 shape: edge classes predict far better than class 5.
	for _, kind := range []PredictorKind{PAs, GAs} {
		_, rates := suite.OptimalHistoryTaken(kind)
		if !(rates[0] < rates[5] && rates[10] < rates[5]) {
			t.Errorf("%v taken classes: edges %.3f/%.3f not better than middle %.3f",
				kind, rates[0], rates[10], rates[5])
		}
		_, trRates := suite.OptimalHistoryTransition(kind)
		if !(trRates[0] < trRates[5]) {
			t.Errorf("%v transition class 0 (%.3f) not better than class 5 (%.3f)",
				kind, trRates[0], trRates[5])
		}
	}

	// 3. Figure 10 shape: PAs on transition class 10 is pathological at
	// k=0 and near perfect with short history.
	curve := suite.HistoryCurveTransition(PAs, 10)
	if curve[0] < 0.5 {
		t.Errorf("PAs k=0 on transition class 10 misses %.3f, want >= 0.5", curve[0])
	}
	if curve[2] > 0.2 {
		t.Errorf("PAs k=2 on transition class 10 misses %.3f, want small", curve[2])
	}

	// 4. Figures 13/14: the 5/5 cell is the worst or near-worst cell.
	rates, _ := suite.OptimalJoint(PAs)
	if suite.Exec[5][5] > 0 {
		hard := rates[5][5]
		if hard < 0.2 {
			t.Errorf("5/5 cell miss rate %.3f, paper has ~0.45", hard)
		}
		// compare against the easy corners
		if rates[0][0] > hard || rates[10][0] > hard {
			t.Errorf("easy corners (%.3f, %.3f) predict worse than 5/5 (%.3f)",
				rates[0][0], rates[10][0], hard)
		}
	}

	// 5. Feasibility arc: high-transition rows are empty at extreme taken
	// classes (transition rate <= 2*min(p,1-p) bound).
	d := &suite.Distribution
	if f := d.Fraction(0, 10) + d.Fraction(10, 10) + d.Fraction(0, 9) + d.Fraction(10, 9); f > 0.001 {
		t.Errorf("infeasible joint corners hold %.4f of mass", f)
	}
}

// TestHybridEndToEnd verifies the §5.4 story through the public API: the
// transition hybrid must beat the plain bimodal table and not trail the
// big monolithic predictors by much, at a fraction of their state.
func TestHybridEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test; run without -short")
	}
	spec, err := FindWorkload("li", "ref.lsp")
	if err != nil {
		t.Fatal(err)
	}
	const scale = 0.01
	prof := ProfileWorkload(spec, scale)
	classes := Classify(prof.Profiles())

	hybridMiss, events := RunPredictor(NewTransitionHybrid(classes, prof.Profiles()), spec, scale)
	bimodalMiss, _ := RunPredictor(NewBimodal(17), spec, scale)
	gshareMiss, _ := RunPredictor(NewGShare(17, 12), spec, scale)

	hybrid := float64(hybridMiss) / float64(events)
	bimodal := float64(bimodalMiss) / float64(events)
	gshare := float64(gshareMiss) / float64(events)

	if hybrid > bimodal {
		t.Errorf("hybrid (%.4f) worse than bimodal (%.4f)", hybrid, bimodal)
	}
	if hybrid > gshare*1.25+0.02 {
		t.Errorf("hybrid (%.4f) trails gshare (%.4f) badly", hybrid, gshare)
	}
}
