// Command brexp regenerates the paper's tables and figures.
//
// Usage:
//
//	brexp [-scale 1.0] [-workers N] [-out results] [-run all|T1,F13,...]
//	      [-sched=false] [-chunktasks N] [-cachedir dir]
//	      [-membudget bytes] [-decodedbudget bytes]
//	      [-snapshotranges N] [-mmap] [-readahead N]
//
// Each experiment is written to <out>/<id>.txt; -list shows the catalog.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"btr"
)

func main() {
	scale := flag.Float64("scale", 1.0, "workload scale; 1.0 = Table 1 counts /1000")
	workers := flag.Int("workers", 0, "scheduler workers (0 = GOMAXPROCS)")
	bankWorkers := flag.Int("bankworkers", 0, "sweep batches per input's predictor bank in the non-chunked engines (0 = GOMAXPROCS)")
	chunk := flag.Int("chunk", 0, "recorded-trace chunk size in events (0 = default)")
	chunkTasks := flag.Int("chunktasks", 0, "chunks per (slot, chunk-range) sweep task (0 = default; negative = whole-trace slot batches, the pre-chunk-axis shape)")
	noRecord := flag.Bool("norecord", false, "regenerate workloads per pass instead of record/replay (slower, lower memory)")
	sched := flag.Bool("sched", true, "global work-stealing scheduler over (input, bank-batch) tasks; false = legacy nested pools")
	memBudget := flag.Int64("membudget", 0, "stream each recording to a BTR1 spill file during pass 1, keeping at most about this many resident bytes per input; replays page the rest back in (0 = retain recordings whole)")
	decodedBudget := flag.Int64("decodedbudget", 0, "byte budget for each input's decoded-chunk pool during the bank sweep; LRU columns past it are re-decoded on the next visit (0 = retain all decoded columns, negative = retain none)")
	snapshotRanges := flag.Int("snapshotranges", 0, "split every bank slot's sweep into this many checkpointed chunk ranges that run concurrently from restored predictor snapshots; breaks the 34-slot parallelism ceiling when cores outnumber slots (0 = chained sweep, the default; results are bit-identical either way)")
	readAhead := flag.Int("readahead", 0, "prefetch this many chunks ahead of every sweep cursor: spill paging and BTR1 decode overlap with predictor compute, with prefetched columns charged against -decodedbudget (0 = no read-ahead; results are bit-identical either way)")
	mmapSpill := flag.Bool("mmap", false, "mmap spill-backed recordings and decode paged chunks from the mapping instead of pread (needs -membudget or -cachedir to produce spill files; falls back silently where unsupported)")
	cachedir := flag.String("cachedir", "", "spill recorded traces to BTR1 files here and reuse them across runs (filenames carry the workload-registry fingerprint, so a dir written by older workloads self-invalidates)")
	out := flag.String("out", "results", "output directory")
	run := flag.String("run", "all", "comma-separated experiment ids, or 'all'")
	list := flag.Bool("list", false, "list experiments and exit")
	stdout := flag.Bool("stdout", false, "also echo each report to stdout")
	flag.Parse()

	if *list {
		for _, e := range btr.Experiments() {
			fmt.Printf("%-4s %s\n", e.ID, e.Paper)
		}
		return
	}

	var ids []string
	if *run == "all" {
		for _, e := range btr.Experiments() {
			ids = append(ids, e.ID)
		}
	} else {
		for _, id := range strings.Split(*run, ",") {
			if id = strings.TrimSpace(id); id != "" {
				ids = append(ids, id)
			}
		}
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}

	cfg := btr.SimConfig{
		Scale:          *scale,
		Workers:        *workers,
		BankWorkers:    *bankWorkers,
		ChunkEvents:    *chunk,
		ChunkTasks:     *chunkTasks,
		NoRecord:       *noRecord,
		NoSched:        !*sched,
		MemBudget:      *memBudget,
		DecodedBudget:  *decodedBudget,
		SnapshotRanges: *snapshotRanges,
		MmapSpill:      *mmapSpill,
		ReadAhead:      *readAhead,
	}
	if *cachedir != "" {
		// Under a memory budget the cache's resident columns are bounded
		// to it too; otherwise a full-resident cache would undo -membudget.
		cacheBytes := int64(btr.DefaultTraceCacheBytes)
		if *memBudget > 0 {
			cacheBytes = *memBudget
		}
		cfg.Cache = btr.NewTraceCache(cacheBytes, *cachedir)
	}
	// Build the scheduler explicitly (rather than letting the suite run
	// spin up a private one) so its counters survive the run and can be
	// reported below. Only the scheduled engine uses it.
	var pool *btr.Scheduler
	if !cfg.NoSched && !cfg.NoRecord {
		pool = btr.NewScheduler(*workers)
		defer pool.Close()
		cfg.Sched = pool
	}
	ctx := btr.NewExperimentContext(cfg)
	start := time.Now()
	// Run the shared sweep up front on a cancelable group: SIGINT/SIGTERM
	// during the long suite run cancels it cooperatively (the grids
	// unwind at task boundaries) instead of leaving a killed process and
	// half-written artifacts. Once the sweep is done the handler is
	// released, so a later interrupt behaves normally.
	if pool != nil {
		group := pool.NewGroup()
		sigc := make(chan os.Signal, 1)
		signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
		go func() {
			if _, ok := <-sigc; ok {
				fmt.Fprintln(os.Stderr, "brexp: interrupted — canceling suite run")
				group.Cancel()
			}
		}()
		suite := ctx.SuiteGroup(group)
		signal.Stop(sigc)
		close(sigc)
		if group.Canceled() {
			for _, d := range suite.Dropped {
				fmt.Fprintf(os.Stderr, "brexp: dropped input %v\n", d)
			}
			fatal(fmt.Errorf("suite run canceled (%d inputs dropped); no artifacts written", len(suite.Dropped)))
		}
	}
	for _, id := range ids {
		path := filepath.Join(*out, id+".txt")
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		expStart := time.Now()
		err = btr.RunExperiment(ctx, id, f)
		cerr := f.Close()
		if err != nil {
			fatal(fmt.Errorf("experiment %s: %w", id, err))
		}
		if cerr != nil {
			fatal(cerr)
		}
		fmt.Printf("%-4s -> %s (%.1fs)\n", id, path, time.Since(expStart).Seconds())
		if *stdout {
			data, err := os.ReadFile(path)
			if err != nil {
				fatal(err)
			}
			fmt.Println(string(data))
		}
	}
	suite := ctx.Suite()
	for _, d := range suite.Dropped {
		fmt.Fprintf(os.Stderr, "brexp: dropped input %v\n", d)
	}
	if m := suite.Mem; m.RecordedBytes > 0 {
		fmt.Printf("mem: recorded_bytes=%d resident_peak=%d page_ins=%d pool_hits=%d redecodes=%d pool_evicted=%d decoded_peak=%d prefetch_hits=%d prefetch_wasted=%d prefetch_inflight_peak=%d\n",
			m.RecordedBytes, m.ResidentPeak, m.PageIns, m.DecodedHits, m.DecodedRedecodes, m.DecodedEvicted, m.DecodedPeak,
			m.PrefetchHits, m.PrefetchWasted, m.PrefetchInFlightPeak)
		if m.SnapshotCount > 0 {
			fmt.Printf("snapshots: count=%d bytes=%d peak=%d\n",
				m.SnapshotCount, m.SnapshotBytes, m.SnapshotPeak)
		}
	}
	if pool != nil {
		s := pool.Stats()
		fmt.Printf("sched: executed=%d steals=%d submits=%d parks=%d workers=%d\n",
			s.Executed, s.Steals, s.InjectorSubmits, s.Parks, s.Workers)
	}
	if cfg.Cache != nil {
		s := cfg.Cache.Stats()
		fmt.Printf("trace cache: hits=%d misses=%d loads=%d spills=%d evicted=%d quarantined=%d resident=%d/%dB\n",
			s.Hits, s.Misses, s.Loads, s.Spills, s.Evicted, s.Quarantined, s.Resident, s.ResidentBytes)
		if s.Quarantined > 0 {
			fmt.Fprintf(os.Stderr, "brexp: warning: %d corrupt spill file(s) quarantined under %s (recordings were regenerated; run brtrace -verify %s to audit the rest)\n",
				s.Quarantined, *cachedir, *cachedir)
		}
		if s.SpillFailures > 0 {
			fmt.Fprintf(os.Stderr, "brexp: warning: %d trace spills failed; -cachedir %s is not persisting (memory reuse unaffected)\n",
				s.SpillFailures, *cachedir)
		}
	}
	fmt.Printf("done: %d experiments, %d dynamic branches, %d dropped inputs, %.1fs total\n",
		len(ids), suite.TotalEvents(), len(suite.Dropped), time.Since(start).Seconds())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "brexp:", err)
	os.Exit(1)
}
