// Command brexp regenerates the paper's tables and figures.
//
// Usage:
//
//	brexp [-scale 1.0] [-workers N] [-out results] [-run all|T1,F13,...]
//
// Each experiment is written to <out>/<id>.txt; -list shows the catalog.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"btr"
)

func main() {
	scale := flag.Float64("scale", 1.0, "workload scale; 1.0 = Table 1 counts /1000")
	workers := flag.Int("workers", 0, "parallel inputs (0 = GOMAXPROCS)")
	bankWorkers := flag.Int("bankworkers", 0, "goroutines sharding each input's predictor bank (0 = GOMAXPROCS)")
	chunk := flag.Int("chunk", 0, "recorded-trace chunk size in events (0 = default)")
	noRecord := flag.Bool("norecord", false, "regenerate workloads per pass instead of record/replay (slower, lower memory)")
	out := flag.String("out", "results", "output directory")
	run := flag.String("run", "all", "comma-separated experiment ids, or 'all'")
	list := flag.Bool("list", false, "list experiments and exit")
	stdout := flag.Bool("stdout", false, "also echo each report to stdout")
	flag.Parse()

	if *list {
		for _, e := range btr.Experiments() {
			fmt.Printf("%-4s %s\n", e.ID, e.Paper)
		}
		return
	}

	var ids []string
	if *run == "all" {
		for _, e := range btr.Experiments() {
			ids = append(ids, e.ID)
		}
	} else {
		for _, id := range strings.Split(*run, ",") {
			if id = strings.TrimSpace(id); id != "" {
				ids = append(ids, id)
			}
		}
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}

	ctx := btr.NewExperimentContext(btr.SimConfig{
		Scale:       *scale,
		Workers:     *workers,
		BankWorkers: *bankWorkers,
		ChunkEvents: *chunk,
		NoRecord:    *noRecord,
	})
	start := time.Now()
	for _, id := range ids {
		path := filepath.Join(*out, id+".txt")
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		expStart := time.Now()
		err = btr.RunExperiment(ctx, id, f)
		cerr := f.Close()
		if err != nil {
			fatal(fmt.Errorf("experiment %s: %w", id, err))
		}
		if cerr != nil {
			fatal(cerr)
		}
		fmt.Printf("%-4s -> %s (%.1fs)\n", id, path, time.Since(expStart).Seconds())
		if *stdout {
			data, err := os.ReadFile(path)
			if err != nil {
				fatal(err)
			}
			fmt.Println(string(data))
		}
	}
	fmt.Printf("done: %d experiments, %d dynamic branches, %.1fs total\n",
		len(ids), ctx.Suite().TotalEvents(), time.Since(start).Seconds())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "brexp:", err)
	os.Exit(1)
}
