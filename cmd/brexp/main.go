// Command brexp regenerates the paper's tables and figures.
//
// Usage:
//
//	brexp [-scale 1.0] [-workers N] [-out results] [-run all|T1,F13,...]
//	      [-sched=false] [-chunktasks N] [-cachedir dir]
//
// Each experiment is written to <out>/<id>.txt; -list shows the catalog.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"btr"
)

func main() {
	scale := flag.Float64("scale", 1.0, "workload scale; 1.0 = Table 1 counts /1000")
	workers := flag.Int("workers", 0, "scheduler workers (0 = GOMAXPROCS)")
	bankWorkers := flag.Int("bankworkers", 0, "sweep batches per input's predictor bank in the non-chunked engines (0 = GOMAXPROCS)")
	chunk := flag.Int("chunk", 0, "recorded-trace chunk size in events (0 = default)")
	chunkTasks := flag.Int("chunktasks", 0, "chunks per (slot, chunk-range) sweep task (0 = default; negative = whole-trace slot batches, the pre-chunk-axis shape)")
	noRecord := flag.Bool("norecord", false, "regenerate workloads per pass instead of record/replay (slower, lower memory)")
	sched := flag.Bool("sched", true, "global work-stealing scheduler over (input, bank-batch) tasks; false = legacy nested pools")
	cachedir := flag.String("cachedir", "", "spill recorded traces to BTR1 files here and reuse them across runs (filenames carry the workload-registry fingerprint, so a dir written by older workloads self-invalidates)")
	out := flag.String("out", "results", "output directory")
	run := flag.String("run", "all", "comma-separated experiment ids, or 'all'")
	list := flag.Bool("list", false, "list experiments and exit")
	stdout := flag.Bool("stdout", false, "also echo each report to stdout")
	flag.Parse()

	if *list {
		for _, e := range btr.Experiments() {
			fmt.Printf("%-4s %s\n", e.ID, e.Paper)
		}
		return
	}

	var ids []string
	if *run == "all" {
		for _, e := range btr.Experiments() {
			ids = append(ids, e.ID)
		}
	} else {
		for _, id := range strings.Split(*run, ",") {
			if id = strings.TrimSpace(id); id != "" {
				ids = append(ids, id)
			}
		}
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}

	cfg := btr.SimConfig{
		Scale:       *scale,
		Workers:     *workers,
		BankWorkers: *bankWorkers,
		ChunkEvents: *chunk,
		ChunkTasks:  *chunkTasks,
		NoRecord:    *noRecord,
		NoSched:     !*sched,
	}
	if *cachedir != "" {
		cfg.Cache = btr.NewTraceCache(btr.DefaultTraceCacheBytes, *cachedir)
	}
	ctx := btr.NewExperimentContext(cfg)
	start := time.Now()
	for _, id := range ids {
		path := filepath.Join(*out, id+".txt")
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		expStart := time.Now()
		err = btr.RunExperiment(ctx, id, f)
		cerr := f.Close()
		if err != nil {
			fatal(fmt.Errorf("experiment %s: %w", id, err))
		}
		if cerr != nil {
			fatal(cerr)
		}
		fmt.Printf("%-4s -> %s (%.1fs)\n", id, path, time.Since(expStart).Seconds())
		if *stdout {
			data, err := os.ReadFile(path)
			if err != nil {
				fatal(err)
			}
			fmt.Println(string(data))
		}
	}
	suite := ctx.Suite()
	for _, d := range suite.Dropped {
		fmt.Fprintf(os.Stderr, "brexp: dropped input %v\n", d)
	}
	if cfg.Cache != nil {
		if s := cfg.Cache.Stats(); s.SpillFailures > 0 {
			fmt.Fprintf(os.Stderr, "brexp: warning: %d trace spills failed; -cachedir %s is not persisting (memory reuse unaffected)\n",
				s.SpillFailures, *cachedir)
		}
	}
	fmt.Printf("done: %d experiments, %d dynamic branches, %d dropped inputs, %.1fs total\n",
		len(ids), suite.TotalEvents(), len(suite.Dropped), time.Since(start).Seconds())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "brexp:", err)
	os.Exit(1)
}
