// Command benchtrend diffs two BENCH_<pr>.json snapshots (see
// cmd/benchjson) and fails on benchmark movement past a threshold, so
// CI tracks the suite-sweep perf trajectory across PRs instead of
// re-gating one hand-picked pair with awk.
//
// Usage:
//
//	benchtrend -old BENCH_4.json -new BENCH_6.json \
//	           -baseline SuiteSweepRegenerate -threshold 10 -failat 25
//
// Snapshots are usually measured on different machines (the old one is
// committed by a previous PR, the new one comes off the current
// runner), so raw ns/op is not comparable across them. With -baseline,
// every benchmark is first normalised to the named benchmark *within
// its own snapshot* — the regenerating pipeline is the natural yardstick,
// since every PR carries it unchanged — and the thresholds apply to the
// movement of that ratio. Movement past -threshold is flagged ("!");
// only movement past -failat fails the run: normalisation damps but
// does not remove cross-machine noise (generator-bound and sweep-bound
// benchmarks scale differently across CPUs), so the flag line is the
// trend signal and the fail line catches real cliffs. Benchmarks
// present on only one side are listed but never fail the gate; a
// missing baseline downgrades the run to a report-only diff (exit 0)
// rather than gating on cross-machine noise.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

// Benchmark mirrors cmd/benchjson's record (the fields the diff needs).
type Benchmark struct {
	Name         string  `json:"name"`
	Workers      int     `json:"workers"`
	NsPerOp      float64 `json:"ns_per_op"`
	EventsPerSec float64 `json:"events_per_sec"`
}

// Report mirrors cmd/benchjson's document.
type Report struct {
	PR         int         `json:"pr"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

type key struct {
	name    string
	workers int
}

func load(path string) (*Report, map[key]Benchmark, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	m := make(map[key]Benchmark, len(rep.Benchmarks))
	for _, b := range rep.Benchmarks {
		m[key{b.Name, b.Workers}] = b
	}
	return &rep, m, nil
}

// baselineNs returns the baseline benchmark's ns/op in one snapshot,
// preferring the entry whose worker count matches w (benchjson splits
// names by GOMAXPROCS suffix), falling back to any worker count.
func baselineNs(m map[key]Benchmark, name string, w int) float64 {
	if b, ok := m[key{name, w}]; ok && b.NsPerOp > 0 {
		return b.NsPerOp
	}
	for k, b := range m {
		if k.name == name && b.NsPerOp > 0 {
			return b.NsPerOp
		}
	}
	return 0
}

func main() {
	oldPath := flag.String("old", "", "previous BENCH_<pr>.json snapshot")
	newPath := flag.String("new", "", "current BENCH_<pr>.json snapshot")
	baseline := flag.String("baseline", "SuiteSweepRegenerate", "benchmark every other one is normalised to within its snapshot; empty = compare raw ns/op")
	threshold := flag.Float64("threshold", 10, "flag benchmarks that move by more than this percentage")
	failat := flag.Float64("failat", 25, "fail when a benchmark slows by more than this percentage (0 = fail at -threshold)")
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchtrend: need -old and -new")
		os.Exit(2)
	}

	oldRep, oldM, err := load(*oldPath)
	if err != nil {
		fatal(err)
	}
	newRep, newM, err := load(*newPath)
	if err != nil {
		fatal(err)
	}
	if *failat <= 0 {
		*failat = *threshold
	}
	fmt.Printf("benchtrend: PR %d -> PR %d, flag at %.0f%%, fail at %.0f%%\n",
		oldRep.PR, newRep.PR, *threshold, *failat)

	gate := true
	if *baseline == "" {
		fmt.Println("comparing raw ns/op (no baseline normalisation)")
	} else if baselineNs(oldM, *baseline, 0) <= 0 || baselineNs(newM, *baseline, 0) <= 0 {
		fmt.Printf("baseline %q missing from a snapshot; report-only raw diff, gate disabled\n", *baseline)
		gate = false
		*baseline = ""
	}

	var keys []key
	for k := range newM {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].name != keys[j].name {
			return keys[i].name < keys[j].name
		}
		return keys[i].workers < keys[j].workers
	})

	failed := 0
	for _, k := range keys {
		nb := newM[k]
		ob, ok := oldM[k]
		if !ok {
			fmt.Printf("  %-28s w=%-2d NEW  %12.0f ns/op\n", k.name, k.workers, nb.NsPerOp)
			continue
		}
		oldV, newV := ob.NsPerOp, nb.NsPerOp
		unit := "ns/op"
		if *baseline != "" && k.name != *baseline {
			oldV = ob.NsPerOp / baselineNs(oldM, *baseline, k.workers)
			newV = nb.NsPerOp / baselineNs(newM, *baseline, k.workers)
			unit = "x-of-" + *baseline
		}
		move := 100 * (newV/oldV - 1)
		mark := " "
		if move > *threshold {
			mark = "!"
			// The baseline itself (and everything when the gate is off)
			// is reported raw across machines, never gated.
			if move > *failat && gate && (*baseline == "" || k.name != *baseline) {
				failed++
			}
		} else if move < -*threshold {
			mark = "+"
		}
		fmt.Printf("%s %-28s w=%-2d %10.3f -> %10.3f %-22s (%+.1f%%)\n",
			mark, k.name, k.workers, oldV, newV, unit, move)
	}
	for k := range oldM {
		if _, ok := newM[k]; !ok {
			fmt.Printf("  %-28s w=%-2d GONE\n", k.name, k.workers)
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "benchtrend: %d benchmark(s) slowed by more than %.0f%%\n", failed, *failat)
		os.Exit(1)
	}
	fmt.Println("benchtrend: ok")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchtrend:", err)
	os.Exit(1)
}
