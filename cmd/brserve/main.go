// brserve serves the paper's experiments over HTTP: POST a JSON
// request naming experiments, suite inputs, scale and byte budgets to
// /v1/experiments and the rendered artifacts stream back as NDJSON,
// bit-identical to brexp's files for the same configuration. Every
// request runs as a session over one shared work-stealing scheduler
// and one shared recorded-trace + profile cache, so repeated and
// concurrent requests reuse each other's pass-1 work; admission
// control (bounded in-flight slots, a bounded wait queue, per-request
// scale/budget caps) answers 429 past capacity. /metrics reports the
// substrate counters, /healthz the drain state. SIGINT/SIGTERM drains
// gracefully: new requests get 503, in-flight ones finish.
//
// A request whose client disconnects — or whose deadline fires
// (-deadline server-wide, deadline_ms per request) — is canceled
// cooperatively: its task grid unwinds at the next task boundaries,
// its admission slot frees, and its stream ends with a "canceled"
// record.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"btr/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8420", "listen address")
	workers := flag.Int("workers", 0, "shared scheduler workers (0 = GOMAXPROCS)")
	maxInFlight := flag.Int("maxinflight", 0, "max concurrently running requests (0 = 4)")
	maxQueue := flag.Int("maxqueue", 0, "max requests waiting for an in-flight slot (0 = 16, negative = reject immediately when busy)")
	maxScale := flag.Float64("maxscale", 0, "per-request workload-scale cap (0 = 8)")
	maxMemBudget := flag.Int64("maxmembudget", 0, "per-request -membudget cap in bytes (0 = 1 GiB)")
	maxDecodedBudget := flag.Int64("maxdecodedbudget", 0, "per-request -decodedbudget cap in bytes (0 = 1 GiB)")
	cacheBytes := flag.Int64("cachebytes", 0, "shared trace-cache resident-byte budget (0 = default)")
	cachedir := flag.String("cachedir", "", "spill shared recorded traces to BTR2 files here (persists across restarts)")
	deadline := flag.Duration("deadline", 0, "default per-request deadline; past it the request is canceled and its stream ends with a canceled record (0 = unbounded, deadline_ms in the request overrides)")
	drainTimeout := flag.Duration("draintimeout", 30*time.Second, "max wait for in-flight requests during shutdown")
	flag.Parse()

	s := serve.New(serve.Config{
		Workers:          *workers,
		MaxInFlight:      *maxInFlight,
		MaxQueue:         *maxQueue,
		MaxScale:         *maxScale,
		MaxMemBudget:     *maxMemBudget,
		MaxDecodedBudget: *maxDecodedBudget,
		CacheBytes:       *cacheBytes,
		CacheDir:         *cachedir,
		DefaultDeadline:  *deadline,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: s.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("brserve: listening on %s (workers=%d)", *addr, s.Sched().Workers())
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Fatalf("brserve: %v", err)
	case <-ctx.Done():
	}

	// Drain: stop admitting, let in-flight requests stream to completion,
	// then retire the shared scheduler.
	log.Printf("brserve: draining (timeout %v)", *drainTimeout)
	s.BeginDrain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("brserve: shutdown: %v", err)
	}
	s.Close()

	m := s.Metrics()
	fmt.Printf("requests: completed=%d rejected=%d failed=%d canceled=%d\n",
		m.Requests.Completed, m.Requests.Rejected, m.Requests.Failed, m.Requests.Canceled)
	fmt.Printf("sched: executed=%d steals=%d submits=%d parks=%d workers=%d\n",
		m.Sched.Executed, m.Sched.Steals, m.Sched.InjectorSubmits, m.Sched.Parks, m.Sched.Workers)
	fmt.Printf("trace cache: hits=%d misses=%d loads=%d spills=%d evicted=%d quarantined=%d\n",
		m.TraceCache.Hits, m.TraceCache.Misses, m.TraceCache.Loads, m.TraceCache.Spills, m.TraceCache.Evicted, m.TraceCache.Quarantined)
}
