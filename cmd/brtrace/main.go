// Command brtrace generates, inspects and converts branch traces.
//
// Usage:
//
//	brtrace -list                                    # list workloads
//	brtrace -bench gcc -input expr.i -o expr.btr     # record a trace
//	brtrace -bench gcc -input expr.i -o expr.btr \
//	        -membudget 1048576                       # streamed, bounded memory
//	brtrace -info expr.btr                           # summarise a trace
//	brtrace -text expr.btr                           # dump as text
//	brtrace -verify cachedir                         # audit spill files
//
// Recording and -info also report the in-memory chunked format's stats
// (chunks, events, encoded bytes, bytes/event) alongside the BTR1 file
// codec, for quick trace audits. With -membudget the recording goes
// through the out-of-core streaming recorder instead and the report
// shows the memory shape a bounded-budget run has: peak resident chunk
// bytes, spill page-ins, and the decoded pool's high-water mark from an
// audit replay.
//
// -verify audits spill files — one file, or every *.btr under a
// directory (a trace-cache dir): header, frame structure, event counts,
// and, for BTR2, every chunk's checksum and decodability. One PASS/FAIL
// line per file; the exit status is nonzero if any file fails.
// Quarantined and temporary files (*.quarantined, *.tmp*) are skipped.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"btr"
	"btr/internal/trace"
)

func main() {
	list := flag.Bool("list", false, "list benchmark/input specs and exit")
	bench := flag.String("bench", "", "benchmark name")
	input := flag.String("input", "", "input set name")
	scale := flag.Float64("scale", 0.1, "workload scale")
	out := flag.String("o", "", "output trace file (BTR1 binary)")
	memBudget := flag.Int64("membudget", 0, "record through the streaming recorder with at most about this many resident bytes, then audit-replay the spill (0 = buffer in memory as before)")
	readAhead := flag.Int("readahead", 0, "during the -membudget audit replay, prefetch this many chunks ahead of the cursor so spill paging overlaps the replay (0 = demand paging)")
	info := flag.String("info", "", "summarise an existing trace file")
	text := flag.String("text", "", "dump an existing trace file as text")
	verify := flag.String("verify", "", "audit a spill file, or every *.btr under a directory; exits nonzero if any file fails")
	flag.Parse()

	switch {
	case *verify != "":
		runVerify(*verify)
	case *list:
		fmt.Printf("%-10s %-18s %s\n", "benchmark", "input", "target@scale1.0")
		for _, s := range btr.Workloads() {
			fmt.Printf("%-10s %-18s %d\n", s.Bench, s.Input, s.Target)
		}
	case *info != "":
		f, err := os.Open(*info)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r, err := trace.NewReader(f)
		if err != nil {
			fatal(err)
		}
		// One pass feeds both the stream summary and a model of the
		// in-memory chunked recording (columns are never retained, so
		// arbitrarily large traces audit in O(1) memory), reporting
		// the file codec and the simulator's resident format side by
		// side.
		sink := trace.NewStatsSink()
		mem := trace.NewChunkStatsSink(0)
		if _, err := trace.Copy(trace.Tee(sink, mem), r); err != nil {
			fatal(err)
		}
		fmt.Println(sink.Stats())
		if fi, err := f.Stat(); err == nil {
			fmt.Printf("btr1: file_bytes=%d\n", fi.Size())
		}
		fmt.Printf("chunked: %s\n", mem.Stats())
	case *text != "":
		f, err := os.Open(*text)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r, err := trace.NewReader(f)
		if err != nil {
			fatal(err)
		}
		if _, err := trace.WriteText(os.Stdout, r); err != nil {
			fatal(err)
		}
	case *bench != "" && *input != "" && *out != "" && *memBudget > 0:
		// Streamed recording: events go straight to the BTR1 file with a
		// bounded resident prefix — the memory shape a paper-scale run
		// has — then an audit replay pages every chunk back in through a
		// budgeted decoded pool and reports the memory-shape counters.
		spec, err := btr.FindWorkload(*bench, *input)
		if err != nil {
			fatal(err)
		}
		sr, err := trace.NewStreamRecorder(*out, 0, *memBudget)
		if err != nil {
			fatal(err)
		}
		n := spec.Run(sr, *scale)
		h, err := sr.Seal()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d events to %s (streamed)\n", n, *out)
		fmt.Printf("stream: chunks=%d encoded_bytes=%d resident_peak=%d\n",
			h.Chunks(), h.EncodedBytes(), h.ResidentPeak())
		pool := trace.NewDecodedPool(h, *memBudget)
		if *readAhead > 0 {
			pool.EnablePrefetch(0, 0)
		}
		pf := 1
		for k := 0; k < h.Chunks(); k++ {
			if *readAhead > 0 {
				hi := k + 1 + *readAhead
				if hi > h.Chunks() {
					hi = h.Chunks()
				}
				for ; pf < hi; pf++ {
					pool.Prefetch(pf)
				}
			}
			pool.Checkout(k)
			pool.Release(k)
		}
		pool.ClosePrefetch()
		ps := pool.Stats()
		fmt.Printf("replay: page_ins=%d decodes=%d decoded_high_water=%d prefetch_hits=%d prefetch_wasted=%d\n",
			h.PageIns(), ps.Decodes, ps.HighWater, ps.PrefetchHits, ps.PrefetchWasted)
	case *bench != "" && *input != "" && *out != "":
		spec, err := btr.FindWorkload(*bench, *input)
		if err != nil {
			fatal(err)
		}
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		w, err := trace.NewWriter(f)
		if err != nil {
			fatal(err)
		}
		// Model the in-memory chunked form alongside the file so the
		// audit line shows what the simulator would hold resident.
		mem := trace.NewChunkStatsSink(0)
		n := spec.Run(trace.Tee(w, mem), *scale)
		if err := w.Close(); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d events to %s\n", n, *out)
		fmt.Printf("chunked: %s\n", mem.Stats())
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// runVerify audits one spill file or every *.btr in a directory,
// printing one PASS/FAIL line per file and exiting 1 on any failure.
// Quarantined and in-progress temp files never match (their names do
// not end in .btr), so a cache dir audits cleanly mid-traffic.
func runVerify(path string) {
	st, err := os.Stat(path)
	if err != nil {
		fatal(err)
	}
	files := []string{path}
	if st.IsDir() {
		ents, err := os.ReadDir(path)
		if err != nil {
			fatal(err)
		}
		files = files[:0]
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".btr") {
				files = append(files, filepath.Join(path, e.Name()))
			}
		}
		sort.Strings(files)
		if len(files) == 0 {
			fmt.Printf("verify: no spill files under %s\n", path)
			return
		}
	}
	failed := 0
	for _, fp := range files {
		rep := trace.VerifySpill(fp)
		if rep.OK() {
			fmt.Printf("PASS %s format=BTR%d chunks=%d events=%d\n", fp, rep.Format, rep.Chunks, rep.Events)
		} else {
			failed++
			fmt.Printf("FAIL %s: %v\n", fp, rep.Err)
		}
	}
	fmt.Printf("verify: %d/%d passed\n", len(files)-failed, len(files))
	if failed > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "brtrace:", err)
	os.Exit(1)
}
