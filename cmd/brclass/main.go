// Command brclass profiles a workload (or a stored trace) and prints its
// taken/transition classification: per-class distributions, the joint
// matrix, the §4.2 coverage comparison, and optionally the per-branch
// profile dump.
//
// Usage:
//
//	brclass -bench compress -input bigtest.in [-scale 0.1] [-branches]
//	brclass -trace foo.btr [-branches]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"btr"
	"btr/internal/core"
	"btr/internal/report"
	"btr/internal/trace"
)

func main() {
	bench := flag.String("bench", "", "benchmark name (see brtrace -list)")
	input := flag.String("input", "", "input set name")
	scale := flag.Float64("scale", 0.1, "workload scale")
	tracePath := flag.String("trace", "", "read a BTR1 trace file instead of running a workload")
	branches := flag.Bool("branches", false, "dump per-branch profiles")
	flag.Parse()

	profiler := btr.NewProfiler()
	switch {
	case *tracePath != "":
		f, err := os.Open(*tracePath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r, err := trace.NewReader(f)
		if err != nil {
			fatal(err)
		}
		if _, err := trace.Copy(profiler, r); err != nil {
			fatal(err)
		}
	case *bench != "" && *input != "":
		spec, err := btr.FindWorkload(*bench, *input)
		if err != nil {
			fatal(err)
		}
		profiler = btr.ProfileWorkload(spec, *scale)
	default:
		fatal(fmt.Errorf("need either -trace or -bench/-input"))
	}

	fmt.Printf("events=%d static sites=%d\n\n", profiler.Events(), profiler.Sites())

	var dist core.Distribution
	dist.AddProfiles(profiler.Profiles())

	taken := dist.TakenMarginal()
	trans := dist.TransitionMarginal()
	tbl := report.Table{
		Title:   "Class distribution (dynamic-weighted)",
		Headers: []string{"class", "taken-rate share", "transition-rate share"},
	}
	for i := 0; i < core.NumClasses; i++ {
		tbl.AddRow(fmt.Sprintf("%d", i), report.Percent(taken[i]), report.Percent(trans[i]))
	}
	if err := tbl.Render(os.Stdout); err != nil {
		fatal(err)
	}

	cov := core.ComputeCoverage(&dist)
	fmt.Printf("\ncoverage: taken{0,10}=%s  trans{0,1}=%s  trans{0,1,9,10}=%s  missedGAs=%s missedPAs=%s\n",
		report.Percent(cov.TakenEasy), report.Percent(cov.TransitionEasyGAs),
		report.Percent(cov.TransitionEasyPAs), report.Percent(cov.MissedGAs),
		report.Percent(cov.MissedPAs))

	if !*branches {
		return
	}
	type row struct {
		pc uint64
		p  *btr.Profile
	}
	var rows []row
	for pc, p := range profiler.Profiles() {
		rows = append(rows, row{pc, p})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].p.Execs > rows[j].p.Execs })
	fmt.Println("\nper-branch profiles (hottest first):")
	for _, r := range rows {
		jc := btr.ClassOfProfile(r.p)
		fmt.Printf("  pc=%#x execs=%d taken=%.3f trans=%.3f class=%s advice=%s\n",
			r.pc, r.p.Execs, r.p.TakenRate(), r.p.TransitionRate(), jc, btr.Advise(jc))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "brclass:", err)
	os.Exit(1)
}
