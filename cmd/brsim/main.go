// Command brsim runs one predictor configuration over a workload or a
// stored trace and reports its miss rate — the sim-bpred analogue.
//
// Usage:
//
//	brsim -bench vortex -input vortex.lit -pred pas -k 8 [-scale 0.1]
//	      [-membudget bytes] [-memstats] [-snapshotranges N] [-workers N]
//	      [-readahead N]
//	brsim -trace foo.btr -pred gshare -k 12
//
// Predictors: pas, gas, gag, pag, gshare, bimodal, lasttime, taken,
// tournament, agree, bimode, yags, filter, gskew, dynhybrid,
// transhybrid, takenhybrid (the profile-guided hybrids profile first).
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"btr"
	"btr/internal/bpred"
	"btr/internal/core"
	"btr/internal/sim"
	"btr/internal/trace"
)

func main() {
	bench := flag.String("bench", "", "benchmark name")
	input := flag.String("input", "", "input set name")
	scale := flag.Float64("scale", 0.1, "workload scale")
	tracePath := flag.String("trace", "", "BTR1 trace file instead of a workload")
	pred := flag.String("pred", "pas", "predictor kind")
	k := flag.Int("k", 8, "history length")
	memBudget := flag.Int64("membudget", 0, "stream the recording to a BTR1 spill file, keeping at most about this many resident bytes; replays page the rest back in (0 = retain the recording whole)")
	cachedir := flag.String("cachedir", "", "reuse recorded workload traces as BTR1 files in this directory across invocations (filenames carry the workload-registry fingerprint, so a dir written by older workloads self-invalidates)")
	memStats := flag.Bool("memstats", false, "report the recording's memory shape (encoded bytes, resident peak, page-ins) after the run")
	snapshotRanges := flag.Int("snapshotranges", 0, "replay the recording as this many checkpointed chunk ranges in parallel (pas and gas only; 0 or 1 = chained replay, the default; results are bit-identical either way)")
	workers := flag.Int("workers", 0, "concurrent range workers for -snapshotranges (0 = GOMAXPROCS)")
	readAhead := flag.Int("readahead", 0, "replay the recording through a prefetching decoded pool that decodes this many chunks ahead of the cursor, overlapping spill paging with the predictor (chained replay only; 0 = demand paging; results are bit-identical either way)")
	flag.Parse()

	// Workloads are recorded once: the profile-guided hybrids replay the
	// recording for their profiling pass and the measurement pass replays
	// it again, so the generator runs once no matter how many passes the
	// predictor needs. With -membudget the recording streams to a spill
	// file with a bounded resident prefix instead of being retained
	// whole; with -cachedir it persists as a BTR1 spill file, so repeated
	// invocations skip the generator entirely.
	var recorded *trace.Handle
	var cache *trace.Cache
	var key trace.CacheKey
	fromCache := false
	record := func() *trace.Handle { return nil }
	if *tracePath == "" && *bench != "" && *input != "" {
		spec, err := btr.FindWorkload(*bench, *input)
		if err != nil {
			fatal(err)
		}
		key = trace.CacheKey{Name: spec.Name(), Fingerprint: spec.Fingerprint(), Scale: *scale}
		if *cachedir != "" {
			// The registry-fingerprinted constructor: spill files from a
			// stale workload generation are ignored, not trusted.
			cacheBytes := int64(btr.DefaultTraceCacheBytes)
			if *memBudget > 0 {
				cacheBytes = *memBudget
			}
			cache = btr.NewTraceCache(cacheBytes, *cachedir)
			if h, ok := cache.GetHandle(key); ok {
				recorded = h
				fromCache = true
			}
		}
		// record runs the generator fresh — the first-run path, and the
		// recovery path when a cached spill file turns out corrupt.
		record = func() *trace.Handle {
			var h *trace.Handle
			if *memBudget > 0 {
				path := ""
				if cache != nil {
					path = cache.SpillPathFor(key)
				}
				if sr, err := trace.NewStreamRecorder(path, 0, *memBudget); err == nil {
					spec.Run(sr, *scale)
					if sh, err := sr.Seal(); err == nil {
						h = sh
					}
				}
				// Any streaming failure falls through to the resident path.
			}
			if h == nil {
				rec := trace.NewChunkRecorder(0)
				spec.Run(rec, *scale)
				h = trace.NewResidentHandle(rec.Trace())
			}
			if cache != nil {
				if err := cache.PutHandle(key, h); err != nil {
					fmt.Fprintln(os.Stderr, "brsim: warning:", err)
				}
			}
			return h
		}
		if recorded == nil {
			recorded = record()
		}
	}

	// attempt builds the predictor and runs the measurement, converting
	// the paging panics a corrupt spill file raises into an error the
	// retry logic below can classify.
	var p btr.Predictor
	var res bpred.Result
	var snapStats *sim.SnapshotRunStats
	var poolStats *trace.DecodedPoolStats
	attempt := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				if e, ok := r.(error); ok {
					err = e
					return
				}
				err = fmt.Errorf("%v", r)
			}
		}()
		p, err = buildPredictor(*pred, *k, recorded)
		if err != nil {
			return err
		}
		snapStats, poolStats = nil, nil
		switch {
		case *tracePath != "":
			f, err := os.Open(*tracePath)
			if err != nil {
				return err
			}
			defer f.Close()
			r, err := trace.NewReader(f)
			if err != nil {
				return err
			}
			res, err = bpred.Run(p, r)
			return err
		case recorded != nil:
			if *snapshotRanges > 1 {
				if mk := snapshotFactory(*pred, *k); mk != nil {
					var stats sim.SnapshotRunStats
					res, stats = sim.RunPredictorSnapshot(recorded, mk, *snapshotRanges, *workers)
					snapStats = &stats
					return nil
				}
				fmt.Fprintf(os.Stderr, "brsim: warning: -snapshotranges supports pas and gas only; replaying %s chained\n", *pred)
			}
			src := recorded.Source()
			var pool *trace.DecodedPool
			if *readAhead > 0 {
				// A sequential replay visits each chunk once, so the pool only
				// needs to hold the read-ahead window: bound it to a few chunks
				// past the requested depth and let LRU eviction do the rest.
				budget := int64(*readAhead+2) * int64(recorded.ChunkEvents()) * 9
				pool = trace.NewDecodedPool(recorded, budget)
				pool.EnablePrefetch(0, 0)
				src = pool.Source(*readAhead)
			}
			res, err = bpred.Run(p, src)
			if pool != nil {
				pool.ClosePrefetch()
				ps := pool.Stats()
				poolStats = &ps
			}
			return err
		default:
			return fmt.Errorf("need either -trace or -bench/-input")
		}
	}
	err := attempt()
	if err != nil && fromCache && errors.Is(err, trace.ErrCorruptSpill) {
		// The cached spill file no longer decodes (checksum mismatch,
		// truncation). Quarantine it and re-record from the generator —
		// the rerun is bit-identical to an uncached run.
		fmt.Fprintf(os.Stderr, "brsim: warning: cached recording is corrupt (%v); quarantined, re-recording\n", err)
		cache.Quarantine(key)
		fromCache = false
		recorded = record()
		err = attempt()
	}
	if err != nil {
		fatal(err)
	}

	fmt.Printf("predictor=%s events=%d misses=%d missrate=%.4f accuracy=%.2f%% state=%d bits\n",
		p.Name(), res.Events, res.Misses, res.MissRate(), 100*(1-res.MissRate()), p.SizeBits())
	if snapStats != nil {
		fmt.Printf("snapshots: ranges=%d count=%d bytes=%d\n",
			snapStats.Ranges, snapStats.Snapshots, snapStats.SnapshotBytes)
	}
	if *memStats && recorded != nil {
		fmt.Printf("mem: encoded_bytes=%d resident_peak=%d page_ins=%d spilled=%v\n",
			recorded.EncodedBytes(), recorded.ResidentPeak(), recorded.PageIns(), recorded.Spilled())
	}
	if poolStats != nil {
		fmt.Printf("readahead: prefetch_hits=%d prefetch_wasted=%d inflight_peak=%d decoded_high_water=%d\n",
			poolStats.PrefetchHits, poolStats.PrefetchWasted, poolStats.InFlightPeak, poolStats.HighWater)
	}
}

// snapshotFactory returns a builder for the predictors that implement
// the checkpointed replay contract (batch sweep + update-only warmup +
// flat snapshots); nil for everything else.
func snapshotFactory(kind string, k int) func() sim.SnapshotPredictor {
	switch kind {
	case "pas":
		return func() sim.SnapshotPredictor { return bpred.NewPAs(k) }
	case "gas":
		return func() sim.SnapshotPredictor { return bpred.NewGAs(k) }
	default:
		return nil
	}
}

func buildPredictor(kind string, k int, recorded *trace.Handle) (btr.Predictor, error) {
	switch kind {
	case "pas":
		return bpred.NewPAs(k), nil
	case "gas":
		return bpred.NewGAs(k), nil
	case "gag":
		return bpred.NewGAg(k), nil
	case "pag":
		return bpred.NewPAg(k, 12), nil
	case "gshare":
		return bpred.NewGShare(bpred.GAsPHTBits, k), nil
	case "bimodal":
		return bpred.NewBimodal(bpred.GAsPHTBits), nil
	case "lasttime":
		return bpred.NewLastTime(bpred.GAsPHTBits), nil
	case "taken":
		return bpred.NewAlwaysTaken(), nil
	case "agree":
		return bpred.NewAgree(bpred.GAsPHTBits, k, 14), nil
	case "tournament":
		return bpred.NewTournament("Tournament(PAs,gshare)",
			bpred.NewPAs(k), bpred.NewGShare(16, k), 12), nil
	case "bimode":
		return bpred.NewBiMode(16, 15, k), nil
	case "yags":
		return bpred.NewYAGS(16, 14, 8, k), nil
	case "filter":
		return bpred.NewFilter(14, 32, bpred.NewGShare(16, k)), nil
	case "gskew":
		return bpred.NewGSkew(16, k), nil
	case "dynhybrid":
		return bpred.NewDynamicClassHybrid(13, 64, bpred.HybridComponents{}), nil
	case "transhybrid", "takenhybrid":
		if recorded == nil {
			return nil, fmt.Errorf("%s needs -bench/-input (it profiles first)", kind)
		}
		profiler := core.NewProfiler()
		recorded.Replay(profiler)
		classes := core.Classify(profiler.Profiles())
		if kind == "transhybrid" {
			return bpred.NewTransitionHybrid(classes, profiler.Profiles(), bpred.HybridComponents{}), nil
		}
		return bpred.NewTakenHybrid(classes, profiler.Profiles(), bpred.HybridComponents{}), nil
	default:
		return nil, fmt.Errorf("unknown predictor %q", kind)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "brsim:", err)
	os.Exit(1)
}
