// Command benchjson converts `go test -bench` output into the
// machine-readable BENCH_<pr>.json snapshot CI emits for every PR, so
// the suite-sweep perf trajectory can be tracked without re-parsing
// benchmark logs.
//
// Usage:
//
//	go test -run='^$' -bench=SuiteSweep -benchtime=3x . | benchjson -pr 4 -out BENCH_4.json
//
// Each benchmark line contributes one record with its name, worker
// count (the -N GOMAXPROCS suffix Go appends), ns/op, and any custom
// metrics such as events/op. Non-benchmark lines (goos/goarch/cpu
// headers, PASS trailers) annotate or are skipped.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name       string  `json:"name"`
	Workers    int     `json:"workers"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// EventsPerOp is the pipeline's dynamic-branch throughput metric; 0
	// for micro-benchmarks that do not report it.
	EventsPerOp float64 `json:"events_per_op,omitempty"`
	// EventsPerSec is the derived throughput (EventsPerOp normalised by
	// wall time), the number paper-scale runtime projections divide by.
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
	// Extra holds any other custom metrics, keyed by unit.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Report is the emitted document.
type Report struct {
	PR         int         `json:"pr"`
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	pr := flag.Int("pr", 0, "PR number stamped into the report")
	out := flag.String("out", "", "output path (default stdout)")
	flag.Parse()

	rep := Report{PR: *pr}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseLine(line); ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if len(rep.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines on stdin"))
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
}

// parseLine decodes one "BenchmarkName-P  N  v unit  v unit ..." line.
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	var b Benchmark
	b.Name = strings.TrimPrefix(fields[0], "Benchmark")
	// The testing package appends "-P" (GOMAXPROCS) only when P > 1.
	b.Workers = 1
	if i := strings.LastIndex(b.Name, "-"); i >= 0 {
		if w, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Workers = w
			b.Name = b.Name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b.Iterations = iters
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "events/op":
			b.EventsPerOp = v
		default:
			if b.Extra == nil {
				b.Extra = make(map[string]float64)
			}
			b.Extra[unit] = v
		}
	}
	if b.NsPerOp > 0 && b.EventsPerOp > 0 {
		b.EventsPerSec = b.EventsPerOp / (b.NsPerOp / 1e9)
	}
	return b, b.NsPerOp > 0
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
