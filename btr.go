// Package btr reproduces "Branch Transition Rate: A New Metric for
// Improved Branch Classification Analysis" (Haungs, Sallee, Farrens;
// HPCA 2000) as a reusable Go library.
//
// The paper classifies conditional branches by two per-branch metrics —
// taken rate and transition rate — and shows that the joint classification
// predicts two-level branch predictor behaviour: which branches need no
// pattern history, which alternating branches need one or two bits, which
// need long histories, and which (the near-50%/50% "5/5" class) defeat
// prediction entirely.
//
// This package is the public facade over the internal substrates:
//
//   - profiling and classification (taken/transition rates, 11-way
//     classes, joint distribution, §4.2 coverage),
//   - the predictor simulator (the paper's 32 KB PAs/GAs sweep plus
//     baselines and classification-guided hybrids),
//   - the SPECint95-analogue workload suite (Table 1),
//   - the experiment drivers that regenerate every table and figure.
//
// # Quick start
//
//	spec, _ := btr.FindWorkload("compress", "bigtest.in")
//	prof := btr.ProfileWorkload(spec, 0.1)
//	for pc, p := range prof.Profiles() {
//		jc := btr.ClassOfProfile(p)
//		fmt.Printf("%#x taken=%.2f trans=%.2f class=%s\n",
//			pc, p.TakenRate(), p.TransitionRate(), jc)
//	}
//
// See the examples/ directory for complete programs.
package btr

import (
	"io"

	"btr/internal/bpred"
	"btr/internal/conf"
	"btr/internal/core"
	"btr/internal/experiments"
	"btr/internal/rng"
	"btr/internal/sched"
	"btr/internal/sim"
	"btr/internal/trace"
	"btr/internal/workload"
)

// Re-exported core types. The concrete implementations live in internal
// packages; these aliases are the supported API.
type (
	// Profile is the per-branch taken/transition accumulator.
	Profile = core.Profile
	// Profiler builds Profiles from a branch event stream.
	Profiler = core.Profiler
	// Class is an 11-way rate class (0..10).
	Class = core.Class
	// JointClass pairs a taken class with a transition class.
	JointClass = core.JointClass
	// ClassMap maps branch PCs to joint classes.
	ClassMap = core.ClassMap
	// Distribution is the dynamic-weighted joint class distribution.
	Distribution = core.Distribution
	// Coverage is the §4.2 coverage comparison.
	Coverage = core.Coverage
	// Advice is a §5 resource recommendation for a branch class.
	Advice = core.Advice

	// Event is one dynamic conditional branch execution.
	Event = trace.Event
	// Sink consumes branch events.
	Sink = trace.Sink
	// Source produces branch events.
	Source = trace.Source

	// Predictor is a dynamic branch predictor.
	Predictor = bpred.Predictor

	// Estimator assigns confidence to predictions.
	Estimator = conf.Estimator

	// WorkloadSpec is one Table 1 benchmark/input row.
	WorkloadSpec = workload.Spec
	// WorkloadTracer is the tracer handed to instrumented workload code;
	// call its B method at every conditional branch site.
	WorkloadTracer = workload.T
	// Rand is the deterministic generator workloads draw inputs from.
	Rand = rng.Rand

	// SimConfig configures suite simulation.
	SimConfig = sim.Config
	// SuiteResult is the aggregated sweep result behind every figure.
	SuiteResult = sim.SuiteResult
	// InputResult is the per-input two-pass result.
	InputResult = sim.InputResult
	// InputError records one dropped suite input with its recovered cause.
	InputError = sim.InputError
	// MemStats reports how trace data moved through the bounded-memory
	// pipeline (recording footprint, spill page-ins, decoded-pool
	// traffic); see SimConfig.MemBudget and SimConfig.DecodedBudget.
	MemStats = sim.MemStats
	// PredictorKind selects PAs or GAs in sweep queries.
	PredictorKind = sim.Kind

	// TraceCache shares recorded workload traces across runs and
	// experiment contexts, keyed by (workload name, spec fingerprint,
	// scale, chunk size), optionally spilling to BTR1 files. Assign one
	// to SimConfig.Cache.
	TraceCache = trace.Cache
	// TraceCacheKey identifies one recording in a TraceCache.
	TraceCacheKey = trace.CacheKey
	// ProfileCache caches classified pass-1 results (sans Miss) under
	// the same keys as a TraceCache, so matching runs skip the profiling
	// replay as well as the generator run. Assign one to
	// SimConfig.Profiles.
	ProfileCache = sim.ProfileCache

	// Experiment regenerates one paper table or figure.
	Experiment = experiments.Experiment

	// Scheduler is the shared work-stealing task scheduler. Build one
	// with NewScheduler, assign it to SimConfig.Sched, and any number of
	// suite runs — sequential or concurrent — submit their task graphs
	// to it as independently-awaited groups; Close retires the workers.
	Scheduler = sched.Scheduler
	// SchedulerStats is a snapshot of a Scheduler's lifetime counters
	// (tasks executed, steals, injector submits, park episodes, queue
	// depth).
	SchedulerStats = sched.Stats
	// TaskGroup tracks (and can cancel) one related set of tasks on a
	// long-lived Scheduler — one suite run, one server request. Build
	// with Scheduler.NewGroup; Cancel unwinds the run cooperatively at
	// task boundaries, dropping unfinished inputs with ErrCanceled.
	TaskGroup = sched.Group
	// SpillVerifyReport is the result of auditing one spill file
	// (VerifySpillFile): format, chunk/event counts, and the first
	// failure if any.
	SpillVerifyReport = trace.VerifyReport

	// ExperimentShared bundles the substrate experiment contexts share:
	// the recorded-trace cache and its pass-1 profile sibling. One
	// bundle can back any number of concurrent contexts.
	ExperimentShared = experiments.Shared
)

// Predictor kinds.
const (
	PAs = sim.KindPAs
	GAs = sim.KindGAs
)

// Resource advice values returned by Advise (§5).
const (
	AdviseStatic        = core.AdviseStatic
	AdviseShortLocal    = core.AdviseShortLocal
	AdviseLongHistory   = core.AdviseLongHistory
	AdviseNonPredictive = core.AdviseNonPredictive
)

// NumClasses is the number of rate classes (11).
const NumClasses = core.NumClasses

// MaxHistory is the largest history length in the paper's sweep (16).
const MaxHistory = bpred.MaxHistory

// ClassOf maps a rate in [0,1] to its class.
func ClassOf(rate float64) Class { return core.ClassOf(rate) }

// ClassOfProfile returns a profile's joint class.
func ClassOfProfile(p *Profile) JointClass { return core.ClassOfProfile(p) }

// Classify builds a ClassMap from profiles.
func Classify(profiles map[uint64]*Profile) ClassMap { return core.Classify(profiles) }

// ComputeCoverage evaluates the §4.2 coverage comparison.
func ComputeCoverage(d *Distribution) Coverage { return core.ComputeCoverage(d) }

// Advise maps a joint class to the paper's §5 resource recommendation.
func Advise(jc JointClass) Advice { return core.Advise(jc) }

// NewProfiler returns an empty profiler; feed it events via its Branch
// method (it is a Sink).
func NewProfiler() *Profiler { return core.NewProfiler() }

// Workloads returns every Table 1 benchmark/input spec.
func Workloads() []WorkloadSpec { return workload.Suite() }

// FindWorkload returns the spec named bench/input.
func FindWorkload(bench, input string) (WorkloadSpec, error) {
	return workload.Find(bench, input)
}

// NewWorkloadSpec builds a custom workload from a user-supplied
// instrumented program, usable everywhere a built-in spec is: profiling,
// predictor runs, and RunSuite. The run function must be deterministic
// given (r, target) and should emit branches via t.B until t.N() reaches
// target. See examples/customworkload.
func NewWorkloadSpec(bench, input string, target int64, seed uint64,
	run func(t *WorkloadTracer, r *Rand, target int64)) WorkloadSpec {
	return workload.NewSpec(bench, input, target, seed, run)
}

// ProfileWorkload profiles one workload at the given scale (1.0 = the
// registry's default sizing).
func ProfileWorkload(spec WorkloadSpec, scale float64) *Profiler {
	profiler, _ := sim.ProfileInput(spec, scale)
	return profiler
}

// RunInput runs the full two-pass pipeline (profile, then the PAs/GAs
// history sweep) for one workload.
func RunInput(spec WorkloadSpec, cfg SimConfig) *InputResult {
	return sim.RunInput(spec, cfg)
}

// RunSuite runs the two-pass pipeline over the given specs and aggregates
// (dynamic-occurrence weighted) exactly as the paper reports. The default
// engine is a global work-stealing scheduler over (input, bank-batch)
// tasks; cfg.NoSched selects the legacy nested pools, bit-identically.
func RunSuite(specs []WorkloadSpec, cfg SimConfig) *SuiteResult {
	return sim.RunSuite(specs, cfg)
}

// NewScheduler builds a long-lived scheduler with n workers (0 =
// GOMAXPROCS). Assign it to SimConfig.Sched to run many suites —
// including concurrently — on one worker pool, and Close it when done.
func NewScheduler(n int) *Scheduler { return sched.New(n) }

// RunSuiteOn is RunSuite on an existing long-lived scheduler: the
// suite's tasks run as one completion-tracked group, so concurrent
// callers share s's workers without waiting on each other's work.
func RunSuiteOn(s *Scheduler, specs []WorkloadSpec, cfg SimConfig) *SuiteResult {
	return sim.RunSuiteOn(s, specs, cfg)
}

// RunSuiteGroup is RunSuiteOn with a caller-owned group, so the run can
// be canceled mid-flight (TaskGroup.Cancel): canceled inputs land in
// SuiteResult.Dropped with ErrCanceled and the call returns once the
// queued tasks drain. It is also where corrupt cached spill files are
// recovered: an input failing with ErrCorruptSpill has its cache entry
// quarantined and is re-recorded from the generator once,
// bit-identically.
func RunSuiteGroup(g *TaskGroup, specs []WorkloadSpec, cfg SimConfig) *SuiteResult {
	return sim.RunSuiteGroup(g, specs, cfg)
}

// ErrCanceled is the cause recorded for inputs dropped by a canceled
// TaskGroup. Test with errors.Is.
var ErrCanceled = sim.ErrCanceled

// ErrCorruptSpill matches (errors.Is) every spill-integrity failure: a
// chunk checksum mismatch, a truncated file, undecodable chunk bytes.
var ErrCorruptSpill = trace.ErrCorruptSpill

// VerifySpillFile audits one spill file — header, frame structure,
// event counts, and (BTR2) every chunk's checksum and decodability.
func VerifySpillFile(path string) SpillVerifyReport { return trace.VerifySpill(path) }

// DefaultTraceCacheBytes is the resident-column budget for callers with
// no better number (1 GiB).
const DefaultTraceCacheBytes = trace.DefaultCacheBytes

// NewTraceCache builds a recorded-trace cache bounded to maxBytes of
// resident columns (<= 0 means unbounded). A non-empty spillDir makes it
// persistent: traces are written through as BTR1 files and reloaded on
// demand, including by later processes pointed at the same directory.
// Spill filenames embed the workload registry's fingerprint (a hash of
// every spec's name, target and seed), so a directory written by a
// build with different workloads self-invalidates instead of serving
// stale recordings.
func NewTraceCache(maxBytes int64, spillDir string) *TraceCache {
	return trace.NewCache(maxBytes, spillDir, workload.RegistryFingerprint())
}

// NewProfileCache builds a cache of classified pass-1 results with the
// default byte budget. Assign it to SimConfig.Profiles so repeated runs
// over the same (workload, scale, chunk) skip the profiling replay
// entirely; experiment contexts built via NewExperimentContext share
// one automatically.
func NewProfileCache() *ProfileCache {
	return sim.NewProfileCache()
}

// NewProfileCacheBytes is NewProfileCache with an explicit budget for
// the retained pass-1 artifacts (<= 0 means unbounded); entries past it
// are evicted least-recently-used and recomputed on the next run.
func NewProfileCacheBytes(maxBytes int64) *ProfileCache {
	return sim.NewProfileCacheBytes(maxBytes)
}

// Predictor constructors (the paper's §3 configurations and the
// classification-guided hybrids of §5.4).

// NewPAs returns the paper's 32 KB per-address two-level predictor with
// history length k (0..MaxHistory).
func NewPAs(k int) Predictor { return bpred.NewPAs(k) }

// NewGAs returns the paper's 32 KB global two-level predictor with history
// length k (0..MaxHistory).
func NewGAs(k int) Predictor { return bpred.NewGAs(k) }

// NewGShare returns a gshare predictor with 2^phtBits counters and history
// length k.
func NewGShare(phtBits, k int) Predictor { return bpred.NewGShare(phtBits, k) }

// NewBimodal returns a bimodal predictor with 2^bits counters.
func NewBimodal(bits int) Predictor { return bpred.NewBimodal(bits) }

// NewTransitionHybrid builds the §5.4 classification-guided hybrid from a
// profiling pass.
func NewTransitionHybrid(classes ClassMap, profiles map[uint64]*Profile) Predictor {
	return bpred.NewTransitionHybrid(classes, profiles, bpred.HybridComponents{})
}

// NewTakenHybrid builds the Chang-style taken-rate-guided hybrid baseline.
func NewTakenHybrid(classes ClassMap, profiles map[uint64]*Profile) Predictor {
	return bpred.NewTakenHybrid(classes, profiles, bpred.HybridComponents{})
}

// NewDynamicClassHybrid builds the §6 future-work predictor: transition
// and taken rates measured by runtime counters over a per-branch window
// (no profiling pass), steering each branch to the component its dynamic
// class deserves. tableBits sizes the monitor table; window is executions
// per classification decision (0 means 64).
func NewDynamicClassHybrid(tableBits int, window uint16) Predictor {
	return bpred.NewDynamicClassHybrid(tableBits, window, bpred.HybridComponents{})
}

// RunPredictor drives a predictor over a workload at the given scale and
// returns (misses, events).
func RunPredictor(p Predictor, spec WorkloadSpec, scale float64) (misses, events int64) {
	sink := bpred.NewSink(p)
	spec.Run(sink, scale)
	return sink.Res.Misses, sink.Res.Events
}

// Experiments returns every table/figure driver in paper order.
func Experiments() []Experiment { return experiments.All() }

// FindExperiment returns the driver for an id such as "T2" or "F13".
func FindExperiment(id string) (Experiment, error) { return experiments.Find(id) }

// RunExperiment regenerates one artifact into w, sharing the sweep in ctx.
func RunExperiment(ctx *ExperimentContext, id string, w io.Writer) error {
	e, err := experiments.Find(id)
	if err != nil {
		return err
	}
	return e.Run(ctx.ctx, w)
}

// ExperimentContext shares one suite sweep across experiment runs.
type ExperimentContext struct {
	ctx *experiments.Context
}

// NewExperimentContext builds a context over the full Table 1 suite.
func NewExperimentContext(cfg SimConfig) *ExperimentContext {
	return &ExperimentContext{ctx: experiments.NewContext(cfg)}
}

// NewExperimentShared builds an explicit cache bundle for
// NewExperimentContextShared: a trace cache bounded to cacheBytes
// (<= 0 = DefaultTraceCacheBytes) spilling to spillDir ("" = memory
// only) plus a profile cache. Servers build one and hand it to every
// session.
func NewExperimentShared(cacheBytes int64, spillDir string) *ExperimentShared {
	return experiments.NewShared(cacheBytes, spillDir)
}

// NewExperimentContextShared builds a context over an explicit shared
// bundle — the multi-tenant shape: many cheap per-request contexts,
// one substrate. A nil bundle selects the process-wide default.
func NewExperimentContextShared(cfg SimConfig, sh *ExperimentShared) *ExperimentContext {
	return &ExperimentContext{ctx: experiments.NewContextShared(cfg, sh)}
}

// Suite exposes the shared suite result (computing it on first use).
func (c *ExperimentContext) Suite() *SuiteResult { return c.ctx.Suite() }

// SuiteGroup is Suite with the first computation joining the given
// group, so the caller can cancel the sweep mid-run (an interrupt, a
// deadline). Canceled inputs are reported in SuiteResult.Dropped with
// ErrCanceled.
func (c *ExperimentContext) SuiteGroup(g *TaskGroup) *SuiteResult { return c.ctx.SuiteGroup(g) }
