module btr

go 1.24
