// Package rng provides small, fast, deterministic pseudo-random number
// generators used by the synthetic workloads.
//
// Workloads must replay bit-identically across the profile pass and the
// predict pass (and across machines), so they cannot use math/rand's
// global, seed-hashed state. This package implements splitmix64 (for seed
// expansion) and xoshiro256** (for the main stream), both with fully
// specified semantics.
package rng

// SplitMix64 is a tiny 64-bit generator with a single word of state.
// It is primarily used to expand user seeds into xoshiro256** state,
// following the recommendation of Blackman & Vigna.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a SplitMix64 seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Next returns the next value in the sequence.
func (s *SplitMix64) Next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Rand is a deterministic xoshiro256** generator.
// The zero value is not usable; construct with New.
type Rand struct {
	s [4]uint64
}

// New returns a generator whose state is derived from seed via splitmix64.
// Two generators created with the same seed produce identical streams.
func New(seed uint64) *Rand {
	sm := NewSplitMix64(seed)
	r := &Rand{}
	for i := range r.s {
		r.s[i] = sm.Next()
	}
	// xoshiro256** requires a non-zero state; splitmix64 output over four
	// words is never all-zero for any seed, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	return r.Float64() < p
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomly reorders the first n elements using swap,
// mirroring math/rand.Shuffle's contract.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Geometric returns a sample from a geometric distribution with success
// probability p (number of failures before the first success). It is used
// by workloads to generate run lengths. p must be in (0, 1].
func (r *Rand) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("rng: Geometric needs p in (0,1]")
	}
	n := 0
	for !r.Bool(p) {
		n++
		if n > 1<<20 { // safety valve; statistically unreachable for sane p
			break
		}
	}
	return n
}
