package rng

import (
	"testing"
	"testing/quick"
)

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference values for seed 0 from the splitmix64 reference
	// implementation (Vigna).
	s := NewSplitMix64(0)
	want := []uint64{
		0xe220a8397b1dcdaf,
		0x6e789e6aa1b965f4,
		0x06c45d188009454f,
	}
	for i, w := range want {
		if got := s.Next(); got != w {
			t.Fatalf("splitmix64[%d] = %#x, want %#x", i, got, w)
		}
	}
}

func TestNewDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("stream diverged at %d: %#x vs %#x", i, av, bv)
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with different seeds matched %d/100 times", same)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(7)
	for _, n := range []int{1, 2, 3, 10, 1000} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(99)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(123)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if mean < 0.49 || mean > 0.51 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(5)
	for _, p := range []float64{0.1, 0.5, 0.9} {
		hits := 0
		const n = 50000
		for i := 0; i < n; i++ {
			if r.Bool(p) {
				hits++
			}
		}
		got := float64(hits) / n
		if got < p-0.02 || got > p+0.02 {
			t.Fatalf("Bool(%v) hit rate %v", p, got)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(11)
	for _, n := range []int{0, 1, 2, 5, 64} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	r := New(13)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, v := range xs {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed multiset: %v", xs)
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(17)
	const p = 0.25
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += float64(r.Geometric(p))
	}
	mean := sum / n
	want := (1 - p) / p // mean of failures-before-success geometric
	if mean < want*0.9 || mean > want*1.1 {
		t.Fatalf("Geometric(%v) mean %v, want ~%v", p, mean, want)
	}
}

func TestGeometricPanicsOnBadP(t *testing.T) {
	for _, p := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Geometric(%v) did not panic", p)
				}
			}()
			New(1).Geometric(p)
		}()
	}
}

func TestQuickSeedDeterminism(t *testing.T) {
	f := func(seed uint64) bool {
		a, b := New(seed), New(seed)
		for i := 0; i < 16; i++ {
			if a.Uint64() != b.Uint64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickIntnBounds(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		bound := int(n%1000) + 1
		r := New(seed)
		for i := 0; i < 8; i++ {
			v := r.Intn(bound)
			if v < 0 || v >= bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
