package experiments

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"

	"btr/internal/sched"
	"btr/internal/sim"
	"btr/internal/trace"
)

// sessionRenderIDs are artifacts rendered straight from the shared
// SuiteResult — the mixed read workload the concurrent sessions run.
var sessionRenderIDs = []string{"T1", "T2", "S1", "F1", "F13", "F15"}

// TestConcurrentSessionsShareSubstrate is the multi-tenant contract
// behind brserve: N concurrent sessions — each a cheap per-request
// Context over one explicitly injected Shared bundle and one long-lived
// scheduler — produce results bit-identical to a sequential run on a
// private substrate, and the generator-run counter proves the sessions
// shared recordings instead of each re-running pass 1. Run under -race
// this is also the data-race workout for Shared + Group.
func TestConcurrentSessionsShareSubstrate(t *testing.T) {
	var runs atomic.Int64
	specs := countingSpecs(&runs)
	cfg := sim.Config{Scale: 1, Workers: 4}

	// Sequential baseline on a fully private substrate.
	baseCfg := cfg
	baseCfg.Cache = trace.NewCache(0, "", 0)
	baseCfg.Profiles = sim.NewProfileCache()
	baseCtx := &Context{Cfg: baseCfg, Specs: specs}
	base := baseCtx.Suite()
	if got := runs.Load(); got != int64(len(specs)) {
		t.Fatalf("baseline ran generators %d times, want %d", got, len(specs))
	}
	want := make(map[string]string)
	for _, id := range sessionRenderIDs {
		e, err := Find(id)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := e.Run(baseCtx, &buf); err != nil {
			t.Fatalf("baseline render %s: %v", id, err)
		}
		want[id] = buf.String()
	}

	// The shared substrate: one scheduler, one bundle, many sessions.
	s := sched.New(4)
	defer s.Close()
	sh := NewShared(0, "")

	session := func() *Context {
		scfg := cfg
		scfg.Sched = s
		ctx := NewContextShared(scfg, sh)
		ctx.Specs = specs
		return ctx
	}

	// Warm sequentially so the concurrent phase is deterministic: a cold
	// concurrent start may legitimately run a generator twice (both
	// sessions miss, first writer wins).
	warm := session().Suite()
	warmRuns := runs.Load()
	if warmRuns != int64(2*len(specs)) {
		t.Fatalf("warm session ran generators to %d total, want %d", warmRuns, 2*len(specs))
	}
	if warm.Exec != base.Exec || warm.Miss != base.Miss {
		t.Fatal("warm shared-substrate session diverged from private baseline")
	}

	const sessions = 8
	results := make([]*sim.SuiteResult, sessions)
	rendered := make([]string, sessions)
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := session()
			results[i] = ctx.Suite()
			id := sessionRenderIDs[i%len(sessionRenderIDs)]
			e, err := Find(id)
			if err != nil {
				t.Error(err)
				return
			}
			var buf bytes.Buffer
			if err := e.Run(ctx, &buf); err != nil {
				t.Errorf("session %d render %s: %v", i, id, err)
				return
			}
			rendered[i] = buf.String()
		}()
	}
	wg.Wait()

	for i := 0; i < sessions; i++ {
		r := results[i]
		if r == nil {
			t.Fatalf("session %d produced no suite", i)
		}
		if len(r.Dropped) != 0 {
			t.Fatalf("session %d dropped inputs: %v", i, r.Dropped)
		}
		if r.Exec != base.Exec || r.Miss != base.Miss {
			t.Fatalf("session %d diverged from sequential baseline", i)
		}
		if id := sessionRenderIDs[i%len(sessionRenderIDs)]; rendered[i] != want[id] {
			t.Fatalf("session %d rendered %s differently from baseline", i, id)
		}
	}
	// The proof of sharing: eight more full sessions, zero new
	// generator runs.
	if got := runs.Load(); got != warmRuns {
		t.Fatalf("concurrent sessions ran generators: %d total runs, want %d", got, warmRuns)
	}
	if st := sh.Traces.Stats(); st.Hits < int64(sessions*len(specs)) {
		t.Fatalf("trace cache stats %+v: want >= %d hits", st, sessions*len(specs))
	}
}

// TestSharedForKeysByDirectory pins the fix for the old package
// singleton: same directory, same bundle; different directories,
// genuinely different caches.
func TestSharedForKeysByDirectory(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	a, b, def := SharedFor(dirA), SharedFor(dirB), SharedFor("")
	if a == b || a == def || b == def {
		t.Fatal("distinct cache directories returned a shared bundle")
	}
	if SharedFor(dirA) != a {
		t.Fatal("repeated SharedFor(dir) did not memoise")
	}
	if SharedFor("") != def {
		t.Fatal("default bundle not memoised")
	}
}
