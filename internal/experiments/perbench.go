package experiments

import (
	"fmt"
	"io"

	"btr/internal/core"
	"btr/internal/report"
	"btr/internal/sim"
	"btr/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "X1",
		Paper: "Supplemental: per-benchmark coverage and miss rates (the paper reports suite aggregates only)",
		Run:   runPerBenchmark,
	})
}

// runPerBenchmark breaks the suite-level headline numbers down per
// benchmark: easy-branch coverage under both classification schemes, the
// misclassified mass, and PAs/GAs miss rates at a representative history
// length. The paper reports only dynamic-weighted suite aggregates; this
// view shows which programs drive each effect.
func runPerBenchmark(c *Context, w io.Writer) error {
	suite := c.Suite()

	type agg struct {
		dist   core.Distribution
		exec   sim.JointCounts
		missPA sim.JointCounts
		missGA sim.JointCounts
		events int64
		sites  int
	}
	const k = 8 // representative history length for the miss columns
	byBench := make(map[string]*agg)
	var order []string
	for _, in := range suite.Inputs {
		a := byBench[in.Spec.Bench]
		if a == nil {
			a = &agg{}
			byBench[in.Spec.Bench] = a
			order = append(order, in.Spec.Bench)
		}
		a.dist.AddProfiles(in.Profiles)
		a.exec.Add(&in.Exec)
		a.missPA.Add(&in.Miss[sim.KindPAs][k])
		a.missGA.Add(&in.Miss[sim.KindGAs][k])
		a.events += in.Events
		a.sites += in.Sites
	}

	tbl := report.Table{
		Title: "X1 — Per-benchmark breakdown (coverage; misclassified mass; miss at k=8)",
		Headers: []string{"benchmark", "events", "sites",
			"taken{0,10}", "trans{0,1}", "misclass(PAs)", "pas(8) miss", "gas(8) miss"},
	}
	for _, bench := range order {
		a := byBench[bench]
		cov := core.ComputeCoverage(&a.dist)
		tbl.AddRow(bench,
			fmt.Sprintf("%d", a.events),
			fmt.Sprintf("%d", a.sites),
			report.Percent(cov.TakenEasy),
			report.Percent(cov.TransitionEasyGAs),
			report.Percent(a.dist.MisclassifiedFraction(true)),
			report.Rate(stats.Ratio(float64(a.missPA.Total()), float64(a.exec.Total()))),
			report.Rate(stats.Ratio(float64(a.missGA.Total()), float64(a.exec.Total()))))
	}
	if err := tbl.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w, "\nsuite aggregates weight each benchmark by its dynamic branch count (Table 1).")
	return err
}
