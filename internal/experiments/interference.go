package experiments

import (
	"fmt"
	"io"

	"btr/internal/bpred"
	"btr/internal/core"
	"btr/internal/report"
	"btr/internal/stats"
	"btr/internal/trace"
)

func init() {
	register(Experiment{
		ID:    "A4",
		Paper: "Ablation (§2/§5.1): PHT interference with and without classification-based filtering",
		Run:   runInterferenceAblation,
	})
}

// runInterferenceAblation measures gshare PHT aliasing twice per input:
// once fed the whole branch stream (the monolithic predictor's life), and
// once fed only the branches the transition classification would actually
// leave in the shared table (everything except static/bias-table traffic).
// The filtered configuration shows both less aliasing and a lower miss
// rate on the very same hard branches — the §5.1 resource argument.
func runInterferenceAblation(c *Context, w io.Writer) error {
	suite := c.Suite()

	type accum struct {
		alias      bpred.AliasStats
		hardMisses int64
		hardEvents int64
	}
	var full, filtered accum

	for _, in := range suite.Inputs {
		// Which branches stay in the shared table under classification?
		stays := make(map[uint64]bool, len(in.Classes))
		for pc, jc := range in.Classes {
			adv := core.Advise(jc)
			stays[pc] = adv == core.AdviseLongHistory || adv == core.AdviseNonPredictive
		}

		// Both cases score the SAME population — the hard branches that
		// remain in the shared table — so the miss-rate column isolates
		// what the easy branches' presence costs them.
		runCase := func(filterEasy bool, acc *accum) {
			g := bpred.NewGShare(bpred.GAsPHTBits, 12)
			tr := bpred.NewAliasTracker(bpred.GAsPHTBits)
			sink := trace.SinkFunc(func(pc uint64, taken bool) {
				if filterEasy && !stays[pc] {
					return
				}
				if stays[pc] {
					if g.Predict(pc) != taken {
						acc.hardMisses++
					}
					acc.hardEvents++
				}
				tr.Observe(g.Index(pc), pc, taken)
				g.Update(pc, taken)
			})
			in.Replay(sink, c.Cfg.Scale)
			s := tr.Stats()
			acc.alias.Updates += s.Updates
			acc.alias.Aliased += s.Aliased
			acc.alias.Destructive += s.Destructive
		}
		runCase(false, &full)
		runCase(true, &filtered)
	}

	tbl := report.Table{
		Title:   "A4 — gshare(17,k=12) PHT interference, all branches vs classification-filtered",
		Headers: []string{"configuration", "PHT updates", "aliased", "destructive", "hard-branch miss rate"},
	}
	tbl.AddRow("all branches in PHT",
		fmt.Sprintf("%d", full.alias.Updates),
		report.Percent(full.alias.AliasedRate()),
		report.Percent(full.alias.DestructiveRate()),
		report.Rate(stats.Ratio(float64(full.hardMisses), float64(full.hardEvents))))
	tbl.AddRow("easy branches filtered out (§5.1)",
		fmt.Sprintf("%d", filtered.alias.Updates),
		report.Percent(filtered.alias.AliasedRate()),
		report.Percent(filtered.alias.DestructiveRate()),
		report.Rate(stats.Ratio(float64(filtered.hardMisses), float64(filtered.hardEvents))))
	if err := tbl.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w,
		"\nboth rows score the same hard-branch population (%d dynamic branches);\n"+
			"the difference is what the easy branches' table pressure costs them.\n",
		full.hardEvents)
	return err
}
