package experiments

import (
	"bytes"
	"strings"
	"testing"

	"btr/internal/sim"
	"btr/internal/workload"
)

// smallContext builds a context over a reduced suite so every experiment
// can run in test time. The suite keeps at least one input per benchmark
// so per-benchmark artifacts (T1, F15) have all their rows.
func smallContext() *Context {
	var specs []workload.Spec
	seen := map[string]int{}
	for _, s := range workload.Suite() {
		if seen[s.Bench] < 2 {
			seen[s.Bench]++
			specs = append(specs, s)
		}
	}
	return &Context{Cfg: sim.Config{Scale: 0.002, Workers: 2}, Specs: specs}
}

func TestRegistryComplete(t *testing.T) {
	all := All()
	want := []string{
		"T1", "T2", "S1",
		"F1", "F2", "F3", "F4", "F5", "F6", "F7", "F8",
		"F9", "F10", "F11", "F12", "F13", "F14", "F15",
		"A1", "A2", "A3", "A4", "A5", "X1",
	}
	have := map[string]bool{}
	for _, e := range all {
		if have[e.ID] {
			t.Fatalf("duplicate experiment id %s", e.ID)
		}
		have[e.ID] = true
		if e.Paper == "" || e.Run == nil {
			t.Fatalf("experiment %s incomplete", e.ID)
		}
	}
	for _, id := range want {
		if !have[id] {
			t.Fatalf("missing experiment %s", id)
		}
	}
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(want))
	}
}

func TestFind(t *testing.T) {
	if _, err := Find("T2"); err != nil {
		t.Fatal(err)
	}
	if _, err := Find("nope"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestEveryExperimentRuns(t *testing.T) {
	ctx := smallContext()
	keywords := map[string]string{
		"T1":  "Benchmarks",
		"T2":  "joint class",
		"S1":  "coverage",
		"F1":  "taken rate class",
		"F2":  "transition rate class",
		"F3":  "Miss rates by taken",
		"F4":  "Miss rates by transition",
		"F5":  "PAs",
		"F6":  "PAs",
		"F7":  "GAs",
		"F8":  "GAs",
		"F9":  "tac",
		"F10": "trc",
		"F11": "tac",
		"F12": "trc",
		"F13": "joint-class",
		"F14": "joint-class",
		"F15": "distance",
		"A1":  "hybrid",
		"A2":  "Confidence",
		"A3":  "Optimal history",
		"A4":  "interference",
		"A5":  "implicit",
		"X1":  "per-benchmark",
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(ctx, &buf); err != nil {
				t.Fatalf("%s failed: %v", e.ID, err)
			}
			out := buf.String()
			if len(out) < 40 {
				t.Fatalf("%s output suspiciously short:\n%s", e.ID, out)
			}
			if kw := keywords[e.ID]; kw != "" && !strings.Contains(strings.ToLower(out), strings.ToLower(kw)) {
				t.Fatalf("%s output missing keyword %q:\n%s", e.ID, kw, out)
			}
		})
	}
}

func TestSuiteSharedAcrossExperiments(t *testing.T) {
	ctx := smallContext()
	s1 := ctx.Suite()
	s2 := ctx.Suite()
	if s1 != s2 {
		t.Fatal("Suite() must compute once and share")
	}
}

func TestTable1RowsMatchSpecs(t *testing.T) {
	ctx := smallContext()
	var buf bytes.Buffer
	if err := runTable1(ctx, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, spec := range ctx.Specs {
		if !strings.Contains(out, spec.Input) {
			t.Fatalf("T1 missing row for %s:\n%s", spec.Name(), out)
		}
	}
	if !strings.Contains(out, "total") {
		t.Fatal("T1 missing total row")
	}
}

func TestTable2HasTotalsAndMarks(t *testing.T) {
	ctx := smallContext()
	var buf bytes.Buffer
	if err := runTable2(ctx, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Total") {
		t.Fatal("T2 missing totals")
	}
	if !strings.Contains(out, "misclassified mass") {
		t.Fatal("T2 missing misclassified summary")
	}
}

func TestCoverageOrdering(t *testing.T) {
	// The reproduction's headline: transition coverage > taken coverage.
	ctx := smallContext()
	var buf bytes.Buffer
	if err := runCoverage(ctx, &buf); err != nil {
		t.Fatal(err)
	}
	suite := ctx.Suite()
	d := &suite.Distribution
	taken := d.CoverageTaken(0, 10)
	transGAs := d.CoverageTransition(0, 1)
	transPAs := d.CoverageTransition(0, 1, 9, 10)
	if !(transPAs >= transGAs && transGAs > taken) {
		t.Fatalf("coverage ordering broken: taken=%.3f gas=%.3f pas=%.3f",
			taken, transGAs, transPAs)
	}
}
