package experiments

import (
	"reflect"
	"sync/atomic"
	"testing"

	"btr/internal/rng"
	"btr/internal/sim"
	"btr/internal/trace"
	"btr/internal/workload"
)

// countingSpecs builds a tiny deterministic suite whose generator runs
// are observable through the returned counter.
func countingSpecs(runs *atomic.Int64) []workload.Spec {
	gen := func(t *workload.T, r *rng.Rand, target int64) {
		runs.Add(1)
		for t.N() < target {
			t.B(0, r.Uint64()&3 != 0)
			t.B(1, t.N()&1 == 0)
		}
	}
	return []workload.Spec{
		workload.NewSpec("synthA", "in", 2000, 11, gen),
		workload.NewSpec("synthB", "in", 3000, 23, gen),
	}
}

// TestSecondContextHitsCache is the cross-context reuse guarantee: a
// second context with matching (scale, chunk) config performs ZERO
// generator runs — every input replays the first context's recording.
func TestSecondContextHitsCache(t *testing.T) {
	var runs atomic.Int64
	specs := countingSpecs(&runs)
	cache := trace.NewCache(0, "", 0)
	cfg := sim.Config{Scale: 1, Workers: 2, Cache: cache}

	ctx1 := &Context{Cfg: cfg, Specs: specs}
	first := ctx1.Suite()
	if got := runs.Load(); got != int64(len(specs)) {
		t.Fatalf("first context ran generators %d times, want %d", got, len(specs))
	}

	ctx2 := &Context{Cfg: cfg, Specs: specs}
	second := ctx2.Suite()
	if got := runs.Load(); got != int64(len(specs)) {
		t.Fatalf("second context ran generators: %d total runs, want %d", got, len(specs))
	}
	if s := cache.Stats(); s.Hits < int64(len(specs)) {
		t.Fatalf("cache stats %+v: want >= %d hits", s, len(specs))
	}
	// Replayed-from-cache results must equal generated results.
	if first.Exec != second.Exec || first.Miss != second.Miss {
		t.Fatal("cache-served suite diverged from generated suite")
	}

	// A context at a different scale must not share those recordings.
	other := cfg
	other.Scale = 0.5
	(&Context{Cfg: other, Specs: specs}).Suite()
	if got := runs.Load(); got != int64(2*len(specs)) {
		t.Fatalf("mismatched scale reused recordings: %d runs, want %d", got, 2*len(specs))
	}
}

// TestSecondContextSkipsProfilingReplay is the pass-1 reuse guarantee
// layered above the trace cache: with a profile cache wired in, a
// second matching context performs zero pass-1 work — no generator runs
// and no profiling replay either; every input is a profile-cache hit
// whose recording comes back from the trace cache (which stays the
// recording's only owner, so its LRU budget still governs memory) —
// while producing identical results. Spelling the config's defaults
// differently (Scale 0 vs 1) must not defeat the reuse: both caches
// normalise their keys.
func TestSecondContextSkipsProfilingReplay(t *testing.T) {
	var runs atomic.Int64
	specs := countingSpecs(&runs)
	traces := trace.NewCache(0, "", 0)
	profiles := sim.NewProfileCache()
	cfg := sim.Config{Scale: 1, Workers: 2, Cache: traces, Profiles: profiles}

	first := (&Context{Cfg: cfg, Specs: specs}).Suite()
	ps := profiles.Stats()
	if ps.Hits != 0 || ps.Misses != int64(len(specs)) {
		t.Fatalf("first context profile stats %+v: want 0 hits, %d misses", ps, len(specs))
	}

	second := (&Context{Cfg: cfg, Specs: specs}).Suite()
	if got := runs.Load(); got != int64(len(specs)) {
		t.Fatalf("second context ran generators: %d total runs, want %d", got, len(specs))
	}
	ps = profiles.Stats()
	if ps.Hits != int64(len(specs)) {
		t.Fatalf("second context profile stats %+v: want %d hits (zero profiling replays)", ps, len(specs))
	}
	if first.Exec != second.Exec || first.Miss != second.Miss {
		t.Fatal("profile-cache-served suite diverged from computed suite")
	}
	if !reflect.DeepEqual(first.Distribution, second.Distribution) {
		t.Fatal("profile-cache-served distribution diverged")
	}

	// Scale 0 normalises to 1: a third context spelling the default
	// differently must reuse both caches, not recompute pass 1.
	aliased := cfg
	aliased.Scale = 0
	(&Context{Cfg: aliased, Specs: specs}).Suite()
	if got := runs.Load(); got != int64(len(specs)) {
		t.Fatalf("scale-0 context ran generators: %d total runs, want %d", got, len(specs))
	}
	if ps := profiles.Stats(); ps.Hits != int64(2*len(specs)) {
		t.Fatalf("scale-0 context profile stats %+v: want %d hits", ps, 2*len(specs))
	}

	// A different hard-distance window shapes the cached histogram, so
	// it must key separately: the run must miss the profile cache (the
	// recording itself still comes from the trace cache — no generator
	// runs) and produce correctly sized bins, not a foreign histogram.
	windowed := cfg
	windowed.HardDistanceWindow = 3
	wsuite := (&Context{Cfg: windowed, Specs: specs}).Suite()
	if got := runs.Load(); got != int64(len(specs)) {
		t.Fatalf("windowed context ran generators: %d total runs, want %d", got, len(specs))
	}
	if ps := profiles.Stats(); ps.Hits != int64(2*len(specs)) {
		t.Fatalf("windowed context hit the profile cache (%+v): different windows must not share entries", ps)
	}
	for _, r := range wsuite.Inputs {
		if got := len(r.HardDistances.Bins); got != 4 {
			t.Fatalf("windowed context histogram has %d bins, want 4", got)
		}
	}
}

// TestNewContextDefaultsToSharedCache pins that contexts built through
// NewContext participate in the process-wide caches (unless recording
// is off or private caches are supplied).
func TestNewContextDefaultsToSharedCache(t *testing.T) {
	c1 := NewContext(sim.Config{Scale: 0.01})
	c2 := NewContext(sim.Config{Scale: 0.01})
	if c1.Cfg.Cache == nil || c1.Cfg.Cache != c2.Cfg.Cache {
		t.Fatal("contexts must share the process-wide cache by default")
	}
	if c1.Cfg.Profiles == nil || c1.Cfg.Profiles != c2.Cfg.Profiles {
		t.Fatal("contexts must share the process-wide profile cache by default")
	}
	if noRec := NewContext(sim.Config{NoRecord: true}); noRec.Cfg.Cache != nil || noRec.Cfg.Profiles != nil {
		t.Fatal("NoRecord context must not get caches")
	}
	private := trace.NewCache(0, "", 0)
	if NewContext(sim.Config{Cache: private}).Cfg.Cache != private {
		t.Fatal("explicit cache must be kept")
	}
	privateProf := sim.NewProfileCache()
	if NewContext(sim.Config{Profiles: privateProf}).Cfg.Profiles != privateProf {
		t.Fatal("explicit profile cache must be kept")
	}
}
