package experiments

import (
	"sync/atomic"
	"testing"

	"btr/internal/rng"
	"btr/internal/sim"
	"btr/internal/trace"
	"btr/internal/workload"
)

// countingSpecs builds a tiny deterministic suite whose generator runs
// are observable through the returned counter.
func countingSpecs(runs *atomic.Int64) []workload.Spec {
	gen := func(t *workload.T, r *rng.Rand, target int64) {
		runs.Add(1)
		for t.N() < target {
			t.B(0, r.Uint64()&3 != 0)
			t.B(1, t.N()&1 == 0)
		}
	}
	return []workload.Spec{
		workload.NewSpec("synthA", "in", 2000, 11, gen),
		workload.NewSpec("synthB", "in", 3000, 23, gen),
	}
}

// TestSecondContextHitsCache is the cross-context reuse guarantee: a
// second context with matching (scale, chunk) config performs ZERO
// generator runs — every input replays the first context's recording.
func TestSecondContextHitsCache(t *testing.T) {
	var runs atomic.Int64
	specs := countingSpecs(&runs)
	cache := trace.NewCache(0, "")
	cfg := sim.Config{Scale: 1, Workers: 2, Cache: cache}

	ctx1 := &Context{Cfg: cfg, Specs: specs}
	first := ctx1.Suite()
	if got := runs.Load(); got != int64(len(specs)) {
		t.Fatalf("first context ran generators %d times, want %d", got, len(specs))
	}

	ctx2 := &Context{Cfg: cfg, Specs: specs}
	second := ctx2.Suite()
	if got := runs.Load(); got != int64(len(specs)) {
		t.Fatalf("second context ran generators: %d total runs, want %d", got, len(specs))
	}
	if s := cache.Stats(); s.Hits < int64(len(specs)) {
		t.Fatalf("cache stats %+v: want >= %d hits", s, len(specs))
	}
	// Replayed-from-cache results must equal generated results.
	if first.Exec != second.Exec || first.Miss != second.Miss {
		t.Fatal("cache-served suite diverged from generated suite")
	}

	// A context at a different scale must not share those recordings.
	other := cfg
	other.Scale = 0.5
	(&Context{Cfg: other, Specs: specs}).Suite()
	if got := runs.Load(); got != int64(2*len(specs)) {
		t.Fatalf("mismatched scale reused recordings: %d runs, want %d", got, 2*len(specs))
	}
}

// TestNewContextDefaultsToSharedCache pins that contexts built through
// NewContext participate in the process-wide cache (unless recording is
// off or a private cache is supplied).
func TestNewContextDefaultsToSharedCache(t *testing.T) {
	c1 := NewContext(sim.Config{Scale: 0.01})
	c2 := NewContext(sim.Config{Scale: 0.01})
	if c1.Cfg.Cache == nil || c1.Cfg.Cache != c2.Cfg.Cache {
		t.Fatal("contexts must share the process-wide cache by default")
	}
	if NewContext(sim.Config{NoRecord: true}).Cfg.Cache != nil {
		t.Fatal("NoRecord context must not get a cache")
	}
	private := trace.NewCache(0, "")
	if NewContext(sim.Config{Cache: private}).Cfg.Cache != private {
		t.Fatal("explicit cache must be kept")
	}
}
