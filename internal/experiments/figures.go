package experiments

import (
	"fmt"
	"io"

	"btr/internal/core"
	"btr/internal/report"
	"btr/internal/sim"
)

func init() {
	register(Experiment{ID: "F1", Paper: "Figure 1: percent of dynamic branches per taken rate class", Run: runFig1})
	register(Experiment{ID: "F2", Paper: "Figure 2: percent of dynamic branches per transition rate class", Run: runFig2})
	register(Experiment{ID: "F3", Paper: "Figure 3: miss rates by taken rate class (optimal history per class)", Run: runFig3})
	register(Experiment{ID: "F4", Paper: "Figure 4: miss rates by transition rate class (optimal history per class)", Run: runFig4})
	register(Experiment{ID: "F5", Paper: "Figure 5: PAs miss rates by taken rate class and history length", Run: heatmapFig(sim.KindPAs, true, "Figure 5 — PAs miss rates, taken rate class x history length")})
	register(Experiment{ID: "F6", Paper: "Figure 6: PAs miss rates by transition rate class and history length", Run: heatmapFig(sim.KindPAs, false, "Figure 6 — PAs miss rates, transition rate class x history length")})
	register(Experiment{ID: "F7", Paper: "Figure 7: GAs miss rates by taken rate class and history length", Run: heatmapFig(sim.KindGAs, true, "Figure 7 — GAs miss rates, taken rate class x history length")})
	register(Experiment{ID: "F8", Paper: "Figure 8: GAs miss rates by transition rate class and history length", Run: heatmapFig(sim.KindGAs, false, "Figure 8 — GAs miss rates, transition rate class x history length")})
	register(Experiment{ID: "F9", Paper: "Figure 9: PAs miss rates by history length for taken classes 0,1,9,10", Run: lineFig(sim.KindPAs, true, "Figure 9 — PAs by history length, taken classes 0,1,9,10", "tac")})
	register(Experiment{ID: "F10", Paper: "Figure 10: PAs miss rates by history length for transition classes 0,1,9,10", Run: lineFig(sim.KindPAs, false, "Figure 10 — PAs by history length, transition classes 0,1,9,10", "trc")})
	register(Experiment{ID: "F11", Paper: "Figure 11: GAs miss rates by history length for taken classes 0,1,9,10", Run: lineFig(sim.KindGAs, true, "Figure 11 — GAs by history length, taken classes 0,1,9,10", "tac")})
	register(Experiment{ID: "F12", Paper: "Figure 12: GAs miss rates by history length for transition classes 0,1,9,10", Run: lineFig(sim.KindGAs, false, "Figure 12 — GAs by history length, transition classes 0,1,9,10", "trc")})
	register(Experiment{ID: "F13", Paper: "Figure 13: PAs miss rates for each joint class (optimal history per class)", Run: jointFig(sim.KindPAs, "Figure 13 — PAs joint-class miss rates (optimal history per cell)")})
	register(Experiment{ID: "F14", Paper: "Figure 14: GAs miss rates for each joint class (optimal history per class)", Run: jointFig(sim.KindGAs, "Figure 14 — GAs joint-class miss rates (optimal history per cell)")})
	register(Experiment{ID: "F15", Paper: "Figure 15: relative distance distribution of class 5/5 branches", Run: runFig15})
}

func classNames() []string {
	names := make([]string, core.NumClasses)
	for i := range names {
		names[i] = fmt.Sprintf("%d", i)
	}
	return names
}

func runFig1(c *Context, w io.Writer) error {
	suite := c.Suite()
	marg := suite.Distribution.TakenMarginal()
	return marginalTable(w, "Figure 1 — Percent of dynamic branches per taken rate class", "taken class", marg[:])
}

func runFig2(c *Context, w io.Writer) error {
	suite := c.Suite()
	marg := suite.Distribution.TransitionMarginal()
	return marginalTable(w, "Figure 2 — Percent of dynamic branches per transition rate class", "transition class", marg[:])
}

func marginalTable(w io.Writer, title, label string, marg []float64) error {
	tbl := report.Table{Title: title, Headers: []string{label, "percent of dynamic branches"}}
	for i, v := range marg {
		tbl.AddRow(fmt.Sprintf("%d", i), report.Percent(v))
	}
	if err := tbl.Render(w); err != nil {
		return err
	}
	// bar sketch
	for i, v := range marg {
		n := int(v * 100)
		if n > 70 {
			n = 70
		}
		if _, err := fmt.Fprintf(w, "%2d |%s %s\n", i, barOf(n), report.Percent(v)); err != nil {
			return err
		}
	}
	return nil
}

func barOf(n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = '#'
	}
	return string(b)
}

func runFig3(c *Context, w io.Writer) error {
	return optimalFig(c, w, true, "Figure 3 — Miss rates by taken rate class, optimal history length per class")
}

func runFig4(c *Context, w io.Writer) error {
	return optimalFig(c, w, false, "Figure 4 — Miss rates by transition rate class, optimal history length per class")
}

func optimalFig(c *Context, w io.Writer, taken bool, title string) error {
	suite := c.Suite()
	var pasKs, gasKs [core.NumClasses]int
	var pasRates, gasRates [core.NumClasses]float64
	if taken {
		pasKs, pasRates = suite.OptimalHistoryTaken(sim.KindPAs)
		gasKs, gasRates = suite.OptimalHistoryTaken(sim.KindGAs)
	} else {
		pasKs, pasRates = suite.OptimalHistoryTransition(sim.KindPAs)
		gasKs, gasRates = suite.OptimalHistoryTransition(sim.KindGAs)
	}
	tbl := report.Table{Title: title,
		Headers: []string{"class", "pas miss", "pas k*", "gas miss", "gas k*"}}
	for cl := 0; cl < core.NumClasses; cl++ {
		tbl.AddRow(fmt.Sprintf("%d", cl),
			report.Rate(pasRates[cl]), fmt.Sprintf("%d", pasKs[cl]),
			report.Rate(gasRates[cl]), fmt.Sprintf("%d", gasKs[cl]))
	}
	return tbl.Render(w)
}

// heatmapFig renders one of Figures 5-8: class (cols) x history length
// (rows), for one predictor kind and one metric axis.
func heatmapFig(kind sim.Kind, taken bool, title string) func(*Context, io.Writer) error {
	return func(c *Context, w io.Writer) error {
		suite := c.Suite()
		values := make([][]float64, sim.NumHistories)
		rowNames := make([]string, sim.NumHistories)
		for k := 0; k < sim.NumHistories; k++ {
			var rates [core.NumClasses]float64
			if taken {
				rates = suite.MissRateByTaken(kind, k)
			} else {
				rates = suite.MissRateByTransition(kind, k)
			}
			values[k] = append([]float64(nil), rates[:]...)
			rowNames[k] = fmt.Sprintf("%d", k)
		}
		colLabel := "taken rate class"
		if !taken {
			colLabel = "transition rate class"
		}
		hm := report.Heatmap{
			Title:    title,
			RowLabel: "branch history length",
			ColLabel: colLabel,
			RowNames: rowNames,
			ColNames: classNames(),
			Values:   values,
			Lo:       0, Hi: 0.5, // the paper's colormaps clamp at 0.5+
			Annotate: true,
		}
		return hm.Render(w)
	}
}

// lineFig renders one of Figures 9-12: curves for classes 0, 1, 9, 10.
func lineFig(kind sim.Kind, taken bool, title, prefix string) func(*Context, io.Writer) error {
	return func(c *Context, w io.Writer) error {
		suite := c.Suite()
		classes := []core.Class{0, 1, 9, 10}
		xs := make([]int, sim.NumHistories)
		for k := range xs {
			xs[k] = k
		}
		ls := report.LineSeries{Title: title, XLabel: "history", XVals: xs}
		for _, cl := range classes {
			var curve []float64
			if taken {
				curve = suite.HistoryCurveTaken(kind, cl)
			} else {
				curve = suite.HistoryCurveTransition(kind, cl)
			}
			ls.Names = append(ls.Names, fmt.Sprintf("%s %d", prefix, cl))
			ls.Series = append(ls.Series, curve)
		}
		return ls.Render(w)
	}
}

// jointFig renders Figure 13 or 14: the 11x11 joint-class miss-rate map
// with each cell at its own optimal history length.
func jointFig(kind sim.Kind, title string) func(*Context, io.Writer) error {
	return func(c *Context, w io.Writer) error {
		suite := c.Suite()
		rates, ks := suite.OptimalJoint(kind)
		values := make([][]float64, core.NumClasses)
		rowNames := make([]string, core.NumClasses)
		for tr := 0; tr < core.NumClasses; tr++ {
			row := make([]float64, core.NumClasses)
			for t := 0; t < core.NumClasses; t++ {
				row[t] = rates[t][tr]
			}
			values[tr] = row
			rowNames[tr] = fmt.Sprintf("%d", tr)
		}
		hm := report.Heatmap{
			Title:    title,
			RowLabel: "transition rate class",
			ColLabel: "taken rate class",
			RowNames: rowNames,
			ColNames: classNames(),
			Values:   values,
			Lo:       0, Hi: 0.45,
			Annotate: true,
		}
		if err := hm.Render(w); err != nil {
			return err
		}
		hard := rates[5][5]
		if _, err := fmt.Fprintf(w, "\n5/5 cell miss rate: %s (paper: worst cell, near 50%%), chosen k=%d\n",
			report.Rate(hard), ks[5][5]); err != nil {
			return err
		}
		return nil
	}
}

func runFig15(c *Context, w io.Writer) error {
	suite := c.Suite()
	window := 8
	tbl := report.Table{
		Title: "Figure 15 — Relative distance distribution of class 5/5 branches " +
			"(percent of 5/5 occurrences at each dynamic-branch distance from the previous one)",
	}
	tbl.Headers = []string{"benchmark"}
	for d := 1; d < window; d++ {
		tbl.Headers = append(tbl.Headers, fmt.Sprintf("%d", d))
	}
	tbl.Headers = append(tbl.Headers, fmt.Sprintf("%d+", window))
	for _, bench := range suite.Benchmarks() {
		h := suite.HardByBench[bench]
		if h == nil || h.Total() == 0 {
			tbl.AddRow(append([]string{bench}, make([]string, window)...)...)
			continue
		}
		fr := h.Fractions()
		row := []string{bench}
		for d := 1; d <= window && d < len(fr); d++ {
			row = append(row, report.Percent(fr[d]))
		}
		tbl.AddRow(row...)
	}
	return tbl.Render(w)
}
