package experiments

import (
	"fmt"
	"io"

	"btr/internal/bpred"
	"btr/internal/conf"
	"btr/internal/core"
	"btr/internal/report"
	"btr/internal/sim"
	"btr/internal/stats"
	"btr/internal/trace"
)

func init() {
	register(Experiment{
		ID:    "A1",
		Paper: "Ablation (§5.4): classification-guided hybrids vs monolithic predictors at ~32KB",
		Run:   runHybridAblation,
	})
	register(Experiment{
		ID:    "A2",
		Paper: "Ablation (§5.3): class-derived confidence vs Jacobsen dynamic estimators",
		Run:   runConfidenceAblation,
	})
	register(Experiment{
		ID:    "A3",
		Paper: "Ablation (§5.1): optimal history length per class and per joint cell",
		Run:   runOptimalHistoryAblation,
	})
	register(Experiment{
		ID:    "A5",
		Paper: "Ablation (§2): implicit classification (Bi-Mode/YAGS/Filter/gskew) vs explicit taken/transition classification",
		Run:   runImplicitClassificationAblation,
	})
}

// runImplicitClassificationAblation compares the interference-reducing
// predictors the paper surveys in §2 — each an *implicit* classification
// scheme — against the explicit profile-guided hybrids, at comparable
// budgets. The paper's argument: these predictors all smuggle in a bias
// or transition signal; classifying openly does at least as well and
// yields reusable information (advice, confidence, history lengths).
func runImplicitClassificationAblation(c *Context, w io.Writer) error {
	type row struct {
		name  string
		build func(in *sim.InputResult) bpred.Predictor
	}
	rows := []row{
		{"TransitionHybrid (explicit)", func(in *sim.InputResult) bpred.Predictor {
			return bpred.NewTransitionHybrid(in.Classes, in.Profiles, bpred.HybridComponents{})
		}},
		{"BiMode(16,k=12)", func(in *sim.InputResult) bpred.Predictor {
			return bpred.NewBiMode(16, 15, 12)
		}},
		{"YAGS(16,k=12)", func(in *sim.InputResult) bpred.Predictor {
			return bpred.NewYAGS(16, 14, 8, 12)
		}},
		{"Filter(32)+gshare(16,k=12)", func(in *sim.InputResult) bpred.Predictor {
			return bpred.NewFilter(14, 32, bpred.NewGShare(16, 12))
		}},
		{"gskew(16,k=12)", func(in *sim.InputResult) bpred.Predictor {
			return bpred.NewGSkew(16, 12)
		}},
		{"gshare(17,k=12) (no scheme)", func(in *sim.InputResult) bpred.Predictor {
			return bpred.NewGShare(bpred.GAsPHTBits, 12)
		}},
	}
	tbl := report.Table{
		Title:   "A5 — Implicit vs explicit classification (suite miss rate)",
		Headers: []string{"predictor", "miss rate", "state bits"},
	}
	for _, r := range rows {
		miss, size := runPredictorOverSuite(c, r.build)
		tbl.AddRow(r.name, report.Rate(miss), fmt.Sprintf("%d", size))
	}
	if err := tbl.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w, "\nBi-Mode/YAGS/Filter/gskew reduce interference via implicit bias or")
	if err == nil {
		_, err = fmt.Fprintln(w, "transition signals (§2); the explicit hybrid uses the same information openly.")
	}
	return err
}

// runPredictorOverSuite replays every input through a freshly-built
// predictor (built per input from its profile/classes) and returns the
// aggregate miss rate and budget of the last-built instance.
func runPredictorOverSuite(c *Context, build func(in *sim.InputResult) bpred.Predictor) (missRate float64, sizeBits int64) {
	suite := c.Suite()
	var misses, events int64
	for _, in := range suite.Inputs {
		p := build(in)
		sizeBits = p.SizeBits()
		sink := bpred.NewSink(p)
		in.Replay(sink, c.Cfg.Scale)
		misses += sink.Res.Misses
		events += sink.Res.Events
	}
	return stats.Ratio(float64(misses), float64(events)), sizeBits
}

func runHybridAblation(c *Context, w io.Writer) error {
	type row struct {
		name  string
		build func(in *sim.InputResult) bpred.Predictor
	}
	rows := []row{
		{"TransitionHybrid (§5.4)", func(in *sim.InputResult) bpred.Predictor {
			return bpred.NewTransitionHybrid(in.Classes, in.Profiles, bpred.HybridComponents{})
		}},
		{"TakenHybrid (Chang)", func(in *sim.InputResult) bpred.Predictor {
			return bpred.NewTakenHybrid(in.Classes, in.Profiles, bpred.HybridComponents{})
		}},
		{"DynamicClassHybrid (§6)", func(in *sim.InputResult) bpred.Predictor {
			return bpred.NewDynamicClassHybrid(13, 64, bpred.HybridComponents{})
		}},
		{"gshare(17,k=12)", func(in *sim.InputResult) bpred.Predictor {
			return bpred.NewGShare(bpred.GAsPHTBits, 12)
		}},
		{"PAs(k=8)", func(in *sim.InputResult) bpred.Predictor {
			return bpred.NewPAs(8)
		}},
		{"GAs(k=10)", func(in *sim.InputResult) bpred.Predictor {
			return bpred.NewGAs(10)
		}},
		{"Bimodal(17)", func(in *sim.InputResult) bpred.Predictor {
			return bpred.NewBimodal(bpred.GAsPHTBits)
		}},
		{"Agree(17,k=10)", func(in *sim.InputResult) bpred.Predictor {
			return bpred.NewAgree(bpred.GAsPHTBits, 10, 14)
		}},
		{"Tournament(PAs8,gshare10)", func(in *sim.InputResult) bpred.Predictor {
			return bpred.NewTournament("Tournament(PAs8,gshare10)",
				bpred.NewPAs(8), bpred.NewGShare(16, 10), 12)
		}},
		{"StaticBias(profile)", func(in *sim.InputResult) bpred.Predictor {
			bias := make(map[uint64]bool, len(in.Profiles))
			for pc, p := range in.Profiles {
				bias[pc] = p.TakenRate() >= 0.5
			}
			return bpred.NewStaticBias(bias)
		}},
		{"LastTime(17)", func(in *sim.InputResult) bpred.Predictor {
			return bpred.NewLastTime(bpred.GAsPHTBits)
		}},
	}
	tbl := report.Table{
		Title:   "A1 — Classification-guided hybrids vs monolithic predictors (suite miss rate)",
		Headers: []string{"predictor", "miss rate", "state bits"},
	}
	for _, r := range rows {
		miss, size := runPredictorOverSuite(c, r.build)
		tbl.AddRow(r.name, report.Rate(miss), fmt.Sprintf("%d", size))
	}
	if err := tbl.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w, "\nexpected shape: TransitionHybrid <= TakenHybrid <= monolithic at similar budget;")
	if err == nil {
		_, err = fmt.Fprintln(w, "StaticBias and LastTime bracket the easy/hard split the classification exploits.")
	}
	return err
}

func runConfidenceAblation(c *Context, w io.Writer) error {
	suite := c.Suite()
	// Expected per-class miss rates for the static estimator come from
	// the suite's own PAs sweep at the joint-optimal history (Fig 13).
	pasJoint, _ := suite.OptimalJoint(sim.KindPAs)

	type entry struct {
		name  string
		make  func(in *sim.InputResult) conf.Estimator
		quads conf.Quadrants
	}
	entries := []*entry{
		{name: "class-static(0.08)", make: func(in *sim.InputResult) conf.Estimator {
			return conf.NewClassStatic(in.Classes, pasJoint, 0.08)
		}},
		{name: "jacobsen-1level", make: func(in *sim.InputResult) conf.Estimator {
			return conf.NewOneLevel(12, 15, 8)
		}},
		{name: "jacobsen-2level", make: func(in *sim.InputResult) conf.Estimator {
			return conf.NewTwoLevel(12, 10, 15, 8)
		}},
	}
	for _, in := range suite.Inputs {
		predictor := bpred.NewPAs(8)
		ests := make([]conf.Estimator, len(entries))
		for i, e := range entries {
			ests[i] = e.make(in)
		}
		sink := trace.SinkFunc(func(pc uint64, taken bool) {
			correct := predictor.Predict(pc) == taken
			predictor.Update(pc, taken)
			for i, est := range ests {
				entries[i].quads.Observe(est.HighConfidence(pc), correct)
				est.Update(pc, correct)
			}
		})
		in.Replay(sink, c.Cfg.Scale)
	}
	tbl := report.Table{
		Title:   "A2 — Confidence estimation over PAs(k=8) (suite-wide)",
		Headers: []string{"estimator", "SENS (misses caught)", "PVN (low-conf hit rate)", "SPEC"},
	}
	for _, e := range entries {
		tbl.AddRow(e.name,
			report.Percent(e.quads.Sensitivity()),
			report.Percent(e.quads.PredictiveValueNegative()),
			report.Percent(e.quads.Specificity()))
	}
	if err := tbl.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w, "\nthe class-static estimator needs no accuracy measurement hardware at all (§5.3).")
	return err
}

func runOptimalHistoryAblation(c *Context, w io.Writer) error {
	suite := c.Suite()
	tbl := report.Table{
		Title:   "A3 — Optimal history length per class (the policy §5.1 implies)",
		Headers: []string{"class", "pas k* (taken)", "gas k* (taken)", "pas k* (trans)", "gas k* (trans)"},
	}
	pasT, _ := suite.OptimalHistoryTaken(sim.KindPAs)
	gasT, _ := suite.OptimalHistoryTaken(sim.KindGAs)
	pasR, _ := suite.OptimalHistoryTransition(sim.KindPAs)
	gasR, _ := suite.OptimalHistoryTransition(sim.KindGAs)
	for cl := 0; cl < core.NumClasses; cl++ {
		tbl.AddRow(fmt.Sprintf("%d", cl),
			fmt.Sprintf("%d", pasT[cl]), fmt.Sprintf("%d", gasT[cl]),
			fmt.Sprintf("%d", pasR[cl]), fmt.Sprintf("%d", gasR[cl]))
	}
	if err := tbl.Render(w); err != nil {
		return err
	}
	// Advice distribution: how many dynamic branches land in each §5
	// resource class.
	var adviceWeight [4]float64
	var total float64
	for _, in := range suite.Inputs {
		for pc, jc := range in.Classes {
			p := in.Profiles[pc]
			if p == nil {
				continue
			}
			adviceWeight[core.Advise(jc)] += float64(p.Execs)
			total += float64(p.Execs)
		}
	}
	adv := report.Table{
		Title:   "Dynamic branch share per §5 resource recommendation",
		Headers: []string{"advice", "share"},
	}
	for a := core.AdviseStatic; a <= core.AdviseNonPredictive; a++ {
		adv.AddRow(a.String(), report.Percent(stats.Ratio(adviceWeight[a], total)))
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	return adv.Render(w)
}
