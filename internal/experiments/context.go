// Package experiments contains one driver per table and figure in the
// paper (T1, T2, F1-F15), the §4.2 coverage arithmetic (S1), and the §5
// ablations (A1-A3). Each driver renders its artifact from a shared
// SuiteResult so the expensive sweep runs once per process.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"btr/internal/sched"
	"btr/internal/sim"
	"btr/internal/trace"
	"btr/internal/workload"
)

// Context carries the configuration and lazily-computed suite results
// shared by every experiment.
type Context struct {
	Cfg   sim.Config
	Specs []workload.Spec

	once  sync.Once
	suite *sim.SuiteResult
}

// Shared bundles the immutable-state substrate experiment contexts
// draw on: the recorded-trace cache and its pass-1 profile sibling.
// Recordings are keyed by (workload name, spec fingerprint, scale,
// chunk size), so any two contexts over the same bundle with matching
// config — an ablation rerun, a confidence study, a second brserve
// request — replay the first run's recordings instead of running any
// generator again, and the profile cache makes that second context skip
// the profiling replay too: zero pass-1 work of any kind. Both caches
// are safe for concurrent use, so one bundle can back any number of
// concurrent sessions.
type Shared struct {
	// Traces is the recorded-trace cache (sim.Config.Cache).
	Traces *trace.Cache
	// Profiles is the classified pass-1 cache (sim.Config.Profiles).
	Profiles *sim.ProfileCache
}

// NewShared builds an explicit bundle: a trace cache bounded to
// cacheBytes of resident columns (<= 0 means trace.DefaultCacheBytes)
// spilling BTR1 files to spillDir ("" = memory only), plus a
// default-budget profile cache. Servers construct one of these and
// hand it to every session; CLIs usually go through SharedFor.
func NewShared(cacheBytes int64, spillDir string) *Shared {
	if cacheBytes <= 0 {
		cacheBytes = trace.DefaultCacheBytes
	}
	return &Shared{
		Traces:   trace.NewCache(cacheBytes, spillDir, workload.RegistryFingerprint()),
		Profiles: sim.NewProfileCache(),
	}
}

// sharedByDir memoises one bundle per spill directory. A single
// package singleton used to serve every caller regardless of cache
// directory, which silently pointed two contexts with different
// -cachedir at one memory cache (and only one of the directories);
// keying the registry by directory gives same-dir callers one shared
// in-memory instance and different-dir callers genuinely distinct
// caches.
var (
	sharedMu    sync.Mutex
	sharedByDir = make(map[string]*Shared)
)

// SharedFor returns the process-wide bundle for spillDir (building it
// with default budgets on first use). The empty string names the
// memory-only default bundle every cache-less context shares.
func SharedFor(spillDir string) *Shared {
	sharedMu.Lock()
	defer sharedMu.Unlock()
	sh := sharedByDir[spillDir]
	if sh == nil {
		sh = NewShared(0, spillDir)
		sharedByDir[spillDir] = sh
	}
	return sh
}

// NewContext builds a context over the full Table 1 suite, defaulting
// to the process-wide shared bundle (SharedFor("")).
func NewContext(cfg sim.Config) *Context {
	return NewContextShared(cfg, nil)
}

// NewContextShared builds a context over the full Table 1 suite using
// the given bundle for whichever of cfg.Cache / cfg.Profiles the config
// does not bring itself. A nil bundle selects the process default —
// except under a memory budget (cfg.MemBudget > 0), where a cache-less
// config gets a private trace cache bounded to that budget instead: the
// shared cache's default 1 GiB of resident columns would defeat the
// bound the caller just asked for, and the profile cache (whose
// attribution columns are O(trace) too) is tightened to the same
// number. An explicit bundle is used as given — its owner (a server
// applying per-request budgets over one substrate) has already chosen
// the sizes. cfg.NoRecord disables caching entirely.
func NewContextShared(cfg sim.Config, sh *Shared) *Context {
	if !cfg.NoRecord {
		if sh == nil {
			if cfg.MemBudget > 0 && cfg.Cache == nil {
				cfg.Cache = trace.NewCache(cfg.MemBudget, "", workload.RegistryFingerprint())
				if cfg.Profiles == nil {
					cfg.Profiles = sim.NewProfileCacheBytes(cfg.MemBudget)
				}
			}
			sh = SharedFor("")
		}
		if cfg.Cache == nil {
			cfg.Cache = sh.Traces
		}
		if cfg.Profiles == nil {
			cfg.Profiles = sh.Profiles
		}
	}
	return &Context{Cfg: cfg, Specs: workload.Suite()}
}

// Suite returns the shared suite result, computing it on first use.
func (c *Context) Suite() *sim.SuiteResult {
	c.once.Do(func() {
		c.suite = sim.RunSuite(c.Specs, c.Cfg)
	})
	return c.suite
}

// SuiteGroup is Suite with the first computation running as the given
// scheduler group, so the caller can cancel the suite mid-run
// (sched.Group.Cancel): brserve hands each request's group here and
// cancels it when the client disconnects or a deadline fires. Inputs
// dropped by the cancellation carry sim.ErrCanceled in
// SuiteResult.Dropped. If the suite was already computed (by Suite or
// an earlier SuiteGroup), the cached result is returned and g is
// untouched. Configs that select a pool engine (NoSched, NoRecord)
// ignore g, as sim.RunSuiteGroup does.
func (c *Context) SuiteGroup(g *sched.Group) *sim.SuiteResult {
	c.once.Do(func() {
		c.suite = sim.RunSuiteGroup(g, c.Specs, c.Cfg)
	})
	return c.suite
}

// Experiment is one reproducible artifact.
type Experiment struct {
	// ID is the index key, e.g. "T2" or "F13".
	ID string
	// Paper describes the original artifact.
	Paper string
	// Run renders the reproduction to w.
	Run func(c *Context, w io.Writer) error
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns every experiment in registration (paper) order.
func All() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	return out
}

// Find returns the experiment with the given ID (case-sensitive).
func Find(id string) (Experiment, error) {
	for _, e := range registry {
		if e.ID == id {
			return e, nil
		}
	}
	var ids []string
	for _, e := range registry {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("experiments: unknown id %q (have %v)", id, ids)
}
