// Package experiments contains one driver per table and figure in the
// paper (T1, T2, F1-F15), the §4.2 coverage arithmetic (S1), and the §5
// ablations (A1-A3). Each driver renders its artifact from a shared
// SuiteResult so the expensive sweep runs once per process.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"btr/internal/sim"
	"btr/internal/workload"
)

// Context carries the configuration and lazily-computed suite results
// shared by every experiment.
type Context struct {
	Cfg   sim.Config
	Specs []workload.Spec

	once  sync.Once
	suite *sim.SuiteResult
}

// NewContext builds a context over the full Table 1 suite.
func NewContext(cfg sim.Config) *Context {
	return &Context{Cfg: cfg, Specs: workload.Suite()}
}

// Suite returns the shared suite result, computing it on first use.
func (c *Context) Suite() *sim.SuiteResult {
	c.once.Do(func() {
		c.suite = sim.RunSuite(c.Specs, c.Cfg)
	})
	return c.suite
}

// Experiment is one reproducible artifact.
type Experiment struct {
	// ID is the index key, e.g. "T2" or "F13".
	ID string
	// Paper describes the original artifact.
	Paper string
	// Run renders the reproduction to w.
	Run func(c *Context, w io.Writer) error
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns every experiment in registration (paper) order.
func All() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	return out
}

// Find returns the experiment with the given ID (case-sensitive).
func Find(id string) (Experiment, error) {
	for _, e := range registry {
		if e.ID == id {
			return e, nil
		}
	}
	var ids []string
	for _, e := range registry {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("experiments: unknown id %q (have %v)", id, ids)
}
