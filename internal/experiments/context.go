// Package experiments contains one driver per table and figure in the
// paper (T1, T2, F1-F15), the §4.2 coverage arithmetic (S1), and the §5
// ablations (A1-A3). Each driver renders its artifact from a shared
// SuiteResult so the expensive sweep runs once per process.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"btr/internal/sim"
	"btr/internal/trace"
	"btr/internal/workload"
)

// Context carries the configuration and lazily-computed suite results
// shared by every experiment.
type Context struct {
	Cfg   sim.Config
	Specs []workload.Spec

	once  sync.Once
	suite *sim.SuiteResult
}

// sharedCache is the process-wide recorded-trace cache. Every context
// built without an explicit cache publishes and consults recordings
// here, keyed by (workload name, spec fingerprint, scale, chunk size),
// so a second context with matching config — an ablation rerun, a
// confidence study, an interference sweep — replays the first context's
// recordings instead of running any generator again. sharedProfiles is
// its pass-1 sibling: the classified per-input result (sans Miss) and
// attribution column, cached under the same keys, so that second
// context also skips the profiling replay — a matching context performs
// zero pass-1 work of any kind.
var (
	sharedCacheOnce sync.Once
	sharedCacheInst *trace.Cache
	sharedProfInst  *sim.ProfileCache
)

func sharedCache() (*trace.Cache, *sim.ProfileCache) {
	sharedCacheOnce.Do(func() {
		sharedCacheInst = trace.NewCache(trace.DefaultCacheBytes, "", workload.RegistryFingerprint())
		sharedProfInst = sim.NewProfileCache()
	})
	return sharedCacheInst, sharedProfInst
}

// NewContext builds a context over the full Table 1 suite. Unless the
// config brings its own caches (or disables recording), recordings and
// classified pass-1 results are shared with every other context in the
// process via sharedCache — except under a memory budget
// (cfg.MemBudget > 0), where a cache-less config gets a private trace
// cache bounded to that budget instead: the shared cache's default
// 1 GiB of resident columns would defeat the bound the caller just
// asked for, and the profile cache (whose attribution columns are
// O(trace) too) is tightened to the same number.
func NewContext(cfg sim.Config) *Context {
	if !cfg.NoRecord {
		if cfg.MemBudget > 0 && cfg.Cache == nil {
			cfg.Cache = trace.NewCache(cfg.MemBudget, "", workload.RegistryFingerprint())
			if cfg.Profiles == nil {
				cfg.Profiles = sim.NewProfileCacheBytes(cfg.MemBudget)
			}
		}
		traces, profiles := sharedCache()
		if cfg.Cache == nil {
			cfg.Cache = traces
		}
		if cfg.Profiles == nil {
			cfg.Profiles = profiles
		}
	}
	return &Context{Cfg: cfg, Specs: workload.Suite()}
}

// Suite returns the shared suite result, computing it on first use.
func (c *Context) Suite() *sim.SuiteResult {
	c.once.Do(func() {
		c.suite = sim.RunSuite(c.Specs, c.Cfg)
	})
	return c.suite
}

// Experiment is one reproducible artifact.
type Experiment struct {
	// ID is the index key, e.g. "T2" or "F13".
	ID string
	// Paper describes the original artifact.
	Paper string
	// Run renders the reproduction to w.
	Run func(c *Context, w io.Writer) error
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns every experiment in registration (paper) order.
func All() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	return out
}

// Find returns the experiment with the given ID (case-sensitive).
func Find(id string) (Experiment, error) {
	for _, e := range registry {
		if e.ID == id {
			return e, nil
		}
	}
	var ids []string
	for _, e := range registry {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("experiments: unknown id %q (have %v)", id, ids)
}
