package experiments

import (
	"fmt"
	"io"

	"btr/internal/core"
	"btr/internal/report"
)

func init() {
	register(Experiment{
		ID:    "T1",
		Paper: "Table 1: benchmarks, input sets and number of dynamic conditional branches analyzed",
		Run:   runTable1,
	})
	register(Experiment{
		ID:    "T2",
		Paper: "Table 2: percentage of dynamic branches in each taken/transition joint class (misclassified cells marked *)",
		Run:   runTable2,
	})
	register(Experiment{
		ID:    "S1",
		Paper: "§4.2 coverage arithmetic: taken {0,10} vs transition {0,1} (GAs) and {0,1,9,10} (PAs)",
		Run:   runCoverage,
	})
}

func runTable1(c *Context, w io.Writer) error {
	suite := c.Suite()
	tbl := report.Table{
		Title:   "Table 1 — Benchmarks, input sets and dynamic conditional branches analyzed",
		Headers: []string{"Benchmark", "Input Set", "Dynamic Branches", "Static Sites"},
	}
	for _, in := range suite.Inputs {
		tbl.AddRow(in.Spec.Bench, in.Spec.Input,
			fmt.Sprintf("%d", in.Events), fmt.Sprintf("%d", in.Sites))
	}
	tbl.AddRow("total", "", fmt.Sprintf("%d", suite.TotalEvents()), "")
	return tbl.Render(w)
}

func runTable2(c *Context, w io.Writer) error {
	suite := c.Suite()
	d := &suite.Distribution
	tbl := report.Table{
		Title: "Table 2 — Percent of dynamic branches per joint class " +
			"(rows: transition class, cols: taken class; * = misclassified as hard by taken rate alone)",
	}
	tbl.Headers = []string{"Trans\\Taken"}
	for t := 0; t < core.NumClasses; t++ {
		tbl.Headers = append(tbl.Headers, fmt.Sprintf("%d", t))
	}
	tbl.Headers = append(tbl.Headers, "Total")

	transTotals := d.TransitionMarginal()
	for tr := 0; tr < core.NumClasses; tr++ {
		row := []string{fmt.Sprintf("%d", tr)}
		for t := 0; t < core.NumClasses; t++ {
			cell := report.Percent(d.Fraction(core.Class(t), core.Class(tr)))
			jc := core.JointClass{Taken: core.Class(t), Transition: core.Class(tr)}
			if core.Misclassified(jc, true) && d.Fraction(core.Class(t), core.Class(tr)) > 0 {
				cell += "*"
			}
			row = append(row, cell)
		}
		row = append(row, report.Percent(transTotals[tr]))
		tbl.AddRow(row...)
	}
	takenTotals := d.TakenMarginal()
	totalRow := []string{"Total"}
	for t := 0; t < core.NumClasses; t++ {
		totalRow = append(totalRow, report.Percent(takenTotals[t]))
	}
	totalRow = append(totalRow, report.Percent(1.0))
	tbl.AddRow(totalRow...)
	if err := tbl.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w,
		"\nmisclassified mass (PAs view): %s  (GAs view): %s\n",
		report.Percent(d.MisclassifiedFraction(true)),
		report.Percent(d.MisclassifiedFraction(false)))
	return err
}

func runCoverage(c *Context, w io.Writer) error {
	suite := c.Suite()
	cov := core.ComputeCoverage(&suite.Distribution)
	tbl := report.Table{
		Title:   "S1 — §4.2 easy-branch coverage by classification scheme",
		Headers: []string{"Scheme", "Classes", "Coverage", "Paper"},
	}
	tbl.AddRow("taken rate (Chang et al.)", "taken {0,10}", report.Percent(cov.TakenEasy), "62.90%")
	tbl.AddRow("transition rate, GAs", "trans {0,1}", report.Percent(cov.TransitionEasyGAs), "71.62%")
	tbl.AddRow("transition rate, PAs", "trans {0,1,9,10}", report.Percent(cov.TransitionEasyPAs), "72.19%")
	tbl.AddRow("missed by taken (GAs)", "delta", report.Percent(cov.MissedGAs), "8.72%")
	tbl.AddRow("missed by taken (PAs)", "delta", report.Percent(cov.MissedPAs), "9.29%")
	if err := tbl.Render(w); err != nil {
		return err
	}
	improvement := 0.0
	if cov.TakenEasy > 0 {
		improvement = cov.MissedPAs / cov.TakenEasy
	}
	_, err := fmt.Fprintf(w,
		"\nrelative classification improvement (PAs): %s of the taken-rate coverage (paper: ~15%%)\n",
		report.Percent(improvement))
	return err
}
