package workload

import "btr/internal/rng"

// vortex: an in-memory object database standing in for SPEC95 147.vortex.
// It maintains a B-tree index over object records and runs transaction
// batches of lookups, inserts and deletes followed by periodic validation
// sweeps. Databases supply the paper's hardest population: B-tree descent
// compares on random keys sit near 50% taken *and* near 50% transition —
// the 5/5 class — while structural guards (leaf tests, splits, underflow)
// are heavily biased.

// vortex branch sites.
const (
	vsMoreTxns    = 1
	vsOpIsLookup  = 2
	vsOpIsInsert  = 3
	vsScanLess    = 4 // in-node key scan: keys[i] < key
	vsIsLeaf      = 5
	vsFound       = 6
	vsNodeFull    = 7
	vsRootSplit   = 8
	vsUnderflow   = 9
	vsBorrowLeft  = 10
	vsValidOrder  = 11
	vsValidMore   = 12
	vsChecksumOdd = 13
	vsDupKey      = 14
	vsHotKey      = 15
	vsChainWalk   = 16
	vsNodeValid   = 17 // hot-path guard: node pointer non-nil
	vsKeyCountOK  = 18 // hot-path guard: node key count within order
	vsFieldParity = 19 // record validation: data-dependent field bit
	vsFieldRange  = 20 // record validation: data-dependent range bit
	vsKeyParity   = 21 // key hashing: data-dependent key bit
	vsKeyHighBit  = 22 // key hashing: data-dependent partition bit
)

const (
	btOrder   = 8           // max children per node
	btMaxKeys = btOrder - 1 // max keys per node
	btMinKeys = btMaxKeys / 2
)

type btNode struct {
	keys     [btMaxKeys]uint32
	vals     [btMaxKeys]uint64
	children [btOrder]*btNode
	n        int
	leaf     bool
}

type btree struct {
	t    *T
	root *btNode
	size int
}

// findSlot scans the node for the first key >= key; the per-position
// compares on uniformly random keys are the 5/5 generators.
func (bt *btree) findSlot(n *btNode, key uint32) int {
	// Structural guards on the descent hot path.
	bt.t.B(vsNodeValid, n != nil)
	bt.t.B(vsKeyCountOK, n.n >= 0 && n.n <= btMaxKeys)
	i := 0
	for i < n.n && bt.t.B(vsScanLess, n.keys[i] < key) {
		i++
	}
	return i
}

func (bt *btree) lookup(key uint32) (uint64, bool) {
	n := bt.root
	for n != nil {
		i := bt.findSlot(n, key)
		if i < n.n && bt.t.B(vsFound, n.keys[i] == key) {
			return n.vals[i], true
		}
		if bt.t.B(vsIsLeaf, n.leaf) {
			return 0, false
		}
		n = n.children[i]
	}
	return 0, false
}

// insert adds key → val, splitting full nodes on the way down
// (the standard single-pass preemptive-split B-tree insert).
func (bt *btree) insert(key uint32, val uint64) {
	if bt.t.B(vsRootSplit, bt.root.n == btMaxKeys) {
		old := bt.root
		bt.root = &btNode{leaf: false}
		bt.root.children[0] = old
		bt.splitChild(bt.root, 0)
	}
	n := bt.root
	for {
		i := bt.findSlot(n, key)
		if i < n.n && bt.t.B(vsDupKey, n.keys[i] == key) {
			n.vals[i] = val // overwrite
			return
		}
		if bt.t.B(vsIsLeaf, n.leaf) {
			copy(n.keys[i+1:n.n+1], n.keys[i:n.n])
			copy(n.vals[i+1:n.n+1], n.vals[i:n.n])
			n.keys[i] = key
			n.vals[i] = val
			n.n++
			bt.size++
			return
		}
		child := n.children[i]
		if bt.t.B(vsNodeFull, child.n == btMaxKeys) {
			bt.splitChild(n, i)
			if key > n.keys[i] {
				i++
			} else if key == n.keys[i] {
				n.vals[i] = val
				return
			}
		}
		n = n.children[i]
	}
}

func (bt *btree) splitChild(parent *btNode, idx int) {
	child := parent.children[idx]
	mid := btMaxKeys / 2
	right := &btNode{leaf: child.leaf}
	right.n = btMaxKeys - mid - 1
	copy(right.keys[:], child.keys[mid+1:])
	copy(right.vals[:], child.vals[mid+1:])
	if !child.leaf {
		copy(right.children[:], child.children[mid+1:])
	}
	upKey, upVal := child.keys[mid], child.vals[mid]
	child.n = mid
	i := parent.n
	for i > idx {
		parent.keys[i] = parent.keys[i-1]
		parent.vals[i] = parent.vals[i-1]
		parent.children[i+1] = parent.children[i]
		i--
	}
	parent.keys[idx] = upKey
	parent.vals[idx] = upVal
	parent.children[idx+1] = right
	parent.n++
}

// remove deletes key if present, using lazy deletion in leaves and
// rebalance-by-borrow when a leaf underflows (a simplified but structurally
// faithful delete: the guards are what matter).
func (bt *btree) remove(key uint32) bool {
	var parent *btNode
	parentIdx := 0
	n := bt.root
	for n != nil {
		i := bt.findSlot(n, key)
		if i < n.n && n.keys[i] == key {
			if n.leaf {
				copy(n.keys[i:], n.keys[i+1:n.n])
				copy(n.vals[i:], n.vals[i+1:n.n])
				n.n--
				bt.size--
				if bt.t.B(vsUnderflow, n.n < btMinKeys && parent != nil) {
					bt.rebalance(parent, parentIdx)
				}
				return true
			}
			// Internal hit: replace with predecessor from the left
			// subtree's rightmost leaf, then delete there (walk traced).
			pred := n.children[i]
			for bt.t.B(vsChainWalk, !pred.leaf) {
				pred = pred.children[pred.n]
			}
			if pred.n == 0 {
				return false // lazily-drained leaf: abandon the delete
			}
			n.keys[i] = pred.keys[pred.n-1]
			n.vals[i] = pred.vals[pred.n-1]
			pred.n--
			bt.size--
			return true
		}
		if n.leaf {
			return false
		}
		parent, parentIdx = n, i
		n = n.children[i]
	}
	return false
}

// rebalance borrows a key from a sibling if possible.
func (bt *btree) rebalance(parent *btNode, idx int) {
	child := parent.children[idx]
	if bt.t.B(vsBorrowLeft, idx > 0 && parent.children[idx-1].n > btMinKeys) {
		left := parent.children[idx-1]
		copy(child.keys[1:child.n+1], child.keys[:child.n])
		copy(child.vals[1:child.n+1], child.vals[:child.n])
		child.keys[0] = parent.keys[idx-1]
		child.vals[0] = parent.vals[idx-1]
		child.n++
		parent.keys[idx-1] = left.keys[left.n-1]
		parent.vals[idx-1] = left.vals[left.n-1]
		left.n--
	}
	// Right-borrow and merges elided: lazy underflow is tolerated, as in
	// many production trees; validation below still passes order checks.
}

// validate walks the tree in order, checking key ordering — vortex's
// characteristic validation sweep.
func (bt *btree) validate() bool {
	prev := uint32(0)
	first := true
	ok := true
	var walk func(n *btNode)
	walk = func(n *btNode) {
		if n == nil {
			return
		}
		for i := 0; bt.t.B(vsValidMore, i < n.n); i++ {
			if !n.leaf {
				walk(n.children[i])
			}
			if !first {
				if !bt.t.B(vsValidOrder, n.keys[i] > prev) {
					ok = false
				}
			}
			first = false
			prev = n.keys[i]
		}
		if !n.leaf {
			walk(n.children[n.n])
		}
	}
	walk(bt.root)
	return ok
}

func vortexRun(t *T, r *rng.Rand, target int64) {
	bt := &btree{t: t, root: &btNode{leaf: true}}
	nextKey := uint32(1)
	var hotKeys []uint32
	txn := 0
	for t.B(vsMoreTxns, t.N() < target) {
		txn++
		for op := 0; op < 24; op++ {
			roll := r.Float64()
			var key uint32
			// 20% of accesses hit a small hot set, as in real object DBs.
			if t.B(vsHotKey, len(hotKeys) > 0 && r.Bool(0.35)) {
				key = hotKeys[r.Intn(len(hotKeys))]
			} else {
				key = uint32(r.Uint64() & 0xFFFFF)
			}
			// Key partitioning checks on every operation: the key is
			// (pseudo)random, so these are irreducibly hard branches —
			// the database population of the paper's 5/5 cell.
			t.B(vsKeyParity, key&1 == 1)
			t.B(vsKeyHighBit, (key>>9)&1 == 1)
			switch {
			case t.B(vsOpIsLookup, roll < 0.55):
				if v, hit := bt.lookup(key); hit {
					// Record validation: the stored value is a hash mix
					// of insertion order and key, so these field checks
					// are data-dependent coin flips — the hard-to-predict
					// population the paper traces to databases (§4.3).
					t.B(vsChecksumOdd, v&1 == 1)
					t.B(vsFieldParity, (v>>7)&1 == 1)
					t.B(vsFieldRange, (v>>13)&1 == 1)
				}
			case t.B(vsOpIsInsert, roll < 0.90):
				val := uint64(nextKey)*2654435761 + uint64(key)
				bt.insert(key, val)
				nextKey++
				if len(hotKeys) < 64 {
					hotKeys = append(hotKeys, key)
				}
			default:
				bt.remove(key)
			}
		}
		if txn%16 == 0 {
			bt.validate()
		}
		// Bound the tree so delete/rebalance paths stay exercised.
		if bt.size > 60000 {
			bt.root = &btNode{leaf: true}
			bt.size = 0
			hotKeys = hotKeys[:0]
		}
	}
}

func vortexSpecs() []Spec {
	return []Spec{{
		Bench:  "vortex",
		Input:  "vortex.lit",
		Target: 9897767, // paper: 9,897,766,691 /1000
		Seed:   0x40_0001,
		run:    vortexRun,
	}}
}
