package workload

import (
	"testing"

	"btr/internal/trace"
)

// evalScript parses and evaluates a script, returning the value of the
// final expression.
func evalScript(t *testing.T, script string) lval {
	t.Helper()
	tr := &T{sink: trace.SinkFunc(func(uint64, bool) {})}
	heap := newLispHeap(tr, 1<<14)
	in := &lispInterp{t: tr, heap: heap, defs: make(map[int32]lval)}
	rd := &lispReader{t: tr, heap: heap, syms: make(map[string]int32), next: symUser}
	for i, name := range []string{"if", "quote", "define", "lambda", "+", "-", "*", "<", "car", "cdr", "cons", "null?", "cons?"} {
		rd.syms[name] = int32(i)
	}
	rd.next = symUser
	var src []byte
	for _, s := range lispScripts {
		src = append(src, s...)
		src = append(src, '\n')
	}
	src = append(src, script...)
	rd.src = src
	last := lNil
	for {
		expr, ok := rd.read()
		if !ok {
			break
		}
		in.roots = append(in.roots, expr)
		last = in.eval(expr)
	}
	return last
}

func TestLispArithmetic(t *testing.T) {
	if got := evalScript(t, "(+ 2 3)"); got != mkNum(5) {
		t.Fatalf("(+ 2 3) = %v", got)
	}
	if got := evalScript(t, "(* 6 7)"); got != mkNum(42) {
		t.Fatalf("(* 6 7) = %v", got)
	}
	if got := evalScript(t, "(- 10 4)"); got != mkNum(6) {
		t.Fatalf("(- 10 4) = %v", got)
	}
}

func TestLispComparisonAndIf(t *testing.T) {
	if got := evalScript(t, "(if (< 1 2) 10 20)"); got != mkNum(10) {
		t.Fatalf("true branch: %v", got)
	}
	if got := evalScript(t, "(if (< 2 1) 10 20)"); got != mkNum(20) {
		t.Fatalf("false branch: %v", got)
	}
}

func TestLispFib(t *testing.T) {
	if got := evalScript(t, "(fib 10)"); got != mkNum(55) {
		t.Fatalf("(fib 10) = %v, want 55", got)
	}
}

func TestLispListOps(t *testing.T) {
	if got := evalScript(t, "(len (iota 10))"); got != mkNum(10) {
		t.Fatalf("(len (iota 10)) = %v", got)
	}
	if got := evalScript(t, "(summ (iota 10))"); got != mkNum(55) {
		t.Fatalf("(summ (iota 10)) = %v", got)
	}
	if got := evalScript(t, "(summ (rev (iota 10)))"); got != mkNum(55) {
		t.Fatalf("sum of reversed = %v", got)
	}
	if got := evalScript(t, "(len (app (iota 3) (iota 4)))"); got != mkNum(7) {
		t.Fatalf("append length = %v", got)
	}
}

func TestLispFiltpos(t *testing.T) {
	if got := evalScript(t, "(summ (filtpos (quote (3 -5 2 -7 10))))"); got != mkNum(15) {
		t.Fatalf("filtpos sum = %v, want 15", got)
	}
	if got := evalScript(t, "(len (filtpos (quote (-1 -2 -3))))"); got != mkNum(0) {
		t.Fatalf("all-negative filtpos length = %v", got)
	}
}

func TestLispTak(t *testing.T) {
	// tak(18,12,6) = 7 with the standard Takeuchi function.
	if got := evalScript(t, "(tak 18 12 6)"); got != mkNum(7) {
		t.Fatalf("(tak 18 12 6) = %v, want 7", got)
	}
}

func TestLispGCSurvivesPressure(t *testing.T) {
	// A heap of 256 cells with repeated allocation: the collector must
	// keep the interpreter running and the final result correct.
	tr := &T{sink: trace.SinkFunc(func(uint64, bool) {})}
	heap := newLispHeap(tr, 256)
	in := &lispInterp{t: tr, heap: heap, defs: make(map[int32]lval)}
	rd := &lispReader{t: tr, heap: heap, syms: make(map[string]int32), next: symUser}
	for i, name := range []string{"if", "quote", "define", "lambda", "+", "-", "*", "<", "car", "cdr", "cons", "null?", "cons?"} {
		rd.syms[name] = int32(i)
	}
	rd.next = symUser
	rd.src = []byte("(define (len a) (if (null? a) 0 (+ 1 (len (cdr a)))))\n" +
		"(define (iota n) (if (< n 1) (quote ()) (cons n (iota (- n 1)))))\n" +
		"(len (iota 40))")
	last := lNil
	for {
		expr, ok := rd.read()
		if !ok {
			break
		}
		in.roots = append(in.roots, expr)
		last = in.eval(expr)
	}
	if last != mkNum(40) {
		t.Fatalf("under GC pressure (len (iota 40)) = %v, want 40", last)
	}
}
