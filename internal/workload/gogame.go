package workload

import "btr/internal/rng"

// go: an alpha-beta game-tree searcher on a 5x5 stone-capture game,
// standing in for SPEC95 099.go. Game playing is the paper's canonical
// source of data-dependent, hard-to-predict branches: board-scan
// occupancy tests, liberty counting, evaluation comparisons, and the
// alpha-beta cutoff test whose outcome depends on move ordering.

const (
	goBoardN = 5
	goCells  = goBoardN * goBoardN
)

// go branch sites.
const (
	osMoreGames   = 1
	osGameOver    = 2
	osCellEmpty   = 3
	osCutoff      = 4
	osBetterMove  = 5
	osScanOwn     = 6
	osScanOpp     = 7
	osLibertyFree = 8
	osCaptured    = 9
	osDepthZero   = 10
	osOrderSwap   = 11
	osEvalLine    = 12
	osSuicide     = 13
	osKoRepeat    = 14
	osPassBoth    = 15
	osNodeLimit   = 16 // hot-path guard: search node budget not exhausted
	osClockCheck  = 17 // hot-path: periodic clock poll (1/256 taken)
	osLegalQuick  = 18 // hot-path guard: generated move lands on empty cell
	osCellBounds  = 19 // hot-path guard: scanned cell index on board
	osStoneSane   = 20 // hot-path guard: cell holds a legal stone value
	osNeighborOK  = 21 // hot-path guard: neighbour index on board
)

type goBoard struct {
	cells [goCells]int8 // 0 empty, 1 black, -1 white
	moves int
}

func (b *goBoard) neighbors(i int, out []int) []int {
	out = out[:0]
	x, y := i%goBoardN, i/goBoardN
	if x > 0 {
		out = append(out, i-1)
	}
	if x < goBoardN-1 {
		out = append(out, i+1)
	}
	if y > 0 {
		out = append(out, i-goBoardN)
	}
	if y < goBoardN-1 {
		out = append(out, i+goBoardN)
	}
	return out
}

// hasLiberty reports whether the group containing i has any adjacent
// empty cell, via flood fill.
func (b *goBoard) hasLiberty(t *T, i int, color int8) bool {
	var visited [goCells]bool
	var stack [goCells]int
	var nbuf [4]int
	sp := 0
	stack[sp] = i
	sp++
	visited[i] = true
	for sp > 0 {
		sp--
		cur := stack[sp]
		for _, n := range b.neighbors(cur, nbuf[:]) {
			t.B(osNeighborOK, n >= 0 && n < goCells)
			if t.B(osLibertyFree, b.cells[n] == 0) {
				return true
			}
			if b.cells[n] == color && !visited[n] {
				visited[n] = true
				stack[sp] = n
				sp++
			}
		}
	}
	return false
}

// place plays a stone, removing captured opposing groups; returns the
// number of captured stones, or -1 for an illegal (suicide) move.
func (b *goBoard) place(t *T, i int, color int8) int {
	b.cells[i] = color
	captured := 0
	var nbuf [4]int
	for _, n := range b.neighbors(i, nbuf[:]) {
		if b.cells[n] == -color {
			if t.B(osCaptured, !b.hasLiberty(t, n, -color)) {
				captured += b.removeGroup(n, -color)
			}
		}
	}
	if captured == 0 {
		if t.B(osSuicide, !b.hasLiberty(t, i, color)) {
			b.cells[i] = 0
			return -1
		}
	}
	b.moves++
	return captured
}

func (b *goBoard) removeGroup(i int, color int8) int {
	var stack [goCells]int
	var nbuf [4]int
	sp := 0
	stack[sp] = i
	sp++
	b.cells[i] = 0
	removed := 1
	for sp > 0 {
		sp--
		cur := stack[sp]
		for _, n := range b.neighbors(cur, nbuf[:]) {
			if b.cells[n] == color {
				b.cells[n] = 0
				removed++
				stack[sp] = n
				sp++
			}
		}
	}
	return removed
}

// evaluate scores the position for color: stones, liberties of adjacent
// lines, and simple connectivity.
func (b *goBoard) evaluate(t *T, color int8) int {
	score := 0
	var nbuf [4]int
	for i := 0; i < goCells; i++ {
		c := b.cells[i]
		// Per-cell sanity guards on the evaluator's hottest loop.
		t.B(osCellBounds, i < goCells)
		t.B(osStoneSane, c == 0 || c == 1 || c == -1)
		if t.B(osScanOwn, c == color) {
			score += 10
			for _, n := range b.neighbors(i, nbuf[:]) {
				if t.B(osEvalLine, b.cells[n] == color) {
					score += 3
				} else if b.cells[n] == 0 {
					score++
				}
			}
		} else if t.B(osScanOpp, c == -color) {
			score -= 10
		}
	}
	return score
}

type goSearcher struct {
	t     *T
	r     *rng.Rand
	board *goBoard
	nodes int
}

// alphabeta searches to the given depth for the side to move.
func (s *goSearcher) alphabeta(depth int, alpha, beta int, color int8) int {
	t := s.t
	s.nodes++
	// Engine housekeeping guards on the hottest path.
	t.B(osNodeLimit, s.nodes > 1<<30)
	t.B(osClockCheck, s.nodes&255 == 0)
	if t.B(osDepthZero, depth == 0) {
		return s.board.evaluate(t, color)
	}
	moves := s.orderedMoves(color)
	if len(moves) == 0 {
		return s.board.evaluate(t, color)
	}
	best := -1 << 30
	for _, m := range moves {
		t.B(osLegalQuick, s.board.cells[m] == 0)
		saved := *s.board
		if s.board.place(t, m, color) < 0 {
			*s.board = saved
			continue
		}
		v := -s.alphabeta(depth-1, -beta, -alpha, -color)
		*s.board = saved
		if t.B(osBetterMove, v > best) {
			best = v
		}
		if v > alpha {
			alpha = v
		}
		if t.B(osCutoff, alpha >= beta) {
			break
		}
	}
	return best
}

// orderedMoves lists empty cells, roughly ordered by a cheap heuristic
// (insertion sort on adjacency count) to make cutoffs realistic.
func (s *goSearcher) orderedMoves(color int8) []int {
	t := s.t
	var moves []int
	var keys []int
	var nbuf [4]int
	for i := 0; i < goCells; i++ {
		if t.B(osCellEmpty, s.board.cells[i] == 0) {
			key := 0
			for _, n := range s.board.neighbors(i, nbuf[:]) {
				if s.board.cells[n] != 0 {
					key++
				}
			}
			moves = append(moves, i)
			keys = append(keys, key)
		}
	}
	// insertion sort, descending by key
	for i := 1; i < len(moves); i++ {
		for j := i; j > 0; j-- {
			if t.B(osOrderSwap, keys[j] > keys[j-1]) {
				keys[j], keys[j-1] = keys[j-1], keys[j]
				moves[j], moves[j-1] = moves[j-1], moves[j]
			} else {
				break
			}
		}
	}
	return moves
}

func goRun(t *T, r *rng.Rand, target int64) {
	for t.B(osMoreGames, t.N() < target) {
		b := &goBoard{}
		s := &goSearcher{t: t, r: r, board: b}
		passes := 0
		color := int8(1)
		var prevHash uint64
		for move := 0; move < 40; move++ {
			if t.N() >= target {
				return
			}
			if t.B(osGameOver, passes >= 2) {
				break
			}
			depth := 2
			if r.Bool(0.3) {
				depth = 3
			}
			bestMove, bestV := -1, -1<<30
			for _, m := range s.orderedMoves(color) {
				saved := *b
				if b.place(t, m, color) < 0 {
					*b = saved
					continue
				}
				v := -s.alphabeta(depth-1, -1<<30, 1<<30, -color)
				*b = saved
				if v > bestV {
					bestV, bestMove = v, m
				}
				if t.N() >= target {
					break
				}
			}
			if bestMove < 0 {
				passes++
				t.B(osPassBoth, passes >= 2)
				color = -color
				continue
			}
			passes = 0
			b.place(t, bestMove, color)
			h := boardHash(b)
			t.B(osKoRepeat, h == prevHash)
			prevHash = h
			color = -color
		}
	}
}

func boardHash(b *goBoard) uint64 {
	var h uint64 = 14695981039346656037
	for _, c := range b.cells {
		h ^= uint64(uint8(c))
		h *= 1099511628211
	}
	return h
}

func goSpecs() []Spec {
	return []Spec{{
		Bench:  "go",
		Input:  "9stone21.in",
		Target: 3838575, // paper: 3,838,574,925 /1000
		Seed:   0x60_0001,
		run:    goRun,
	}}
}
