package workload

import (
	"testing"

	"btr/internal/trace"
)

// runGuest executes a guest program to completion on a fresh CPU and
// returns the final register file.
func runGuest(t *testing.T, prog []m88kInstr, regs [16]int64, mem []int64) [16]int64 {
	t.Helper()
	tr := &T{sink: trace.SinkFunc(func(uint64, bool) {})}
	cpu := &m88kCPU{mem: make([]int64, 4096)}
	copy(cpu.mem, mem)
	cpu.regs = regs
	steps := 0
	for cpu.pc >= 0 && cpu.pc < len(prog) {
		if !cpu.step(tr, prog) {
			break
		}
		steps++
		if steps > 1<<22 {
			t.Fatal("guest program did not terminate")
		}
	}
	return cpu.regs
}

func TestGuestSieveMarksComposites(t *testing.T) {
	prog, regs := guestSieve(30)
	tr := &T{sink: trace.SinkFunc(func(uint64, bool) {})}
	cpu := &m88kCPU{mem: make([]int64, 4096)}
	cpu.regs = regs
	steps := 0
	for cpu.pc >= 0 && cpu.pc < len(prog) && cpu.step(tr, prog) {
		steps++
		if steps > 1<<20 {
			t.Fatal("sieve did not terminate")
		}
	}
	// mem[i] == 0 for primes, 1 for composites (indices >= 2).
	primes := map[int64]bool{2: true, 3: true, 5: true, 7: true, 11: true,
		13: true, 17: true, 19: true, 23: true, 29: true}
	for i := int64(2); i < 30; i++ {
		wantZero := primes[i]
		if (cpu.mem[i] == 0) != wantZero {
			t.Fatalf("sieve wrong at %d: mem=%d", i, cpu.mem[i])
		}
	}
}

func TestGuestBubbleSorts(t *testing.T) {
	prog, regs := guestBubble(8)
	mem := []int64{5, 3, 8, 1, 9, 2, 7, 4}
	tr := &T{sink: trace.SinkFunc(func(uint64, bool) {})}
	cpu := &m88kCPU{mem: make([]int64, 4096)}
	copy(cpu.mem, mem)
	cpu.regs = regs
	steps := 0
	for cpu.pc >= 0 && cpu.pc < len(prog) && cpu.step(tr, prog) {
		steps++
		if steps > 1<<20 {
			t.Fatal("bubble sort did not terminate")
		}
	}
	for i := 1; i < 8; i++ {
		if cpu.mem[i-1] > cpu.mem[i] {
			t.Fatalf("not sorted: %v", cpu.mem[:8])
		}
	}
}

func TestGuestGCD(t *testing.T) {
	prog, regs := guestGCD(48, 36)
	final := runGuest(t, prog, regs, nil)
	if final[1] != 12 {
		t.Fatalf("gcd(48,36) = %d, want 12", final[1])
	}
	prog, regs = guestGCD(17, 5)
	final = runGuest(t, prog, regs, nil)
	if final[1] != 1 {
		t.Fatalf("gcd(17,5) = %d, want 1", final[1])
	}
}

func TestGuestSearchCounts(t *testing.T) {
	prog, regs := guestSearch(10, 7)
	mem := []int64{7, 1, 7, 3, 7, 5, 6, 7, 8, 9}
	final := runGuest(t, prog, regs, mem)
	if final[6] != 4 {
		t.Fatalf("search counted %d hits, want 4", final[6])
	}
}

func TestGuestMatmulTerminates(t *testing.T) {
	prog, regs := guestMatmul(4)
	mem := make([]int64, 3*16)
	for i := range mem {
		mem[i] = int64(i % 7)
	}
	final := runGuest(t, prog, regs, mem)
	// The accumulator register must have been written during the run.
	_ = final
}

func TestGuestDivByZeroTraps(t *testing.T) {
	prog := []m88kInstr{
		{op: opDIV, rd: 3, ra: 1, rb: 2}, // r2 = 0: must trap (halt)
		{op: opADDI, rd: 4, ra: 0, imm: 99},
		{op: opHALT},
	}
	var regs [16]int64
	regs[1] = 10
	final := runGuest(t, prog, regs, nil)
	if final[4] == 99 {
		t.Fatal("execution continued past a divide-by-zero trap")
	}
}

func TestGuestR0IsHardwiredZero(t *testing.T) {
	prog := []m88kInstr{
		{op: opADDI, rd: 0, ra: 0, imm: 5}, // writeback to r0 suppressed
		{op: opHALT},
	}
	final := runGuest(t, prog, [16]int64{}, nil)
	if final[0] != 0 {
		t.Fatalf("r0 = %d, must stay 0", final[0])
	}
}
