package workload

import "btr/internal/rng"

// m88ksim: an instruction-set interpreter for a small RISC machine,
// standing in for SPEC95 124.m88ksim (a Motorola 88100 simulator). The
// guest machine has 16 registers and a word-addressed memory; guest
// programs (sieve, sort, memcpy, checksum, string search) are assembled
// from templates with randomised data. The host interpreter contributes
// heavily biased guard branches (trap checks, memory bounds) and a
// direct-mapped "cache" hit test, while each *guest* conditional branch is
// traced at a site derived from its guest PC — so the guest's own control
// flow shows up as distinct static branches, exactly as it did for the
// paper's simulated 88k binaries.

// m88ksim host branch sites.
const (
	msMorePrograms = 1
	msRunning      = 2
	msBoundsOK     = 3
	msTrapCheck    = 4
	msCacheHit     = 5
	msIsBranchOp   = 6
	msWriteback    = 7
	msIsLoadStore  = 8
	msIllegalOp    = 9  // hot-path guard: opcode decodes legally
	msPCValid      = 10 // hot-path guard: program counter in text segment
	msIntOverflow  = 11 // hot-path guard: ALU overflow trap
)

// Guest branch sites start here; site = msGuestBase + guestPC.
const msGuestBase = 1000

// Guest ISA.
const (
	opHALT = iota
	opADD  // rd = ra + rb
	opADDI // rd = ra + imm
	opSUB
	opMUL
	opDIV
	opLD  // rd = mem[ra + imm]
	opST  // mem[ra + imm] = rd
	opBEQ // if ra == rb: pc += imm
	opBNE
	opBLT
	opBGE
	opJMP // pc += imm
	opMOD
	opSHL
	opAND
)

type m88kInstr struct {
	op         uint8
	rd, ra, rb uint8
	imm        int32
}

type m88kCPU struct {
	regs  [16]int64
	mem   []int64
	pc    int
	cache [64]int32 // direct-mapped tag store over memory words
}

// m88kStep interprets one instruction; returns false on HALT or fault.
func (c *m88kCPU) step(t *T, prog []m88kInstr) bool {
	ins := prog[c.pc]
	guestSite := uint32(msGuestBase + c.pc)
	// Decode-stage guards: never-firing traps dominate an interpreter's
	// dynamic branch mix, exactly as in the real m88ksim.
	t.B(msIllegalOp, ins.op > opAND)
	t.B(msPCValid, c.pc >= 0 && c.pc < len(prog))
	c.pc++
	if t.B(msIsLoadStore, ins.op == opLD || ins.op == opST) {
		addr := c.regs[ins.ra] + int64(ins.imm)
		if !t.B(msBoundsOK, addr >= 0 && addr < int64(len(c.mem))) {
			return false
		}
		line := (addr >> 2) & 63
		tag := int32(addr >> 8)
		if !t.B(msCacheHit, c.cache[line] == tag) {
			c.cache[line] = tag // miss: fill
		}
		if ins.op == opLD {
			c.regs[ins.rd] = c.mem[addr]
		} else {
			c.mem[addr] = c.regs[ins.rd]
		}
		c.regs[0] = 0
		return true
	}
	if t.B(msIsBranchOp, ins.op >= opBEQ && ins.op <= opJMP) {
		taken := false
		switch ins.op {
		case opBEQ:
			taken = c.regs[ins.ra] == c.regs[ins.rb]
		case opBNE:
			taken = c.regs[ins.ra] != c.regs[ins.rb]
		case opBLT:
			taken = c.regs[ins.ra] < c.regs[ins.rb]
		case opBGE:
			taken = c.regs[ins.ra] >= c.regs[ins.rb]
		case opJMP:
			c.pc += int(ins.imm)
			return c.pc >= 0 && c.pc < len(prog)
		}
		// The guest's conditional branch, traced at its own guest-PC site.
		if t.B(guestSite, taken) {
			c.pc += int(ins.imm)
		}
		return c.pc >= 0 && c.pc < len(prog)
	}
	var v int64
	a, b := c.regs[ins.ra], c.regs[ins.rb]
	switch ins.op {
	case opHALT:
		return false
	case opADD:
		v = a + b
	case opADDI:
		v = a + int64(ins.imm)
	case opSUB:
		v = a - b
	case opMUL:
		v = a * b
	case opDIV:
		if t.B(msTrapCheck, b == 0) {
			return false
		}
		v = a / b
	case opMOD:
		if t.B(msTrapCheck, b == 0) {
			return false
		}
		v = a % b
	case opSHL:
		v = a << uint(b&63)
	case opAND:
		v = a & b
	}
	t.B(msIntOverflow, v > 1<<60 || v < -(1<<60))
	if t.B(msWriteback, ins.rd != 0) {
		c.regs[ins.rd] = v
	}
	return true
}

// Guest program templates. Each returns (program, registers-initialiser).
// Register conventions: r1..r3 parameters, r15 scratch.

func guestSieve(n int64) ([]m88kInstr, [16]int64) {
	// Sieve of Eratosthenes over mem[0..n).
	// r1 = n, r2 = i, r3 = j, r4 = 1 const, r5 = tmp
	prog := []m88kInstr{
		{op: opADDI, rd: 4, ra: 0, imm: 1}, // r4 = 1
		{op: opADDI, rd: 2, ra: 0, imm: 2}, // r2 = i = 2
		{op: opBGE, ra: 2, rb: 1, imm: 10}, // 2: while i < n ... else halt
		{op: opLD, rd: 5, ra: 2, imm: 0},   // r5 = mem[i]
		{op: opBNE, ra: 5, rb: 0, imm: 6},  // composite -> i++ (11)
		{op: opMUL, rd: 3, ra: 2, rb: 2},   // j = i*i
		{op: opBGE, ra: 3, rb: 1, imm: 4},  // 6: while j < n
		{op: opST, rd: 4, ra: 3, imm: 0},   // mem[j] = 1
		{op: opADD, rd: 3, ra: 3, rb: 2},   // j += i
		{op: opJMP, imm: -4},               // -> 6
		{op: opADD, rd: 0, ra: 0, rb: 0},   // nop (branch join)
		{op: opADDI, rd: 2, ra: 2, imm: 1}, // i++
		{op: opJMP, imm: -11},              // -> 2
		{op: opHALT},
	}
	var regs [16]int64
	regs[1] = n
	return prog, regs
}

func guestBubble(n int64) ([]m88kInstr, [16]int64) {
	// Bubble sort mem[0..n).
	// r1=n, r2=i, r3=j, r5=a, r6=b, r7=j+1
	prog := []m88kInstr{
		{op: opADDI, rd: 2, ra: 0, imm: 0},  // i = 0
		{op: opBGE, ra: 2, rb: 1, imm: 14},  // 1: while i < n ... else halt (16)
		{op: opADDI, rd: 3, ra: 0, imm: 0},  // j = 0
		{op: opSUB, rd: 8, ra: 1, rb: 2},    // r8 = n - i
		{op: opADDI, rd: 8, ra: 8, imm: -1}, // r8 = n-i-1
		{op: opBGE, ra: 3, rb: 8, imm: 8},   // 5: while j < n-i-1
		{op: opLD, rd: 5, ra: 3, imm: 0},    // a = mem[j]
		{op: opADDI, rd: 7, ra: 3, imm: 1},  // r7 = j+1
		{op: opLD, rd: 6, ra: 7, imm: 0},    // b = mem[j+1]
		{op: opBGE, ra: 6, rb: 5, imm: 2},   // if b >= a skip swap -> j++ (12)
		{op: opST, rd: 6, ra: 3, imm: 0},
		{op: opST, rd: 5, ra: 7, imm: 0},
		{op: opADDI, rd: 3, ra: 3, imm: 1}, // j++  (12)
		{op: opJMP, imm: -9},               // -> 5
		{op: opADDI, rd: 2, ra: 2, imm: 1}, // i++  (14)
		{op: opJMP, imm: -15},              // -> 1
		{op: opHALT},
	}
	var regs [16]int64
	regs[1] = n
	return prog, regs
}

func guestChecksum(n int64) ([]m88kInstr, [16]int64) {
	// r1=n, r2=i, r5=acc, r6=v
	prog := []m88kInstr{
		{op: opADDI, rd: 2, ra: 0, imm: 0},
		{op: opADDI, rd: 5, ra: 0, imm: 0},
		{op: opBGE, ra: 2, rb: 1, imm: 8}, // 2: while i < n
		{op: opLD, rd: 6, ra: 2, imm: 0},
		{op: opADD, rd: 5, ra: 5, rb: 6},
		{op: opADDI, rd: 7, ra: 0, imm: 2},
		{op: opMOD, rd: 8, ra: 6, rb: 7},  // v % 2
		{op: opBEQ, ra: 8, rb: 0, imm: 1}, // skip rotate for even values
		{op: opSHL, rd: 5, ra: 5, rb: 4},  // odd: shift acc
		{op: opADDI, rd: 2, ra: 2, imm: 1},
		{op: opJMP, imm: -9}, // -> 2
		{op: opHALT},
	}
	var regs [16]int64
	regs[1] = n
	regs[4] = 1
	return prog, regs
}

func guestMatmul(n int64) ([]m88kInstr, [16]int64) {
	// C[i][j] += A[i][k]*B[k][j] over n x n matrices laid out at
	// mem[0], mem[n*n], mem[2*n*n]. Triple counted loop: the workload's
	// deepest loop nest, all guest-branch traffic.
	// r1=n, r2=i, r3=j, r4=k, r5..r9 scratch, r10=n*n, r11=2*n*n
	prog := []m88kInstr{
		{op: opMUL, rd: 10, ra: 1, rb: 1},   // 0: n*n
		{op: opADD, rd: 11, ra: 10, rb: 10}, // 1: 2*n*n
		{op: opADDI, rd: 2, ra: 0, imm: 0},  // 2: i = 0
		{op: opBGE, ra: 2, rb: 1, imm: 20},  // 3: while i < n else halt(24)
		{op: opADDI, rd: 3, ra: 0, imm: 0},  // 4: j = 0
		{op: opBGE, ra: 3, rb: 1, imm: 16},  // 5: while j < n else i++(22)
		{op: opADDI, rd: 4, ra: 0, imm: 0},  // 6: k = 0
		{op: opADDI, rd: 9, ra: 0, imm: 0},  // 7: acc = 0
		{op: opBGE, ra: 4, rb: 1, imm: 8},   // 8: while k < n else store(17)
		{op: opMUL, rd: 5, ra: 2, rb: 1},    // 9: i*n
		{op: opADD, rd: 5, ra: 5, rb: 4},    // 10: +k -> A index
		{op: opLD, rd: 6, ra: 5, imm: 0},    // 11: A[i][k]
		{op: opMUL, rd: 7, ra: 4, rb: 1},    // 12: k*n
		{op: opADD, rd: 7, ra: 7, rb: 3},    // 13: +j
		{op: opADD, rd: 7, ra: 7, rb: 10},   // 14: + n*n -> B index
		{op: opLD, rd: 8, ra: 7, imm: 0},    // 15: B[k][j]
		{op: opMUL, rd: 8, ra: 6, rb: 8},    // 16: a*b
		{op: opADD, rd: 9, ra: 9, rb: 8},    // 17: acc += a*b
		{op: opADDI, rd: 4, ra: 4, imm: 1},  // 18: k++
		{op: opJMP, imm: -12},               // 19: -> 8
		{op: opADDI, rd: 3, ra: 3, imm: 1},  // 20: j++ (exit target of 8)
		{op: opJMP, imm: -17},               // 21: -> 5
		{op: opADDI, rd: 2, ra: 2, imm: 1},  // 22: i++ (exit target of 5)
		{op: opJMP, imm: -21},               // 23: -> 3
		{op: opHALT},                        // 24: exit target of 3
	}
	// 8: BGE k,n exits to 20 (j++): pc after fetch is 9, so imm = 11.
	prog[8].imm = 11
	var regs [16]int64
	regs[1] = n
	return prog, regs
}

func guestGCD(a, b int64) ([]m88kInstr, [16]int64) {
	// Euclid's algorithm by repeated MOD; BEQ-controlled loop whose trip
	// count is data dependent (the classic irregular-loop guest).
	// r1=a, r2=b, r3=tmp
	prog := []m88kInstr{
		{op: opBEQ, ra: 2, rb: 0, imm: 4}, // 0: while b != 0 else halt(5)
		{op: opMOD, rd: 3, ra: 1, rb: 2},  // 1: t = a mod b
		{op: opADD, rd: 1, ra: 2, rb: 0},  // 2: a = b
		{op: opADD, rd: 2, ra: 3, rb: 0},  // 3: b = t
		{op: opJMP, imm: -5},              // 4: -> 0
		{op: opHALT},                      // 5
	}
	var regs [16]int64
	regs[1], regs[2] = a, b
	return prog, regs
}

func guestSearch(n, needle int64) ([]m88kInstr, [16]int64) {
	// Linear search for needle in mem[0..n); counts matches.
	prog := []m88kInstr{
		{op: opADDI, rd: 2, ra: 0, imm: 0},
		{op: opBGE, ra: 2, rb: 1, imm: 5}, // 1: while i < n ... else halt (7)
		{op: opLD, rd: 5, ra: 2, imm: 0},
		{op: opBNE, ra: 5, rb: 3, imm: 1},  // mem[i] != needle -> skip
		{op: opADDI, rd: 6, ra: 6, imm: 1}, // hits++
		{op: opADDI, rd: 2, ra: 2, imm: 1},
		{op: opJMP, imm: -6}, // -> 1
		{op: opHALT},
	}
	var regs [16]int64
	regs[1] = n
	regs[3] = needle
	return prog, regs
}

func m88kRun(t *T, r *rng.Rand, target int64) {
	cpu := &m88kCPU{mem: make([]int64, 4096)}
	for t.B(msMorePrograms, t.N() < target) {
		var prog []m88kInstr
		var regs [16]int64
		kind := r.Intn(6)
		switch kind {
		case 4:
			n := int64(6 + r.Intn(8))
			prog, regs = guestMatmul(n)
			for i := int64(0); i < 3*n*n; i++ {
				cpu.mem[i] = int64(r.Intn(64))
			}
		case 5:
			prog, regs = guestGCD(int64(1+r.Intn(100000)), int64(1+r.Intn(100000)))
		case 0:
			prog, regs = guestSieve(int64(80 + r.Intn(160)))
			for i := range cpu.mem {
				cpu.mem[i] = 0
			}
		case 1:
			n := int64(16 + r.Intn(32))
			prog, regs = guestBubble(n)
			for i := int64(0); i < n; i++ {
				cpu.mem[i] = int64(r.Intn(1000))
			}
		case 2:
			n := int64(120 + r.Intn(200))
			prog, regs = guestChecksum(n)
			for i := int64(0); i < n; i++ {
				cpu.mem[i] = int64(r.Intn(1 << 16))
			}
		default:
			n := int64(120 + r.Intn(200))
			needle := int64(r.Intn(32))
			prog, regs = guestSearch(n, needle)
			for i := int64(0); i < n; i++ {
				cpu.mem[i] = int64(r.Intn(32))
			}
		}
		cpu.regs = regs
		cpu.pc = 0
		steps := 0
		for t.B(msRunning, cpu.pc >= 0 && cpu.pc < len(prog)) {
			if !cpu.step(t, prog) {
				break
			}
			steps++
			if steps > 1<<20 || t.N() >= target {
				break
			}
		}
	}
}

func m88kSpecs() []Spec {
	return []Spec{{
		Bench:  "m88ksim",
		Input:  "ctl.lit",
		Target: 9086543, // paper: 9,086,543,174 /1000
		Seed:   0x88_0001,
		run:    m88kRun,
	}}
}
