package workload

import (
	"testing"

	"btr/internal/core"
	"btr/internal/trace"
)

// testScale keeps workload tests fast while still exercising thousands of
// dynamic branches per input.
const testScale = 0.002

func TestSuiteMatchesTable1Layout(t *testing.T) {
	specs := Suite()
	if len(specs) != 34 {
		t.Fatalf("suite has %d rows, Table 1 has 34", len(specs))
	}
	counts := map[string]int{}
	for _, s := range specs {
		counts[s.Bench]++
	}
	want := map[string]int{
		"compress": 1, "gcc": 24, "go": 1, "ijpeg": 3,
		"li": 1, "m88ksim": 1, "perl": 2, "vortex": 1,
	}
	for bench, n := range want {
		if counts[bench] != n {
			t.Fatalf("%s has %d inputs, want %d", bench, counts[bench], n)
		}
	}
}

func TestSpecNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range Suite() {
		if seen[s.Name()] {
			t.Fatalf("duplicate spec %s", s.Name())
		}
		seen[s.Name()] = true
		if s.Target <= 0 {
			t.Fatalf("%s has non-positive target", s.Name())
		}
		if s.run == nil {
			t.Fatalf("%s has no run function", s.Name())
		}
	}
}

func TestPCBasesDisjointAcrossBenchmarks(t *testing.T) {
	bases := map[uint64]string{}
	for _, bench := range Benchmarks() {
		spec := ByBench()[bench][0]
		base := spec.PCBase()
		if other, ok := bases[base]; ok && other != bench {
			t.Fatalf("benchmarks %s and %s share PC base %#x", bench, other, base)
		}
		bases[base] = bench
	}
}

func TestFind(t *testing.T) {
	s, err := Find("compress", "bigtest.in")
	if err != nil || s.Bench != "compress" {
		t.Fatalf("Find: %v %+v", err, s)
	}
	if _, err := Find("nope", "nothing"); err == nil {
		t.Fatal("Find must fail for unknown specs")
	}
}

func TestEveryWorkloadRunsAndMeetsTarget(t *testing.T) {
	for _, spec := range Suite() {
		spec := spec
		t.Run(spec.Name(), func(t *testing.T) {
			t.Parallel()
			sink := trace.NewStatsSink()
			n := spec.Run(sink, testScale)
			target := int64(float64(spec.Target) * testScale)
			if n < target {
				t.Fatalf("emitted %d events, target %d", n, target)
			}
			// Runs stop at an outer-iteration boundary; the overshoot
			// must stay bounded (no workload emits a whole giant phase
			// after passing its target).
			if n > 4*target+200000 {
				t.Fatalf("emitted %d events for target %d: overshoot too large", n, target)
			}
			st := sink.Stats()
			if st.StaticSites < 10 {
				t.Fatalf("only %d static sites; workload too trivial", st.StaticSites)
			}
			if st.TakenFraction() <= 0.05 || st.TakenFraction() >= 0.98 {
				t.Fatalf("taken fraction %.3f implausible", st.TakenFraction())
			}
		})
	}
}

func TestWorkloadsAreDeterministic(t *testing.T) {
	for _, bench := range []string{"compress", "go", "li", "vortex"} {
		spec := ByBench()[bench][0]
		h1 := runHash(spec, testScale)
		h2 := runHash(spec, testScale)
		if h1 != h2 {
			t.Fatalf("%s: two runs at the same scale produced different streams", spec.Name())
		}
	}
}

func TestDifferentSeedsProduceDifferentStreams(t *testing.T) {
	a, err := Find("perl", "primes.pl")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Find("perl", "scrabbl.pl")
	if err != nil {
		t.Fatal(err)
	}
	if runHash(a, testScale) == runHash(b, testScale) {
		t.Fatal("different inputs produced identical streams")
	}
}

func TestScaleControlsLength(t *testing.T) {
	spec, err := Find("perl", "primes.pl")
	if err != nil {
		t.Fatal(err)
	}
	small := spec.Run(&trace.CountingSink{}, 0.001)
	large := spec.Run(&trace.CountingSink{}, 0.004)
	if large < 2*small {
		t.Fatalf("scale 4x grew events only %d -> %d", small, large)
	}
}

func TestZeroScaleDefaultsToFull(t *testing.T) {
	spec, err := Find("gcc", "genoutput.i")
	if err != nil {
		t.Fatal(err)
	}
	n := spec.Run(&trace.CountingSink{}, 0) // 0 means scale 1.0
	if n < spec.Target {
		t.Fatalf("scale 0 ran %d events, want >= %d", n, spec.Target)
	}
}

// runHash replays a spec and returns an order-sensitive FNV-style hash of
// its event stream.
func runHash(spec Spec, scale float64) uint64 {
	var h uint64 = 14695981039346656037
	spec.Run(trace.SinkFunc(func(pc uint64, taken bool) {
		h ^= pc
		h *= 1099511628211
		if taken {
			h ^= 0x5bd1e995
			h *= 1099511628211
		}
	}), scale)
	return h
}

// profileSpec profiles one spec and returns the per-branch profiles.
func profileSpec(t *testing.T, spec Spec, scale float64) map[uint64]*core.Profile {
	t.Helper()
	p := core.NewProfiler()
	spec.Run(p, scale)
	return p.Profiles()
}

func TestIjpegHasStrictAlternator(t *testing.T) {
	spec, err := Find("ijpeg", "penguin.ppm")
	if err != nil {
		t.Fatal(err)
	}
	profiles := profileSpec(t, spec, 0.01)
	pc := spec.PCBase() + uint64(jsBufParity)<<2
	p := profiles[pc]
	if p == nil {
		t.Fatal("alternator site never executed")
	}
	if got := p.TransitionRate(); got != 1.0 {
		t.Fatalf("double-buffer parity transition rate %v, want 1.0", got)
	}
	if jc := core.ClassOfProfile(p); jc.Transition != 10 {
		t.Fatalf("alternator in transition class %d, want 10", jc.Transition)
	}
}

func TestGuardSitesAreHeavilyBiased(t *testing.T) {
	cases := []struct {
		bench, input string
		site         uint32
		wantTaken    bool // direction the guard should almost always take
	}{
		{"compress", "bigtest.in", csByteASCII, true},
		{"gcc", "genoutput.i", gsValidByte, true},
		{"gcc", "genoutput.i", gsLineLimit, false},
		{"m88ksim", "ctl.lit", msIllegalOp, false},
		{"vortex", "vortex.lit", vsNodeValid, true},
		{"li", "ref.lsp", lsTagValid, true},
	}
	for _, c := range cases {
		spec, err := Find(c.bench, c.input)
		if err != nil {
			t.Fatal(err)
		}
		profiles := profileSpec(t, spec, testScale)
		pc := spec.PCBase() + uint64(c.site)<<2
		p := profiles[pc]
		if p == nil {
			t.Fatalf("%s site %d never executed", spec.Name(), c.site)
		}
		rate := p.TakenRate()
		if c.wantTaken && rate < 0.99 {
			t.Fatalf("%s site %d taken rate %.3f, want ~1", spec.Name(), c.site, rate)
		}
		if !c.wantTaken && rate > 0.01 {
			t.Fatalf("%s site %d taken rate %.3f, want ~0", spec.Name(), c.site, rate)
		}
	}
}

func TestVortexDescentComparesAreHard(t *testing.T) {
	spec, err := Find("vortex", "vortex.lit")
	if err != nil {
		t.Fatal(err)
	}
	profiles := profileSpec(t, spec, 0.005)
	pc := spec.PCBase() + uint64(vsScanLess)<<2
	p := profiles[pc]
	if p == nil {
		t.Fatal("descent compare never executed")
	}
	// Random-key compares should be moderately mixed in both metrics —
	// the 5/5-region generator the paper identifies in databases.
	if p.TakenRate() < 0.2 || p.TakenRate() > 0.85 {
		t.Fatalf("descent compare taken rate %.3f, want mid-range", p.TakenRate())
	}
	if p.TransitionRate() < 0.2 || p.TransitionRate() > 0.85 {
		t.Fatalf("descent compare transition rate %.3f, want mid-range", p.TransitionRate())
	}
}

func TestSuiteDistributionShape(t *testing.T) {
	// The paper's headline shape at suite level: most dynamic branches
	// live at the taken-rate edges, even more at low transition rates,
	// and transition coverage exceeds taken coverage.
	var dist core.Distribution
	for _, spec := range Suite() {
		p := core.NewProfiler()
		spec.Run(p, testScale)
		dist.AddProfiles(p.Profiles())
	}
	cov := core.ComputeCoverage(&dist)
	if cov.TakenEasy < 0.35 {
		t.Fatalf("taken {0,10} coverage %.3f too low; paper has 0.629", cov.TakenEasy)
	}
	if cov.TransitionEasyGAs <= cov.TakenEasy {
		t.Fatalf("transition coverage %.3f must exceed taken coverage %.3f",
			cov.TransitionEasyGAs, cov.TakenEasy)
	}
	if cov.TransitionEasyPAs < cov.TransitionEasyGAs {
		t.Fatal("PAs coverage must include GAs coverage")
	}
	if cov.MissedPAs <= 0 {
		t.Fatal("the misclassified population must be non-empty")
	}
	// The joint distribution respects the feasibility arc: the
	// high-transition/extreme-taken corners must be (near) empty.
	if f := dist.Fraction(0, 10) + dist.Fraction(10, 10); f > 0.001 {
		t.Fatalf("infeasible corner holds %.4f of the mass", f)
	}
}

func TestM88kGuestBranchesAppearAsDistinctSites(t *testing.T) {
	spec, err := Find("m88ksim", "ctl.lit")
	if err != nil {
		t.Fatal(err)
	}
	profiles := profileSpec(t, spec, 0.02)
	guest := 0
	for pc := range profiles {
		site := uint32((pc - spec.PCBase()) >> 2)
		if site >= msGuestBase {
			guest++
		}
	}
	if guest < 6 {
		t.Fatalf("only %d guest branch sites traced; expected the guest programs' branches", guest)
	}
}

func TestRegexEngineMatches(t *testing.T) {
	// Unit-check the perl substrate's NFA against known cases, with a
	// throwaway tracer.
	tr := &T{sink: trace.SinkFunc(func(uint64, bool) {})}
	cases := []struct {
		pat  string
		text string
		want bool
	}{
		{"[0-9]+", "123", true},
		{"[0-9]+", "abc", false},
		{"1[0-9]*7", "17", true},
		{"1[0-9]*7", "1237", true},
		{"1[0-9]*7", "237", false},
		{"[a-z]+g", "running", true},
		{"[a-z]+g", "RUN", false},
	}
	for _, c := range cases {
		prog := reCompile(c.pat)
		if got := reMatch(tr, prog, []byte(c.text)); got != c.want {
			t.Fatalf("reMatch(%q, %q) = %v, want %v", c.pat, c.text, got, c.want)
		}
	}
}

func TestLZWRoundTripsMostText(t *testing.T) {
	// The compress substrate's LZW must reproduce its input (modulo the
	// documented dictionary-reset divergence, which the small block here
	// does not hit).
	tr := &T{sink: trace.SinkFunc(func(uint64, bool) {})}
	d := &lzwDict{}
	text := []byte("the quick brown fox jumps over the lazy dog the quick brown fox")
	codes := lzwCompress(tr, d, text)
	out := lzwDecompress(tr, codes)
	if string(out) != string(text) {
		t.Fatalf("LZW round trip:\n in: %q\nout: %q", text, out)
	}
}
