package workload

import "btr/internal/rng"

// compress: an LZW compressor/decompressor in the spirit of SPEC95 129.compress.
// It generates pseudo-text, compresses it with a 12-bit-code LZW using an
// open-addressing dictionary, decompresses, and verifies. The interesting
// branch populations: dictionary probe hits (moderately biased), collision
// chains (geometric), code-width/dictionary-reset guards (heavily biased),
// text-generation word shapes, and the verify scan (always-taken-like).

// Branch site IDs for compress (all sites in a workload share its PC base).
const (
	csMoreInput    = 1  // main loop: more input bytes remain
	csProbeHit     = 2  // dictionary probe found the (prefix, char) pair
	csProbeChain   = 3  // open-addressing collision: keep probing
	csDictFull     = 4  // dictionary full: reset
	csFlushBits    = 5  // output bit buffer holds a full byte
	csWordBoundary = 6  // generated char ends a word
	csVowelNext    = 7  // generator alternates vowel/consonant
	csZipfHead     = 8  // word drawn from the hot head of the vocabulary
	csDecMore      = 9  // decompressor: more codes remain
	csDecKwKwK     = 10 // decompressor: the KwKwK special case
	csDecUnstack   = 11 // decompressor: expansion stack non-empty
	csVerifySame   = 12 // verify: byte matches
	csPunct        = 13 // generator: emit punctuation instead of space
	csUpperCase    = 14 // generator: capitalise word head
	csByteASCII    = 15 // hot-path guard: input byte in ASCII range
	csDictSane     = 16 // hot-path guard: dictionary invariant holds
	csCodeValid    = 17 // hot-path guard: decoded code within table
)

const (
	lzwBits     = 12
	lzwMaxCodes = 1 << lzwBits
	lzwHashSize = 1 << 13
	lzwClear    = 256 // first 256 codes are literals
)

type lzwDict struct {
	hash    [lzwHashSize]int32 // index into codes, -1 = empty
	prefix  [lzwMaxCodes]int32
	suffix  [lzwMaxCodes]byte
	hashKey [lzwHashSize]uint32
	next    int32
}

func (d *lzwDict) reset() {
	for i := range d.hash {
		d.hash[i] = -1
	}
	d.next = lzwClear + 1
}

func (d *lzwDict) slot(prefix int32, c byte) uint32 {
	key := uint32(prefix)<<8 | uint32(c)
	return (key * 2654435761) & (lzwHashSize - 1)
}

// compressRun drives the generate-compress-decompress-verify pipeline
// until the tracer has emitted at least target branches.
func compressRun(t *T, r *rng.Rand, target int64) {
	vocab := makeVocabulary(r, 240)
	dict := &lzwDict{}
	for t.N() < target {
		text := generateText(t, r, vocab, 4096)
		codes := lzwCompress(t, dict, text)
		out := lzwDecompress(t, codes)
		verify(t, text, out)
	}
}

// makeVocabulary builds a fixed pseudo-English word list.
func makeVocabulary(r *rng.Rand, n int) []string {
	vowels := "aeiou"
	consonants := "bcdfghjklmnpqrstvwxyz"
	words := make([]string, n)
	for i := range words {
		wordLen := 2 + r.Intn(8)
		buf := make([]byte, 0, wordLen)
		vowel := r.Bool(0.5)
		for j := 0; j < wordLen; j++ {
			if vowel {
				buf = append(buf, vowels[r.Intn(len(vowels))])
			} else {
				buf = append(buf, consonants[r.Intn(len(consonants))])
			}
			vowel = !vowel
		}
		words[i] = string(buf)
	}
	return words
}

// generateText emits about size bytes of word-like text. Its branches are
// part of the workload: the original compress spends real time producing
// and scanning its input too.
func generateText(t *T, r *rng.Rand, vocab []string, size int) []byte {
	buf := make([]byte, 0, size+16)
	for len(buf) < size {
		// Zipf-ish draw: most words come from a small hot head.
		var w string
		if t.B(csZipfHead, r.Bool(0.7)) {
			w = vocab[r.Intn(16)]
		} else {
			w = vocab[16+r.Intn(len(vocab)-16)]
		}
		if t.B(csUpperCase, r.Bool(0.08)) {
			buf = append(buf, w[0]-'a'+'A')
			buf = append(buf, w[1:]...)
		} else {
			buf = append(buf, w...)
		}
		vowel := false
		for i := 0; i < len(w); i++ {
			// Exercise an alternating data-dependent test over the word.
			c := w[i] | 0x20
			isVowel := c == 'a' || c == 'e' || c == 'i' || c == 'o' || c == 'u'
			t.B(csVowelNext, isVowel != vowel)
			vowel = isVowel
		}
		if t.B(csPunct, r.Bool(0.12)) {
			buf = append(buf, '.', ' ')
		} else {
			buf = append(buf, ' ')
		}
		t.B(csWordBoundary, true)
	}
	return buf
}

// lzwCompress encodes text, reusing (and resetting) the shared dictionary.
func lzwCompress(t *T, d *lzwDict, text []byte) []int32 {
	d.reset()
	codes := make([]int32, 0, len(text)/2)
	prefix := int32(text[0])
	bitsPending := 0
	for i := 1; t.B(csMoreInput, i < len(text)); i++ {
		c := text[i]
		// Hot-path guards, as in the original's error/invariant checks:
		// essentially never-failing tests dominate dynamic branch counts.
		t.B(csByteASCII, c < 128)
		t.B(csDictSane, d.next <= lzwMaxCodes)
		slot := d.slot(prefix, c)
		key := uint32(prefix)<<8 | uint32(c)
		found := int32(-1)
		for {
			h := d.hash[slot]
			if h < 0 {
				break
			}
			if t.B(csProbeHit, d.hashKey[slot] == key) {
				found = h
				break
			}
			t.B(csProbeChain, true)
			slot = (slot + 1) & (lzwHashSize - 1)
		}
		if found >= 0 {
			prefix = found
			continue
		}
		codes = append(codes, prefix)
		bitsPending += lzwBits
		if t.B(csFlushBits, bitsPending >= 8) {
			bitsPending -= 8
		}
		if t.B(csDictFull, d.next >= lzwMaxCodes) {
			d.reset()
		} else {
			d.hash[slot] = d.next
			d.hashKey[slot] = key
			d.prefix[d.next] = prefix
			d.suffix[d.next] = c
			d.next++
		}
		prefix = int32(c)
	}
	codes = append(codes, prefix)
	return codes
}

// lzwDecompress reconstructs the text from the code stream. It rebuilds
// the dictionary independently, as the real decompressor does.
func lzwDecompress(t *T, codes []int32) []byte {
	var prefix [lzwMaxCodes]int32
	var suffix [lzwMaxCodes]byte
	next := int32(lzwClear + 1)
	out := make([]byte, 0, len(codes)*3)
	var stack [lzwMaxCodes]byte

	expand := func(code int32) byte {
		sp := 0
		for code >= lzwClear {
			stack[sp] = suffix[code]
			sp++
			code = prefix[code]
		}
		first := byte(code)
		out = append(out, first)
		for t.B(csDecUnstack, sp > 0) {
			sp--
			out = append(out, stack[sp])
		}
		return first
	}

	prev := codes[0]
	lastFirst := expand(prev)
	for i := 1; t.B(csDecMore, i < len(codes)); i++ {
		code := codes[i]
		t.B(csCodeValid, code >= 0 && code < lzwMaxCodes)
		if t.B(csDecKwKwK, code >= next) {
			// KwKwK: the code is the entry being defined right now, so
			// define it (prev + first char of prev) and then expand.
			suffix[next] = lastFirst
			prefix[next] = prev
			next++
			lastFirst = expand(code)
		} else {
			lastFirst = expand(code)
			if next < lzwMaxCodes {
				prefix[next] = prev
				suffix[next] = lastFirst
				next++
			}
		}
		if next >= lzwMaxCodes {
			next = lzwClear + 1
		}
		prev = code
	}
	return out
}

// verify compares the round-tripped text byte by byte. The compressor
// resets its dictionary on full while this simplified decompressor wraps,
// so divergence is possible; the scan itself is the point.
func verify(t *T, a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	same := 0
	for i := 0; i < n; i++ {
		if t.B(csVerifySame, a[i] == b[i]) {
			same++
		} else {
			break
		}
	}
	return same
}

func compressSpecs() []Spec {
	return []Spec{{
		Bench:  "compress",
		Input:  "bigtest.in",
		Target: 5641834, // paper: 5,641,834,221 dynamic branches, scaled /1000
		Seed:   0xC0_0001,
		run:    compressRun,
	}}
}
