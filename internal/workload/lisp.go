package workload

import "btr/internal/rng"

// li: a small Lisp interpreter standing in for SPEC95 130.li. It reads
// generated s-expression scripts, evaluates them (special forms, builtin
// arithmetic and list operations, user-defined recursive functions), and
// runs a mark-and-sweep collector over a cons-cell arena when it fills.
// Interpreters are dominated by type-dispatch chains, environment-lookup
// scans, recursion-depth guards, and GC mark/sweep tests whose bias tracks
// heap liveness.

// li branch sites.
const (
	lsMoreScripts  = 1
	lsReadMore     = 2
	lsReadIsOpen   = 3
	lsReadIsClose  = 4
	lsReadIsDigit  = 5
	lsReadIsSym    = 6
	lsEvalIsNum    = 7
	lsEvalIsSym    = 8
	lsEvalIsNil    = 9
	lsFormIsIf     = 10
	lsFormIsQuote  = 11
	lsFormIsDef    = 12
	lsFormIsLambda = 13
	lsEnvScan      = 14
	lsEnvFound     = 15
	lsCondTrue     = 16
	lsArgsMore     = 17
	lsApplyPrim    = 18
	lsPrimArith    = 19
	lsPrimCmpLt    = 20
	lsPrimIsNull   = 21
	lsPrimIsCons   = 22
	lsGCNeeded     = 23
	lsGCMarkCons   = 24
	lsGCSweepLive  = 25
	lsListWalk     = 26
	lsRecurseDeep  = 27
	lsPrimIsCar    = 28
	lsTailNil      = 29
	lsStackGuard   = 30 // hot-path guard: evaluator stack headroom
	lsCellValid    = 31 // hot-path guard: cons index within arena
	lsTagValid     = 32 // hot-path guard: value tag well formed
)

// Lisp values are tagged indices into the interpreter's arenas: negative
// values encode small ints, 0 is nil, positive even = cons index*2+base,
// positive odd ranges encode symbols. Using integers keeps the heap
// explicit so the GC has something real to do.
type lval int64

const (
	lNil lval = 0
	// symbol values: symBase + id
	symBase  lval = 1 << 40
	consBase lval = 1 << 20
	numBase  lval = 1 << 50 // numbers: numBase + v (v may be negative)
)

func mkNum(v int64) lval  { return numBase + lval(v) }
func isNum(v lval) bool   { return v >= numBase-(1<<30) && v < numBase+(1<<40) }
func numVal(v lval) int64 { return int64(v - numBase) }
func isSym(v lval) bool   { return v >= symBase && v < numBase-(1<<30) }
func isCons(v lval) bool  { return v >= consBase && v < symBase }

type lispHeap struct {
	car, cdr []lval
	marked   []bool
	free     []int32
	t        *T
}

func newLispHeap(t *T, cells int) *lispHeap {
	h := &lispHeap{
		car:    make([]lval, cells),
		cdr:    make([]lval, cells),
		marked: make([]bool, cells),
		t:      t,
	}
	for i := cells - 1; i >= 0; i-- {
		h.free = append(h.free, int32(i))
	}
	return h
}

func (h *lispHeap) cons(car, cdr lval, roots []lval) lval {
	if h.t.B(lsGCNeeded, len(h.free) == 0) {
		h.collect(roots)
		if len(h.free) == 0 {
			// Heap genuinely exhausted: drop everything unreachable from
			// nothing (full reset) to keep the interpreter running.
			for i := range h.marked {
				h.free = append(h.free, int32(i))
			}
		}
	}
	idx := h.free[len(h.free)-1]
	h.free = h.free[:len(h.free)-1]
	h.t.B(lsCellValid, int(idx) < len(h.car))
	h.car[idx] = car
	h.cdr[idx] = cdr
	return consBase + lval(idx)
}

func (h *lispHeap) carOf(v lval) lval { return h.car[v-consBase] }
func (h *lispHeap) cdrOf(v lval) lval { return h.cdr[v-consBase] }

func (h *lispHeap) mark(v lval) {
	for h.t.B(lsGCMarkCons, isCons(v)) {
		idx := v - consBase
		if h.marked[idx] {
			return
		}
		h.marked[idx] = true
		h.mark(h.car[idx])
		v = h.cdr[idx] // iterate down the cdr chain
	}
}

func (h *lispHeap) collect(roots []lval) {
	for i := range h.marked {
		h.marked[i] = false
	}
	for _, r := range roots {
		h.mark(r)
	}
	h.free = h.free[:0]
	for i := len(h.marked) - 1; i >= 0; i-- {
		if !h.t.B(lsGCSweepLive, h.marked[i]) {
			h.free = append(h.free, int32(i))
		}
	}
}

// lispEnv is an association list of (symbol id → value), scanned linearly
// like the original xlisp's shallow binding.
type lispEnv struct {
	syms []int32
	vals []lval
}

func (e *lispEnv) lookup(t *T, sym int32) (lval, bool) {
	for i := len(e.syms) - 1; t.B(lsEnvScan, i >= 0); i-- {
		if t.B(lsEnvFound, e.syms[i] == sym) {
			return e.vals[i], true
		}
	}
	return lNil, false
}

func (e *lispEnv) bind(sym int32, v lval) {
	e.syms = append(e.syms, sym)
	e.vals = append(e.vals, v)
}

func (e *lispEnv) popTo(n int) {
	e.syms = e.syms[:n]
	e.vals = e.vals[:n]
}

// Symbol ids for builtins and special forms.
const (
	symIf = iota
	symQuote
	symDefine
	symLambda
	symPlus
	symMinus
	symTimes
	symLess
	symCar
	symCdr
	symCons
	symNullQ
	symConsQ
	symUser // user symbols start here
)

type lispInterp struct {
	t     *T
	heap  *lispHeap
	env   lispEnv
	depth int
	// defs maps a user function symbol to (params . body) cons.
	defs  map[int32]lval
	roots []lval
}

func (in *lispInterp) eval(expr lval) lval {
	t := in.t
	in.depth++
	defer func() { in.depth-- }()
	if t.B(lsRecurseDeep, in.depth > 200) {
		return mkNum(0)
	}
	// Evaluator hot-path sanity guards (xlisp's NIL/type checks).
	t.B(lsStackGuard, in.depth < 195)
	t.B(lsTagValid, expr == lNil || isNum(expr) || isSym(expr) || isCons(expr))
	if t.B(lsEvalIsSym, isSym(expr)) {
		sym := int32(expr - symBase)
		if v, ok := in.env.lookup(t, sym); ok {
			return v
		}
		return lNil
	}
	if t.B(lsEvalIsNum, isNum(expr)) {
		return expr
	}
	if t.B(lsEvalIsNil, expr == lNil) {
		return lNil
	}
	// A cons: (op args...)
	op := in.heap.carOf(expr)
	args := in.heap.cdrOf(expr)
	if isSym(op) {
		sym := int32(op - symBase)
		if t.B(lsFormIsIf, sym == symIf) {
			cond := in.eval(in.heap.carOf(args))
			truthy := cond != lNil && cond != mkNum(0)
			rest := in.heap.cdrOf(args)
			if t.B(lsCondTrue, truthy) {
				return in.eval(in.heap.carOf(rest))
			}
			alt := in.heap.cdrOf(rest)
			if alt == lNil {
				return lNil
			}
			return in.eval(in.heap.carOf(alt))
		}
		if t.B(lsFormIsQuote, sym == symQuote) {
			return in.heap.carOf(args)
		}
		if t.B(lsFormIsDef, sym == symDefine) {
			// (define (name params...) body)
			sig := in.heap.carOf(args)
			name := int32(in.heap.carOf(sig) - symBase)
			in.defs[name] = in.heap.cons(in.heap.cdrOf(sig), in.heap.cdrOf(args), in.roots)
			return lNil
		}
		t.B(lsFormIsLambda, sym == symLambda) // recognised but scripts use define
		// Evaluate arguments left to right.
		var argv [8]lval
		argc := 0
		for cur := args; t.B(lsArgsMore, cur != lNil && argc < 8); cur = in.heap.cdrOf(cur) {
			argv[argc] = in.eval(in.heap.carOf(cur))
			argc++
		}
		if t.B(lsApplyPrim, sym < symUser) {
			return in.applyPrim(sym, argv[:argc])
		}
		// User function: bind params, eval body.
		def, ok := in.defs[sym]
		if !ok {
			return lNil
		}
		params := in.heap.carOf(def)
		body := in.heap.carOf(in.heap.cdrOf(def))
		mark := len(in.env.syms)
		i := 0
		for cur := params; cur != lNil && i < argc; cur = in.heap.cdrOf(cur) {
			in.env.bind(int32(in.heap.carOf(cur)-symBase), argv[i])
			i++
		}
		v := in.eval(body)
		in.env.popTo(mark)
		return v
	}
	return lNil
}

func (in *lispInterp) applyPrim(sym int32, argv []lval) lval {
	t := in.t
	a, b := lNil, lNil
	if len(argv) > 0 {
		a = argv[0]
	}
	if len(argv) > 1 {
		b = argv[1]
	}
	if t.B(lsPrimArith, sym == symPlus || sym == symMinus || sym == symTimes) {
		av, bv := int64(0), int64(0)
		if isNum(a) {
			av = numVal(a)
		}
		if isNum(b) {
			bv = numVal(b)
		}
		switch sym {
		case symPlus:
			return mkNum(av + bv)
		case symMinus:
			return mkNum(av - bv)
		default:
			return mkNum(av * bv)
		}
	}
	switch sym {
	case symLess:
		if t.B(lsPrimCmpLt, isNum(a) && isNum(b) && numVal(a) < numVal(b)) {
			return mkNum(1)
		}
		return lNil
	case symCar:
		if t.B(lsPrimIsCar, isCons(a)) {
			return in.heap.carOf(a)
		}
		return lNil
	case symCdr:
		if isCons(a) {
			return in.heap.cdrOf(a)
		}
		return lNil
	case symCons:
		return in.heap.cons(a, b, in.roots)
	case symNullQ:
		if t.B(lsPrimIsNull, a == lNil) {
			return mkNum(1)
		}
		return lNil
	case symConsQ:
		if t.B(lsPrimIsCons, isCons(a)) {
			return mkNum(1)
		}
		return lNil
	}
	return lNil
}

// lispReader parses a script text into heap values.
type lispReader struct {
	t    *T
	heap *lispHeap
	src  []byte
	pos  int
	syms map[string]int32
	next int32
}

func (rd *lispReader) intern(s string) lval {
	if id, ok := rd.syms[s]; ok {
		return symBase + lval(id)
	}
	id := rd.next
	rd.next++
	rd.syms[s] = id
	return symBase + lval(id)
}

func (rd *lispReader) read() (lval, bool) {
	t := rd.t
	for t.B(lsReadMore, rd.pos < len(rd.src)) {
		c := rd.src[rd.pos]
		if c == ' ' || c == '\n' {
			rd.pos++
			continue
		}
		if t.B(lsReadIsOpen, c == '(') {
			rd.pos++
			return rd.readList(), true
		}
		if t.B(lsReadIsClose, c == ')') {
			rd.pos++
			return lNil, false
		}
		if t.B(lsReadIsDigit, c >= '0' && c <= '9' || c == '-' && rd.pos+1 < len(rd.src) && rd.src[rd.pos+1] >= '0' && rd.src[rd.pos+1] <= '9') {
			neg := false
			if c == '-' {
				neg = true
				rd.pos++
			}
			var v int64
			for rd.pos < len(rd.src) && rd.src[rd.pos] >= '0' && rd.src[rd.pos] <= '9' {
				v = v*10 + int64(rd.src[rd.pos]-'0')
				rd.pos++
			}
			if neg {
				v = -v
			}
			return mkNum(v), true
		}
		if t.B(lsReadIsSym, c >= 'a' && c <= 'z' || c == '+' || c == '-' || c == '*' || c == '<' || c == '?') {
			start := rd.pos
			for rd.pos < len(rd.src) {
				c := rd.src[rd.pos]
				if c == ' ' || c == '(' || c == ')' || c == '\n' {
					break
				}
				rd.pos++
			}
			return rd.intern(string(rd.src[start:rd.pos])), true
		}
		rd.pos++
	}
	return lNil, false
}

func (rd *lispReader) readList() lval {
	v, ok := rd.read()
	if !ok {
		return lNil
	}
	head := rd.heap.cons(v, lNil, nil)
	tail := head
	for {
		v, ok := rd.read()
		if rd.t.B(lsTailNil, !ok) {
			return head
		}
		cell := rd.heap.cons(v, lNil, nil)
		rd.heap.cdr[tail-consBase] = cell
		tail = cell
	}
}

// lispScripts are templates instantiated with random parameters; they are
// the classic xlisp-style recursive list workloads.
var lispScripts = []string{
	"(define (app a b) (if (null? a) b (cons (car a) (app (cdr a) b))))",
	"(define (rev a) (if (null? a) a (app (rev (cdr a)) (cons (car a) (quote ())))))",
	"(define (len a) (if (null? a) 0 (+ 1 (len (cdr a)))))",
	"(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))",
	"(define (tak x y z) (if (< y x) (tak (tak (- x 1) y z) (tak (- y 1) z x) (tak (- z 1) x y)) z))",
	"(define (iota n) (if (< n 1) (quote ()) (cons n (iota (- n 1)))))",
	"(define (summ a) (if (null? a) 0 (+ (car a) (summ (cdr a)))))",
	"(define (filtpos a) (if (null? a) a (if (< 0 (car a)) (cons (car a) (filtpos (cdr a))) (filtpos (cdr a)))))",
}

func lispRun(t *T, r *rng.Rand, target int64) {
	for t.B(lsMoreScripts, t.N() < target) {
		heap := newLispHeap(t, 1<<14)
		in := &lispInterp{t: t, heap: heap, defs: make(map[int32]lval)}
		rd := &lispReader{t: t, heap: heap, syms: make(map[string]int32), next: symUser}
		// Pre-intern the builtins so their ids match the sym constants
		// (symIf = 0 .. symConsQ = 12, in declaration order).
		for i, name := range []string{"if", "quote", "define", "lambda", "+", "-", "*", "<", "car", "cdr", "cons", "null?", "cons?"} {
			rd.syms[name] = int32(i)
		}
		rd.next = symUser
		var src []byte
		for _, s := range lispScripts {
			src = append(src, s...)
			src = append(src, '\n')
		}
		// Calls with input-dependent sizes. The filtpos calls walk literal
		// lists of random-sign integers, so their sign compares are
		// genuinely data dependent — the 5/5 population databases and
		// interpreters contribute in the paper.
		calls := []string{}
		for i := 0; i < 8; i++ {
			n := 6 + r.Intn(10)
			switch r.Intn(8) {
			case 0:
				calls = append(calls, "(fib "+itoa(int64(n))+")")
			case 1:
				calls = append(calls, "(len (iota "+itoa(int64(n*4))+"))")
			case 2:
				calls = append(calls, "(summ (rev (iota "+itoa(int64(n*3))+")))")
			case 3:
				calls = append(calls, "(tak "+itoa(int64(n))+" "+itoa(int64(n/2))+" "+itoa(int64(n/4))+")")
			case 4:
				calls = append(calls, "(len (app (iota "+itoa(int64(n))+") (iota "+itoa(int64(n*2))+")))")
			default:
				lit := make([]byte, 0, 512)
				lit = append(lit, "(summ (filtpos (quote ("...)
				for j := 0; j < n*8; j++ {
					if r.Bool(0.5) {
						lit = append(lit, '-')
					}
					lit = appendInt(lit, int64(1+r.Intn(99)))
					lit = append(lit, ' ')
				}
				lit = append(lit, "))))"...)
				calls = append(calls, string(lit))
			}
		}
		for _, c := range calls {
			src = append(src, c...)
			src = append(src, '\n')
		}
		rd.src = src
		for {
			expr, ok := rd.read()
			if !ok {
				break
			}
			in.roots = append(in.roots, expr)
			in.eval(expr)
			if t.N() >= target {
				return
			}
		}
	}
}

func itoa(v int64) string {
	return string(appendInt(nil, v))
}

func lispSpecs() []Spec {
	return []Spec{{
		Bench:  "li",
		Input:  "ref.lsp",
		Target: 8493448, // paper: 8,493,447,845 /1000
		Seed:   0x11_0001,
		run:    lispRun,
	}}
}
