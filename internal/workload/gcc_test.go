package workload

import (
	"testing"

	"btr/internal/trace"
)

func nullTracer() *T {
	return &T{sink: trace.SinkFunc(func(uint64, bool) {})}
}

func TestGccLexerTokens(t *testing.T) {
	tr := nullTracer()
	toks := gccLex(tr, []byte("let ab = 12 + x; # comment\nif (a < 3) { print a; }"))
	kinds := make([]int, 0, len(toks))
	for _, tok := range toks {
		kinds = append(kinds, tok.kind)
	}
	want := []int{tkLet, tkIdent, tkAssign, tkNum, tkPlus, tkIdent, tkSemi,
		tkIf, tkLParen, tkIdent, tkLess, tkNum, tkRParen,
		tkLBrace, tkPrint, tkIdent, tkSemi, tkRBrace, tkEOF}
	if len(kinds) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(kinds), len(want), kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("token %d: got %d want %d", i, kinds[i], want[i])
		}
	}
	if toks[3].val != 12 {
		t.Fatalf("number literal parsed as %d", toks[3].val)
	}
}

func TestGccConstantFolding(t *testing.T) {
	tr := nullTracer()
	// (2 + 3) * 4 must fold to 20.
	toks := gccLex(tr, []byte("let a = (2 + 3) * 4;"))
	prog := gccParse(tr, toks)
	if len(prog) != 1 || prog[0].op != 'L' {
		t.Fatalf("parse shape: %+v", prog)
	}
	folded := gccFold(tr, prog[0])
	if folded.left == nil || folded.left.op != 'n' || folded.left.val != 20 {
		t.Fatalf("folded expression: %+v", folded.left)
	}
}

func TestGccFoldDivByZeroGuard(t *testing.T) {
	tr := nullTracer()
	toks := gccLex(tr, []byte("let a = 7 / 0;"))
	prog := gccParse(tr, toks)
	folded := gccFold(tr, prog[0])
	// Division by zero folds to 0 (guarded), not a panic.
	if folded.left.op != 'n' || folded.left.val != 0 {
		t.Fatalf("div-by-zero fold: %+v", folded.left)
	}
}

func TestGccRegAlloc(t *testing.T) {
	tr := nullTracer()
	// Six overlapping loads with 3 registers: must report spills but not
	// panic, and with ample registers must report none.
	var code []gccInstr
	for v := int64(0); v < 6; v++ {
		code = append(code, gccInstr{op: 'l', arg: v})
	}
	for v := int64(0); v < 6; v++ {
		code = append(code, gccInstr{op: 's', arg: v})
	}
	if spills := gccRegAlloc(tr, code, 3); spills == 0 {
		t.Fatal("expected spills with 6 live intervals over 3 registers")
	}
	if spills := gccRegAlloc(tr, code, 8); spills != 0 {
		t.Fatalf("expected no spills with 8 registers, got %d", spills)
	}
	if spills := gccRegAlloc(tr, nil, 4); spills != 0 {
		t.Fatalf("empty code spilled %d", spills)
	}
}

func TestGccGenEmitsCode(t *testing.T) {
	tr := nullTracer()
	toks := gccLex(tr, []byte("let a = 1 + b; print a;"))
	prog := gccParse(tr, toks)
	var code []gccInstr
	for _, n := range prog {
		code = gccGen(tr, n, code)
	}
	if len(code) < 5 {
		t.Fatalf("generated only %d instructions", len(code))
	}
	// Last instruction of a print statement is 'p'.
	if code[len(code)-1].op != 'p' {
		t.Fatalf("last op %c", code[len(code)-1].op)
	}
}
