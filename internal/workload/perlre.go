package workload

import "btr/internal/rng"

// perl: text/number scripting workloads standing in for SPEC95 134.perl,
// with the paper's two inputs. primes.pl is a trial-division prime hunter
// (modulo tests with number-theoretic bias, square-bound loop exits);
// scrabbl.pl is a word-game scorer (letter-multiset feasibility tests near
// 50%, running-maximum updates — the classic unpredictable compare). Both
// also push generated lines through a small Thompson-NFA regex engine,
// whose character-class tests are data dependent.

// perl branch sites.
const (
	psMoreWork      = 1
	psDivisible     = 2
	psDivLoopMore   = 3
	psIsPrime       = 4
	psDigitSumOdd   = 5
	psTwinPrime     = 6
	psRackHasLetter = 7
	psWordFeasible  = 8
	psBetterScore   = 9
	psBonusTile     = 10
	psHashProbe     = 11
	psHashHit       = 12
	psNFAMoreChars  = 13
	psNFACharClass  = 14
	psNFAStateLive  = 15
	psNFAMatched    = 16
	psNFASplit      = 17
	psLineMore      = 18
	psNumOverflow   = 19 // hot-path guard: candidate stays in range
	psWordLenOK     = 20 // hot-path guard: word length sane
	psRackSane      = 21 // hot-path guard: rack has 7 tiles
)

// --- tiny Thompson NFA regex engine ---

// reInstr is one NFA instruction: rune-class match, split, or accept.
type reInstr struct {
	op   uint8 // 0 = class, 1 = split, 2 = accept
	lo   byte
	hi   byte
	x, y int // successors
}

// reCompile builds an NFA for a tiny pattern language: concatenation of
// classes [a-z], literal chars, and postfix +/* on single terms. It is
// deliberately minimal; the engine's runtime branches are the workload.
func reCompile(pat string) []reInstr {
	var prog []reInstr
	i := 0
	for i < len(pat) {
		var lo, hi byte
		switch {
		case pat[i] == '[' && i+4 < len(pat) && pat[i+2] == '-':
			lo, hi = pat[i+1], pat[i+3]
			i += 5
		default:
			lo, hi = pat[i], pat[i]
			i++
		}
		switch {
		case i < len(pat) && pat[i] == '*':
			// e*: split first (zero occurrences allowed), atom loops back.
			i++
			split := len(prog)
			prog = append(prog, reInstr{op: 1, x: split + 1, y: split + 2})
			prog = append(prog, reInstr{op: 0, lo: lo, hi: hi, x: split})
		case i < len(pat) && pat[i] == '+':
			// e+: atom first (one occurrence required), then split back.
			i++
			atom := len(prog)
			prog = append(prog, reInstr{op: 0, lo: lo, hi: hi, x: atom + 1})
			prog = append(prog, reInstr{op: 1, x: atom, y: atom + 2})
		default:
			atom := len(prog)
			prog = append(prog, reInstr{op: 0, lo: lo, hi: hi, x: atom + 1})
		}
	}
	prog = append(prog, reInstr{op: 2})
	return prog
}

// reMatch runs the NFA over text with a worklist of live states,
// reporting whether any prefix reaches accept.
func reMatch(t *T, prog []reInstr, text []byte) bool {
	cur := make([]int, 0, len(prog))
	next := make([]int, 0, len(prog))
	onList := make([]int, len(prog))
	gen := 0

	var add func(list []int, s int) []int
	add = func(list []int, s int) []int {
		if s >= len(prog) || onList[s] == gen {
			return list
		}
		onList[s] = gen
		if t.B(psNFASplit, prog[s].op == 1) {
			list = add(list, prog[s].x)
			return add(list, prog[s].y)
		}
		return append(list, s)
	}

	gen++
	cur = add(cur, 0)
	for i := 0; t.B(psNFAMoreChars, i < len(text)); i++ {
		c := text[i]
		gen++
		next = next[:0]
		for _, s := range cur {
			ins := prog[s]
			if ins.op == 2 {
				t.B(psNFAMatched, true)
				return true
			}
			if t.B(psNFACharClass, c >= ins.lo && c <= ins.hi) {
				next = add(next, ins.x)
			}
		}
		cur, next = next, cur
		if t.B(psNFAStateLive, len(cur) == 0) {
			return false
		}
	}
	for _, s := range cur {
		if prog[s].op == 2 {
			t.B(psNFAMatched, true)
			return true
		}
	}
	t.B(psNFAMatched, false)
	return false
}

// --- primes.pl ---

func primesRun(t *T, r *rng.Rand, target int64) {
	pats := [][]reInstr{
		reCompile("[0-9]+"),
		reCompile("1[0-9]*7"),
		reCompile("[2-5]+[0-9]"),
	}
	n := int64(100 + r.Intn(50))
	lastPrime := int64(2)
	for t.B(psMoreWork, t.N() < target) {
		n++
		t.B(psNumOverflow, n > 1<<60) // overflow trap, never fires
		// trial division up to sqrt(n)
		isPrime := n >= 2
		for d := int64(2); t.B(psDivLoopMore, d*d <= n); d++ {
			if t.B(psDivisible, n%d == 0) {
				isPrime = false
				break
			}
		}
		if t.B(psIsPrime, isPrime) {
			t.B(psTwinPrime, n-lastPrime == 2)
			lastPrime = n
			// digit-sum parity of each prime found
			sum := int64(0)
			for v := n; v > 0; v /= 10 {
				sum += v % 10
			}
			t.B(psDigitSumOdd, sum&1 == 1)
			// occasionally regex-scan the decimal form
			line := appendInt(nil, n)
			reMatch(t, pats[int(n%3)], line)
		}
	}
}

// --- scrabbl.pl ---

var scrabbleScores = [26]int{
	1, 3, 3, 2, 1, 4, 2, 4, 1, 8, 5, 1, 3, 1, 1, 3, 10, 1, 1, 1, 1, 4, 4, 8, 4, 10,
}

func scrabblRun(t *T, r *rng.Rand, target int64) {
	dict := makeVocabulary(r, 400)
	pat := reCompile("[a-z]+g")
	// word-frequency hash table with linear probing
	const tableSize = 1024
	keys := make([]string, tableSize)
	counts := make([]int, tableSize)
	for t.B(psMoreWork, t.N() < target) {
		// draw a 7-letter rack
		var rack [26]int
		for i := 0; i < 7; i++ {
			rack[r.Intn(26)]++
		}
		t.B(psRackSane, true) // tile-count invariant, always holds
		bestScore, bestWord := 0, ""
		for _, w := range dict {
			t.B(psWordLenOK, len(w) <= 15)
			// feasibility: does the rack cover the word's letters?
			var need [26]int
			feasible := true
			for i := 0; i < len(w); i++ {
				c := int(w[i] - 'a')
				need[c]++
				if !t.B(psRackHasLetter, need[c] <= rack[c]) {
					feasible = false
					break
				}
			}
			if !t.B(psWordFeasible, feasible) {
				continue
			}
			score := 0
			for i := 0; i < len(w); i++ {
				s := scrabbleScores[w[i]-'a']
				if t.B(psBonusTile, (int(w[i])+i)%7 == 0) {
					s *= 2
				}
				score += s
			}
			if t.B(psBetterScore, score > bestScore) {
				bestScore, bestWord = score, w
			}
		}
		if bestWord != "" {
			// count the winning word in the hash table
			h := 0
			for i := 0; i < len(bestWord); i++ {
				h = h*31 + int(bestWord[i])
			}
			slot := h & (tableSize - 1)
			for t.B(psHashProbe, keys[slot] != "" && keys[slot] != bestWord) {
				slot = (slot + 1) & (tableSize - 1)
			}
			if t.B(psHashHit, keys[slot] == bestWord) {
				counts[slot]++
			} else {
				keys[slot] = bestWord
				counts[slot] = 1
			}
			reMatch(t, pat, []byte(bestWord))
		}
		t.B(psLineMore, true)
	}
}

func perlSpecs() []Spec {
	return []Spec{
		{Bench: "perl", Input: "primes.pl", Target: 1738514, Seed: 0x9E_0001, run: primesRun},
		{Bench: "perl", Input: "scrabbl.pl", Target: 3150940, Seed: 0x9E_0002, run: scrabblRun},
	}
}
