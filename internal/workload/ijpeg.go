package workload

import "btr/internal/rng"

// ijpeg: an 8x8-block image coder standing in for SPEC95 132.ijpeg.
// It synthesises an image with per-input statistics, then for each block
// runs a separable integer DCT approximation, quantisation, zig-zag
// run-length encoding and a bit-serial entropy stage, and finally the
// inverse path with an error check. Image codecs contribute the counted
// loops (high-taken, low-transition branches), zero-run guards whose bias
// tracks image smoothness, bit-value branches near 50%, and a strict
// even/odd double-buffer alternator — the transition-class-10 population
// the paper highlights.

// ijpeg branch sites.
const (
	jsMoreBlocks   = 1
	jsRowLoop      = 2
	jsColLoop      = 3
	jsCoefZero     = 4
	jsRunExtend    = 5
	jsBitSet       = 6
	jsBufParity    = 7 // double-buffer flip: perfect alternator
	jsClampHigh    = 8
	jsClampLow     = 9
	jsEdgePixel    = 10
	jsSmoothPatch  = 11
	jsEOBEarly     = 12
	jsErrLarge     = 13
	jsDCPredPos    = 14
	jsScanMore     = 15
	jsCoefClip     = 16 // hot-path guard: quantised coefficient in range
	jsPixelRange   = 17 // hot-path guard: reconstructed pixel plausible
	jsBlockAligned = 18 // hot-path guard: block origin inside image
)

// ijpegParams controls the synthetic image statistics per input.
type ijpegParams struct {
	width, height int
	noise         int     // amplitude of white noise
	edgeProb      float64 // probability a region boundary falls on a block
	smoothness    float64 // probability a block is a smooth gradient
}

var zigzag8 = [64]int{
	0, 1, 8, 16, 9, 2, 3, 10,
	17, 24, 32, 25, 18, 11, 4, 5,
	12, 19, 26, 33, 40, 48, 41, 34,
	27, 20, 13, 6, 7, 14, 21, 28,
	35, 42, 49, 56, 57, 50, 43, 36,
	29, 22, 15, 23, 30, 37, 44, 51,
	58, 59, 52, 45, 38, 31, 39, 46,
	53, 60, 61, 54, 47, 55, 62, 63,
}

var quant8 = [64]int32{
	16, 11, 10, 16, 24, 40, 51, 61,
	12, 12, 14, 19, 26, 58, 60, 55,
	14, 13, 16, 24, 40, 57, 69, 56,
	14, 17, 22, 29, 51, 87, 80, 62,
	18, 22, 37, 56, 68, 109, 103, 77,
	24, 35, 55, 64, 81, 104, 113, 92,
	49, 64, 78, 87, 103, 121, 120, 101,
	72, 92, 95, 98, 112, 100, 103, 99,
}

func ijpegRun(p ijpegParams) func(t *T, r *rng.Rand, target int64) {
	return func(t *T, r *rng.Rand, target int64) {
		blocksX := p.width / 8
		blocksY := p.height / 8
		var block, coefs, recon [64]int32
		blockIndex := 0
		prevDC := int32(0)
		for t.N() < target {
			img := synthesizeImage(t, r, p, target)
			for by := 0; t.B(jsScanMore, by < blocksY); by++ {
				for bx := 0; bx < blocksX; bx++ {
					// Double-buffer parity: alternates strictly.
					t.B(jsBufParity, blockIndex&1 == 0)
					t.B(jsBlockAligned, bx*8+8 <= p.width && by*8+8 <= p.height)
					blockIndex++
					loadBlock(t, img, p.width, bx, by, &block)
					fdct8(t, &block, &coefs)
					nz := quantize(t, &coefs)
					prevDC = rleEncode(t, &coefs, prevDC, nz)
					dequantize(&coefs)
					idct8(t, &coefs, &recon)
					checkError(t, &block, &recon)
					if t.N() >= target {
						return
					}
				}
			}
		}
	}
}

// synthesizeImage builds one frame: smooth gradients, occasional hard
// edges, and input-dependent noise. Rows beyond the target budget are
// left as flat base color so tiny-scale runs still reach the block stage.
func synthesizeImage(t *T, r *rng.Rand, p ijpegParams, target int64) []int32 {
	img := make([]int32, p.width*p.height)
	base := int32(r.Intn(128) + 64)
	for i := range img {
		img[i] = base
	}
	for y := 0; y < p.height; y++ {
		if t.N() >= target/2 {
			break
		}
		rowEdge := t.B(jsEdgePixel, r.Bool(p.edgeProb))
		for x := 0; x < p.width; x++ {
			v := base + int32(x/4) + int32(y/8)
			if rowEdge && x > p.width/2 {
				v += 90
			}
			if !t.B(jsSmoothPatch, r.Bool(p.smoothness)) {
				v += int32(r.Intn(2*p.noise+1) - p.noise)
			}
			if t.B(jsClampHigh, v > 255) {
				v = 255
			} else if t.B(jsClampLow, v < 0) {
				v = 0
			}
			img[y*p.width+x] = v
		}
	}
	return img
}

func loadBlock(t *T, img []int32, width, bx, by int, block *[64]int32) {
	for y := 0; t.B(jsRowLoop, y < 8); y++ {
		row := (by*8 + y) * width
		for x := 0; x < 8; x++ {
			block[y*8+x] = img[row+bx*8+x] - 128
		}
	}
}

// fdct8 is a separable integer approximation of the 8x8 DCT: enough
// arithmetic structure to exercise the counted loops without floating
// point.
func fdct8(t *T, in, out *[64]int32) {
	var tmp [64]int32
	for y := 0; y < 8; y++ {
		for u := 0; t.B(jsColLoop, u < 8); u++ {
			var acc int32
			for x := 0; x < 8; x++ {
				acc += in[y*8+x] * dctCos[u*8+x]
			}
			tmp[y*8+u] = acc >> 7
		}
	}
	for u := 0; u < 8; u++ {
		for v := 0; v < 8; v++ {
			var acc int32
			for y := 0; y < 8; y++ {
				acc += tmp[y*8+u] * dctCos[v*8+y]
			}
			out[v*8+u] = acc >> 9
		}
	}
}

// dctCos holds cos((2x+1)*u*pi/16) scaled by 128, precomputed as integers.
var dctCos = [64]int32{
	128, 128, 128, 128, 128, 128, 128, 128,
	125, 106, 71, 25, -25, -71, -106, -125,
	118, 49, -49, -118, -118, -49, 49, 118,
	106, -25, -125, -71, 71, 125, 25, -106,
	90, -90, -90, 90, 90, -90, -90, 90,
	71, -125, 25, 106, -106, -25, 125, -71,
	49, -118, 118, -49, -49, 118, -118, 49,
	25, -71, 106, -125, 125, -106, 71, -25,
}

func quantize(t *T, coefs *[64]int32) int {
	nonzero := 0
	for i := 0; i < 64; i++ {
		q := coefs[i] / quant8[i]
		t.B(jsCoefClip, q > 2047 || q < -2048) // saturation guard, never fires
		coefs[i] = q
		if !t.B(jsCoefZero, q == 0) {
			nonzero++
		}
	}
	return nonzero
}

func dequantize(coefs *[64]int32) {
	for i := 0; i < 64; i++ {
		coefs[i] *= quant8[i]
	}
}

// rleEncode walks the zig-zag order emitting (run, level) pairs and
// bit-serialises the levels; returns the new DC predictor.
func rleEncode(t *T, coefs *[64]int32, prevDC int32, nonzero int) int32 {
	dc := coefs[0]
	diff := dc - prevDC
	t.B(jsDCPredPos, diff >= 0)
	run := 0
	emitted := 0
	for i := 1; i < 64; i++ {
		c := coefs[zigzag8[i]]
		if t.B(jsRunExtend, c == 0) {
			run++
			continue
		}
		// bit-serialise the magnitude: data-dependent ~50% bit tests
		mag := c
		if mag < 0 {
			mag = -mag
		}
		for mag > 0 {
			t.B(jsBitSet, mag&1 == 1)
			mag >>= 1
		}
		run = 0
		emitted++
		if t.B(jsEOBEarly, emitted >= nonzero) {
			break
		}
	}
	return dc
}

func idct8(t *T, in, out *[64]int32) {
	var tmp [64]int32
	for v := 0; v < 8; v++ {
		for x := 0; x < 8; x++ {
			var acc int32
			for u := 0; u < 8; u++ {
				acc += in[v*8+u] * dctCos[u*8+x]
			}
			tmp[v*8+x] = acc >> 9
		}
	}
	for x := 0; x < 8; x++ {
		for y := 0; y < 8; y++ {
			var acc int32
			for v := 0; v < 8; v++ {
				acc += tmp[v*8+x] * dctCos[v*8+y]
			}
			out[y*8+x] = acc >> 7
		}
	}
}

func checkError(t *T, orig, recon *[64]int32) int {
	large := 0
	for i := 0; i < 64; i++ {
		t.B(jsPixelRange, recon[i] >= -512 && recon[i] <= 512)
		d := orig[i] - recon[i]
		if d < 0 {
			d = -d
		}
		if t.B(jsErrLarge, d > 40) {
			large++
		}
	}
	return large
}

func ijpegSpecs() []Spec {
	return []Spec{
		{
			Bench: "ijpeg", Input: "penguin.ppm", Target: 1548836, Seed: 0x1_3000,
			run: ijpegRun(ijpegParams{width: 128, height: 64, noise: 4, edgeProb: 0.05, smoothness: 0.85}),
		},
		{
			Bench: "ijpeg", Input: "specmun.ppm", Target: 1392275, Seed: 0x1_3001,
			run: ijpegRun(ijpegParams{width: 128, height: 64, noise: 22, edgeProb: 0.15, smoothness: 0.35}),
		},
		{
			Bench: "ijpeg", Input: "vigo.ppm", Target: 1627642, Seed: 0x1_3002,
			run: ijpegRun(ijpegParams{width: 128, height: 64, noise: 10, edgeProb: 0.30, smoothness: 0.60}),
		},
	}
}
