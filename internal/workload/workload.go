// Package workload provides the instrumented programs that stand in for
// the paper's SPECint95 benchmarks (§3, Table 1).
//
// SPEC95 binaries and an Alpha/SimpleScalar toolchain are not available,
// so each benchmark is replaced by a deterministic Go mini-program that is
// an algorithmic analogue of the original (an LZW compressor for compress,
// an expression compiler for gcc, a game-tree searcher for go, ...). Each
// program is instrumented at every interesting conditional with a Tracer
// call, so running a workload *is* running the traced program — the branch
// stream is emergent program behaviour, not synthesised noise. Workloads
// replay bit-identically, which lets the analysis pipeline profile on one
// pass and simulate predictors on a second without storing traces.
//
// Input sets mirror Table 1: the same benchmark/input rows, with dynamic
// branch counts scaled down (the paper's 66 billion total would be
// pointless for rate metrics that converge by millions) but preserving the
// paper's relative input sizes.
package workload

import (
	"fmt"
	"sort"

	"btr/internal/rng"
	"btr/internal/trace"
)

// T is the tracer handed to every workload. Workloads call B at each
// conditional branch site; the idiomatic use is
//
//	if t.B(siteID, x < y) { ... }
//
// Site IDs are small integers unique within one workload run; T maps them
// into a per-benchmark PC range so that different benchmarks never share
// addresses.
type T struct {
	sink trace.Sink
	base uint64
	n    int64
}

// B records one dynamic execution of the conditional branch at site and
// returns the outcome unchanged so it can wrap a condition in place.
func (t *T) B(site uint32, taken bool) bool {
	t.sink.Branch(t.base+uint64(site)<<2, taken)
	t.n++
	return taken
}

// N returns the number of dynamic branches emitted so far. Workloads use
// it to size their outer loops against the spec's target.
func (t *T) N() int64 { return t.n }

// Spec describes one benchmark/input row of Table 1.
type Spec struct {
	// Bench is the benchmark name, e.g. "gcc".
	Bench string
	// Input is the input-set name, e.g. "amptjp.i".
	Input string
	// Target is the dynamic conditional branch count to aim for at scale
	// 1.0. Runs stop at the first outer-iteration boundary at or past the
	// target, so realised counts slightly exceed it.
	Target int64
	// Seed fixes the workload's private random stream.
	Seed uint64

	run func(t *T, r *rng.Rand, target int64)
}

// Name returns "bench/input".
func (s Spec) Name() string { return s.Bench + "/" + s.Input }

// PCBase returns the base address for the spec's branch sites. Bases are
// derived from the benchmark name so every benchmark occupies a disjoint
// 2^22-byte region.
func (s Spec) PCBase() uint64 {
	var h uint64 = 1469598103934665603 // FNV-64 offset basis
	for i := 0; i < len(s.Bench); i++ {
		h ^= uint64(s.Bench[i])
		h *= 1099511628211
	}
	return 0x400000 + (h%256)<<22
}

// Fingerprint hashes the spec parameters that select its event stream —
// bench, input, target and seed — so recordings of two different specs
// that happen to share a name never alias in a trace cache. The run
// function itself is deliberately not hashed (its code address would
// vary across rebuilds and PIE loads, breaking cross-process spill
// reuse), so specs with identical parameters but different generator
// code still collide — in memory as well as on disk. Callers defining
// several custom generators must give them distinct bench/input/seed
// parameters (see also the spill-dir caveat on trace.NewCache).
func (s Spec) Fingerprint() uint64 {
	h := uint64(1469598103934665603) // FNV-64 offset basis
	mix := func(b byte) { h ^= uint64(b); h *= 1099511628211 }
	for i := 0; i < len(s.Bench); i++ {
		mix(s.Bench[i])
	}
	mix(0)
	for i := 0; i < len(s.Input); i++ {
		mix(s.Input[i])
	}
	mix(0)
	for i := 0; i < 8; i++ {
		mix(byte(uint64(s.Target) >> (8 * i)))
	}
	for i := 0; i < 8; i++ {
		mix(byte(s.Seed >> (8 * i)))
	}
	return h
}

// RegistryFingerprint hashes the entire workload registry — every
// suite spec's identifying parameters (bench, input, target, seed, via
// Spec.Fingerprint) — into one value naming this build's workload
// generation. Trace caches embed it in spill filenames so a -cachedir
// written by a build with different workloads self-invalidates (see
// trace.NewCache).
func RegistryFingerprint() uint64 {
	h := uint64(1469598103934665603) // FNV-64 offset basis
	for _, s := range Suite() {
		fp := s.Fingerprint()
		for i := 0; i < 8; i++ {
			h ^= uint64(byte(fp >> (8 * i)))
			h *= 1099511628211
		}
	}
	return h
}

// Run executes the workload at the given scale, emitting branch events to
// sink. Scale multiplies the spec's target count; scale <= 0 is treated
// as 1.0, the registry's default sizing. Runs with equal (spec, scale)
// emit identical streams.
func (s Spec) Run(sink trace.Sink, scale float64) int64 {
	if scale <= 0 {
		scale = 1
	}
	target := int64(float64(s.Target) * scale)
	if target < 1 {
		target = 1
	}
	t := &T{sink: sink, base: s.PCBase()}
	s.run(t, rng.New(s.Seed), target)
	return t.n
}

// NewSpec builds a custom workload spec from a user-supplied instrumented
// program. The run function must be deterministic given (r, target) and
// should emit branches via t.B until t.N() reaches target, checking at
// reasonable intervals so overshoot stays bounded. Custom specs plug into
// every analysis in this repository (profiling, sweeps, experiments that
// take explicit spec lists).
func NewSpec(bench, input string, target int64, seed uint64, run func(t *T, r *rng.Rand, target int64)) Spec {
	return Spec{Bench: bench, Input: input, Target: target, Seed: seed, run: run}
}

// Suite returns every benchmark/input spec, in Table 1 order (benchmarks
// alphabetical, inputs in the paper's listed order).
func Suite() []Spec {
	var specs []Spec
	specs = append(specs, compressSpecs()...)
	specs = append(specs, gccSpecs()...)
	specs = append(specs, goSpecs()...)
	specs = append(specs, ijpegSpecs()...)
	specs = append(specs, lispSpecs()...)
	specs = append(specs, m88kSpecs()...)
	specs = append(specs, perlSpecs()...)
	specs = append(specs, vortexSpecs()...)
	return specs
}

// Benchmarks returns the distinct benchmark names in Table 1 order.
func Benchmarks() []string {
	seen := make(map[string]bool)
	var out []string
	for _, s := range Suite() {
		if !seen[s.Bench] {
			seen[s.Bench] = true
			out = append(out, s.Bench)
		}
	}
	return out
}

// Find returns the spec named bench/input.
func Find(bench, input string) (Spec, error) {
	for _, s := range Suite() {
		if s.Bench == bench && s.Input == input {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("workload: no spec %s/%s", bench, input)
}

// ByBench groups the suite's specs by benchmark name.
func ByBench() map[string][]Spec {
	m := make(map[string][]Spec)
	for _, s := range Suite() {
		m[s.Bench] = append(m[s.Bench], s)
	}
	for _, specs := range m {
		sort.SliceStable(specs, func(i, j int) bool { return specs[i].Input < specs[j].Input })
	}
	return m
}
