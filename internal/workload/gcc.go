package workload

import "btr/internal/rng"

// gcc: a small expression-language compiler standing in for SPEC95
// 126.gcc. Each "input file" is a generated program in a C-like statement
// language; the workload lexes it character by character, parses it with a
// recursive-descent parser, constant-folds the AST, emits stack-machine
// code, and runs a peephole pass. Compilers are branch-classification
// gold: character-class tests, token dispatch chains, grammar guards,
// both-operands-constant checks, and pattern-match scans, spread over many
// static sites (gcc contributes the most static branches in the paper's
// suite, and does here too).

// Lexer sites.
const (
	gsMoreChars   = 1
	gsIsSpace     = 2
	gsIsDigit     = 3
	gsIsAlpha     = 4
	gsDigitMore   = 5
	gsAlphaMore   = 6
	gsIsKeyword   = 7
	gsTwoCharOp   = 8
	gsIsComment   = 9
	gsCommentMore = 10
	gsValidByte   = 11 // hot-path guard: byte is printable source text
	gsLineLimit   = 12 // hot-path guard: line-length sanity check
)

// Parser sites.
const (
	gsMoreStmts   = 20
	gsStmtIsLet   = 21
	gsStmtIsIf    = 22
	gsStmtIsWhile = 23
	gsStmtIsPrint = 24
	gsHasElse     = 25
	gsAddOpMore   = 26
	gsMulOpMore   = 27
	gsCmpOp       = 28
	gsUnaryNeg    = 29
	gsPrimParen   = 30
	gsPrimNum     = 31
	gsPrimIdent   = 32
	gsBlockMore   = 33
)

// Constant folder sites.
const (
	gsFoldBothConst = 40
	gsFoldLeftZero  = 41
	gsFoldRightZero = 42
	gsFoldRightOne  = 43
	gsFoldIsBinary  = 44
	gsFoldDivGuard  = 45
)

// Code generator and peephole sites.
const (
	gsGenIsLeaf   = 50
	gsGenIsConst  = 51
	gsGenSpill    = 52
	gsPeepWindow  = 53
	gsPeepPushPop = 54
	gsPeepAddZero = 55
	gsPeepDupSeq  = 56
	gsEmitWide    = 57
	gsParseDepth  = 58 // hot-path guard: parse recursion sanity
	gsTokenValid  = 59 // hot-path guard: token kind in range
)

// Register allocator sites.
const (
	gsRAScanMore   = 60 // interval scan loop
	gsRAExpired    = 61 // active interval expired before current start
	gsRAHaveFree   = 62 // a free physical register exists
	gsRASpillLast  = 63 // current interval outlives the furthest active one
	gsRAActiveMore = 64 // active-list walk
	gsRAIsUse      = 65 // instruction references a virtual register
	gsRATwoAddr    = 66 // instruction also writes a register
)

type gccToken struct {
	kind int // tkNum, tkIdent, ...
	val  int64
	text string
}

const (
	tkEOF = iota
	tkNum
	tkIdent
	tkLet
	tkIf
	tkElse
	tkWhile
	tkPrint
	tkPlus
	tkMinus
	tkStar
	tkSlash
	tkLParen
	tkRParen
	tkLBrace
	tkRBrace
	tkAssign
	tkSemi
	tkLess
	tkGreater
	tkEqEq
)

var gccKeywords = map[string]int{
	"let": tkLet, "if": tkIf, "else": tkElse, "while": tkWhile, "print": tkPrint,
}

// gccParams shapes one input file's generated program, mirroring how the
// paper's gcc inputs differ in size and character.
type gccParams struct {
	stmts     int     // statements per generated file
	exprDepth int     // maximum expression nesting
	idents    int     // identifier pool size
	constBias float64 // probability a leaf is a literal constant
	ifShare   float64 // share of if statements
	loopShare float64 // share of while statements
}

func gccRun(p gccParams) func(t *T, r *rng.Rand, target int64) {
	return func(t *T, r *rng.Rand, target int64) {
		for t.N() < target {
			src := gccGenerate(r, p)
			toks := gccLex(t, src)
			ast := gccParse(t, toks)
			folded := make([]*gccNode, 0, len(ast))
			for _, n := range ast {
				folded = append(folded, gccFold(t, n))
			}
			var code []gccInstr
			for _, n := range folded {
				code = gccGen(t, n, code)
			}
			gccPeephole(t, code)
			gccRegAlloc(t, code, 6)
		}
	}
}

// --- source generation ---

type gccNode struct {
	op          byte // 'n' num, 'v' var, '+', '-', '*', '/', '<', '>', '=', 'L' let, 'I' if, 'W' while, 'P' print
	val         int64
	name        int
	left, right *gccNode
	body, alt   []*gccNode
}

func gccGenerate(r *rng.Rand, p gccParams) []byte {
	var buf []byte
	var genExpr func(depth int)
	genExpr = func(depth int) {
		if depth <= 0 || r.Bool(0.35) {
			if r.Bool(p.constBias) {
				buf = appendInt(buf, int64(r.Intn(1000)))
			} else {
				buf = appendIdent(buf, r.Intn(p.idents))
			}
			return
		}
		if r.Bool(0.15) {
			buf = append(buf, '(')
			genExpr(depth - 1)
			buf = append(buf, ')')
			return
		}
		genExpr(depth - 1)
		ops := []string{" + ", " - ", " * ", " / ", " < ", " > ", " == "}
		buf = append(buf, ops[r.Intn(len(ops))]...)
		genExpr(depth - 1)
	}
	var genStmt func(depth int)
	genStmt = func(depth int) {
		roll := r.Float64()
		switch {
		case roll < p.ifShare && depth > 0:
			buf = append(buf, "if ("...)
			genExpr(p.exprDepth)
			buf = append(buf, ") { "...)
			genStmt(depth - 1)
			buf = append(buf, " } "...)
			if r.Bool(0.4) {
				buf = append(buf, "else { "...)
				genStmt(depth - 1)
				buf = append(buf, " } "...)
			}
		case roll < p.ifShare+p.loopShare && depth > 0:
			buf = append(buf, "while ("...)
			genExpr(2)
			buf = append(buf, ") { "...)
			genStmt(depth - 1)
			buf = append(buf, " } "...)
		case roll < p.ifShare+p.loopShare+0.1:
			buf = append(buf, "print "...)
			genExpr(p.exprDepth)
			buf = append(buf, "; "...)
		default:
			buf = append(buf, "let "...)
			buf = appendIdent(buf, r.Intn(p.idents))
			buf = append(buf, " = "...)
			genExpr(p.exprDepth)
			buf = append(buf, "; "...)
		}
	}
	for i := 0; i < p.stmts; i++ {
		if r.Bool(0.06) {
			buf = append(buf, "# comment line\n"...)
		}
		genStmt(2)
		buf = append(buf, '\n')
	}
	return buf
}

func appendInt(buf []byte, v int64) []byte {
	if v == 0 {
		return append(buf, '0')
	}
	var tmp [20]byte
	i := len(tmp)
	for v > 0 {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
	}
	return append(buf, tmp[i:]...)
}

func appendIdent(buf []byte, id int) []byte {
	buf = append(buf, byte('a'+id%26))
	if id >= 26 {
		buf = appendInt(buf, int64(id/26))
	}
	return buf
}

// --- lexer ---

func gccLex(t *T, src []byte) []gccToken {
	toks := make([]gccToken, 0, len(src)/3)
	i := 0
	col := 0
	for t.B(gsMoreChars, i < len(src)) {
		c := src[i]
		// Never-failing input sanity guards, the compiler's hot-path
		// error checks.
		t.B(gsValidByte, c >= '\t' && c < 127)
		if c == '\n' {
			col = 0
		} else {
			col++
		}
		t.B(gsLineLimit, col > 4096)
		if t.B(gsIsSpace, c == ' ' || c == '\n' || c == '\t') {
			i++
			continue
		}
		if t.B(gsIsComment, c == '#') {
			for t.B(gsCommentMore, i < len(src) && src[i] != '\n') {
				i++
			}
			continue
		}
		if t.B(gsIsDigit, c >= '0' && c <= '9') {
			var v int64
			for t.B(gsDigitMore, i < len(src) && src[i] >= '0' && src[i] <= '9') {
				v = v*10 + int64(src[i]-'0')
				i++
			}
			toks = append(toks, gccToken{kind: tkNum, val: v})
			continue
		}
		if t.B(gsIsAlpha, c >= 'a' && c <= 'z') {
			start := i
			for t.B(gsAlphaMore, i < len(src) && (src[i] >= 'a' && src[i] <= 'z' || src[i] >= '0' && src[i] <= '9')) {
				i++
			}
			word := string(src[start:i])
			if kw, ok := gccKeywords[word]; t.B(gsIsKeyword, ok) {
				toks = append(toks, gccToken{kind: kw})
			} else {
				toks = append(toks, gccToken{kind: tkIdent, text: word})
			}
			continue
		}
		if t.B(gsTwoCharOp, c == '=' && i+1 < len(src) && src[i+1] == '=') {
			toks = append(toks, gccToken{kind: tkEqEq})
			i += 2
			continue
		}
		var kind int
		switch c {
		case '+':
			kind = tkPlus
		case '-':
			kind = tkMinus
		case '*':
			kind = tkStar
		case '/':
			kind = tkSlash
		case '(':
			kind = tkLParen
		case ')':
			kind = tkRParen
		case '{':
			kind = tkLBrace
		case '}':
			kind = tkRBrace
		case '=':
			kind = tkAssign
		case ';':
			kind = tkSemi
		case '<':
			kind = tkLess
		case '>':
			kind = tkGreater
		default:
			kind = tkEOF
		}
		toks = append(toks, gccToken{kind: kind})
		i++
	}
	toks = append(toks, gccToken{kind: tkEOF})
	return toks
}

// --- parser ---

type gccParser struct {
	t    *T
	toks []gccToken
	pos  int
}

func (p *gccParser) peek() int { return p.toks[p.pos].kind }
func (p *gccParser) next() gccToken {
	tok := p.toks[p.pos]
	p.t.B(gsTokenValid, tok.kind >= tkEOF && tok.kind <= tkEqEq)
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return tok
}
func (p *gccParser) expect(kind int) gccToken {
	if p.peek() == kind {
		return p.next()
	}
	return gccToken{kind: kind} // error recovery: synthesise the token
}

func gccParse(t *T, toks []gccToken) []*gccNode {
	p := &gccParser{t: t, toks: toks}
	var prog []*gccNode
	for t.B(gsMoreStmts, p.peek() != tkEOF) {
		prog = append(prog, p.statement())
	}
	return prog
}

func (p *gccParser) statement() *gccNode {
	t := p.t
	t.B(gsParseDepth, p.pos > len(p.toks)) // sanity check, never taken
	switch {
	case t.B(gsStmtIsLet, p.peek() == tkLet):
		p.next()
		name := p.expect(tkIdent)
		p.expect(tkAssign)
		e := p.expr()
		p.expect(tkSemi)
		return &gccNode{op: 'L', name: identID(name.text), left: e}
	case t.B(gsStmtIsIf, p.peek() == tkIf):
		p.next()
		p.expect(tkLParen)
		cond := p.expr()
		p.expect(tkRParen)
		body := p.block()
		n := &gccNode{op: 'I', left: cond, body: body}
		if t.B(gsHasElse, p.peek() == tkElse) {
			p.next()
			n.alt = p.block()
		}
		return n
	case t.B(gsStmtIsWhile, p.peek() == tkWhile):
		p.next()
		p.expect(tkLParen)
		cond := p.expr()
		p.expect(tkRParen)
		return &gccNode{op: 'W', left: cond, body: p.block()}
	case t.B(gsStmtIsPrint, p.peek() == tkPrint):
		p.next()
		e := p.expr()
		p.expect(tkSemi)
		return &gccNode{op: 'P', left: e}
	default:
		p.next() // skip unexpected token
		return &gccNode{op: 'n', val: 0}
	}
}

func (p *gccParser) block() []*gccNode {
	p.expect(tkLBrace)
	var stmts []*gccNode
	for p.t.B(gsBlockMore, p.peek() != tkRBrace && p.peek() != tkEOF) {
		stmts = append(stmts, p.statement())
	}
	p.expect(tkRBrace)
	return stmts
}

func (p *gccParser) expr() *gccNode {
	left := p.addExpr()
	if p.t.B(gsCmpOp, p.peek() == tkLess || p.peek() == tkGreater || p.peek() == tkEqEq) {
		op := byte('<')
		switch p.next().kind {
		case tkGreater:
			op = '>'
		case tkEqEq:
			op = '='
		}
		return &gccNode{op: op, left: left, right: p.addExpr()}
	}
	return left
}

func (p *gccParser) addExpr() *gccNode {
	left := p.mulExpr()
	for p.t.B(gsAddOpMore, p.peek() == tkPlus || p.peek() == tkMinus) {
		op := byte('+')
		if p.next().kind == tkMinus {
			op = '-'
		}
		left = &gccNode{op: op, left: left, right: p.mulExpr()}
	}
	return left
}

func (p *gccParser) mulExpr() *gccNode {
	left := p.primary()
	for p.t.B(gsMulOpMore, p.peek() == tkStar || p.peek() == tkSlash) {
		op := byte('*')
		if p.next().kind == tkSlash {
			op = '/'
		}
		left = &gccNode{op: op, left: left, right: p.primary()}
	}
	return left
}

func (p *gccParser) primary() *gccNode {
	t := p.t
	if t.B(gsUnaryNeg, p.peek() == tkMinus) {
		p.next()
		return &gccNode{op: '-', left: &gccNode{op: 'n', val: 0}, right: p.primary()}
	}
	if t.B(gsPrimParen, p.peek() == tkLParen) {
		p.next()
		e := p.expr()
		p.expect(tkRParen)
		return e
	}
	if t.B(gsPrimNum, p.peek() == tkNum) {
		return &gccNode{op: 'n', val: p.next().val}
	}
	if t.B(gsPrimIdent, p.peek() == tkIdent) {
		return &gccNode{op: 'v', name: identID(p.next().text)}
	}
	p.next()
	return &gccNode{op: 'n', val: 1}
}

func identID(s string) int {
	id := 0
	for i := 0; i < len(s); i++ {
		id = id*36 + int(s[i])
	}
	return id
}

// --- constant folding ---

func gccFold(t *T, n *gccNode) *gccNode {
	if n == nil {
		return nil
	}
	isBinary := n.op == '+' || n.op == '-' || n.op == '*' || n.op == '/' ||
		n.op == '<' || n.op == '>' || n.op == '='
	if !t.B(gsFoldIsBinary, isBinary) {
		n.left = gccFold(t, n.left)
		n.right = gccFold(t, n.right)
		for i := range n.body {
			n.body[i] = gccFold(t, n.body[i])
		}
		for i := range n.alt {
			n.alt[i] = gccFold(t, n.alt[i])
		}
		return n
	}
	n.left = gccFold(t, n.left)
	n.right = gccFold(t, n.right)
	lConst := n.left.op == 'n'
	rConst := n.right.op == 'n'
	if t.B(gsFoldBothConst, lConst && rConst) {
		v := int64(0)
		l, rv := n.left.val, n.right.val
		switch n.op {
		case '+':
			v = l + rv
		case '-':
			v = l - rv
		case '*':
			v = l * rv
		case '/':
			if t.B(gsFoldDivGuard, rv != 0) {
				v = l / rv
			}
		case '<':
			if l < rv {
				v = 1
			}
		case '>':
			if l > rv {
				v = 1
			}
		case '=':
			if l == rv {
				v = 1
			}
		}
		return &gccNode{op: 'n', val: v}
	}
	if t.B(gsFoldLeftZero, lConst && n.left.val == 0 && n.op == '+') {
		return n.right
	}
	if t.B(gsFoldRightZero, rConst && n.right.val == 0 && (n.op == '+' || n.op == '-')) {
		return n.left
	}
	if t.B(gsFoldRightOne, rConst && n.right.val == 1 && (n.op == '*' || n.op == '/')) {
		return n.left
	}
	return n
}

// --- code generation ---

type gccInstr struct {
	op  byte // 'c' push const, 'l' load, 's' store, '+', '-', '*', '/', '<', '>', '=', 'p' print, 'j' jump, 'b' branch
	arg int64
}

func gccGen(t *T, n *gccNode, code []gccInstr) []gccInstr {
	if n == nil {
		return code
	}
	leaf := n.op == 'n' || n.op == 'v'
	if t.B(gsGenIsLeaf, leaf) {
		if t.B(gsGenIsConst, n.op == 'n') {
			return append(code, gccInstr{op: 'c', arg: n.val})
		}
		return append(code, gccInstr{op: 'l', arg: int64(n.name)})
	}
	switch n.op {
	case 'L':
		code = gccGen(t, n.left, code)
		code = append(code, gccInstr{op: 's', arg: int64(n.name)})
	case 'P':
		code = gccGen(t, n.left, code)
		code = append(code, gccInstr{op: 'p'})
	case 'I':
		code = gccGen(t, n.left, code)
		code = append(code, gccInstr{op: 'b'})
		for _, s := range n.body {
			code = gccGen(t, s, code)
		}
		for _, s := range n.alt {
			code = gccGen(t, s, code)
		}
	case 'W':
		code = gccGen(t, n.left, code)
		code = append(code, gccInstr{op: 'b'})
		for _, s := range n.body {
			code = gccGen(t, s, code)
		}
		code = append(code, gccInstr{op: 'j'})
	default:
		code = gccGen(t, n.left, code)
		code = gccGen(t, n.right, code)
		// Simulated register pressure: deep expressions spill.
		if t.B(gsGenSpill, len(code) > 0 && len(code)%23 == 0) {
			code = append(code, gccInstr{op: 's', arg: -1})
			code = append(code, gccInstr{op: 'l', arg: -1})
		}
		code = append(code, gccInstr{op: n.op})
	}
	return code
}

// gccPeephole scans the instruction stream for local simplification
// patterns, the classic sliding-window pass.
func gccPeephole(t *T, code []gccInstr) int {
	removed := 0
	for i := 0; t.B(gsPeepWindow, i+1 < len(code)); i++ {
		a, b := code[i], code[i+1]
		if t.B(gsPeepPushPop, a.op == 's' && b.op == 'l' && a.arg == b.arg) {
			removed++
			continue
		}
		if t.B(gsPeepAddZero, a.op == 'c' && a.arg == 0 && b.op == '+') {
			removed++
			continue
		}
		if t.B(gsPeepDupSeq, a.op == b.op && a.arg == b.arg && a.op == 'l') {
			removed++
		}
		if t.B(gsEmitWide, a.op == 'c' && a.arg > 255) {
			// wide-immediate encoding path
			_ = a
		}
	}
	return removed
}

// gccRegAlloc runs a linear-scan register allocation over the generated
// code, treating each distinct load/store argument as a virtual register.
// Linear scan is branch-classification-rich: the expiry test tracks
// interval lengths (data dependent), the free-register test is biased by
// pressure, and the spill heuristic compares interval endpoints.
func gccRegAlloc(t *T, code []gccInstr, numRegs int) int {
	// Build live intervals: first and last position of each vreg.
	type interval struct {
		vreg       int64
		start, end int
	}
	firstPos := make(map[int64]int)
	lastPos := make(map[int64]int)
	var order []int64
	for pos, ins := range code {
		isUse := ins.op == 'l' || ins.op == 's'
		if !t.B(gsRAIsUse, isUse) {
			continue
		}
		t.B(gsRATwoAddr, ins.op == 's')
		if _, seen := firstPos[ins.arg]; !seen {
			firstPos[ins.arg] = pos
			order = append(order, ins.arg)
		}
		lastPos[ins.arg] = pos
	}
	intervals := make([]interval, 0, len(order))
	for _, v := range order {
		intervals = append(intervals, interval{vreg: v, start: firstPos[v], end: lastPos[v]})
	}
	// order is already by increasing start position (first definition).

	active := make([]interval, 0, numRegs)
	free := numRegs
	spills := 0
	for i := 0; t.B(gsRAScanMore, i < len(intervals)); i++ {
		cur := intervals[i]
		// Expire old intervals.
		kept := active[:0]
		for j := 0; t.B(gsRAActiveMore, j < len(active)); j++ {
			if t.B(gsRAExpired, active[j].end < cur.start) {
				free++
				continue
			}
			kept = append(kept, active[j])
		}
		active = kept
		if t.B(gsRAHaveFree, free > 0) {
			free--
			active = append(active, cur)
			continue
		}
		// Spill: evict the interval with the furthest end if the current
		// one ends sooner.
		furthest := 0
		for j := 1; j < len(active); j++ {
			if active[j].end > active[furthest].end {
				furthest = j
			}
		}
		if t.B(gsRASpillLast, len(active) > 0 && active[furthest].end > cur.end) {
			active[furthest] = cur
		}
		spills++
	}
	return spills
}

// gccSpecs mirrors the paper's 24 gcc input files; targets are the paper's
// dynamic branch counts scaled /1000, and each input gets its own seed and
// program-shape parameters so the inputs genuinely differ.
func gccSpecs() []Spec {
	type in struct {
		name   string
		target int64
		p      gccParams
	}
	inputs := []in{
		{"amptjp.i", 194467, gccParams{stmts: 60, exprDepth: 4, idents: 40, constBias: 0.45, ifShare: 0.25, loopShare: 0.10}},
		{"c-decl-s.i", 194488, gccParams{stmts: 64, exprDepth: 3, idents: 60, constBias: 0.40, ifShare: 0.30, loopShare: 0.08}},
		{"cccp.i", 190139, gccParams{stmts: 56, exprDepth: 5, idents: 30, constBias: 0.50, ifShare: 0.22, loopShare: 0.12}},
		{"cp-decl.i", 217997, gccParams{stmts: 70, exprDepth: 4, idents: 55, constBias: 0.38, ifShare: 0.28, loopShare: 0.09}},
		{"dbxout.i", 24945, gccParams{stmts: 40, exprDepth: 3, idents: 25, constBias: 0.55, ifShare: 0.20, loopShare: 0.10}},
		{"emit-rtl.i", 25378, gccParams{stmts: 44, exprDepth: 3, idents: 35, constBias: 0.42, ifShare: 0.26, loopShare: 0.07}},
		{"explow.i", 36513, gccParams{stmts: 36, exprDepth: 5, idents: 20, constBias: 0.60, ifShare: 0.18, loopShare: 0.14}},
		{"expr.i", 153982, gccParams{stmts: 66, exprDepth: 6, idents: 45, constBias: 0.35, ifShare: 0.24, loopShare: 0.11}},
		{"gcc.i", 30394, gccParams{stmts: 42, exprDepth: 4, idents: 30, constBias: 0.48, ifShare: 0.23, loopShare: 0.10}},
		{"genoutput.i", 12971, gccParams{stmts: 30, exprDepth: 3, idents: 18, constBias: 0.52, ifShare: 0.21, loopShare: 0.08}},
		{"genrecog.i", 18202, gccParams{stmts: 34, exprDepth: 4, idents: 22, constBias: 0.47, ifShare: 0.27, loopShare: 0.09}},
		{"insn-emit.i", 20774, gccParams{stmts: 38, exprDepth: 3, idents: 28, constBias: 0.58, ifShare: 0.19, loopShare: 0.06}},
		{"insn-recog.i", 85447, gccParams{stmts: 52, exprDepth: 5, idents: 38, constBias: 0.44, ifShare: 0.29, loopShare: 0.10}},
		{"integrate.i", 33398, gccParams{stmts: 40, exprDepth: 4, idents: 32, constBias: 0.41, ifShare: 0.25, loopShare: 0.12}},
		{"jump.i", 23142, gccParams{stmts: 36, exprDepth: 4, idents: 26, constBias: 0.49, ifShare: 0.31, loopShare: 0.08}},
		{"print-tree.i", 25996, gccParams{stmts: 38, exprDepth: 5, idents: 24, constBias: 0.46, ifShare: 0.22, loopShare: 0.11}},
		{"protoize.i", 76482, gccParams{stmts: 50, exprDepth: 4, idents: 42, constBias: 0.43, ifShare: 0.24, loopShare: 0.09}},
		{"recog.i", 43592, gccParams{stmts: 44, exprDepth: 4, idents: 30, constBias: 0.51, ifShare: 0.26, loopShare: 0.10}},
		{"regclass.i", 18260, gccParams{stmts: 32, exprDepth: 3, idents: 20, constBias: 0.54, ifShare: 0.20, loopShare: 0.07}},
		{"reload1.i", 138706, gccParams{stmts: 62, exprDepth: 5, idents: 48, constBias: 0.39, ifShare: 0.27, loopShare: 0.11}},
		{"stmt-protoize.i", 153772, gccParams{stmts: 64, exprDepth: 4, idents: 50, constBias: 0.37, ifShare: 0.28, loopShare: 0.10}},
		{"stmt.i", 82471, gccParams{stmts: 52, exprDepth: 5, idents: 36, constBias: 0.45, ifShare: 0.23, loopShare: 0.12}},
		{"toplev.i", 65825, gccParams{stmts: 48, exprDepth: 4, idents: 34, constBias: 0.50, ifShare: 0.21, loopShare: 0.09}},
		{"varasm.i", 37656, gccParams{stmts: 42, exprDepth: 3, idents: 28, constBias: 0.53, ifShare: 0.25, loopShare: 0.08}},
	}
	specs := make([]Spec, 0, len(inputs))
	for i, in := range inputs {
		specs = append(specs, Spec{
			Bench:  "gcc",
			Input:  in.name,
			Target: in.target,
			Seed:   0x6CC_0000 + uint64(i)*7919,
			run:    gccRun(in.p),
		})
	}
	return specs
}
