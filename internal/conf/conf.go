// Package conf implements the confidence-estimation substrate of §5.3:
// Jacobsen-style dynamic estimators (one-level and two-level resetting
// counters) and the paper's proposal — assigning confidence statically
// from a branch's (taken, transition) class, "without needing to measure
// prior predictor accuracy for each branch".
package conf

import (
	"btr/internal/core"
)

// Estimator assigns a confidence level to each dynamic branch prediction.
// The protocol mirrors prediction: ask before, train after.
type Estimator interface {
	// Name identifies the estimator.
	Name() string
	// HighConfidence reports whether the upcoming prediction for pc
	// should be trusted.
	HighConfidence(pc uint64) bool
	// Update trains the estimator with whether the prediction was
	// correct.
	Update(pc uint64, correct bool)
}

// ResettingCounter is Jacobsen's miss-distance counter: correct
// predictions saturate it upward, one misprediction resets it to zero.
type ResettingCounter uint8

// Update returns the trained counter given max saturation.
func (c ResettingCounter) Update(correct bool, max ResettingCounter) ResettingCounter {
	if !correct {
		return 0
	}
	if c < max {
		return c + 1
	}
	return c
}

// OneLevel is the one-level dynamic estimator: a table of resetting
// counters indexed by branch address; confidence is high when the counter
// meets a threshold.
type OneLevel struct {
	counters  []ResettingCounter
	mask      uint64
	max       ResettingCounter
	threshold ResettingCounter
}

// NewOneLevel builds a 2^bits-entry estimator with the given counter
// saturation and high-confidence threshold.
func NewOneLevel(bits int, max, threshold ResettingCounter) *OneLevel {
	return &OneLevel{
		counters:  make([]ResettingCounter, 1<<uint(bits)),
		mask:      (1 << uint(bits)) - 1,
		max:       max,
		threshold: threshold,
	}
}

// Name implements Estimator.
func (o *OneLevel) Name() string { return "jacobsen-1level" }

// HighConfidence implements Estimator.
func (o *OneLevel) HighConfidence(pc uint64) bool {
	return o.counters[(pc>>2)&o.mask] >= o.threshold
}

// Update implements Estimator.
func (o *OneLevel) Update(pc uint64, correct bool) {
	i := (pc >> 2) & o.mask
	o.counters[i] = o.counters[i].Update(correct, o.max)
}

// TwoLevel is the two-level dynamic estimator: a per-branch register of
// recent correct/incorrect outcomes indexes a shared table of resetting
// counters, so confidence keys on the *pattern* of recent accuracy.
type TwoLevel struct {
	history   []uint16
	histMask  uint64
	bits      uint
	counters  []ResettingCounter
	tableMask uint64
	max       ResettingCounter
	threshold ResettingCounter
}

// NewTwoLevel builds an estimator with 2^historyEntries outcome registers
// of historyBits each and a 2^historyBits counter table.
func NewTwoLevel(historyEntries, historyBits int, max, threshold ResettingCounter) *TwoLevel {
	return &TwoLevel{
		history:   make([]uint16, 1<<uint(historyEntries)),
		histMask:  (1 << uint(historyEntries)) - 1,
		bits:      uint(historyBits),
		counters:  make([]ResettingCounter, 1<<uint(historyBits)),
		tableMask: (1 << uint(historyBits)) - 1,
		max:       max,
		threshold: threshold,
	}
}

// Name implements Estimator.
func (t *TwoLevel) Name() string { return "jacobsen-2level" }

func (t *TwoLevel) index(pc uint64) uint64 {
	return uint64(t.history[(pc>>2)&t.histMask]) & t.tableMask
}

// HighConfidence implements Estimator.
func (t *TwoLevel) HighConfidence(pc uint64) bool {
	return t.counters[t.index(pc)] >= t.threshold
}

// Update implements Estimator.
func (t *TwoLevel) Update(pc uint64, correct bool) {
	i := t.index(pc)
	t.counters[i] = t.counters[i].Update(correct, t.max)
	h := (pc >> 2) & t.histMask
	t.history[h] <<= 1
	if correct {
		t.history[h] |= 1
	}
	t.history[h] &= uint16(t.tableMask)
}

// ClassStatic assigns confidence from the branch's joint class using a
// per-class expected miss-rate table (e.g. the measured Figures 13/14
// matrix): confidence is high when the class's expected miss rate is at or
// below the threshold. It needs no runtime accuracy measurement at all.
type ClassStatic struct {
	classes   core.ClassMap
	missRate  [core.NumClasses][core.NumClasses]float64
	threshold float64
}

// NewClassStatic builds the estimator from a profiling classification and
// a per-joint-class expected miss rate matrix.
func NewClassStatic(classes core.ClassMap, missRate [core.NumClasses][core.NumClasses]float64, threshold float64) *ClassStatic {
	return &ClassStatic{classes: classes, missRate: missRate, threshold: threshold}
}

// Name implements Estimator.
func (c *ClassStatic) Name() string { return "class-static" }

// HighConfidence implements Estimator.
func (c *ClassStatic) HighConfidence(pc uint64) bool {
	jc, ok := c.classes[pc]
	if !ok {
		return false // unprofiled branches are low confidence
	}
	return c.missRate[jc.Taken][jc.Transition] <= c.threshold
}

// Update implements Estimator. The class estimator is static.
func (c *ClassStatic) Update(pc uint64, correct bool) {}

// Quadrants accumulates the confusion matrix of confidence against
// prediction correctness, from which the standard confidence metrics
// derive.
type Quadrants struct {
	HighCorrect int64 // trusted and right
	HighWrong   int64 // trusted and wrong  (the costly case)
	LowCorrect  int64 // distrusted and right (lost opportunity)
	LowWrong    int64 // distrusted and wrong (caught misprediction)
}

// Observe records one prediction.
func (q *Quadrants) Observe(highConf, correct bool) {
	switch {
	case highConf && correct:
		q.HighCorrect++
	case highConf && !correct:
		q.HighWrong++
	case !highConf && correct:
		q.LowCorrect++
	default:
		q.LowWrong++
	}
}

// Total returns the number of observations.
func (q *Quadrants) Total() int64 {
	return q.HighCorrect + q.HighWrong + q.LowCorrect + q.LowWrong
}

// Sensitivity (SENS) is the fraction of mispredictions flagged low
// confidence — how much of the problem the estimator catches.
func (q *Quadrants) Sensitivity() float64 {
	wrong := q.HighWrong + q.LowWrong
	if wrong == 0 {
		return 0
	}
	return float64(q.LowWrong) / float64(wrong)
}

// PredictiveValueNegative (PVN) is the fraction of low-confidence
// predictions that were in fact wrong — how actionable a low-confidence
// signal is.
func (q *Quadrants) PredictiveValueNegative() float64 {
	low := q.LowCorrect + q.LowWrong
	if low == 0 {
		return 0
	}
	return float64(q.LowWrong) / float64(low)
}

// Specificity (SPEC) is the fraction of correct predictions flagged high
// confidence.
func (q *Quadrants) Specificity() float64 {
	correct := q.HighCorrect + q.LowCorrect
	if correct == 0 {
		return 0
	}
	return float64(q.HighCorrect) / float64(correct)
}
