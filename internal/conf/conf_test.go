package conf

import (
	"testing"
	"testing/quick"

	"btr/internal/core"
)

func TestResettingCounter(t *testing.T) {
	c := ResettingCounter(0)
	for i := 0; i < 20; i++ {
		c = c.Update(true, 15)
	}
	if c != 15 {
		t.Fatalf("counter saturated at %d, want 15", c)
	}
	c = c.Update(false, 15)
	if c != 0 {
		t.Fatal("misprediction must reset the counter to 0")
	}
}

func TestOneLevelThreshold(t *testing.T) {
	o := NewOneLevel(8, 15, 4)
	pc := uint64(0x400)
	if o.HighConfidence(pc) {
		t.Fatal("fresh estimator must be low confidence")
	}
	for i := 0; i < 4; i++ {
		o.Update(pc, true)
	}
	if !o.HighConfidence(pc) {
		t.Fatal("4 correct predictions must reach threshold 4")
	}
	o.Update(pc, false)
	if o.HighConfidence(pc) {
		t.Fatal("one miss must drop confidence")
	}
	if o.Name() == "" {
		t.Fatal("name")
	}
}

func TestOneLevelIndependentBranches(t *testing.T) {
	o := NewOneLevel(8, 15, 2)
	for i := 0; i < 3; i++ {
		o.Update(0x100, true)
	}
	if o.HighConfidence(0x2000) {
		t.Fatal("confidence must be per-branch (different table slots)")
	}
}

func TestTwoLevelLearnsAccuracyPattern(t *testing.T) {
	// Prediction correctness alternates correct/incorrect; a two-level
	// estimator keyed on the accuracy pattern can learn that after a
	// "correct" the next is "incorrect": after warmup the counter indexed
	// by the all-correct-suffix pattern stays low.
	e := NewTwoLevel(6, 4, 15, 8)
	pc := uint64(0x80)
	for i := 0; i < 200; i++ {
		e.Update(pc, i%2 == 0)
	}
	// The pattern ending in "correct" predicts the next will be wrong:
	// low confidence expected.
	e.Update(pc, true)
	if e.HighConfidence(pc) {
		t.Fatal("two-level should have learned the alternating accuracy pattern")
	}
	if e.Name() == "" {
		t.Fatal("name")
	}
}

func TestClassStatic(t *testing.T) {
	classes := core.ClassMap{
		0x10: {Taken: 10, Transition: 0}, // easy class
		0x20: {Taken: 5, Transition: 5},  // hard class
	}
	var missRate [core.NumClasses][core.NumClasses]float64
	missRate[10][0] = 0.01
	missRate[5][5] = 0.45
	e := NewClassStatic(classes, missRate, 0.08)
	if !e.HighConfidence(0x10) {
		t.Fatal("easy-class branch must be high confidence")
	}
	if e.HighConfidence(0x20) {
		t.Fatal("5/5 branch must be low confidence")
	}
	if e.HighConfidence(0x999) {
		t.Fatal("unprofiled branch must be low confidence")
	}
	e.Update(0x10, false) // static: no-op
	if !e.HighConfidence(0x10) {
		t.Fatal("class estimator must not change at runtime")
	}
	if e.Name() == "" {
		t.Fatal("name")
	}
}

func TestQuadrantsMetrics(t *testing.T) {
	var q Quadrants
	// 60 trusted-correct, 10 trusted-wrong, 10 distrusted-correct,
	// 20 distrusted-wrong.
	for i := 0; i < 60; i++ {
		q.Observe(true, true)
	}
	for i := 0; i < 10; i++ {
		q.Observe(true, false)
	}
	for i := 0; i < 10; i++ {
		q.Observe(false, true)
	}
	for i := 0; i < 20; i++ {
		q.Observe(false, false)
	}
	if q.Total() != 100 {
		t.Fatalf("total %d", q.Total())
	}
	if got := q.Sensitivity(); got != 20.0/30.0 {
		t.Fatalf("sensitivity %v", got)
	}
	if got := q.PredictiveValueNegative(); got != 20.0/30.0 {
		t.Fatalf("PVN %v", got)
	}
	if got := q.Specificity(); got != 60.0/70.0 {
		t.Fatalf("specificity %v", got)
	}
}

func TestQuadrantsEmpty(t *testing.T) {
	var q Quadrants
	if q.Sensitivity() != 0 || q.PredictiveValueNegative() != 0 || q.Specificity() != 0 {
		t.Fatal("empty quadrants must report 0 metrics")
	}
}

func TestQuickQuadrantsConsistency(t *testing.T) {
	f := func(obs []bool) bool {
		var q Quadrants
		for i, hc := range obs {
			q.Observe(hc, i%3 != 0)
		}
		if q.Total() != int64(len(obs)) {
			return false
		}
		for _, m := range []float64{q.Sensitivity(), q.PredictiveValueNegative(), q.Specificity()} {
			if m < 0 || m > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickResettingCounterBounds(t *testing.T) {
	f := func(updates []bool, max8 uint8) bool {
		max := ResettingCounter(max8%63 + 1)
		c := ResettingCounter(0)
		for _, u := range updates {
			c = c.Update(u, max)
			if c > max {
				return false
			}
			if !u && c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
