package stats

import (
	"testing"
	"testing/quick"
)

func TestRatio(t *testing.T) {
	if Ratio(1, 2) != 0.5 {
		t.Fatal("Ratio(1,2)")
	}
	if Ratio(1, 0) != 0 {
		t.Fatal("Ratio by zero should be 0")
	}
	if Ratio(0, 5) != 0 {
		t.Fatal("Ratio(0,5)")
	}
}

func TestArgMin(t *testing.T) {
	cases := []struct {
		xs   []float64
		want int
	}{
		{nil, -1},
		{[]float64{3}, 0},
		{[]float64{3, 1, 2}, 1},
		{[]float64{1, 1, 0.5, 0.5}, 2}, // first of ties
		{[]float64{-1, 0, -1}, 0},
	}
	for _, c := range cases {
		if got := ArgMin(c.xs); got != c.want {
			t.Fatalf("ArgMin(%v) = %d, want %d", c.xs, got, c.want)
		}
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(4)
	h.Add(0)
	h.Add(1)
	h.Add(1)
	h.Add(99) // clamps to last bin
	h.Add(-5) // clamps to first bin
	if h.Total() != 5 {
		t.Fatalf("total %d", h.Total())
	}
	if h.Bins[0] != 2 || h.Bins[1] != 2 || h.Bins[3] != 1 {
		t.Fatalf("bins %v", h.Bins)
	}
	fr := h.Fractions()
	var sum float64
	for _, f := range fr {
		sum += f
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("fractions sum %v", sum)
	}
	empty := NewHistogram(3)
	for _, f := range empty.Fractions() {
		if f != 0 {
			t.Fatal("empty histogram fractions not zero")
		}
	}
}

func TestWeightedMean(t *testing.T) {
	if got := WeightedMean([]float64{1, 3}, []float64{1, 1}); got != 2 {
		t.Fatalf("mean %v", got)
	}
	if got := WeightedMean([]float64{1, 3}, []float64{0, 1}); got != 3 {
		t.Fatalf("weighted mean %v", got)
	}
	if got := WeightedMean([]float64{1, 3}, []float64{0, 0}); got != 0 {
		t.Fatalf("zero-weight mean %v", got)
	}
}

func TestQuickArgMinIsMinimal(t *testing.T) {
	f := func(xs []float64) bool {
		i := ArgMin(xs)
		if len(xs) == 0 {
			return i == -1
		}
		for _, v := range xs {
			// NaN-free inputs only: quick generates no NaNs for float64?
			// It can; skip those cases.
			if v != v {
				return true
			}
		}
		for _, v := range xs {
			if v < xs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickHistogramTotal(t *testing.T) {
	f := func(vals []int16) bool {
		h := NewHistogram(16)
		for _, v := range vals {
			h.Add(int(v))
		}
		return h.Total() == int64(len(vals))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
