// Package stats provides the small numeric helpers shared by the
// simulation harness and experiment drivers: ratio matrices, argmin
// selection, and fixed-bin histograms.
package stats

// Ratio returns num/den, or 0 when den == 0. Miss-rate arithmetic uses it
// everywhere so empty classes render as 0 rather than NaN.
func Ratio(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}

// ArgMin returns the index of the smallest value (first on ties), or -1
// for an empty slice.
func ArgMin(xs []float64) int {
	if len(xs) == 0 {
		return -1
	}
	best := 0
	for i, v := range xs {
		if v < xs[best] {
			best = i
		}
	}
	return best
}

// Histogram counts values into unit bins [0, n), clamping the final bin —
// the shape needed by the paper's Figure 15 ("8+" last bin).
type Histogram struct {
	Bins []int64
}

// NewHistogram returns a histogram with n bins.
func NewHistogram(n int) *Histogram {
	return &Histogram{Bins: make([]int64, n)}
}

// Add counts v, clamping negative values to bin 0 and large values into
// the last bin.
func (h *Histogram) Add(v int) {
	if v < 0 {
		v = 0
	}
	if v >= len(h.Bins) {
		v = len(h.Bins) - 1
	}
	h.Bins[v]++
}

// Total returns the sum of all bins.
func (h *Histogram) Total() int64 {
	var sum int64
	for _, b := range h.Bins {
		sum += b
	}
	return sum
}

// Fractions returns per-bin fractions of the total (zeros if empty).
func (h *Histogram) Fractions() []float64 {
	out := make([]float64, len(h.Bins))
	total := float64(h.Total())
	if total == 0 {
		return out
	}
	for i, b := range h.Bins {
		out[i] = float64(b) / total
	}
	return out
}

// WeightedMean returns sum(w·x)/sum(w), or 0 when all weights are zero.
func WeightedMean(xs, ws []float64) float64 {
	var num, den float64
	for i := range xs {
		num += xs[i] * ws[i]
		den += ws[i]
	}
	return Ratio(num, den)
}
