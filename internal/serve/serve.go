// Package serve turns the classifier into a long-running multi-tenant
// experiment service: an HTTP/JSON front end that accepts experiment
// requests (suite spec names, predictor-bank experiment ids, scale,
// memory/decoded budgets), runs each request as a cheap session Context
// over one process-wide substrate — a shared work-stealing scheduler,
// recorded-trace cache and pass-1 profile cache — and streams the
// rendered artifacts back as NDJSON, bit-identical to what brexp writes
// for the same configuration.
//
// Admission control keeps the substrate honest under load: at most
// MaxInFlight requests run concurrently, at most MaxQueue more wait for
// a slot, and everything past that is rejected immediately with 429 —
// as are requests whose scale or byte budgets exceed the server's
// per-request caps. /metrics exposes the shared substrate's counters
// (scheduler steals/parks/queue depth, trace- and profile-cache
// traffic, decoded-pool hits/redecodes summed across requests) plus
// the admission tallies; /healthz flips to 503 once a drain begins.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"btr/internal/experiments"
	"btr/internal/sched"
	"btr/internal/sim"
	"btr/internal/workload"
)

// Config sizes the server. The zero value is usable: defaults are
// filled by New.
type Config struct {
	// Workers sizes the shared scheduler (0 = GOMAXPROCS). Ignored when
	// Sched is set.
	Workers int
	// MaxInFlight bounds concurrently running requests (0 = 4).
	MaxInFlight int
	// MaxQueue bounds requests admitted but waiting for an in-flight
	// slot (0 = 16, < 0 = no waiting: reject the moment slots are full).
	MaxQueue int
	// MaxScale caps a request's workload scale (0 = 8).
	MaxScale float64
	// MaxMemBudget / MaxDecodedBudget cap a request's per-request byte
	// budgets (0 = 1 GiB each). Requests asking for more are rejected
	// with 429 rather than silently clamped.
	MaxMemBudget     int64
	MaxDecodedBudget int64
	// CacheBytes bounds the shared trace cache's resident columns
	// (0 = trace.DefaultCacheBytes). Ignored when Shared is set.
	CacheBytes int64
	// CacheDir, when non-empty, makes the shared trace cache persistent
	// (BTR2 spill files). Ignored when Shared is set.
	CacheDir string
	// DefaultDeadline, when > 0, bounds every request that does not set
	// its own deadline_ms: a request still running when it expires is
	// canceled (its group unwinds cooperatively) and its stream ends
	// with a "canceled" record. 0 means requests run unbounded.
	DefaultDeadline time.Duration

	// Shared and Sched, when non-nil, are adopted instead of built —
	// tests and embedders inject their own substrate. New never closes
	// an adopted scheduler.
	Shared *experiments.Shared
	Sched  *sched.Scheduler
}

func (c Config) maxInFlight() int {
	if c.MaxInFlight <= 0 {
		return 4
	}
	return c.MaxInFlight
}

func (c Config) maxQueue() int {
	if c.MaxQueue == 0 {
		return 16
	}
	if c.MaxQueue < 0 {
		return 0
	}
	return c.MaxQueue
}

func (c Config) maxScale() float64 {
	if c.MaxScale <= 0 {
		return 8
	}
	return c.MaxScale
}

func (c Config) maxMemBudget() int64 {
	if c.MaxMemBudget <= 0 {
		return 1 << 30
	}
	return c.MaxMemBudget
}

func (c Config) maxDecodedBudget() int64 {
	if c.MaxDecodedBudget <= 0 {
		return 1 << 30
	}
	return c.MaxDecodedBudget
}

// Request is one experiment request. Every field is optional: the zero
// request renders every experiment over the full Table 1 suite at
// scale 1 with default budgets.
type Request struct {
	// Experiments lists artifact ids ("T1", "F13", ...); empty = all.
	Experiments []string `json:"experiments,omitempty"`
	// Specs restricts the suite to the named "bench/input" workloads;
	// empty = the full Table 1 suite.
	Specs []string `json:"specs,omitempty"`
	// Scale is the workload scale (0 = 1.0).
	Scale float64 `json:"scale,omitempty"`
	// MemBudget / DecodedBudget are the per-request byte budgets
	// (sim.Config.MemBudget / DecodedBudget).
	MemBudget     int64 `json:"membudget,omitempty"`
	DecodedBudget int64 `json:"decodedbudget,omitempty"`
	// ChunkTasks / SnapshotRanges / ReadAhead / Window tune the sweep
	// exactly like the brexp flags of the same names; all
	// result-invisible.
	ChunkTasks     int `json:"chunktasks,omitempty"`
	SnapshotRanges int `json:"snapshotranges,omitempty"`
	ReadAhead      int `json:"readahead,omitempty"`
	Window         int `json:"window,omitempty"`
	// DeadlineMS bounds this request's wall-clock time in milliseconds;
	// past it the run is canceled and the stream ends with a "canceled"
	// record. 0 inherits the server's default deadline (which may be
	// none).
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// Record is one NDJSON line of a streamed response.
type Record struct {
	// Type is "start", "experiment", "dropped", "error", "canceled" or
	// "summary". A "canceled" record is terminal: the client
	// disconnected or the request's deadline fired, the run unwound
	// cooperatively, and no experiments follow.
	Type string `json:"type"`
	// ID names the experiment of an "experiment" record.
	ID string `json:"id,omitempty"`
	// Output is the rendered artifact, byte-identical to the file brexp
	// writes for the same configuration.
	Output string `json:"output,omitempty"`
	// Spec and Error carry a "dropped" input's identity and recovered
	// cause (or the message of an "error" record).
	Spec  string `json:"spec,omitempty"`
	Error string `json:"error,omitempty"`
	// Summary fields.
	Events    int64       `json:"events,omitempty"`
	Inputs    int         `json:"inputs,omitempty"`
	Dropped   int         `json:"dropped,omitempty"`
	ElapsedMS int64       `json:"elapsed_ms,omitempty"`
	Mem       *MemMetrics `json:"mem,omitempty"`
}

// ErrorResponse is the structured body of every non-streaming failure
// (400/429/503). Spec or ID name the offending input where one exists.
type ErrorResponse struct {
	Error string `json:"error"`
	Spec  string `json:"spec,omitempty"`
	ID    string `json:"id,omitempty"`
}

// Server is the experiment service. Build with New, mount Handler, and
// Close at shutdown.
type Server struct {
	cfg    Config
	sched  *sched.Scheduler
	shared *experiments.Shared
	mux    *http.ServeMux

	slots    chan struct{}
	queued   atomic.Int64
	draining atomic.Bool

	inFlight  atomic.Int64
	completed atomic.Int64
	rejected  atomic.Int64
	failed    atomic.Int64
	canceled  atomic.Int64

	memMu sync.Mutex
	mem   sim.MemStats // summed across completed requests
}

// New builds a server over its own scheduler and cache bundle (or the
// injected ones).
func New(cfg Config) *Server {
	s := &Server{
		cfg:    cfg,
		sched:  cfg.Sched,
		shared: cfg.Shared,
		slots:  make(chan struct{}, cfg.maxInFlight()),
	}
	if s.sched == nil {
		s.sched = sched.New(cfg.Workers)
	}
	if s.shared == nil {
		s.shared = experiments.NewShared(cfg.CacheBytes, cfg.CacheDir)
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/experiments", s.handleExperiments)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	return s
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Sched exposes the shared scheduler (for a shutdown Stats line).
func (s *Server) Sched() *sched.Scheduler { return s.sched }

// Shared exposes the cache bundle.
func (s *Server) Shared() *experiments.Shared { return s.shared }

// BeginDrain stops admitting new experiment requests: /healthz flips to
// 503 draining (so a load balancer stops routing here) and experiment
// POSTs are rejected with 503. In-flight requests run to completion —
// pair with http.Server.Shutdown, which waits for them.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Close shuts the substrate down after the last request has finished
// (call it after http.Server.Shutdown has returned): the shared
// scheduler's workers drain and exit. The server is spent afterwards.
func (s *Server) Close() {
	s.BeginDrain()
	s.sched.Close()
}

// acquire claims an in-flight slot, waiting in the bounded queue when
// the server is busy. full reports a bounced request (queue at
// capacity); ok false with full false means the client went away while
// queued.
func (s *Server) acquire(ctx context.Context) (ok, full bool) {
	select {
	case s.slots <- struct{}{}:
		return true, false
	default:
	}
	maxQueue := int64(s.cfg.maxQueue())
	if s.queued.Add(1) > maxQueue {
		s.queued.Add(-1)
		return false, true
	}
	defer s.queued.Add(-1)
	select {
	case s.slots <- struct{}{}:
		return true, false
	case <-ctx.Done():
		return false, false
	}
}

func (s *Server) release() { <-s.slots }

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// resolve validates a request against the registry and the server's
// per-request caps, returning the experiment ids to render and the
// session's sim config. A nil error with a non-nil reject means the
// request was refused with the given status and body.
type rejection struct {
	status int
	body   ErrorResponse
}

func (s *Server) resolve(req *Request) (ids []string, specs []workload.Spec, cfg sim.Config, rej *rejection) {
	if len(req.Experiments) == 0 {
		for _, e := range experiments.All() {
			ids = append(ids, e.ID)
		}
	} else {
		for _, id := range req.Experiments {
			if _, err := experiments.Find(id); err != nil {
				return nil, nil, cfg, &rejection{http.StatusBadRequest, ErrorResponse{Error: err.Error(), ID: id}}
			}
			ids = append(ids, id)
		}
	}
	for _, name := range req.Specs {
		bench, input, found := strings.Cut(name, "/")
		if !found {
			return nil, nil, cfg, &rejection{http.StatusBadRequest,
				ErrorResponse{Error: fmt.Sprintf("spec %q is not of the form bench/input", name), Spec: name}}
		}
		spec, err := workload.Find(bench, input)
		if err != nil {
			return nil, nil, cfg, &rejection{http.StatusBadRequest, ErrorResponse{Error: err.Error(), Spec: name}}
		}
		specs = append(specs, spec)
	}
	scale := req.Scale
	if scale == 0 {
		scale = 1
	}
	if scale < 0 {
		return nil, nil, cfg, &rejection{http.StatusBadRequest,
			ErrorResponse{Error: fmt.Sprintf("scale %v is negative", req.Scale)}}
	}
	if scale > s.cfg.maxScale() {
		return nil, nil, cfg, &rejection{http.StatusTooManyRequests,
			ErrorResponse{Error: fmt.Sprintf("scale %v exceeds the per-request limit %v", scale, s.cfg.maxScale())}}
	}
	if req.MemBudget < 0 {
		return nil, nil, cfg, &rejection{http.StatusBadRequest,
			ErrorResponse{Error: fmt.Sprintf("membudget %d is negative", req.MemBudget)}}
	}
	if req.MemBudget > s.cfg.maxMemBudget() {
		return nil, nil, cfg, &rejection{http.StatusTooManyRequests,
			ErrorResponse{Error: fmt.Sprintf("membudget %d exceeds the per-request limit %d", req.MemBudget, s.cfg.maxMemBudget())}}
	}
	if req.DecodedBudget > s.cfg.maxDecodedBudget() {
		return nil, nil, cfg, &rejection{http.StatusTooManyRequests,
			ErrorResponse{Error: fmt.Sprintf("decodedbudget %d exceeds the per-request limit %d", req.DecodedBudget, s.cfg.maxDecodedBudget())}}
	}
	if req.DeadlineMS < 0 {
		return nil, nil, cfg, &rejection{http.StatusBadRequest,
			ErrorResponse{Error: fmt.Sprintf("deadline_ms %d is negative", req.DeadlineMS)}}
	}
	cfg = sim.Config{
		Scale:              scale,
		HardDistanceWindow: req.Window,
		ChunkTasks:         req.ChunkTasks,
		MemBudget:          req.MemBudget,
		DecodedBudget:      req.DecodedBudget,
		SnapshotRanges:     req.SnapshotRanges,
		ReadAhead:          req.ReadAhead,
		Sched:              s.sched,
	}
	return ids, specs, cfg, nil
}

// session builds the per-request experiment context: a cheap object
// over the server's shared scheduler and caches, optionally narrowed to
// a spec subset.
func (s *Server) session(cfg sim.Config, specs []workload.Spec) *experiments.Context {
	ctx := experiments.NewContextShared(cfg, s.shared)
	if len(specs) > 0 {
		ctx.Specs = specs
	}
	return ctx
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, ErrorResponse{Error: "POST only"})
		return
	}
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{Error: "server is draining"})
		return
	}
	var req Request
	body := http.MaxBytesReader(w, r.Body, 1<<20)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: fmt.Sprintf("bad request body: %v", err)})
		return
	}
	ids, specs, cfg, rej := s.resolve(&req)
	if rej != nil {
		if rej.status == http.StatusTooManyRequests {
			s.rejected.Add(1)
		}
		writeJSON(w, rej.status, rej.body)
		return
	}
	ok, full := s.acquire(r.Context())
	if !ok {
		if full {
			s.rejected.Add(1)
			writeJSON(w, http.StatusTooManyRequests, ErrorResponse{Error: "server at capacity (in-flight and queue slots full)"})
		}
		return
	}
	defer s.release()
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)

	// The request's whole task grid joins one scheduler group so it can
	// be canceled as a unit: a watcher trips the group when the client
	// disconnects (r.Context) or the request's deadline fires, the sim
	// grids unwind cooperatively at their next task boundary, and the
	// stream ends with a "canceled" record. The admission slot is freed
	// by the deferred release above only after the group has drained —
	// a canceled request never leaks its slot or its tasks.
	ctx := r.Context()
	if d := s.deadlineFor(&req); d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	g := s.sched.NewGroup()
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
			g.Cancel()
		case <-done:
		}
	}()

	s.stream(w, g, ids, s.session(cfg, specs))
}

// deadlineFor resolves a request's wall-clock bound: its own
// deadline_ms when set, else the server default (0 = unbounded).
func (s *Server) deadlineFor(req *Request) time.Duration {
	if req.DeadlineMS > 0 {
		return time.Duration(req.DeadlineMS) * time.Millisecond
	}
	return s.cfg.DefaultDeadline
}

// stream runs the session and writes the NDJSON response: a start
// record the moment the request is admitted, one experiment record per
// rendered artifact (in request order, flushed as each completes), one
// dropped record per failed input, and a closing summary. A panic out
// of the suite run — one tenant's bug — becomes an error record on
// this stream only. A canceled group (disconnect, deadline) ends the
// stream with a terminal "canceled" record instead of experiments; the
// write is best-effort, since the usual cause is a client that is no
// longer there.
func (s *Server) stream(w http.ResponseWriter, g *sched.Group, ids []string, ctx *experiments.Context) {
	start := time.Now()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Accel-Buffering", "no")
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	emit := func(rec Record) {
		_ = enc.Encode(rec)
		if flusher != nil {
			flusher.Flush()
		}
	}
	emit(Record{Type: "start"})

	var suite *sim.SuiteResult
	err := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("suite run panicked: %v", r)
			}
		}()
		suite = ctx.SuiteGroup(g)
		return nil
	}()
	if err != nil {
		s.failed.Add(1)
		emit(Record{Type: "error", Error: err.Error()})
		return
	}
	if g.Canceled() {
		s.canceled.Add(1)
		emit(Record{
			Type:      "canceled",
			Dropped:   len(suite.Dropped),
			ElapsedMS: time.Since(start).Milliseconds(),
		})
		return
	}

	for _, id := range ids {
		e, findErr := experiments.Find(id)
		if findErr != nil {
			emit(Record{Type: "error", ID: id, Error: findErr.Error()})
			continue
		}
		var buf strings.Builder
		if runErr := e.Run(ctx, &buf); runErr != nil {
			emit(Record{Type: "error", ID: id, Error: runErr.Error()})
			continue
		}
		emit(Record{Type: "experiment", ID: id, Output: buf.String()})
	}
	for _, d := range suite.Dropped {
		emit(Record{Type: "dropped", Spec: d.Spec.Name(), Error: d.Err.Error()})
	}

	s.memMu.Lock()
	s.mem.Add(&suite.Mem)
	s.memMu.Unlock()
	s.completed.Add(1)
	mem := memMetrics(suite.Mem)
	emit(Record{
		Type:      "summary",
		Events:    suite.TotalEvents(),
		Inputs:    len(suite.Inputs),
		Dropped:   len(suite.Dropped),
		ElapsedMS: time.Since(start).Milliseconds(),
		Mem:       &mem,
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "workers": s.sched.Workers()})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Metrics())
}
