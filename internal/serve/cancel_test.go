package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"btr/internal/experiments"
	"btr/internal/sim"
	"btr/internal/workload"
)

func testContext(t *testing.T, s *Server) *experiments.Context {
	t.Helper()
	cfg := sim.Config{Scale: testScale, Sched: s.sched}
	ctx := experiments.NewContextShared(cfg, s.shared)
	for _, name := range testSpecs {
		bench, input, _ := strings.Cut(name, "/")
		spec, err := workload.Find(bench, input)
		if err != nil {
			t.Fatal(err)
		}
		ctx.Specs = append(ctx.Specs, spec)
	}
	return ctx
}

// TestStreamCanceledGroupEmitsCanceledRecord: a canceled group never
// produces experiment records — the stream ends with the typed
// "canceled" terminal record and the request is tallied as canceled,
// not completed or failed.
func TestStreamCanceledGroupEmitsCanceledRecord(t *testing.T) {
	s, _ := newTestServer(t, Config{})

	g := s.sched.NewGroup()
	g.Cancel()
	rec := httptest.NewRecorder()
	s.stream(rec, g, []string{"T1"}, testContext(t, s))

	var types []string
	sc := bufio.NewScanner(rec.Body)
	for sc.Scan() {
		var r Record
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		types = append(types, r.Type)
	}
	if len(types) == 0 || types[len(types)-1] != "canceled" {
		t.Fatalf("record types %v, want terminal canceled", types)
	}
	for _, ty := range types {
		if ty == "experiment" || ty == "summary" {
			t.Fatalf("canceled stream carried a %q record: %v", ty, types)
		}
	}
	m := s.Metrics().Requests
	if m.Canceled != 1 || m.Completed != 0 || m.Failed != 0 {
		t.Fatalf("tallies %+v, want 1 canceled / 0 completed / 0 failed", m)
	}
}

// TestDeadlineCancelsRequest: a request whose deadline_ms fires before
// the suite finishes streams a canceled record and frees its slot; the
// next request on the same server runs to completion.
func TestDeadlineCancelsRequest(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	req := Request{Experiments: []string{"T1", "F13"}, Specs: testSpecs, Scale: testScale, DeadlineMS: 1}
	code, recs := post(t, ts.URL, req)
	if code != http.StatusOK {
		t.Fatalf("status %d, want 200 (deadline cancels the stream, not admission)", code)
	}
	if len(recs) == 0 || recs[len(recs)-1].Type != "canceled" {
		t.Fatalf("records %+v, want terminal canceled", recs)
	}
	m := s.Metrics().Requests
	if m.Canceled != 1 || m.InFlight != 0 {
		t.Fatalf("tallies %+v, want 1 canceled / 0 in flight", m)
	}

	// The slot and scheduler survive: an undeadlined rerun completes.
	code, recs = post(t, ts.URL, Request{Experiments: []string{"T1"}, Specs: testSpecs, Scale: testScale})
	if code != http.StatusOK || len(outputsByID(recs)) != 1 {
		t.Fatalf("post-cancel request: status %d, records %v", code, recs)
	}
	if m := s.Metrics().Requests; m.Completed != 1 || m.InFlight != 0 {
		t.Fatalf("post-cancel tallies %+v, want 1 completed / 0 in flight", m)
	}
}

// TestClientDisconnectCancels is the live-disconnect smoke: the client
// hangs up after the first record, the server cancels the request
// cooperatively, the slot drains and the canceled counter moves —
// without waiting for the suite to finish.
func TestClientDisconnectCancels(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	// A deliberately heavy request (50x the test scale): the hang-up
	// below lands microseconds after the start record, so the suite must
	// still be deep in pass 1 — cancellation, not completion, ends it.
	body, err := json.Marshal(Request{Experiments: []string{"T1", "F13"}, Specs: testSpecs, Scale: 50 * testScale})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/experiments", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(resp.Body)
	if _, err := br.ReadString('\n'); err != nil { // the start record
		t.Fatalf("reading first record: %v", err)
	}
	cancel()
	resp.Body.Close()

	deadline := time.Now().Add(30 * time.Second)
	for {
		m := s.Metrics().Requests
		if m.InFlight == 0 && m.Canceled >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never drained the disconnected request: %+v", m)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
