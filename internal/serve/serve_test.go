package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"btr/internal/experiments"
	"btr/internal/rng"
	"btr/internal/sim"
	"btr/internal/trace"
	"btr/internal/workload"
)

// testSpecs is the small two-input suite the HTTP tests request:
// real registry workloads, cheap at the test scale.
var testSpecs = []string{"compress/bigtest.in", "perl/primes.pl"}

const testScale = 0.02

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Workers == 0 {
		cfg.Workers = 4
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// post sends one experiment request and returns the status code and
// decoded NDJSON records.
func post(t *testing.T, url string, req Request) (int, []Record) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/experiments", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e ErrorResponse
		_ = json.NewDecoder(resp.Body).Decode(&e)
		t.Logf("non-200 response: %+v", e)
		return resp.StatusCode, nil
	}
	var recs []Record
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		var rec Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, recs
}

func outputsByID(recs []Record) map[string]string {
	out := make(map[string]string)
	for _, r := range recs {
		if r.Type == "experiment" {
			out[r.ID] = r.Output
		}
	}
	return out
}

// TestStreamBitIdenticalToBrexp: the streamed experiment records carry
// byte-for-byte the artifact text brexp writes for the same
// configuration.
func TestStreamBitIdenticalToBrexp(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	ids := []string{"T1", "F13"}
	code, recs := post(t, ts.URL, Request{Experiments: ids, Specs: testSpecs, Scale: testScale})
	if code != http.StatusOK {
		t.Fatalf("status %d, want 200", code)
	}
	got := outputsByID(recs)

	// The reference: a fully private context with the identical sim
	// config — exactly what brexp builds for these flags.
	refCfg := sim.Config{Scale: testScale, Cache: trace.NewCache(0, "", workload.RegistryFingerprint()), Profiles: sim.NewProfileCache()}
	refCtx := experiments.NewContext(refCfg)
	var specs []workload.Spec
	for _, name := range testSpecs {
		bench, input, _ := strings.Cut(name, "/")
		spec, err := workload.Find(bench, input)
		if err != nil {
			t.Fatal(err)
		}
		specs = append(specs, spec)
	}
	refCtx.Specs = specs
	for _, id := range ids {
		e, err := experiments.Find(id)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := e.Run(refCtx, &buf); err != nil {
			t.Fatal(err)
		}
		if got[id] != buf.String() {
			t.Fatalf("experiment %s: streamed output differs from brexp render\nstreamed:\n%s\nreference:\n%s", id, got[id], buf.String())
		}
	}
	// Stream shape: start first, summary last, summary counts the inputs.
	if recs[0].Type != "start" {
		t.Fatalf("first record %q, want start", recs[0].Type)
	}
	last := recs[len(recs)-1]
	if last.Type != "summary" || last.Inputs != len(testSpecs) || last.Dropped != 0 || last.Events <= 0 {
		t.Fatalf("bad summary record: %+v", last)
	}
}

// TestConcurrentRequestsShareSubstrate is the acceptance walk: two
// concurrent requests after a warm one do zero generator runs (the
// trace-cache miss counter IS the generator-run counter for registry
// specs), stream identical bytes, and /metrics reports nonzero
// scheduler steals and cache hits.
func TestConcurrentRequestsShareSubstrate(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	req := Request{Experiments: []string{"T1", "F13"}, Specs: testSpecs, Scale: testScale}
	code, warm := post(t, ts.URL, req)
	if code != http.StatusOK {
		t.Fatalf("warm status %d", code)
	}
	warmOut := outputsByID(warm)
	missesAfterWarm := s.Metrics().TraceCache.Misses
	if missesAfterWarm != int64(len(testSpecs)) {
		t.Fatalf("warm request missed %d times, want %d (one generator run per input)", missesAfterWarm, len(testSpecs))
	}

	var wg sync.WaitGroup
	outs := make([]map[string]string, 2)
	for i := range outs {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			code, recs := post(t, ts.URL, req)
			if code != http.StatusOK {
				t.Errorf("concurrent request %d: status %d", i, code)
				return
			}
			outs[i] = outputsByID(recs)
		}()
	}
	wg.Wait()
	for i, out := range outs {
		for id, text := range warmOut {
			if out[id] != text {
				t.Fatalf("concurrent request %d: experiment %s diverged from warm request", i, id)
			}
		}
	}

	m := s.Metrics()
	if m.TraceCache.Misses != missesAfterWarm {
		t.Fatalf("concurrent requests ran generators: %d misses, want %d", m.TraceCache.Misses, missesAfterWarm)
	}
	if m.TraceCache.Hits < int64(2*len(testSpecs)) {
		t.Fatalf("trace cache hits %d, want >= %d", m.TraceCache.Hits, 2*len(testSpecs))
	}
	if m.ProfileCache.Hits < int64(2*len(testSpecs)) {
		t.Fatalf("profile cache hits %d, want >= %d", m.ProfileCache.Hits, 2*len(testSpecs))
	}
	if m.Sched.Steals == 0 {
		t.Fatal("scheduler steals = 0 after three suite requests on 4 workers")
	}
	if m.Sched.Executed == 0 || m.Sched.InjectorSubmits == 0 {
		t.Fatalf("scheduler counters not moving: %+v", m.Sched)
	}
	if m.Requests.Completed != 3 || m.Requests.Rejected != 0 || m.Requests.InFlight != 0 {
		t.Fatalf("request tallies %+v, want 3 completed / 0 rejected / 0 in flight", m.Requests)
	}
}

// TestAdmissionControl: with every in-flight slot held and no queue,
// the next request bounces with 429 and the rejected counter moves.
func TestAdmissionControl(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInFlight: 1, MaxQueue: -1})

	s.slots <- struct{}{} // occupy the only slot
	code, _ := post(t, ts.URL, Request{Specs: testSpecs, Scale: testScale})
	if code != http.StatusTooManyRequests {
		t.Fatalf("status %d with slots full and no queue, want 429", code)
	}
	<-s.slots
	if got := s.Metrics().Requests.Rejected; got != 1 {
		t.Fatalf("rejected counter %d, want 1", got)
	}
	// With the slot free the same request is admitted.
	code, recs := post(t, ts.URL, Request{Experiments: []string{"T1"}, Specs: testSpecs, Scale: testScale})
	if code != http.StatusOK || len(outputsByID(recs)) != 1 {
		t.Fatalf("post-release request: status %d, records %v", code, recs)
	}
}

// TestPerRequestLimits: over-cap scale and budgets are refused with
// 429; malformed specs and unknown ids with structured 400s.
func TestPerRequestLimits(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxScale: 2, MaxMemBudget: 1 << 20, MaxDecodedBudget: 1 << 20})

	for name, req := range map[string]Request{
		"scale":         {Scale: 4},
		"membudget":     {MemBudget: 1 << 21},
		"decodedbudget": {DecodedBudget: 1 << 21},
	} {
		if code, _ := post(t, ts.URL, req); code != http.StatusTooManyRequests {
			t.Fatalf("%s over limit: status %d, want 429", name, code)
		}
	}

	do := func(req Request) (int, ErrorResponse) {
		body, _ := json.Marshal(req)
		resp, err := http.Post(ts.URL+"/v1/experiments", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var e ErrorResponse
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return resp.StatusCode, e
	}
	if code, e := do(Request{Specs: []string{"nosuch/input"}}); code != http.StatusBadRequest || e.Spec != "nosuch/input" || e.Error == "" {
		t.Fatalf("unknown spec: status %d body %+v, want structured 400", code, e)
	}
	if code, e := do(Request{Specs: []string{"malformed"}}); code != http.StatusBadRequest || e.Spec != "malformed" {
		t.Fatalf("malformed spec: status %d body %+v, want structured 400", code, e)
	}
	if code, e := do(Request{Experiments: []string{"Z9"}}); code != http.StatusBadRequest || e.ID != "Z9" {
		t.Fatalf("unknown experiment: status %d body %+v, want structured 400", code, e)
	}
}

// TestDroppedInputsStreamAsStructuredRecords (satellite): an input
// whose generator panics is reported on the stream as a typed record
// carrying spec name and recovered cause — not just brexp stderr.
func TestDroppedInputsStreamAsStructuredRecords(t *testing.T) {
	s, _ := newTestServer(t, Config{})

	good := workload.NewSpec("synth", "ok", 3000, 7, func(tr *workload.T, r *rng.Rand, target int64) {
		for tr.N() < target {
			tr.B(0, r.Uint64()&1 == 0)
		}
	})
	bad := workload.NewSpec("synth", "boom", 3000, 7, func(tr *workload.T, r *rng.Rand, target int64) {
		panic("generator bug")
	})
	cfg := sim.Config{Scale: 1, Sched: s.sched}
	ctx := experiments.NewContextShared(cfg, s.shared)
	ctx.Specs = []workload.Spec{good, bad}

	rec := httptest.NewRecorder()
	s.stream(rec, s.sched.NewGroup(), []string{"T1"}, ctx)

	var dropped, summary *Record
	sc := bufio.NewScanner(rec.Body)
	for sc.Scan() {
		rec := new(Record)
		if err := json.Unmarshal(sc.Bytes(), rec); err != nil {
			t.Fatal(err)
		}
		switch rec.Type {
		case "dropped":
			dropped = rec
		case "summary":
			summary = rec
		}
	}
	if dropped == nil {
		t.Fatal("no dropped record on the stream")
	}
	if dropped.Spec != "synth/boom" || !strings.Contains(dropped.Error, "generator bug") {
		t.Fatalf("dropped record %+v, want spec synth/boom with the recovered cause", dropped)
	}
	if summary == nil || summary.Dropped != 1 || summary.Inputs != 1 {
		t.Fatalf("summary %+v, want 1 input / 1 dropped", summary)
	}
}

// TestHealthzAndDrain: healthz flips to 503 on BeginDrain and new
// requests are refused while in-flight ones finish (the scheduler is
// still alive until Close).
func TestHealthzAndDrain(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz %d, want 200", resp.StatusCode)
	}

	s.BeginDrain()
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz %d, want 503", resp.StatusCode)
	}
	if code, _ := post(t, ts.URL, Request{Specs: testSpecs, Scale: testScale}); code != http.StatusServiceUnavailable {
		t.Fatalf("draining POST status %d, want 503", code)
	}
	if !s.Metrics().Requests.Draining {
		t.Fatal("metrics do not report draining")
	}
}

// TestMetricsDocumentShape: the JSON document decodes into the
// documented field names.
func TestMetricsDocumentShape(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if code, _ := post(t, ts.URL, Request{Experiments: []string{"T1"}, Specs: testSpecs, Scale: testScale}); code != http.StatusOK {
		t.Fatalf("request status %d", code)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"requests", "sched", "trace_cache", "profile_cache", "mem"} {
		if _, ok := m[key]; !ok {
			t.Fatalf("metrics document missing %q: %v", key, m)
		}
	}
	var sst struct {
		Executed int64 `json:"executed"`
		Workers  int   `json:"workers"`
	}
	if err := json.Unmarshal(m["sched"], &sst); err != nil {
		t.Fatal(err)
	}
	if sst.Executed == 0 || sst.Workers != 4 {
		t.Fatalf("sched metrics %+v, want executed > 0 and 4 workers", sst)
	}
}
