package serve

import (
	"btr/internal/sched"
	"btr/internal/sim"
	"btr/internal/trace"
)

// Metrics is the /metrics document: one consistent-enough snapshot of
// the shared substrate's counters plus the admission tallies. Counter
// semantics follow the underlying Stats types; everything here is
// cumulative since process start except the gauges (in_flight, queued,
// pending, resident*).
type Metrics struct {
	Requests     RequestMetrics      `json:"requests"`
	Sched        sched.Stats         `json:"sched"`
	TraceCache   TraceCacheMetrics   `json:"trace_cache"`
	ProfileCache ProfileCacheMetrics `json:"profile_cache"`
	// Mem sums each completed request's suite-level MemStats: recording
	// footprints, spill page-ins, decoded-pool hits/redecodes, snapshot
	// traffic.
	Mem MemMetrics `json:"mem"`
}

// RequestMetrics counts admissions. InFlight and Queued are gauges.
// Canceled counts requests that ended with a "canceled" record (client
// disconnect or deadline); they are not counted completed or failed.
type RequestMetrics struct {
	InFlight  int64 `json:"in_flight"`
	Queued    int64 `json:"queued"`
	Completed int64 `json:"completed"`
	Rejected  int64 `json:"rejected"`
	Failed    int64 `json:"failed"`
	Canceled  int64 `json:"canceled"`
	Draining  bool  `json:"draining"`
}

// TraceCacheMetrics mirrors trace.CacheStats with wire-stable names.
type TraceCacheMetrics struct {
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	Loads         int64 `json:"loads"`
	Spills        int64 `json:"spills"`
	SpillFailures int64 `json:"spill_failures"`
	Evicted       int64 `json:"evicted"`
	Quarantined   int64 `json:"quarantined"`
	Resident      int   `json:"resident"`
	ResidentBytes int64 `json:"resident_bytes"`
}

// ProfileCacheMetrics mirrors sim.ProfileCacheStats.
type ProfileCacheMetrics struct {
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	Evicted       int64 `json:"evicted"`
	Resident      int   `json:"resident"`
	ResidentBytes int64 `json:"resident_bytes"`
}

// MemMetrics mirrors sim.MemStats.
type MemMetrics struct {
	RecordedBytes    int64 `json:"recorded_bytes"`
	ResidentPeak     int64 `json:"resident_peak"`
	PageIns          int64 `json:"page_ins"`
	DecodedHits      int64 `json:"decoded_hits"`
	DecodedRedecodes int64 `json:"decoded_redecodes"`
	DecodedEvicted   int64 `json:"decoded_evicted"`
	DecodedPeak      int64 `json:"decoded_peak"`
	PrefetchHits     int64 `json:"prefetch_hits"`
	PrefetchWasted   int64 `json:"prefetch_wasted"`
	PrefetchInFlight int64 `json:"prefetch_in_flight_peak"`
	SnapshotCount    int64 `json:"snapshot_count"`
	SnapshotBytes    int64 `json:"snapshot_bytes"`
	SnapshotPeak     int64 `json:"snapshot_peak"`
}

func traceCacheMetrics(s trace.CacheStats) TraceCacheMetrics {
	return TraceCacheMetrics{
		Hits:          s.Hits,
		Misses:        s.Misses,
		Loads:         s.Loads,
		Spills:        s.Spills,
		SpillFailures: s.SpillFailures,
		Evicted:       s.Evicted,
		Quarantined:   s.Quarantined,
		Resident:      s.Resident,
		ResidentBytes: s.ResidentBytes,
	}
}

func profileCacheMetrics(s sim.ProfileCacheStats) ProfileCacheMetrics {
	return ProfileCacheMetrics{
		Hits:          s.Hits,
		Misses:        s.Misses,
		Evicted:       s.Evicted,
		Resident:      s.Resident,
		ResidentBytes: s.ResidentBytes,
	}
}

func memMetrics(m sim.MemStats) MemMetrics {
	return MemMetrics{
		RecordedBytes:    m.RecordedBytes,
		ResidentPeak:     m.ResidentPeak,
		PageIns:          m.PageIns,
		DecodedHits:      m.DecodedHits,
		DecodedRedecodes: m.DecodedRedecodes,
		DecodedEvicted:   m.DecodedEvicted,
		DecodedPeak:      m.DecodedPeak,
		PrefetchHits:     m.PrefetchHits,
		PrefetchWasted:   m.PrefetchWasted,
		PrefetchInFlight: m.PrefetchInFlightPeak,
		SnapshotCount:    m.SnapshotCount,
		SnapshotBytes:    m.SnapshotBytes,
		SnapshotPeak:     m.SnapshotPeak,
	}
}

// Metrics assembles the snapshot.
func (s *Server) Metrics() Metrics {
	s.memMu.Lock()
	mem := s.mem
	s.memMu.Unlock()
	return Metrics{
		Requests: RequestMetrics{
			InFlight:  s.inFlight.Load(),
			Queued:    s.queued.Load(),
			Completed: s.completed.Load(),
			Rejected:  s.rejected.Load(),
			Failed:    s.failed.Load(),
			Canceled:  s.canceled.Load(),
			Draining:  s.draining.Load(),
		},
		Sched:        s.sched.Stats(),
		TraceCache:   traceCacheMetrics(s.shared.Traces.Stats()),
		ProfileCache: profileCacheMetrics(s.shared.Profiles.Stats()),
		Mem:          memMetrics(mem),
	}
}
