// Package core implements the paper's primary contribution: the branch
// transition rate metric, the taken-rate metric it is compared against,
// 11-way rate classification, the joint (taken, transition) classification
// of Table 2, and the coverage/misclassification arithmetic of §4.2.
//
// The metrics are defined per static branch over its dynamic executions:
//
//   - taken rate: fraction of executions in which the branch was taken
//     (Chang et al., MICRO 1994).
//   - transition rate: how often the branch changed direction between
//     consecutive executions. A branch executed n times has n-1 adjacent
//     pairs; we report transitions/(n-1) so that a strictly alternating
//     branch has transition rate exactly 1.0. (The paper divides by "a
//     given number of executions"; for the execution counts involved the
//     two denominators are indistinguishable, and n-1 makes the
//     alternation bound exact.)
package core

import "btr/internal/trace"

// Profile accumulates the dynamic behaviour of one static branch.
type Profile struct {
	Execs       int64 // dynamic executions
	Taken       int64 // executions that were taken
	Transitions int64 // direction changes between consecutive executions

	last   bool // outcome of the previous execution
	primed bool // true once at least one execution has been observed
}

// Observe records one dynamic execution.
func (p *Profile) Observe(taken bool) {
	p.Execs++
	if taken {
		p.Taken++
	}
	if p.primed && taken != p.last {
		p.Transitions++
	}
	p.last = taken
	p.primed = true
}

// TakenRate returns the fraction of executions that were taken,
// or 0 if the branch never executed.
func (p *Profile) TakenRate() float64 {
	if p.Execs == 0 {
		return 0
	}
	return float64(p.Taken) / float64(p.Execs)
}

// TransitionRate returns the fraction of consecutive execution pairs whose
// outcomes differed, or 0 if the branch executed fewer than twice.
func (p *Profile) TransitionRate() float64 {
	if p.Execs < 2 {
		return 0
	}
	return float64(p.Transitions) / float64(p.Execs-1)
}

// Merge folds other into p. Merging is only meaningful for profiles of the
// same static branch from consecutive stream segments; the transition
// between the two segments' boundary outcomes is not observable and is
// conservatively not counted.
func (p *Profile) Merge(other *Profile) {
	if other.Execs == 0 {
		return
	}
	p.Execs += other.Execs
	p.Taken += other.Taken
	p.Transitions += other.Transitions
	p.last = other.last
	p.primed = p.primed || other.primed
}

// Profiler builds per-branch profiles from a branch event stream.
// It implements trace.Sink; feed it a full run, then call Profiles.
type Profiler struct {
	profiles map[uint64]*Profile
	events   int64
}

// NewProfiler returns an empty Profiler.
func NewProfiler() *Profiler {
	return &Profiler{profiles: make(map[uint64]*Profile)}
}

var _ trace.Sink = (*Profiler)(nil)

// Branch records one dynamic branch execution.
func (pr *Profiler) Branch(pc uint64, taken bool) {
	p := pr.profiles[pc]
	if p == nil {
		p = &Profile{}
		pr.profiles[pc] = p
	}
	p.Observe(taken)
	pr.events++
}

// Events returns the total number of dynamic executions observed.
func (pr *Profiler) Events() int64 { return pr.events }

// Sites returns the number of distinct static branches observed.
func (pr *Profiler) Sites() int { return len(pr.profiles) }

// Profiles returns the per-branch profiles keyed by PC. The map is the
// profiler's own storage; callers must not mutate it while still feeding
// events.
func (pr *Profiler) Profiles() map[uint64]*Profile { return pr.profiles }

// Profile returns the profile for pc, or nil if the branch never executed.
func (pr *Profiler) Profile(pc uint64) *Profile { return pr.profiles[pc] }
