package core

import (
	"math"
	"testing"
)

func repeatProfile(taken, notTaken int, alternate bool) *Profile {
	p := &Profile{}
	if alternate {
		n := taken + notTaken
		for i := 0; i < n; i++ {
			p.Observe(i%2 == 0)
		}
		return p
	}
	for i := 0; i < taken; i++ {
		p.Observe(true)
	}
	for i := 0; i < notTaken; i++ {
		p.Observe(false)
	}
	return p
}

func TestDistributionWeights(t *testing.T) {
	var d Distribution
	profiles := map[uint64]*Profile{
		1: repeatProfile(900, 0, false), // taken 10, trans 0, weight 900
		2: repeatProfile(0, 100, false), // taken 0, trans 0, weight 100
	}
	d.AddProfiles(profiles)
	if d.Total != 1000 {
		t.Fatalf("total %v", d.Total)
	}
	if got := d.Fraction(10, 0); got != 0.9 {
		t.Fatalf("fraction(10,0)=%v", got)
	}
	if got := d.Fraction(0, 0); got != 0.1 {
		t.Fatalf("fraction(0,0)=%v", got)
	}
	if d.StaticCount[10][0] != 1 || d.StaticCount[0][0] != 1 {
		t.Fatal("static counts")
	}
}

func TestDistributionMarginalsSumToOne(t *testing.T) {
	var d Distribution
	d.AddProfiles(map[uint64]*Profile{
		1: repeatProfile(500, 500, true),
		2: repeatProfile(100, 0, false),
		3: repeatProfile(30, 70, false),
	})
	for _, marg := range [][NumClasses]float64{d.TakenMarginal(), d.TransitionMarginal()} {
		var sum float64
		for _, v := range marg {
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("marginal sums to %v", sum)
		}
	}
}

func TestDistributionSkipsEmptyProfiles(t *testing.T) {
	var d Distribution
	d.AddProfiles(map[uint64]*Profile{1: {}})
	if d.Total != 0 {
		t.Fatal("empty profile contributed weight")
	}
}

func TestEmptyDistribution(t *testing.T) {
	var d Distribution
	if d.Fraction(5, 5) != 0 {
		t.Fatal("empty distribution fraction")
	}
	if d.CoverageTaken(0, 10) != 0 || d.CoverageTransition(0, 1) != 0 {
		t.Fatal("empty distribution coverage")
	}
}

func TestComputeCoverage(t *testing.T) {
	var d Distribution
	d.AddProfiles(map[uint64]*Profile{
		// 600 executions of an always-taken branch: taken 10 / trans 0.
		1: repeatProfile(600, 0, false),
		// 200 of a block-pattern branch: taken 5 / trans 0 —
		// the misclassified kind.
		2: repeatProfile(100, 100, false),
		// 200 of an alternator: taken 5 / trans 10.
		3: repeatProfile(100, 100, true),
	})
	cov := ComputeCoverage(&d)
	if math.Abs(cov.TakenEasy-0.6) > 1e-9 {
		t.Fatalf("taken easy %v, want 0.6", cov.TakenEasy)
	}
	// transition {0,1} covers branch 1 and branch 2: 0.8
	if math.Abs(cov.TransitionEasyGAs-0.8) > 1e-9 {
		t.Fatalf("transition GAs %v, want 0.8", cov.TransitionEasyGAs)
	}
	// PAs adds the alternator: 1.0
	if math.Abs(cov.TransitionEasyPAs-1.0) > 1e-9 {
		t.Fatalf("transition PAs %v, want 1.0", cov.TransitionEasyPAs)
	}
	if math.Abs(cov.MissedGAs-0.2) > 1e-9 || math.Abs(cov.MissedPAs-0.4) > 1e-9 {
		t.Fatalf("missed %v/%v", cov.MissedGAs, cov.MissedPAs)
	}
}

func TestMisclassified(t *testing.T) {
	cases := []struct {
		jc   JointClass
		pas  bool
		want bool
	}{
		{JointClass{Taken: 5, Transition: 0}, false, true}, // block pattern
		{JointClass{Taken: 5, Transition: 1}, false, true},
		{JointClass{Taken: 0, Transition: 0}, false, false}, // already easy by taken
		{JointClass{Taken: 10, Transition: 0}, false, false},
		{JointClass{Taken: 5, Transition: 10}, true, true}, // alternator, PAs only
		{JointClass{Taken: 5, Transition: 10}, false, false},
		{JointClass{Taken: 5, Transition: 5}, true, false}, // genuinely hard
		{JointClass{Taken: 3, Transition: 9}, true, true},
	}
	for _, c := range cases {
		if got := Misclassified(c.jc, c.pas); got != c.want {
			t.Fatalf("Misclassified(%s, pas=%v) = %v, want %v", c.jc, c.pas, got, c.want)
		}
	}
}

func TestMisclassifiedFractionMatchesCoverage(t *testing.T) {
	// The misclassified mass must equal coverage delta, computed two
	// independent ways (the S1 cross-check).
	var d Distribution
	d.AddProfiles(map[uint64]*Profile{
		1: repeatProfile(600, 0, false),
		2: repeatProfile(100, 100, false),
		3: repeatProfile(100, 100, true),
		4: repeatProfile(70, 30, false),
	})
	cov := ComputeCoverage(&d)
	if got, want := d.MisclassifiedFraction(true), cov.MissedPAs; math.Abs(got-want) > 1e-9 {
		t.Fatalf("PAs misclassified %v != coverage delta %v", got, want)
	}
	if got, want := d.MisclassifiedFraction(false), cov.MissedGAs; math.Abs(got-want) > 1e-9 {
		t.Fatalf("GAs misclassified %v != coverage delta %v", got, want)
	}
}

func TestAdvise(t *testing.T) {
	cases := []struct {
		jc   JointClass
		want Advice
	}{
		{JointClass{Taken: 5, Transition: 5}, AdviseNonPredictive},
		{JointClass{Taken: 10, Transition: 0}, AdviseStatic},
		{JointClass{Taken: 5, Transition: 1}, AdviseStatic},
		{JointClass{Taken: 5, Transition: 10}, AdviseShortLocal},
		{JointClass{Taken: 4, Transition: 9}, AdviseShortLocal},
		{JointClass{Taken: 5, Transition: 4}, AdviseLongHistory},
		{JointClass{Taken: 7, Transition: 6}, AdviseLongHistory},
	}
	for _, c := range cases {
		if got := Advise(c.jc); got != c.want {
			t.Fatalf("Advise(%s) = %v, want %v", c.jc, got, c.want)
		}
	}
}

func TestHistoryPolicy(t *testing.T) {
	p := HistoryPolicy{ShortHistoryMax: 2, LongHistory: 12}
	if got := p.HistoryFor(JointClass{Taken: 10, Transition: 0}); got != 0 {
		t.Fatalf("static history %d", got)
	}
	if got := p.HistoryFor(JointClass{Taken: 5, Transition: 10}); got != 2 {
		t.Fatalf("short-local history %d", got)
	}
	if got := p.HistoryFor(JointClass{Taken: 6, Transition: 5}); got != 12 {
		t.Fatalf("long history %d", got)
	}
	if got := p.HistoryFor(JointClass{Taken: 5, Transition: 5}); got != 12 {
		t.Fatalf("non-predictive history %d", got)
	}
}

func TestAdviceString(t *testing.T) {
	for a := AdviseStatic; a <= AdviseNonPredictive; a++ {
		if a.String() == "" || a.String() == "unknown" {
			t.Fatalf("advice %d has bad string", a)
		}
	}
	if Advice(99).String() != "unknown" {
		t.Fatal("unknown advice string")
	}
}
