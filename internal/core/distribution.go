package core

// Distribution is the dynamic-occurrence-weighted joint distribution of
// branches over (taken class, transition class) cells — the data behind
// Table 2 and Figures 1 and 2. Each static branch contributes its dynamic
// execution count to its joint cell, so a loop branch executed a million
// times weighs a million times more than a branch executed once, exactly
// as in the paper ("weighted by their dynamic occurrence").
type Distribution struct {
	// Weight[t][tr] is the total dynamic executions of branches in taken
	// class t and transition class tr.
	Weight [NumClasses][NumClasses]float64
	// Total is the sum of all weights.
	Total float64
	// StaticCount[t][tr] is the number of static branches in the cell.
	StaticCount [NumClasses][NumClasses]int
}

// AddProfiles accumulates every profile into the distribution. It may be
// called once per benchmark to aggregate a whole suite; each branch is
// classified within the profile set it came from.
func (d *Distribution) AddProfiles(profiles map[uint64]*Profile) {
	for _, p := range profiles {
		if p.Execs == 0 {
			continue
		}
		jc := ClassOfProfile(p)
		d.Weight[jc.Taken][jc.Transition] += float64(p.Execs)
		d.StaticCount[jc.Taken][jc.Transition]++
		d.Total += float64(p.Execs)
	}
}

// Fraction returns the fraction of dynamic executions in the joint cell.
func (d *Distribution) Fraction(taken, transition Class) float64 {
	if d.Total == 0 {
		return 0
	}
	return d.Weight[taken][transition] / d.Total
}

// TakenMarginal returns the fraction of dynamic executions per taken class
// (Figure 1).
func (d *Distribution) TakenMarginal() [NumClasses]float64 {
	var out [NumClasses]float64
	if d.Total == 0 {
		return out
	}
	for t := 0; t < NumClasses; t++ {
		var sum float64
		for tr := 0; tr < NumClasses; tr++ {
			sum += d.Weight[t][tr]
		}
		out[t] = sum / d.Total
	}
	return out
}

// TransitionMarginal returns the fraction of dynamic executions per
// transition class (Figure 2).
func (d *Distribution) TransitionMarginal() [NumClasses]float64 {
	var out [NumClasses]float64
	if d.Total == 0 {
		return out
	}
	for tr := 0; tr < NumClasses; tr++ {
		var sum float64
		for t := 0; t < NumClasses; t++ {
			sum += d.Weight[t][tr]
		}
		out[tr] = sum / d.Total
	}
	return out
}

// CoverageTaken returns the fraction of dynamic executions whose branch
// falls in any of the given taken classes.
func (d *Distribution) CoverageTaken(classes ...Class) float64 {
	marg := d.TakenMarginal()
	var sum float64
	for _, c := range classes {
		if c.Valid() {
			sum += marg[c]
		}
	}
	return sum
}

// CoverageTransition returns the fraction of dynamic executions whose
// branch falls in any of the given transition classes.
func (d *Distribution) CoverageTransition(classes ...Class) float64 {
	marg := d.TransitionMarginal()
	var sum float64
	for _, c := range classes {
		if c.Valid() {
			sum += marg[c]
		}
	}
	return sum
}

// Coverage reproduces the arithmetic of §4.2: how many dynamic branches
// each classification scheme identifies as cheap to predict (assignable to
// little-or-no-history predictors), and how many branches taken-rate
// classification therefore misses.
type Coverage struct {
	// TakenEasy is the coverage of taken classes {0, 10} — the branches
	// Chang et al. remove from the pattern history tables.
	// Paper: 62.90%.
	TakenEasy float64
	// TransitionEasyGAs is the coverage of transition classes {0, 1},
	// which perform best with short global history. Paper: 71.62%.
	TransitionEasyGAs float64
	// TransitionEasyPAs additionally includes transition classes {9, 10},
	// which a per-address predictor captures with one or two history
	// bits. Paper: 72.19%.
	TransitionEasyPAs float64
	// MissedGAs = TransitionEasyGAs - TakenEasy. Paper: 8.72%.
	MissedGAs float64
	// MissedPAs = TransitionEasyPAs - TakenEasy. Paper: 9.29%.
	MissedPAs float64
}

// ComputeCoverage evaluates the §4.2 coverage comparison on d.
func ComputeCoverage(d *Distribution) Coverage {
	c := Coverage{
		TakenEasy:         d.CoverageTaken(0, 10),
		TransitionEasyGAs: d.CoverageTransition(0, 1),
		TransitionEasyPAs: d.CoverageTransition(0, 1, 9, 10),
	}
	c.MissedGAs = c.TransitionEasyGAs - c.TakenEasy
	c.MissedPAs = c.TransitionEasyPAs - c.TakenEasy
	return c
}

// Misclassified reports whether the joint cell holds branches that
// taken-rate classification wrongly treats as hard to predict: branches
// with low transition rate (classes 0-1; or, for a per-address predictor,
// also the alternating classes 9-10) whose taken rate is not extreme.
// These are the bold cells of Table 2.
func Misclassified(jc JointClass, perAddress bool) bool {
	if jc.Taken == 0 || jc.Taken == 10 {
		return false // already identified by taken rate
	}
	if jc.Transition <= 1 {
		return true
	}
	return perAddress && jc.Transition >= 9
}

// MisclassifiedFraction returns the total dynamic fraction in misclassified
// cells (the highlighted mass of Table 2).
func (d *Distribution) MisclassifiedFraction(perAddress bool) float64 {
	var sum float64
	for t := Class(0); t < NumClasses; t++ {
		for tr := Class(0); tr < NumClasses; tr++ {
			if Misclassified(JointClass{Taken: t, Transition: tr}, perAddress) {
				sum += d.Fraction(t, tr)
			}
		}
	}
	return sum
}
