package core

import (
	"fmt"
	"math"
)

// NumClasses is the number of rate classes (0 through 10), matching the
// paper's 11-way binning for both taken rate and transition rate.
const NumClasses = 11

// Class is a rate class in 0..10.
//
// The paper's description ("11 equal classes ... 0-5%, 5-10%, 10-15%,
// etc.", with class 10 = 95-100% and class 5 straddling 50%) only tiles
// [0,1] with the symmetric binning
//
//	class 0:      [0.00, 0.05)
//	class i=1..9: [0.05+(i-1)*0.10, 0.05+i*0.10)
//	class 10:     [0.95, 1.00]
//
// i.e. 5%-wide end bins and 10%-wide middle bins, centred so that class 5
// is [0.45, 0.55). That is the binning used throughout this repository.
type Class int

// ClassOf maps a rate in [0,1] to its class. Rates outside [0,1] are
// clamped. Classification happens in rounded thousandths so that exact
// rational boundaries (e.g. 3/20 = 15%) land in the class their
// mathematical value belongs to, immune to float64 representation error.
func ClassOf(rate float64) Class {
	p := int(math.Round(rate * 1000)) // tenths of a percent
	switch {
	case p < 50:
		return 0
	case p >= 950:
		return 10
	default:
		return Class(1 + (p-50)/100)
	}
}

// Bounds returns the rate interval [lo, hi) covered by the class
// (class 10's interval is closed: [0.95, 1.00]).
func (c Class) Bounds() (lo, hi float64) {
	switch {
	case c <= 0:
		return 0, 0.05
	case c >= 10:
		return 0.95, 1.0
	default:
		// Derived from integer percents so adjacent classes tile exactly.
		return float64(10*int(c)-5) / 100, float64(10*int(c)+5) / 100
	}
}

// Valid reports whether c is in 0..10.
func (c Class) Valid() bool { return c >= 0 && c < NumClasses }

// String renders the class with its percentage range, e.g. "5 [45-55%)".
func (c Class) String() string {
	lo, hi := c.Bounds()
	return fmt.Sprintf("%d [%.0f-%.0f%%)", int(c), lo*100, hi*100)
}

// JointClass is a cell of the paper's Table 2: the pair of a branch's
// taken-rate class and transition-rate class.
type JointClass struct {
	Taken      Class
	Transition Class
}

// String renders "taken/transition", e.g. the hard-to-predict cell is "5/5".
func (j JointClass) String() string {
	return fmt.Sprintf("%d/%d", int(j.Taken), int(j.Transition))
}

// Hard reports whether the joint class is the paper's hard-to-predict
// "5/5" cell: taken and transition rates both near 50%.
func (j JointClass) Hard() bool { return j.Taken == 5 && j.Transition == 5 }

// ClassOfProfile returns the joint class of a branch profile.
func ClassOfProfile(p *Profile) JointClass {
	return JointClass{
		Taken:      ClassOf(p.TakenRate()),
		Transition: ClassOf(p.TransitionRate()),
	}
}

// ClassMap assigns each static branch (by PC) its joint class. It is the
// product of a profiling pass and the input to class-attributed simulation.
type ClassMap map[uint64]JointClass

// Classify builds a ClassMap from per-branch profiles.
func Classify(profiles map[uint64]*Profile) ClassMap {
	m := make(ClassMap, len(profiles))
	for pc, p := range profiles {
		m[pc] = ClassOfProfile(p)
	}
	return m
}

// Lookup returns the joint class for pc and whether it is known.
func (m ClassMap) Lookup(pc uint64) (JointClass, bool) {
	jc, ok := m[pc]
	return jc, ok
}
