package core

import (
	"testing"
	"testing/quick"
)

func TestClassOfBoundaries(t *testing.T) {
	cases := []struct {
		rate float64
		want Class
	}{
		{0.0, 0},
		{0.049, 0},
		{0.05, 1},
		{0.149, 1},
		{0.15, 2},
		{0.45, 5},
		{0.4999, 5},
		{0.50, 5},
		{0.549, 5},
		{0.55, 6},
		{0.85, 9},
		{0.949, 9},
		{0.95, 10},
		{1.0, 10},
		{-0.5, 0}, // clamped
		{1.5, 10}, // clamped
	}
	for _, c := range cases {
		if got := ClassOf(c.rate); got != c.want {
			t.Fatalf("ClassOf(%v) = %d, want %d", c.rate, got, c.want)
		}
	}
}

func TestClassBoundsTileUnitInterval(t *testing.T) {
	prevHi := 0.0
	for c := Class(0); c < NumClasses; c++ {
		lo, hi := c.Bounds()
		if lo != prevHi {
			t.Fatalf("class %d starts at %v, previous ended at %v", c, lo, prevHi)
		}
		if hi <= lo {
			t.Fatalf("class %d empty interval [%v,%v)", c, lo, hi)
		}
		prevHi = hi
	}
	if prevHi != 1.0 {
		t.Fatalf("classes end at %v, want 1.0", prevHi)
	}
}

func TestClassBoundsConsistentWithClassOf(t *testing.T) {
	for c := Class(0); c < NumClasses; c++ {
		lo, hi := c.Bounds()
		if got := ClassOf(lo); got != c {
			t.Fatalf("ClassOf(lo=%v) = %d, want %d", lo, got, c)
		}
		mid := (lo + hi) / 2
		if got := ClassOf(mid); got != c {
			t.Fatalf("ClassOf(mid=%v) = %d, want %d", mid, got, c)
		}
	}
}

func TestClassSymmetry(t *testing.T) {
	// The binning is symmetric about 0.5: ClassOf(r) + ClassOf(1-r) == 10
	// away from exact boundaries.
	for _, r := range []float64{0.0, 0.01, 0.07, 0.2, 0.33, 0.42, 0.5 - 1e-9} {
		a, b := ClassOf(r), ClassOf(1-r)
		if int(a)+int(b) != 10 {
			t.Fatalf("asymmetric: ClassOf(%v)=%d, ClassOf(%v)=%d", r, a, 1-r, b)
		}
	}
}

func TestClassStringAndValid(t *testing.T) {
	if !(Class(0).Valid() && Class(10).Valid()) {
		t.Fatal("0 and 10 must be valid")
	}
	if Class(-1).Valid() || Class(11).Valid() {
		t.Fatal("out-of-range classes must be invalid")
	}
	if Class(5).String() == "" || (JointClass{5, 5}).String() != "5/5" {
		t.Fatal("string rendering")
	}
}

func TestJointClassHard(t *testing.T) {
	if !(JointClass{Taken: 5, Transition: 5}).Hard() {
		t.Fatal("5/5 must be hard")
	}
	if (JointClass{Taken: 5, Transition: 4}).Hard() || (JointClass{Taken: 0, Transition: 5}).Hard() {
		t.Fatal("only 5/5 is hard")
	}
}

func TestClassify(t *testing.T) {
	profiles := map[uint64]*Profile{}
	always := &Profile{}
	for i := 0; i < 100; i++ {
		always.Observe(true)
	}
	alternating := &Profile{}
	for i := 0; i < 100; i++ {
		alternating.Observe(i%2 == 0)
	}
	profiles[0x10] = always
	profiles[0x20] = alternating
	m := Classify(profiles)
	if jc, ok := m.Lookup(0x10); !ok || jc.Taken != 10 || jc.Transition != 0 {
		t.Fatalf("always-taken classified %v", jc)
	}
	if jc, ok := m.Lookup(0x20); !ok || jc.Taken != 5 || jc.Transition != 10 {
		t.Fatalf("alternator classified %v", jc)
	}
	if _, ok := m.Lookup(0x99); ok {
		t.Fatal("unknown PC found")
	}
}

func TestQuickClassOfInRange(t *testing.T) {
	f := func(r float64) bool {
		c := ClassOf(r)
		return c >= 0 && c < NumClasses
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickClassOfMonotone(t *testing.T) {
	f := func(a, b float64) bool {
		// restrict to [0,1]
		if a < 0 {
			a = -a
		}
		if b < 0 {
			b = -b
		}
		if a > 1 {
			a = 1 / a
		}
		if b > 1 {
			b = 1 / b
		}
		if a > b {
			a, b = b, a
		}
		return ClassOf(a) <= ClassOf(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
