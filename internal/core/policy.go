package core

// HistoryPolicy captures the paper's §5 design guidance: which predictor
// resources a branch deserves, given its joint class. It is the bridge from
// classification (this package) to hybrid predictor construction
// (internal/bpred) — "the optimal history length for predicting a branch is
// dependent upon its taken and transition rate class".
type HistoryPolicy struct {
	// ShortHistoryMax is the history length assigned to branches the
	// classification identifies as cheap (static-like or alternating).
	ShortHistoryMax int
	// LongHistory is the history length assigned to everything else.
	LongHistory int
}

// DefaultPolicy mirrors the paper's findings on the 32 KB configurations:
// classes at the edges want 0-2 bits of history, middle classes want the
// longest affordable history.
var DefaultPolicy = HistoryPolicy{ShortHistoryMax: 2, LongHistory: 12}

// Advice is the resource recommendation for one branch.
type Advice int

const (
	// AdviseStatic marks branches predictable by a static or 1-2-bit
	// counter predictor with no pattern history: transition classes 0-1
	// (which subsume taken classes 0 and 10).
	AdviseStatic Advice = iota
	// AdviseShortLocal marks alternating branches (transition classes
	// 9-10): a per-address predictor with 1-2 history bits is near
	// perfect, while a zero-history predictor is pathological.
	AdviseShortLocal
	// AdviseLongHistory marks the remaining, genuinely history-hungry
	// branches.
	AdviseLongHistory
	// AdviseNonPredictive marks the 5/5 cell: near-50% taken and
	// transition rates, the paper's fundamental-limit branches, prime
	// candidates for predication or dual path execution rather than
	// prediction.
	AdviseNonPredictive
)

// String names the advice.
func (a Advice) String() string {
	switch a {
	case AdviseStatic:
		return "static"
	case AdviseShortLocal:
		return "short-local"
	case AdviseLongHistory:
		return "long-history"
	case AdviseNonPredictive:
		return "non-predictive"
	default:
		return "unknown"
	}
}

// Advise classifies a joint class into a resource recommendation per the
// paper's analysis (§4.2-§5.2).
func Advise(jc JointClass) Advice {
	switch {
	case jc.Hard():
		return AdviseNonPredictive
	case jc.Transition <= 1:
		return AdviseStatic
	case jc.Transition >= 9:
		return AdviseShortLocal
	default:
		return AdviseLongHistory
	}
}

// HistoryFor returns the history length the policy assigns to a joint
// class (non-predictive branches still need a predictor while running on
// conventional hardware; they get the long history).
func (p HistoryPolicy) HistoryFor(jc JointClass) int {
	switch Advise(jc) {
	case AdviseStatic:
		return 0
	case AdviseShortLocal:
		return p.ShortHistoryMax
	default:
		return p.LongHistory
	}
}
