package core

import (
	"testing"
	"testing/quick"
)

func observeAll(p *Profile, outcomes []bool) {
	for _, o := range outcomes {
		p.Observe(o)
	}
}

func TestProfileCounts(t *testing.T) {
	var p Profile
	observeAll(&p, []bool{true, true, false, true, false})
	if p.Execs != 5 || p.Taken != 3 {
		t.Fatalf("execs=%d taken=%d", p.Execs, p.Taken)
	}
	// transitions: T->T no, T->F yes, F->T yes, T->F yes = 3
	if p.Transitions != 3 {
		t.Fatalf("transitions=%d, want 3", p.Transitions)
	}
	if got := p.TakenRate(); got != 0.6 {
		t.Fatalf("taken rate %v", got)
	}
	if got := p.TransitionRate(); got != 0.75 {
		t.Fatalf("transition rate %v, want 3/4", got)
	}
}

func TestProfileEdgeCases(t *testing.T) {
	var p Profile
	if p.TakenRate() != 0 || p.TransitionRate() != 0 {
		t.Fatal("empty profile rates must be 0")
	}
	p.Observe(true)
	if p.TakenRate() != 1 {
		t.Fatal("single-exec taken rate")
	}
	if p.TransitionRate() != 0 {
		t.Fatal("single-exec transition rate must be 0")
	}
}

func TestProfileAlternating(t *testing.T) {
	var p Profile
	for i := 0; i < 100; i++ {
		p.Observe(i%2 == 0)
	}
	if got := p.TransitionRate(); got != 1.0 {
		t.Fatalf("strict alternator transition rate %v, want 1.0", got)
	}
	if got := p.TakenRate(); got != 0.5 {
		t.Fatalf("alternator taken rate %v, want 0.5", got)
	}
}

func TestProfileConstant(t *testing.T) {
	var p Profile
	for i := 0; i < 100; i++ {
		p.Observe(true)
	}
	if p.TransitionRate() != 0 || p.TakenRate() != 1 {
		t.Fatalf("constant branch: taken=%v trans=%v", p.TakenRate(), p.TransitionRate())
	}
}

func TestProfileBlockPattern(t *testing.T) {
	// Long runs of taken then not-taken: ~50% taken but near-zero
	// transitions — the paper's motivating misclassified branch.
	var p Profile
	for i := 0; i < 50; i++ {
		p.Observe(true)
	}
	for i := 0; i < 50; i++ {
		p.Observe(false)
	}
	if p.TakenRate() != 0.5 {
		t.Fatalf("taken rate %v", p.TakenRate())
	}
	if got := p.TransitionRate(); got > 0.02 {
		t.Fatalf("block pattern transition rate %v, want ~1/99", got)
	}
	jc := ClassOfProfile(&p)
	if jc.Taken != 5 || jc.Transition != 0 {
		t.Fatalf("block pattern classified %s, want 5/0", jc)
	}
}

func TestProfileMerge(t *testing.T) {
	var a, b Profile
	observeAll(&a, []bool{true, false})
	observeAll(&b, []bool{false, true, true})
	a.Merge(&b)
	if a.Execs != 5 || a.Taken != 3 {
		t.Fatalf("merged execs=%d taken=%d", a.Execs, a.Taken)
	}
	// transitions: a contributed 1, b contributed 1; boundary not counted.
	if a.Transitions != 2 {
		t.Fatalf("merged transitions=%d", a.Transitions)
	}
	var empty Profile
	before := a
	a.Merge(&empty)
	if a != before {
		t.Fatal("merging empty profile changed state")
	}
}

func TestProfilerBasics(t *testing.T) {
	pr := NewProfiler()
	pr.Branch(0x100, true)
	pr.Branch(0x100, false)
	pr.Branch(0x200, true)
	if pr.Events() != 3 || pr.Sites() != 2 {
		t.Fatalf("events=%d sites=%d", pr.Events(), pr.Sites())
	}
	p := pr.Profile(0x100)
	if p == nil || p.Execs != 2 || p.Transitions != 1 {
		t.Fatalf("profile %+v", p)
	}
	if pr.Profile(0x999) != nil {
		t.Fatal("unknown PC returned a profile")
	}
}

// TestQuickTransitionFeasibility checks the arithmetic law that shapes
// Table 2's empty corner: a branch with t taken out of n executions can
// transition at most 2*min(t, n-t) (+1 depending on endpoints) times, so
// transitions <= 2*min(taken, n-taken) + 1 always.
func TestQuickTransitionFeasibility(t *testing.T) {
	f := func(outcomes []bool) bool {
		var p Profile
		observeAll(&p, outcomes)
		minSide := p.Taken
		if other := p.Execs - p.Taken; other < minSide {
			minSide = other
		}
		return p.Transitions <= 2*minSide
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRatesInRange: both rates always land in [0, 1].
func TestQuickRatesInRange(t *testing.T) {
	f := func(outcomes []bool) bool {
		var p Profile
		observeAll(&p, outcomes)
		tr, tk := p.TransitionRate(), p.TakenRate()
		return tr >= 0 && tr <= 1 && tk >= 0 && tk <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickTransitionsMatchRecount: the incremental transition counter
// agrees with a direct recount of adjacent differing pairs.
func TestQuickTransitionsMatchRecount(t *testing.T) {
	f := func(outcomes []bool) bool {
		var p Profile
		observeAll(&p, outcomes)
		var want int64
		for i := 1; i < len(outcomes); i++ {
			if outcomes[i] != outcomes[i-1] {
				want++
			}
		}
		return p.Transitions == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
