package trace

import (
	"encoding/binary"
	"fmt"
)

// In-memory recorded traces for the record-once/replay-many pipeline.
//
// A ChunkedTrace stores a branch stream as column-oriented chunks: each
// chunk holds a direction bitmap (one bit per event) and a byte column of
// zigzag-varint PC deltas — the same delta idiom as the BTR1 file format,
// so the common event costs ~1.1 bytes plus a direction bit. Recording a
// workload once and replaying the chunks is how the simulator drives many
// predictor passes without re-running the generator per pass, and the
// compact columns keep whole Table 1 inputs resident without trace files.

// DefaultChunkEvents is the chunk granularity used when a recorder is
// built with chunkEvents <= 0: big enough to amortise per-chunk overhead,
// small enough that per-replayer decode buffers stay cache-friendly.
const DefaultChunkEvents = 1 << 14

// chunk is one column-oriented run of events.
type chunk struct {
	// startPC is the PC preceding the chunk's first event; deltas chain
	// from it exactly as BTR1 deltas chain across groups.
	startPC uint64
	// deltas holds n zigzag-uvarint PC deltas, back to back.
	deltas []byte
	// dirs is the direction bitmap: event i's outcome is bit i&63 of
	// word i>>6.
	dirs []uint64
	// n counts events in this chunk.
	n int
}

// ChunkedTrace is a sealed in-memory trace. Build one with a ChunkRecorder;
// replay it with NewReplayer (chunk-at-a-time columns, the fast path) or
// Source (event-at-a-time, the generic path). A ChunkedTrace is immutable
// after sealing, so any number of replayers may read it concurrently.
type ChunkedTrace struct {
	chunks      []chunk
	events      int64
	chunkEvents int
}

// Events returns the number of recorded events.
func (t *ChunkedTrace) Events() int64 { return t.events }

// Chunks returns the number of chunks.
func (t *ChunkedTrace) Chunks() int { return len(t.chunks) }

// SizeBytes returns the approximate heap footprint of the stored columns.
func (t *ChunkedTrace) SizeBytes() int64 {
	var n int64
	for i := range t.chunks {
		n += int64(len(t.chunks[i].deltas)) + int64(len(t.chunks[i].dirs))*8
	}
	return n
}

// ChunkStats summarises a ChunkedTrace's in-memory encoding, for trace
// audits (brtrace) and cache accounting.
type ChunkStats struct {
	Chunks     int   // sealed chunks
	Events     int64 // recorded events
	DeltaBytes int64 // zigzag-varint PC delta column bytes
	DirBytes   int64 // direction bitmap bytes
}

// EncodedBytes is the total column footprint.
func (s ChunkStats) EncodedBytes() int64 { return s.DeltaBytes + s.DirBytes }

// BytesPerEvent is the mean encoded cost of one event (0 when empty).
func (s ChunkStats) BytesPerEvent() float64 {
	if s.Events == 0 {
		return 0
	}
	return float64(s.EncodedBytes()) / float64(s.Events)
}

// String renders a one-line summary.
func (s ChunkStats) String() string {
	return fmt.Sprintf("chunks=%d events=%d encoded_bytes=%d (deltas=%d dirs=%d) bytes/event=%.2f",
		s.Chunks, s.Events, s.EncodedBytes(), s.DeltaBytes, s.DirBytes, s.BytesPerEvent())
}

// MemStats reports the trace's in-memory encoding statistics.
func (t *ChunkedTrace) MemStats() ChunkStats {
	s := ChunkStats{Chunks: len(t.chunks), Events: t.events}
	for i := range t.chunks {
		s.DeltaBytes += int64(len(t.chunks[i].deltas))
		s.DirBytes += int64(len(t.chunks[i].dirs)) * 8
	}
	return s
}

// ChunkStatsSink measures what a ChunkRecorder would hold resident for
// a stream — same chunking, same delta encoding — without retaining any
// columns, so arbitrarily large traces can be audited in O(1) memory.
// It implements Sink; read the result with Stats.
type ChunkStatsSink struct {
	chunkEvents int
	lastPC      uint64
	cur         int // events in the current (unfinished) chunk
	s           ChunkStats
}

// NewChunkStatsSink returns a sink modelling a recorder with the given
// chunk granularity (<= 0 means DefaultChunkEvents).
func NewChunkStatsSink(chunkEvents int) *ChunkStatsSink {
	if chunkEvents <= 0 {
		chunkEvents = DefaultChunkEvents
	}
	return &ChunkStatsSink{chunkEvents: chunkEvents}
}

// Branch accounts for one event.
func (s *ChunkStatsSink) Branch(pc uint64, taken bool) {
	if s.cur == 0 {
		// A recorder allocates the full direction bitmap when a chunk
		// opens, so a partial final chunk costs the same words.
		s.s.Chunks++
		s.s.DirBytes += int64((s.chunkEvents+63)/64) * 8
	}
	var scratch [binary.MaxVarintLen64]byte
	s.s.DeltaBytes += int64(binary.PutUvarint(scratch[:], zigzag(int64(pc-s.lastPC))))
	s.lastPC = pc
	s.s.Events++
	s.cur++
	if s.cur == s.chunkEvents {
		s.cur = 0
	}
}

// Stats returns the accumulated statistics.
func (s *ChunkStatsSink) Stats() ChunkStats { return s.s }

// ChunkRecorder is a Sink that records a stream into a ChunkedTrace.
// It is single-writer; call Trace exactly once after the stream ends.
type ChunkRecorder struct {
	tr     ChunkedTrace
	cur    chunk
	lastPC uint64
	sealed bool
}

var _ Sink = (*ChunkRecorder)(nil)

// NewChunkRecorder returns a recorder cutting chunks every chunkEvents
// events (<= 0 means DefaultChunkEvents).
func NewChunkRecorder(chunkEvents int) *ChunkRecorder {
	if chunkEvents <= 0 {
		chunkEvents = DefaultChunkEvents
	}
	return &ChunkRecorder{tr: ChunkedTrace{chunkEvents: chunkEvents}}
}

// Branch records one event.
func (r *ChunkRecorder) Branch(pc uint64, taken bool) {
	if r.sealed {
		panic("trace: recording into a sealed ChunkRecorder")
	}
	if r.cur.dirs == nil {
		r.cur.startPC = r.lastPC
		r.cur.dirs = make([]uint64, (r.tr.chunkEvents+63)/64)
		if r.cur.deltas == nil {
			// Reserve for the common ~1.1 byte/event case; rare
			// delta-heavy chunks just grow.
			r.cur.deltas = make([]byte, 0, r.tr.chunkEvents+r.tr.chunkEvents/4)
		}
	}
	var scratch [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(scratch[:], zigzag(int64(pc-r.lastPC)))
	r.cur.deltas = append(r.cur.deltas, scratch[:n]...)
	if taken {
		r.cur.dirs[r.cur.n>>6] |= 1 << (uint(r.cur.n) & 63)
	}
	r.cur.n++
	r.lastPC = pc
	if r.cur.n == r.tr.chunkEvents {
		r.flush()
	}
}

func (r *ChunkRecorder) flush() {
	if r.cur.n == 0 {
		return
	}
	r.tr.chunks = append(r.tr.chunks, r.cur)
	r.tr.events += int64(r.cur.n)
	r.cur = chunk{}
}

// Trace seals the recorder (flushing any partial final chunk) and returns
// the recorded trace. Further Branch calls panic.
func (r *ChunkRecorder) Trace() *ChunkedTrace {
	if !r.sealed {
		r.flush()
		r.sealed = true
	}
	return &r.tr
}

// Replayer decodes a ChunkedTrace chunk by chunk into reusable column
// buffers. Each replayer owns its buffers, so independent goroutines can
// replay the same trace concurrently with one decode each.
type Replayer struct {
	t   *ChunkedTrace
	ci  int
	pcs []uint64
}

// NewReplayer returns a replayer positioned at the first chunk.
func (t *ChunkedTrace) NewReplayer() *Replayer {
	return &Replayer{t: t, pcs: make([]uint64, t.chunkEvents)}
}

// NextChunk decodes the next chunk and returns its PC column, direction
// bitmap (event i's outcome is bit i&63 of word i>>6), and event count.
// ok is false once the trace is exhausted. The returned pcs slice is
// owned by the replayer and overwritten by the next call; dirs aliases
// the trace's immutable storage.
func (r *Replayer) NextChunk() (pcs []uint64, dirs []uint64, n int, ok bool) {
	if r.ci >= len(r.t.chunks) {
		return nil, nil, 0, false
	}
	c := &r.t.chunks[r.ci]
	r.ci++
	c.decodeInto(r.pcs)
	return r.pcs[:c.n], c.dirs, c.n, true
}

// decodeInto expands the chunk's delta column into pcs, which must hold
// at least c.n entries. Chunks are immutable, so concurrent decodes into
// distinct buffers are safe.
func (c *chunk) decodeInto(pcs []uint64) {
	pc := c.startPC
	off := 0
	for i := 0; i < c.n; i++ {
		word, w := binary.Uvarint(c.deltas[off:])
		if w <= 0 {
			panic("trace: corrupt chunk delta column")
		}
		off += w
		pc += uint64(unzigzag(word))
		pcs[i] = pc
	}
}

// Reset rewinds the replayer to the first chunk.
func (r *Replayer) Reset() { r.ci = 0 }

// Replay drives every recorded event through sink, in order.
func (t *ChunkedTrace) Replay(sink Sink) {
	r := t.NewReplayer()
	for {
		pcs, dirs, n, ok := r.NextChunk()
		if !ok {
			return
		}
		for i := 0; i < n; i++ {
			sink.Branch(pcs[i], dirs[i>>6]&(1<<(uint(i)&63)) != 0)
		}
	}
}

// Source returns an event-at-a-time view of the trace.
func (t *ChunkedTrace) Source() Source {
	return &chunkSource{r: t.NewReplayer()}
}

type chunkSource struct {
	r    ChunkReader
	pcs  []uint64
	dirs []uint64
	n    int
	i    int
}

func (s *chunkSource) Next() (Event, bool, error) {
	for s.i >= s.n {
		pcs, dirs, n, ok := s.r.NextChunk()
		if !ok {
			return Event{}, false, nil
		}
		s.pcs, s.dirs, s.n, s.i = pcs, dirs, n, 0
	}
	i := s.i
	s.i++
	return Event{PC: s.pcs[i], Taken: s.dirs[i>>6]&(1<<(uint(i)&63)) != 0}, true, nil
}
