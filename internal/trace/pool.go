package trace

import (
	"fmt"
	"sync"
)

// DecodedPool is a byte-budgeted cache of decoded chunk columns over
// one recording Handle. Sweep tasks check chunks out (decoding on
// miss, possibly paging from the spill file) and release them when the
// range is done; the pool retains released columns up to its budget so
// other tasks visiting the same chunk reuse the decode, and evicts
// least-recently-used columns past it — trading re-decode work for a
// bounded decoded footprint, which is what lets a (slot × chunk-range)
// sweep over a paper-scale recording run in fixed memory.
//
// Budget semantics:
//
//	0   retain every decoded chunk for the pool's lifetime (the
//	    pre-streaming behaviour: decode once, keep all columns);
//	> 0 byte budget; checked-out chunks are pinned and may overshoot
//	    it (forward progress beats the bound), unpinned LRU columns
//	    are evicted beyond it;
//	< 0 retain nothing: columns drop at last release, every revisit
//	    re-decodes.
//
// A DecodedPool is safe for concurrent use. Checked-out chunks are
// immutable; a chunk stays valid until its matching Release, even if
// the pool evicts it for other callers in between.
type DecodedPool struct {
	h      *Handle
	budget int64

	mu    sync.Mutex
	slots []poolSlot
	// lruHead/lruTail link the unpinned resident slots oldest-first,
	// so eviction is O(1) per victim regardless of chunk count.
	lruHead, lruTail int
	bytes            int64 // resident decoded bytes (pinned + cached)
	stats            DecodedPoolStats
	highWater        int64
}

// poolSlot tracks one chunk's pool state. prev/next are LRU links
// (chunk indices, -1 = none), valid only while linked.
type poolSlot struct {
	d          *DecodedChunk
	refs       int32
	size       int64
	prev, next int
	linked     bool
	decoded    bool // decoded at least once (for the re-decode counter)
}

// DecodedPoolStats counts pool traffic. HighWater is the peak resident
// decoded bytes; Redecodes counts decodes beyond each chunk's first —
// the work the budget trades memory for.
type DecodedPoolStats struct {
	Hits      int64
	Decodes   int64
	Redecodes int64
	Evicted   int64
	HighWater int64
}

// NewDecodedPool builds a pool over h with the given byte budget.
func NewDecodedPool(h *Handle, budget int64) *DecodedPool {
	return &DecodedPool{h: h, budget: budget, slots: make([]poolSlot, h.Chunks()), lruHead: -1, lruTail: -1}
}

// Checkout returns chunk k's decoded columns, pinned until the
// matching Release. Decode (and any spill page-in) happens outside the
// pool lock; concurrent first-touches of one chunk may decode it twice,
// with one copy dropped — correctness is unaffected, recordings are
// immutable. Paging errors panic with context, like Handle replays.
func (p *DecodedPool) Checkout(k int) *DecodedChunk {
	p.mu.Lock()
	s := &p.slots[k]
	if s.d != nil {
		if s.linked {
			p.unlinkLocked(k)
		}
		s.refs++
		p.stats.Hits++
		d := s.d
		p.mu.Unlock()
		return d
	}
	p.mu.Unlock()

	d, err := p.h.DecodeChunk(k)
	if err != nil {
		panic(fmt.Sprintf("trace: decoding chunk %d: %v", k, err))
	}
	size := d.SizeBytes()

	p.mu.Lock()
	s = &p.slots[k]
	p.stats.Decodes++
	if s.decoded {
		p.stats.Redecodes++
	}
	s.decoded = true
	if s.d == nil {
		dc := d
		s.d = &dc
		s.size = size
		p.bytes += size
		if p.bytes > p.highWater {
			p.highWater = p.bytes
		}
	} else if s.linked {
		// Another goroutine installed (and released) it while we decoded.
		p.unlinkLocked(k)
	}
	s.refs++
	out := s.d
	p.mu.Unlock()
	return out
}

// Release unpins chunk k. With a negative budget the columns drop on
// the last release; with a positive one the chunk joins the LRU list
// and any excess over the budget is evicted oldest-first.
func (p *DecodedPool) Release(k int) {
	p.mu.Lock()
	s := &p.slots[k]
	if s.refs <= 0 {
		p.mu.Unlock()
		panic(fmt.Sprintf("trace: releasing chunk %d that is not checked out", k))
	}
	s.refs--
	if s.refs == 0 && s.d != nil {
		switch {
		case p.budget < 0:
			p.dropLocked(s)
		case p.budget > 0:
			p.linkLocked(k)
			for p.bytes > p.budget && p.lruHead >= 0 {
				victim := p.lruHead
				p.unlinkLocked(victim)
				p.dropLocked(&p.slots[victim])
			}
		}
	}
	p.mu.Unlock()
}

func (p *DecodedPool) dropLocked(s *poolSlot) {
	p.bytes -= s.size
	s.d = nil
	s.size = 0
	p.stats.Evicted++
}

// linkLocked appends chunk k at the MRU tail of the unpinned list.
func (p *DecodedPool) linkLocked(k int) {
	s := &p.slots[k]
	s.linked = true
	s.prev, s.next = p.lruTail, -1
	if p.lruTail >= 0 {
		p.slots[p.lruTail].next = k
	} else {
		p.lruHead = k
	}
	p.lruTail = k
}

// unlinkLocked removes chunk k from the unpinned list.
func (p *DecodedPool) unlinkLocked(k int) {
	s := &p.slots[k]
	if s.prev >= 0 {
		p.slots[s.prev].next = s.next
	} else {
		p.lruHead = s.next
	}
	if s.next >= 0 {
		p.slots[s.next].prev = s.prev
	} else {
		p.lruTail = s.prev
	}
	s.linked = false
}

// Stats returns a snapshot of the pool counters.
func (p *DecodedPool) Stats() DecodedPoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.stats
	s.HighWater = p.highWater
	return s
}
