package trace

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// DecodedPool is a byte-budgeted cache of decoded chunk columns over
// one recording Handle. Sweep tasks check chunks out (decoding on
// miss, possibly paging from the spill file) and release them when the
// range is done; the pool retains released columns up to its budget so
// other tasks visiting the same chunk reuse the decode, and evicts
// least-recently-used columns past it — trading re-decode work for a
// bounded decoded footprint, which is what lets a (slot × chunk-range)
// sweep over a paper-scale recording run in fixed memory.
//
// Budget semantics:
//
//	0   retain every decoded chunk for the pool's lifetime (the
//	    pre-streaming behaviour: decode once, keep all columns);
//	> 0 byte budget; checked-out chunks are pinned and may overshoot
//	    it (forward progress beats the bound). Admission is
//	    scan-resistant: the first budget's worth of distinct chunks
//	    becomes a protected warm set that stays resident, and
//	    everything past it is transit — evicted at release rather
//	    than thrashing the warm set. Plain LRU collapses to zero hits
//	    when repeated sweeps are even one chunk wider than the
//	    budget; first-come protection keeps a stable prefix warm and
//	    pays re-decodes only for the overflow;
//	< 0 retain nothing: columns drop at last release, every revisit
//	    re-decodes.
//
// Concurrent first touches of one chunk are single-flighted: the first
// goroutine decodes, the rest wait on the flight and share the install,
// so a chunk is never decoded twice at once. EnablePrefetch adds a
// background prefetcher behind the non-blocking Prefetch hint, which
// decodes upcoming chunks into the pool — coalescing adjacent spill
// reads into one ReadAt — so paging and decode overlap with the
// caller's compute. Enabling the prefetcher also widens the transit
// band by a fixed window allowance: prefetched columns awaiting their
// first checkout and recently released transit both ride up to
// budget + window before eviction — read-ahead must not be consumed by
// its own pressure, and the chunk one convoyed sweep chain just
// released is exactly the chunk its sibling chains need next. Peak
// memory stays O(budget + window).
//
// A DecodedPool is safe for concurrent use. Checked-out chunks are
// immutable; a chunk stays valid until its matching Release, even if
// the pool evicts it for other callers in between.
type DecodedPool struct {
	h      *Handle
	budget int64

	mu    sync.Mutex
	slots []poolSlot
	// lruHead/lruTail link the unpinned resident slots oldest-first,
	// so eviction is O(1) per victim regardless of chunk count.
	lruHead, lruTail int
	bytes            int64 // resident decoded bytes (pinned + cached)
	protectedBytes   int64 // bytes admitted to the protected warm set
	stats            DecodedPoolStats
	highWater        int64
	inFlight         int64 // decodes (demand + prefetch) currently running

	pf *prefetcher // background read-ahead; nil until EnablePrefetch
	// raMode is set (and stays set) once EnablePrefetch runs: transit
	// columns then ride within the prefetch-window allowance past the
	// budget instead of being evicted at every release, so a chunk
	// decoded for one convoyed sweep chain is still resident when its
	// siblings arrive moments later.
	raMode bool
}

// poolSlot tracks one chunk's pool state. prev/next are LRU links
// (chunk indices, -1 = none), valid only while linked. flight is the
// slot's in-progress decode (demand or prefetch), closed when it
// settles — successfully or not — so waiters re-check rather than
// decoding the same chunk twice.
type poolSlot struct {
	d          *DecodedChunk
	refs       int32
	size       int64
	prev, next int
	linked     bool
	decoded    bool // decoded at least once (for the re-decode counter)
	protected  bool // in the warm set: resident for the pool's lifetime
	prefetched bool // installed by the prefetcher, not yet claimed
	flight     chan struct{}
}

// DecodedPoolStats counts pool traffic. HighWater is the peak resident
// decoded bytes; Redecodes counts decodes beyond each chunk's first —
// the work the budget trades memory for. PrefetchHits counts checkouts
// served by a prefetched column (including waits on a prefetch already
// in flight), PrefetchWasted counts prefetched columns evicted — or
// still unclaimed at ClosePrefetch — before any checkout touched them,
// and InFlightPeak is the high-water mark of concurrent decodes (demand
// plus prefetch) — the pipeline depth the read-ahead actually achieved.
type DecodedPoolStats struct {
	Hits           int64
	Decodes        int64
	Redecodes      int64
	Evicted        int64
	HighWater      int64
	PrefetchHits   int64
	PrefetchWasted int64
	InFlightPeak   int64
}

// NewDecodedPool builds a pool over h with the given byte budget.
func NewDecodedPool(h *Handle, budget int64) *DecodedPool {
	return &DecodedPool{h: h, budget: budget, slots: make([]poolSlot, h.Chunks()), lruHead: -1, lruTail: -1}
}

// Checkout returns chunk k's decoded columns, pinned until the
// matching Release. Decode (and any spill page-in) happens outside the
// pool lock; concurrent first-touches single-flight on the slot, so
// exactly one goroutine decodes and the rest share the install.
// Paging errors panic with context, like Handle replays.
func (p *DecodedPool) Checkout(k int) *DecodedChunk {
	p.mu.Lock()
	for {
		s := &p.slots[k]
		if s.d != nil {
			if s.linked {
				p.unlinkLocked(k)
			}
			s.refs++
			p.stats.Hits++
			if s.prefetched {
				s.prefetched = false
				p.stats.PrefetchHits++
			}
			d := s.d
			p.mu.Unlock()
			return d
		}
		if s.flight != nil {
			// Someone (a sibling chain or a prefetch worker) is already
			// decoding this chunk: wait for the flight to settle and
			// re-check. The install may fail or be evicted before we
			// re-acquire the lock, hence the loop.
			done := s.flight
			p.mu.Unlock()
			<-done
			p.mu.Lock()
			continue
		}
		s.flight = make(chan struct{})
		p.noteFlightLocked(1)
		break
	}
	p.mu.Unlock()

	d, err := p.h.DecodeChunk(k)
	if err != nil {
		// Settle the flight before panicking so waiters unblock (they
		// re-claim, hit the same error, and panic with the same context).
		// The panic value is an error wrapping the cause, so recovery at
		// the sweep layer can classify it (errors.Is ErrCorruptSpill).
		p.settleFlight(k)
		panic(fmt.Errorf("trace: decoding chunk %d: %w", k, err))
	}

	p.mu.Lock()
	s := &p.slots[k]
	p.stats.Decodes++
	if s.decoded {
		p.stats.Redecodes++
	}
	s.decoded = true
	dc := d
	s.d = &dc
	s.size = d.SizeBytes()
	p.bytes += s.size
	if p.bytes > p.highWater {
		p.highWater = p.bytes
	}
	p.maybeProtectLocked(k)
	s.refs++
	out := s.d
	close(s.flight)
	s.flight = nil
	p.noteFlightLocked(-1)
	p.mu.Unlock()
	return out
}

// maybeProtectLocked admits chunk k to the protected warm set if the
// budget still has room. Protection is first-come and permanent: the
// warm set is a stable prefix of the sweep order, hit by every later
// chain, while the overflow streams through as transit.
func (p *DecodedPool) maybeProtectLocked(k int) {
	s := &p.slots[k]
	if p.budget <= 0 || s.protected || p.protectedBytes+s.size > p.budget {
		return
	}
	s.protected = true
	p.protectedBytes += s.size
}

// chunkEst is the approximate decoded size of one full chunk, used for
// window sizing where the real size is not yet known.
func (p *DecodedPool) chunkEst() int64 {
	return int64(p.h.ChunkEvents())*8 + int64((p.h.ChunkEvents()+63)/64)*8
}

// Release unpins chunk k. With a negative budget the columns drop on
// the last release; with a positive one the chunk joins the LRU list
// and any excess over the budget is evicted oldest-first.
func (p *DecodedPool) Release(k int) {
	p.mu.Lock()
	s := &p.slots[k]
	if s.refs <= 0 {
		p.mu.Unlock()
		panic(fmt.Sprintf("trace: releasing chunk %d that is not checked out", k))
	}
	s.refs--
	if s.refs == 0 && s.d != nil {
		switch {
		case p.budget < 0:
			p.dropLocked(s)
		case p.budget > 0 && !s.protected:
			p.linkLocked(k)
			p.evictLocked()
		}
	}
	p.mu.Unlock()
}

// noteFlightLocked tracks the number of concurrent decodes and its peak.
func (p *DecodedPool) noteFlightLocked(delta int64) {
	p.inFlight += delta
	if p.inFlight > p.stats.InFlightPeak {
		p.stats.InFlightPeak = p.inFlight
	}
}

// settleFlight closes and clears chunk k's flight without installing
// anything (the decode failed).
func (p *DecodedPool) settleFlight(k int) {
	p.mu.Lock()
	s := &p.slots[k]
	close(s.flight)
	s.flight = nil
	p.noteFlightLocked(-1)
	p.mu.Unlock()
}

// evictLocked drops unpinned transit columns oldest-first until the
// pool is back under its limit. Without a prefetcher the limit is the
// bare (positive) budget. In read-ahead mode it is the budget plus a
// fixed window allowance: both prefetched columns awaiting their first
// checkout (read-ahead must not be consumed by its own eviction
// pressure) and recently released transit (the chunk one convoyed
// chain just swept is the chunk its siblings need next) ride in that
// band, and fresh installs link at the MRU tail, so the coldest transit
// goes first. Protected slots are never linked, so the walk only ever
// sees transit; peak memory stays O(budget + window) either way.
func (p *DecodedPool) evictLocked() {
	limit := p.budget
	if p.raMode {
		limit += int64(prefetchWindowChunks) * p.chunkEst()
	}
	for p.bytes > limit && p.lruHead >= 0 {
		victim := p.lruHead
		p.unlinkLocked(victim)
		p.dropLocked(&p.slots[victim])
	}
}

func (p *DecodedPool) dropLocked(s *poolSlot) {
	p.bytes -= s.size
	s.d = nil
	s.size = 0
	p.stats.Evicted++
	if s.prefetched {
		s.prefetched = false
		p.stats.PrefetchWasted++
	}
}

// linkLocked appends chunk k at the MRU tail of the unpinned list.
func (p *DecodedPool) linkLocked(k int) {
	s := &p.slots[k]
	s.linked = true
	s.prev, s.next = p.lruTail, -1
	if p.lruTail >= 0 {
		p.slots[p.lruTail].next = k
	} else {
		p.lruHead = k
	}
	p.lruTail = k
}

// unlinkLocked removes chunk k from the unpinned list.
func (p *DecodedPool) unlinkLocked(k int) {
	s := &p.slots[k]
	if s.prev >= 0 {
		p.slots[s.prev].next = s.next
	} else {
		p.lruHead = s.next
	}
	if s.next >= 0 {
		p.slots[s.next].prev = s.prev
	} else {
		p.lruTail = s.prev
	}
	s.linked = false
}

// Stats returns a snapshot of the pool counters.
func (p *DecodedPool) Stats() DecodedPoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.stats
	s.HighWater = p.highWater
	return s
}

// Reader returns a sequential ChunkReader over the pool's whole
// recording that checks each chunk out of the pool and hints readAhead
// chunks past the cursor — the streaming-replay analogue of the sweep
// engines' read-ahead. The previous chunk is released on the next
// NextChunk call, matching the interface's ownership contract. The
// caller still owns the pool's lifecycle (ClosePrefetch when done).
func (p *DecodedPool) Reader(readAhead int) ChunkReader {
	return &poolReader{p: p, cur: -1, pf: 1, ra: readAhead}
}

// Source is Reader as an event-at-a-time Source.
func (p *DecodedPool) Source(readAhead int) Source {
	return &chunkSource{r: p.Reader(readAhead)}
}

// poolReader is the sequential pooled replay behind DecodedPool.Reader.
type poolReader struct {
	p    *DecodedPool
	cur  int // checked-out chunk, released on the next call; -1 = none
	next int
	pf   int // first chunk not yet hinted
	ra   int
}

func (r *poolReader) NextChunk() (pcs []uint64, dirs []uint64, n int, ok bool) {
	if r.cur >= 0 {
		r.p.Release(r.cur)
		r.cur = -1
	}
	nchunks := r.p.h.Chunks()
	if r.next >= nchunks {
		return nil, nil, 0, false
	}
	k := r.next
	if r.ra > 0 {
		hi := k + 1 + r.ra
		if hi > nchunks {
			hi = nchunks
		}
		if r.pf <= k {
			r.pf = k + 1
		}
		for ; r.pf < hi; r.pf++ {
			r.p.Prefetch(r.pf)
		}
	}
	d := r.p.Checkout(k)
	r.cur = k
	r.next = k + 1
	return d.PCs, d.Dirs, d.N, true
}

// Prefetcher defaults: two workers keep one decode in flight while the
// other's read parks in the kernel, and the queue absorbs a burst of
// hints from every sweep chain without blocking any of them.
const (
	defaultPrefetchWorkers = 2
	defaultPrefetchQueue   = 256
	prefetchBatch          = 16
	prefetchYieldDepth     = 8
	// prefetchWindowChunks bounds how far read-ahead runs past the
	// budget: at most this many chunks are claimed per batch, and
	// eviction spares unclaimed prefetched columns up to the same
	// allowance.
	prefetchWindowChunks = 4
)

// prefetcher is the pool's background read-ahead: a bounded hint queue
// drained by worker goroutines that decode upcoming chunks into the
// pool before the sweep cursor arrives. canceled makes the workers
// discard batches instead of decoding them, so a canceled or poisoned
// sweep unwinds without waiting behind queued page-ins.
type prefetcher struct {
	reqs     chan int
	wg       sync.WaitGroup
	canceled atomic.Bool
}

// EnablePrefetch starts the pool's background prefetcher with the given
// worker count and hint-queue depth (<= 0 selects defaults). It is a
// no-op on a pool that already has one, and on cache-nothing pools
// (budget < 0), where an unpinned install would be dropped immediately.
// A pool with a prefetcher must be shut down with ClosePrefetch.
func (p *DecodedPool) EnablePrefetch(workers, queue int) {
	if p.budget < 0 {
		return
	}
	if workers <= 0 {
		workers = defaultPrefetchWorkers
	}
	if queue <= 0 {
		queue = defaultPrefetchQueue
	}
	p.mu.Lock()
	p.raMode = true
	if p.pf != nil {
		p.mu.Unlock()
		return
	}
	pf := &prefetcher{reqs: make(chan int, queue)}
	p.pf = pf
	p.mu.Unlock()
	for i := 0; i < workers; i++ {
		pf.wg.Add(1)
		go p.prefetchLoop(pf)
	}
}

// Prefetch hints that chunk k will be checked out soon. It never
// blocks: without a prefetcher, for a chunk already resident or in
// flight, or when the hint queue is full, it does nothing — read-ahead
// is best-effort and the demand path stays correct without it.
func (p *DecodedPool) Prefetch(k int) {
	p.mu.Lock()
	pf := p.pf
	if pf == nil || k < 0 || k >= len(p.slots) {
		p.mu.Unlock()
		return
	}
	s := &p.slots[k]
	if s.d != nil || s.flight != nil {
		p.mu.Unlock()
		return
	}
	// Sent under the lock: ClosePrefetch nils p.pf before closing the
	// channel, so a send can never race the close.
	select {
	case pf.reqs <- k:
	default:
	}
	depth := len(pf.reqs)
	yieldAt := cap(pf.reqs) / 2
	if yieldAt > prefetchYieldDepth {
		yieldAt = prefetchYieldDepth
	}
	if yieldAt < 1 {
		yieldAt = 1
	}
	p.mu.Unlock()
	// A backlog means the workers are starving — on a single P they only
	// run when the demand path blocks, and fast page-cache preads never
	// block long enough. Yield so they drain the queue now, while the
	// hints are still ahead of the cursor: the batch decodes as coalesced
	// runs, so even without true overlap the syscall count drops. On
	// multi-core boxes the workers drain hints as they arrive and the
	// backlog never builds, so this stays dormant.
	if depth >= yieldAt {
		runtime.Gosched()
	}
}

// CancelPrefetch makes the prefetcher drop queued hints instead of
// decoding them. Demand checkouts are unaffected; call it ahead of
// ClosePrefetch on a cancellation or poison path so the unwind does not
// wait behind a window of now-useless page-ins. Idempotent and safe
// without EnablePrefetch.
func (p *DecodedPool) CancelPrefetch() {
	p.mu.Lock()
	pf := p.pf
	p.mu.Unlock()
	if pf != nil {
		pf.canceled.Store(true)
	}
}

// ClosePrefetch stops the prefetcher and waits for in-flight decodes to
// settle. Idempotent, safe without EnablePrefetch, and safe to call
// concurrently with Checkout/Prefetch; call it before reading final
// Stats so every prefetch install is accounted.
func (p *DecodedPool) ClosePrefetch() {
	p.mu.Lock()
	pf := p.pf
	p.pf = nil
	p.mu.Unlock()
	if pf == nil {
		return
	}
	close(pf.reqs)
	pf.wg.Wait()
	// Columns the read-ahead decoded but no checkout ever claimed are
	// wasted work even if still resident; account them now so final
	// stats reflect what the prefetcher actually bought.
	p.mu.Lock()
	for i := range p.slots {
		if s := &p.slots[i]; s.d != nil && s.prefetched {
			s.prefetched = false
			p.stats.PrefetchWasted++
		}
	}
	p.mu.Unlock()
}

// prefetchLoop drains hints, batching whatever is already queued so
// adjacent chunks can coalesce into one spill read.
func (p *DecodedPool) prefetchLoop(pf *prefetcher) {
	defer pf.wg.Done()
	batch := make([]int, 0, prefetchBatch)
	for {
		k, ok := <-pf.reqs
		if !ok {
			return
		}
		// Drain the whole backlog: a worker that slept through many
		// hints (single-core boxes starve them until the demand path
		// blocks in a page-in) must see the newest cursor positions,
		// not chew through ancient history 16 hints at a time.
		batch = append(batch[:0], k)
	drain:
		for {
			select {
			case k2, ok := <-pf.reqs:
				if !ok {
					break drain
				}
				batch = append(batch, k2)
			default:
				break drain
			}
		}
		if pf.canceled.Load() {
			continue
		}
		p.runPrefetchBatch(batch)
	}
}

// runPrefetchBatch claims the batch's still-wanted chunks as flights,
// then decodes them in maximal contiguous runs (one coalesced ReadAt
// per run on the pread spill path) and installs the columns unpinned.
func (p *DecodedPool) runPrefetchBatch(batch []int) {
	sort.Ints(batch)
	uniq := batch[:0]
	for i, k := range batch {
		if i > 0 && k == batch[i-1] {
			continue
		}
		uniq = append(uniq, k)
	}
	// A batch's decoded columns are all live at once between decode and
	// install, so cap budgeted claims at the window allowance. When the
	// cap binds, keep the HIGHEST chunk numbers: hints arrive in cursor
	// order, so the low end of a backed-up batch is behind the cursor
	// already and would decode straight into wasted evictions.
	if p.budget > 0 && len(uniq) > prefetchWindowChunks {
		uniq = uniq[len(uniq)-prefetchWindowChunks:]
	}
	claimed := make([]int, 0, len(uniq))
	p.mu.Lock()
	for _, k := range uniq {
		s := &p.slots[k]
		if s.d != nil || s.flight != nil {
			continue
		}
		s.flight = make(chan struct{})
		p.noteFlightLocked(1)
		claimed = append(claimed, k)
	}
	p.mu.Unlock()
	for len(claimed) > 0 {
		n := 1
		for n < len(claimed) && claimed[n] == claimed[0]+n {
			n++
		}
		p.prefetchRun(claimed[0], n)
		claimed = claimed[n:]
	}
}

// prefetchRun decodes chunks [k0, k0+n) and installs them unpinned,
// charged against the budget with LRU eviction past it. A decode error
// installs nothing and just settles the flights: the demand path will
// re-decode and panic with context, exactly as if no prefetch ran.
func (p *DecodedPool) prefetchRun(k0, n int) {
	ds, err := p.h.DecodeChunkRun(k0, n)
	p.mu.Lock()
	for i := 0; i < n; i++ {
		s := &p.slots[k0+i]
		if err == nil {
			d := ds[i]
			s.d = &d
			s.size = d.SizeBytes()
			p.bytes += s.size
			if p.bytes > p.highWater {
				p.highWater = p.bytes
			}
			p.stats.Decodes++
			if s.decoded {
				p.stats.Redecodes++
			}
			s.decoded = true
			s.prefetched = true
			p.maybeProtectLocked(k0 + i)
			if p.budget > 0 && !s.protected {
				p.linkLocked(k0 + i)
				p.evictLocked()
			}
		}
		close(s.flight)
		s.flight = nil
		p.noteFlightLocked(-1)
	}
	p.mu.Unlock()
}
