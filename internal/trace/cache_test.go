package trace

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// recordSynthetic builds a deterministic chunked trace of n events.
func recordSynthetic(n int, chunkEvents int, seed uint64) *ChunkedTrace {
	rec := NewChunkRecorder(chunkEvents)
	r := seed | 1
	for i := 0; i < n; i++ {
		r ^= r << 13
		r ^= r >> 7
		r ^= r << 17
		rec.Branch(0x400000+(r%512)*4, r&2 != 0)
	}
	return rec.Trace()
}

func collect(t *ChunkedTrace) []Event {
	var rec Recorder
	t.Replay(&rec)
	return rec.Events
}

func TestCacheHitMissKeying(t *testing.T) {
	c := NewCache(0, "", 0)
	tr := recordSynthetic(1000, 0, 7)
	key := CacheKey{Name: "gcc/genoutput.i", Scale: 0.5}
	if _, ok := c.Get(key); ok {
		t.Fatal("empty cache must miss")
	}
	if err := c.Put(key, tr); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(key)
	if !ok || got != tr {
		t.Fatal("exact-key Get must return the stored trace")
	}
	// Each key dimension must miss independently.
	for _, miss := range []CacheKey{
		{Name: "gcc/genrecog.i", Scale: 0.5},
		{Name: "gcc/genoutput.i", Scale: 0.25},
		{Name: "gcc/genoutput.i", Scale: 0.5, ChunkEvents: 64},
	} {
		if _, ok := c.Get(miss); ok {
			t.Fatalf("key %+v must miss", miss)
		}
	}
	// ChunkEvents 0 and the spelled-out default are the same recording.
	if _, ok := c.Get(CacheKey{Name: "gcc/genoutput.i", Scale: 0.5, ChunkEvents: DefaultChunkEvents}); !ok {
		t.Fatal("ChunkEvents 0 and DefaultChunkEvents must share a key")
	}
	s := c.Stats()
	if s.Hits != 2 || s.Misses != 4 {
		t.Fatalf("stats %+v: want 2 hits, 4 misses", s)
	}
}

// TestCacheKeyFingerprintAndScaleNormalisation pins the two remaining
// key dimensions: same-named specs with different fingerprints must not
// alias, and Scale <= 0 is canonicalised to 1 exactly as the workload
// runner treats it.
func TestCacheKeyFingerprintAndScaleNormalisation(t *testing.T) {
	c := NewCache(0, "", 0)
	tr := recordSynthetic(500, 0, 3)
	if err := c.Put(CacheKey{Name: "x/in", Fingerprint: 1, Scale: 1}, tr); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(CacheKey{Name: "x/in", Fingerprint: 2, Scale: 1}); ok {
		t.Fatal("different fingerprints must not share a recording")
	}
	if _, ok := c.Get(CacheKey{Name: "x/in", Fingerprint: 1, Scale: 0}); !ok {
		t.Fatal("Scale 0 must normalise to 1 and hit")
	}
	if _, ok := c.Get(CacheKey{Name: "x/in", Fingerprint: 1, Scale: -2}); !ok {
		t.Fatal("negative scale must normalise to 1 and hit")
	}
}

// TestCachePutSpillFailureStillCaches pins that an unwritable spill dir
// loses persistence only: Put reports the error but the recording stays
// usable in memory.
func TestCachePutSpillFailureStillCaches(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "file-not-dir")
	if err := os.WriteFile(dir, []byte("occupied"), 0o644); err != nil {
		t.Fatal(err)
	}
	c := NewCache(0, dir, 0) // spill writes into a path that is a file: they fail
	tr := recordSynthetic(1000, 0, 21)
	key := CacheKey{Name: "y", Scale: 1}
	if err := c.Put(key, tr); err == nil {
		t.Fatal("Put must report the spill failure")
	}
	got, ok := c.Get(key)
	if !ok || got != tr {
		t.Fatal("recording must still be served from memory after a failed spill")
	}
}

func TestCacheEvictionUnderBudget(t *testing.T) {
	a := recordSynthetic(4000, 0, 1)
	b := recordSynthetic(4000, 0, 2)
	// Budget fits one trace, not two.
	c := NewCache(a.SizeBytes()+b.SizeBytes()/2, "", 0)
	if err := c.Put(CacheKey{Name: "a", Scale: 1}, a); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(CacheKey{Name: "b", Scale: 1}, b); err != nil {
		t.Fatal(err)
	}
	// a is the LRU entry and has no spill path: it must be gone.
	if _, ok := c.Get(CacheKey{Name: "a", Scale: 1}); ok {
		t.Fatal("LRU entry must be evicted")
	}
	if got, ok := c.Get(CacheKey{Name: "b", Scale: 1}); !ok || got != b {
		t.Fatal("most-recent entry must survive eviction")
	}
	s := c.Stats()
	if s.Evicted != 1 {
		t.Fatalf("Evicted = %d, want 1", s.Evicted)
	}
	if s.ResidentBytes > a.SizeBytes()+b.SizeBytes()/2 {
		t.Fatalf("resident %d bytes exceeds budget", s.ResidentBytes)
	}
}

func TestCacheLRUOrder(t *testing.T) {
	a := recordSynthetic(4000, 0, 1)
	b := recordSynthetic(4000, 0, 2)
	c := NewCache(a.SizeBytes()+b.SizeBytes()+1, "", 0)
	ka, kb := CacheKey{Name: "a", Scale: 1}, CacheKey{Name: "b", Scale: 1}
	if err := c.Put(ka, a); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(kb, b); err != nil {
		t.Fatal(err)
	}
	// Touch a, then overflow: b must be the victim.
	c.Get(ka)
	if err := c.Put(CacheKey{Name: "c", Scale: 1}, recordSynthetic(4000, 0, 3)); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(ka); !ok {
		t.Fatal("recently-used entry evicted before LRU")
	}
	if _, ok := c.Get(kb); ok {
		t.Fatal("LRU entry must have been the victim")
	}
}

// TestCacheSpillRoundTrip pins the BTR1 spill mode: an evicted trace
// reloads from disk and replays bit-identically to the original.
func TestCacheSpillRoundTrip(t *testing.T) {
	dir := t.TempDir()
	orig := recordSynthetic(5000, 100, 9) // odd chunk size, partial final chunk
	key := CacheKey{Name: "vortex/vortex.lit", Scale: 0.1, ChunkEvents: 100}
	// Budget below one trace: the entry spills and is dropped from memory.
	c := NewCache(1, dir, 0)
	if err := c.Put(key, orig); err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.Spills != 1 {
		t.Fatalf("Spills = %d, want 1", s.Spills)
	}
	got, ok := c.Get(key)
	if !ok {
		t.Fatal("spilled entry must reload")
	}
	if got == orig {
		t.Fatal("expected a reloaded trace, not the original pointer")
	}
	if !reflect.DeepEqual(collect(got), collect(orig)) {
		t.Fatal("spill round-trip changed the event stream")
	}
	if got.Events() != orig.Events() {
		t.Fatalf("events %d != %d", got.Events(), orig.Events())
	}
	if s := c.Stats(); s.Loads != 1 || s.Hits != 1 {
		t.Fatalf("stats %+v: want 1 load, 1 hit", s)
	}
}

// TestCacheCrossProcessProbe pins the persistent mode: a second cache
// over the same directory finds recordings the first one wrote.
func TestCacheCrossProcessProbe(t *testing.T) {
	dir := t.TempDir()
	orig := recordSynthetic(3000, 0, 11)
	key := CacheKey{Name: "perl/primes.pl", Scale: 1}
	first := NewCache(0, dir, 0)
	if err := first.Put(key, orig); err != nil {
		t.Fatal(err)
	}
	second := NewCache(0, dir, 0)
	got, ok := second.Get(key)
	if !ok {
		t.Fatal("fresh cache over the same dir must find the spill file")
	}
	if !reflect.DeepEqual(collect(got), collect(orig)) {
		t.Fatal("cross-process reload changed the event stream")
	}
	if _, ok := second.Get(CacheKey{Name: "perl/primes.pl", Scale: 2}); ok {
		t.Fatal("different scale must not match the spill file")
	}
}

// TestCacheFingerprintSelfInvalidates pins the stale-directory guard: a
// cache built with a different workload-registry fingerprint neither
// reads nor collides with another generation's spill files — the same
// directory holds both generations side by side, each invisible to the
// other.
func TestCacheFingerprintSelfInvalidates(t *testing.T) {
	dir := t.TempDir()
	key := CacheKey{Name: "gcc/genoutput.i", Scale: 1}
	oldGen := recordSynthetic(2000, 0, 19)
	first := NewCache(0, dir, 0xaaaa)
	if err := first.Put(key, oldGen); err != nil {
		t.Fatal(err)
	}

	// A build whose registry hashes differently must treat the dir as
	// cold: the old generation's file never matches.
	second := NewCache(0, dir, 0xbbbb)
	if _, ok := second.Get(key); ok {
		t.Fatal("stale-generation spill file must not be served")
	}
	newGen := recordSynthetic(2500, 0, 23)
	if err := second.Put(key, newGen); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.btr"))
	if err != nil || len(files) != 2 {
		t.Fatalf("want both generations' spill files side by side, got %v (%v)", files, err)
	}

	// Each generation still round-trips through its own file.
	for _, tc := range []struct {
		fp   uint64
		want *ChunkedTrace
	}{{0xaaaa, oldGen}, {0xbbbb, newGen}} {
		c := NewCache(0, dir, tc.fp)
		got, ok := c.Get(key)
		if !ok {
			t.Fatalf("fingerprint %#x: own spill file must hit", tc.fp)
		}
		if !reflect.DeepEqual(collect(got), collect(tc.want)) {
			t.Fatalf("fingerprint %#x: reloaded stream diverged", tc.fp)
		}
	}
}

func TestCacheCorruptSpillIsAMiss(t *testing.T) {
	dir := t.TempDir()
	key := CacheKey{Name: "x", Scale: 1}
	c := NewCache(1, dir, 0) // evict immediately so Get must reload
	if err := c.Put(key, recordSynthetic(1000, 0, 5)); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.btr"))
	if err != nil || len(files) != 1 {
		t.Fatalf("spill files: %v %v", files, err)
	}
	if err := os.WriteFile(files[0], []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(key); ok {
		t.Fatal("corrupt spill must read as a miss")
	}
	if _, ok := c.Get(key); ok {
		t.Fatal("entry must be forgotten after a corrupt read")
	}
}

// TestCachePutReadoptsEvictedEntry pins that re-storing a key whose
// columns were evicted makes the next Get free again (no disk reload).
func TestCachePutReadoptsEvictedEntry(t *testing.T) {
	dir := t.TempDir()
	tr := recordSynthetic(4000, 0, 13)
	key := CacheKey{Name: "x", Scale: 1}
	c := NewCache(1, dir, 0) // evicts immediately; spill file remains
	if err := c.Put(key, tr); err != nil {
		t.Fatal(err)
	}
	c.maxBytes = 1 << 30 // lift the bound so re-adopted columns stay
	if err := c.Put(key, tr); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(key)
	if !ok || got != tr {
		t.Fatal("re-put trace must be served from memory")
	}
	if s := c.Stats(); s.Loads != 0 {
		t.Fatalf("Loads = %d, want 0 (no disk reload after re-adoption)", s.Loads)
	}
}

func TestCacheFlush(t *testing.T) {
	dir := t.TempDir()
	c := NewCache(0, dir, 0)
	spilled := CacheKey{Name: "spilled", Scale: 1}
	if err := c.Put(spilled, recordSynthetic(2000, 0, 17)); err != nil {
		t.Fatal(err)
	}
	memOnly := NewCache(0, "", 0)
	if err := memOnly.Put(spilled, recordSynthetic(2000, 0, 17)); err != nil {
		t.Fatal(err)
	}
	c.Flush()
	memOnly.Flush()
	if s := c.Stats(); s.Resident != 0 || s.ResidentBytes != 0 {
		t.Fatalf("flushed cache still resident: %+v", s)
	}
	// Disk-backed entries survive a flush; memory-only entries do not.
	if _, ok := c.Get(spilled); !ok {
		t.Fatal("spill-backed entry must reload after Flush")
	}
	if _, ok := memOnly.Get(spilled); ok {
		t.Fatal("memory-only entry must be gone after Flush")
	}
}

// TestChunkStatsSinkMatchesRecorder pins the O(1)-memory audit model
// against the real recorder, including a partial final chunk.
func TestChunkStatsSinkMatchesRecorder(t *testing.T) {
	for _, n := range []int{0, 999, 2500} {
		rec := NewChunkRecorder(1000)
		sink := NewChunkStatsSink(1000)
		r := uint64(5)
		for i := 0; i < n; i++ {
			r ^= r << 13
			r ^= r >> 7
			r ^= r << 17
			pc, taken := 0x400000+(r%512)*4, r&2 != 0
			rec.Branch(pc, taken)
			sink.Branch(pc, taken)
		}
		if got, want := sink.Stats(), rec.Trace().MemStats(); got != want {
			t.Fatalf("n=%d: sink stats %+v != recorder stats %+v", n, got, want)
		}
	}
}

func TestChunkStats(t *testing.T) {
	tr := recordSynthetic(2500, 1000, 3)
	s := tr.MemStats()
	if s.Chunks != 3 || s.Events != 2500 {
		t.Fatalf("stats %+v", s)
	}
	if s.EncodedBytes() != tr.SizeBytes() {
		t.Fatalf("EncodedBytes %d != SizeBytes %d", s.EncodedBytes(), tr.SizeBytes())
	}
	if s.BytesPerEvent() <= 0 || s.BytesPerEvent() > 16 {
		t.Fatalf("bytes/event %.2f implausible", s.BytesPerEvent())
	}
	if (ChunkStats{}).BytesPerEvent() != 0 {
		t.Fatal("empty stats must not divide by zero")
	}
	if s.String() == "" {
		t.Fatal("String must render")
	}
}
