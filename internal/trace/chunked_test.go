package trace

import "testing"

// genEvents produces a deterministic stream with clustered PCs (so deltas
// exercise both short and long varints) and mixed directions.
func genEvents(n int) []Event {
	events := make([]Event, n)
	r := uint64(0x9e3779b97f4a7c15)
	for i := range events {
		r ^= r << 13
		r ^= r >> 7
		r ^= r << 17
		pc := 0x400000 + (r%512)*4
		if r%97 == 0 {
			pc += 1 << 30 // occasional far jump: multi-byte delta
		}
		events[i] = Event{PC: pc, Taken: r&2 != 0}
	}
	return events
}

func recordChunked(events []Event, chunkEvents int) *ChunkedTrace {
	rec := NewChunkRecorder(chunkEvents)
	for _, ev := range events {
		rec.Branch(ev.PC, ev.Taken)
	}
	return rec.Trace()
}

func assertRoundTrip(t *testing.T, events []Event, chunkEvents int) {
	t.Helper()
	tr := recordChunked(events, chunkEvents)
	if tr.Events() != int64(len(events)) {
		t.Fatalf("events %d != recorded %d", len(events), tr.Events())
	}

	// Chunk-at-a-time replay.
	rep := tr.NewReplayer()
	pos := 0
	for {
		pcs, dirs, n, ok := rep.NextChunk()
		if !ok {
			break
		}
		if n == 0 {
			t.Fatal("empty chunk emitted")
		}
		for i := 0; i < n; i++ {
			want := events[pos]
			taken := dirs[i>>6]&(1<<(uint(i)&63)) != 0
			if pcs[i] != want.PC || taken != want.Taken {
				t.Fatalf("event %d: got (%#x,%v) want (%#x,%v)",
					pos, pcs[i], taken, want.PC, want.Taken)
			}
			pos++
		}
	}
	if pos != len(events) {
		t.Fatalf("replayed %d of %d events", pos, len(events))
	}

	// Event-at-a-time replay via Source.
	src := tr.Source()
	for i, want := range events {
		ev, ok, err := src.Next()
		if err != nil || !ok {
			t.Fatalf("source ended at %d of %d (err=%v)", i, len(events), err)
		}
		if ev != want {
			t.Fatalf("source event %d: got %+v want %+v", i, ev, want)
		}
	}
	if _, ok, _ := src.Next(); ok {
		t.Fatal("source yielded events past the end")
	}
}

func TestChunkedRoundTripBoundaries(t *testing.T) {
	const chunk = 64
	// Exactly full chunks, a partial final chunk, one under/over a
	// boundary, and a single event.
	for _, n := range []int{chunk, 3 * chunk, 3*chunk - 1, 3*chunk + 1, chunk / 2, 1} {
		assertRoundTrip(t, genEvents(n), chunk)
	}
}

func TestChunkedDefaultChunkSize(t *testing.T) {
	events := genEvents(DefaultChunkEvents + 17)
	assertRoundTrip(t, events, 0)
	tr := recordChunked(events, 0)
	if got := tr.Chunks(); got != 2 {
		t.Fatalf("chunks %d, want 2 (full + partial)", got)
	}
}

func TestChunkedEmptyTrace(t *testing.T) {
	tr := NewChunkRecorder(8).Trace()
	if tr.Events() != 0 || tr.Chunks() != 0 || tr.SizeBytes() != 0 {
		t.Fatalf("empty trace not empty: %d events, %d chunks", tr.Events(), tr.Chunks())
	}
	if _, _, _, ok := tr.NewReplayer().NextChunk(); ok {
		t.Fatal("replayer of empty trace returned a chunk")
	}
	if _, ok, err := tr.Source().Next(); ok || err != nil {
		t.Fatalf("source of empty trace: ok=%v err=%v", ok, err)
	}
	var n int
	tr.Replay(SinkFunc(func(uint64, bool) { n++ }))
	if n != 0 {
		t.Fatalf("replay of empty trace emitted %d events", n)
	}
}

func TestChunkedSealedRecorderPanics(t *testing.T) {
	rec := NewChunkRecorder(8)
	rec.Branch(0x400000, true)
	rec.Trace()
	defer func() {
		if recover() == nil {
			t.Fatal("recording into a sealed recorder must panic")
		}
	}()
	rec.Branch(0x400004, false)
}

func TestChunkedReplayerReset(t *testing.T) {
	events := genEvents(100)
	tr := recordChunked(events, 32)
	rep := tr.NewReplayer()
	count := func() int {
		n := 0
		for {
			_, _, c, ok := rep.NextChunk()
			if !ok {
				return n
			}
			n += c
		}
	}
	if first := count(); first != len(events) {
		t.Fatalf("first replay saw %d events", first)
	}
	rep.Reset()
	if second := count(); second != len(events) {
		t.Fatalf("replay after Reset saw %d events", second)
	}
}

func TestChunkedConcurrentReplayers(t *testing.T) {
	events := genEvents(1000)
	tr := recordChunked(events, 64)
	done := make(chan int64, 4)
	for g := 0; g < 4; g++ {
		go func() {
			var sum int64
			src := tr.Source()
			for {
				ev, ok, _ := src.Next()
				if !ok {
					break
				}
				sum += int64(ev.PC)
				if ev.Taken {
					sum++
				}
			}
			done <- sum
		}()
	}
	first := <-done
	for g := 1; g < 4; g++ {
		if got := <-done; got != first {
			t.Fatalf("concurrent replayers disagreed: %d vs %d", got, first)
		}
	}
}

func TestChunkedMatchesSliceRecorder(t *testing.T) {
	events := genEvents(777)
	tr := recordChunked(events, 100)
	var replayed []Event
	tr.Replay(SinkFunc(func(pc uint64, taken bool) {
		replayed = append(replayed, Event{PC: pc, Taken: taken})
	}))
	if len(replayed) != len(events) {
		t.Fatalf("replayed %d of %d", len(replayed), len(events))
	}
	for i := range events {
		if replayed[i] != events[i] {
			t.Fatalf("event %d: %+v != %+v", i, replayed[i], events[i])
		}
	}
}
