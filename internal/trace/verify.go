package trace

import (
	"fmt"
	"io"
	"os"
)

// VerifyReport is the result of auditing one spill file.
type VerifyReport struct {
	Path   string
	Format int // 1 = BTR1, 2 = BTR2; 0 when the header is unreadable
	Chunks int
	Events int64
	Err    error // nil = the file passed every check
}

// OK reports whether the file passed.
func (r VerifyReport) OK() bool { return r.Err == nil }

// VerifySpill audits a spill file end to end: header, frame structure,
// event counts and trailer via the index scan, then — for BTR2 — every
// chunk's checksum and payload decodability, exactly the checks a
// page-in would apply. Legacy BTR1 files get the full structural walk
// (the format has no checksums, so that is the strongest audit it
// admits). The returned report carries whatever was learned before the
// first failure.
func VerifySpill(path string) VerifyReport {
	rep := VerifyReport{Path: path}
	f, err := os.Open(path)
	if err != nil {
		rep.Err = err
		return rep
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		rep.Err = err
		return rep
	}
	var hdr [4]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		rep.Err = fmt.Errorf("trace: reading spill header: %w", err)
		return rep
	}
	switch hdr {
	case magic:
		rep.Format = 1
	case magic2:
		rep.Format = 2
	default:
		rep.Err = ErrBadMagic
		return rep
	}

	idx, events, _, granularity, err := scanSpillAny(io.NewSectionReader(f, 0, st.Size()), 0)
	if err != nil {
		rep.Err = err
		return rep
	}
	rep.Chunks, rep.Events = len(idx), events
	if rep.Format == 1 {
		// The scan walked every group and delta; BTR1 has nothing
		// stronger to check.
		return rep
	}

	var pcs, dirs []uint64
	var buf []byte
	for k := range idx {
		n := granularity
		if k == len(idx)-1 {
			n = int(events - int64(k)*int64(granularity))
		}
		if int64(cap(buf)) < idx[k].plen {
			buf = make([]byte, idx[k].plen)
		}
		buf = buf[:idx[k].plen]
		if _, err := f.ReadAt(buf, idx[k].off); err != nil {
			rep.Err = fmt.Errorf("trace: reading chunk %d: %w", k, err)
			return rep
		}
		d, err := decodeChunk(buf, idx[k], k, n, granularity, pcs, dirs)
		if err != nil {
			if ce, ok := err.(*CorruptError); ok {
				ce.Path = path
			}
			rep.Err = err
			return rep
		}
		pcs, dirs = d.PCs, d.Dirs
	}
	return rep
}
