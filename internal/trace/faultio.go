package trace

import (
	"errors"
	"io"
	"io/fs"
	"os"
	"sync"
	"syscall"
	"time"
)

// Injectable I/O for the spill path. Every spill read, write and sync
// funnels through a SpillIO, so chaos tests can schedule deterministic
// faults — fail-the-Nth-op, short reads, bit flips, ENOSPC — against the
// exact syscalls production takes, and pin each recovery path (retry,
// quarantine + re-record, clean Seal failure) under -race.

// SpillIO is the file-operation surface spill machinery goes through.
// The default implementation calls straight into the os.File; tests
// substitute a FaultingIO.
type SpillIO interface {
	ReadAt(f *os.File, p []byte, off int64) (int, error)
	Write(f *os.File, p []byte) (int, error)
	Sync(f *os.File) error
}

// directIO is the production SpillIO: a transparent passthrough.
type directIO struct{}

func (directIO) ReadAt(f *os.File, p []byte, off int64) (int, error) { return f.ReadAt(p, off) }
func (directIO) Write(f *os.File, p []byte) (int, error)             { return f.Write(p) }
func (directIO) Sync(f *os.File) error                               { return f.Sync() }

// defaultSpillIO is what handles and recorders use unless injected.
var defaultSpillIO SpillIO = directIO{}

// FaultOp names one SpillIO operation for fault scheduling.
type FaultOp int

const (
	OpReadAt FaultOp = iota
	OpWrite
	OpSync
)

// FaultKind is what a scheduled fault does to its operation.
type FaultKind int

const (
	// FaultError fails the op with Fault.Err (default: a transient EIO).
	FaultError FaultKind = iota
	// FaultShortRead performs the read but returns only half the
	// requested bytes (with a nil error, like a truncated file would).
	FaultShortRead
	// FaultBitFlip performs the op but flips one bit of the data read.
	FaultBitFlip
	// FaultENOSPC fails the op with syscall.ENOSPC.
	FaultENOSPC
)

// Fault schedules one deterministic failure: the Nth (1-based) SpillIO
// operation of kind Op misbehaves per Kind. Sticky faults keep firing on
// every operation from the Nth onward (a persistently bad disk);
// non-sticky faults fire exactly once (a transient hiccup).
type Fault struct {
	Op     FaultOp
	Nth    int
	Kind   FaultKind
	Err    error
	Sticky bool
}

// FaultingIO is a SpillIO wrapper driving a deterministic fault
// schedule. It is safe for concurrent use; per-op counters make the
// schedule reproducible regardless of goroutine interleaving within one
// op kind.
type FaultingIO struct {
	mu     sync.Mutex
	next   SpillIO
	faults []Fault
	count  map[FaultOp]int
	fired  int
}

// NewFaultingIO builds a fault-injecting SpillIO over the direct
// implementation.
func NewFaultingIO(faults ...Fault) *FaultingIO {
	return &FaultingIO{next: defaultSpillIO, faults: faults, count: make(map[FaultOp]int)}
}

// Fired returns how many operations were faulted so far.
func (fio *FaultingIO) Fired() int {
	fio.mu.Lock()
	defer fio.mu.Unlock()
	return fio.fired
}

// Ops returns how many operations of kind op were issued so far.
func (fio *FaultingIO) Ops(op FaultOp) int {
	fio.mu.Lock()
	defer fio.mu.Unlock()
	return fio.count[op]
}

// match counts the operation and returns the fault scheduled for it, if
// any.
func (fio *FaultingIO) match(op FaultOp) *Fault {
	fio.mu.Lock()
	defer fio.mu.Unlock()
	fio.count[op]++
	n := fio.count[op]
	for i := range fio.faults {
		f := &fio.faults[i]
		if f.Op == op && (n == f.Nth || (f.Sticky && n >= f.Nth)) {
			fio.fired++
			return f
		}
	}
	return nil
}

func faultErr(f *Fault) error {
	if f.Err != nil {
		return f.Err
	}
	return syscall.EIO
}

func (fio *FaultingIO) ReadAt(f *os.File, p []byte, off int64) (int, error) {
	ft := fio.match(OpReadAt)
	if ft == nil {
		return fio.next.ReadAt(f, p, off)
	}
	switch ft.Kind {
	case FaultShortRead:
		if len(p) <= 1 {
			return 0, io.ErrUnexpectedEOF
		}
		return fio.next.ReadAt(f, p[:len(p)/2], off)
	case FaultBitFlip:
		n, err := fio.next.ReadAt(f, p, off)
		if n > 0 {
			p[n/2] ^= 0x10
		}
		return n, err
	case FaultENOSPC:
		return 0, syscall.ENOSPC
	default:
		return 0, faultErr(ft)
	}
}

func (fio *FaultingIO) Write(f *os.File, p []byte) (int, error) {
	ft := fio.match(OpWrite)
	if ft == nil {
		return fio.next.Write(f, p)
	}
	if ft.Kind == FaultENOSPC {
		return 0, syscall.ENOSPC
	}
	return 0, faultErr(ft)
}

func (fio *FaultingIO) Sync(f *os.File) error {
	ft := fio.match(OpSync)
	if ft == nil {
		return fio.next.Sync(f)
	}
	if ft.Kind == FaultENOSPC {
		return syscall.ENOSPC
	}
	return faultErr(ft)
}

// Spill read retry policy: transient errors get a handful of attempts
// with short exponential backoff before escalating. The delays are tiny
// relative to any real device recovery but keep tests fast; the point is
// bounded persistence, not infinite patience.
var spillRetryDelays = [...]time.Duration{time.Millisecond, 4 * time.Millisecond, 16 * time.Millisecond}

// transientIOError reports whether a spill read failure is worth
// retrying. Running out of bytes is truncation, a missing file is
// absence, a full disk will not un-fill, and detected corruption never
// heals — none of those retry. Everything else (EIO and friends) might
// be a passing glitch.
func transientIOError(err error) bool {
	switch {
	case err == nil,
		errors.Is(err, io.EOF),
		errors.Is(err, io.ErrUnexpectedEOF),
		errors.Is(err, fs.ErrNotExist),
		errors.Is(err, syscall.ENOSPC),
		errors.Is(err, ErrCorruptSpill):
		return false
	}
	return true
}
