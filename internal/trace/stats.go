package trace

import (
	"fmt"
	"sort"
)

// Stats summarises a branch event stream.
type Stats struct {
	Events      int64 // total dynamic branch executions
	Taken       int64 // dynamic executions that were taken
	StaticSites int   // distinct branch PCs observed
}

// TakenFraction returns the dynamic taken fraction, or 0 for an empty trace.
func (s Stats) TakenFraction() float64 {
	if s.Events == 0 {
		return 0
	}
	return float64(s.Taken) / float64(s.Events)
}

// String renders a one-line summary.
func (s Stats) String() string {
	return fmt.Sprintf("events=%d taken=%.2f%% static_sites=%d",
		s.Events, 100*s.TakenFraction(), s.StaticSites)
}

// StatsSink accumulates Stats from a stream; it implements Sink.
type StatsSink struct {
	stats Stats
	seen  map[uint64]struct{}
}

// NewStatsSink returns an empty accumulator.
func NewStatsSink() *StatsSink {
	return &StatsSink{seen: make(map[uint64]struct{})}
}

// Branch accounts for one event.
func (s *StatsSink) Branch(pc uint64, taken bool) {
	s.stats.Events++
	if taken {
		s.stats.Taken++
	}
	if _, ok := s.seen[pc]; !ok {
		s.seen[pc] = struct{}{}
		s.stats.StaticSites++
	}
}

// Stats returns the accumulated summary.
func (s *StatsSink) Stats() Stats { return s.stats }

// SiteCounts returns the dynamic execution count of every observed PC,
// sorted by PC, as parallel slices. Useful for inspecting hot sites.
func SiteCounts(src Source) (pcs []uint64, counts []int64, err error) {
	m := make(map[uint64]int64)
	for {
		ev, ok, err := src.Next()
		if err != nil {
			return nil, nil, err
		}
		if !ok {
			break
		}
		m[ev.PC]++
	}
	pcs = make([]uint64, 0, len(m))
	for pc := range m {
		pcs = append(pcs, pc)
	}
	sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })
	counts = make([]int64, len(pcs))
	for i, pc := range pcs {
		counts[i] = m[pc]
	}
	return pcs, counts, nil
}
