package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// Spill-file machinery for out-of-core recordings: BTR1 files double as
// the paging store behind a Handle. The format is self-delimiting and
// deltas chain across its 8-event groups, so random access needs a
// chunk index (chunkPos) — one sequential scan per file — after which
// any chunk decodes from a single bounded ReadAt.

// writeSpill encodes the trace as a BTR1 file, via a temp file and
// rename so concurrent writers of the same deterministic recording
// cannot leave a torn file.
func writeSpill(path string, tr *ChunkedTrace) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	w, err := NewWriter(f)
	if err == nil {
		tr.Replay(w)
		err = w.Close()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(f.Name())
		return err
	}
	if err := os.Rename(f.Name(), path); err != nil {
		os.Remove(f.Name())
		return err
	}
	return nil
}

// readSpill decodes a BTR1 spill file back into a chunked trace at the
// key's granularity; the (pc, taken) stream round-trips exactly, so the
// reloaded trace replays bit-identically to the original recording.
func readSpill(path string, chunkEvents int) (*ChunkedTrace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return readSpillFrom(f, chunkEvents)
}

// readSpillFrom is readSpill over an arbitrary reader (e.g. a section
// of an already-open spill file).
func readSpillFrom(r io.Reader, chunkEvents int) (*ChunkedTrace, error) {
	br, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	rec := NewChunkRecorder(chunkEvents)
	if _, err := Copy(rec, br); err != nil {
		return nil, err
	}
	return rec.Trace(), nil
}

// countingReader tracks the byte offset of a buffered reader, so the
// spill scanner can record exact group positions.
type countingReader struct {
	br  *bufio.Reader
	off int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.br.Read(p)
	c.off += int64(n)
	return n, err
}

func (c *countingReader) ReadByte() (byte, error) {
	b, err := c.br.ReadByte()
	if err == nil {
		c.off++
	}
	return b, err
}

// scanSpill walks a BTR1 stream once, recording where each chunk of
// chunkEvents events begins (group offset, in-group skip, chaining PC)
// without retaining any columns. It also reports the event count and
// the total delta bytes, from which a would-be resident footprint is
// derived.
func scanSpill(r io.Reader, chunkEvents int) (idx []chunkPos, events int64, deltaBytes int64, err error) {
	c := &countingReader{br: bufio.NewReaderSize(r, 1<<16)}
	var hdr [4]byte
	if _, err := io.ReadFull(c, hdr[:]); err != nil {
		return nil, 0, 0, fmt.Errorf("trace: reading spill header: %w", err)
	}
	if hdr != magic {
		return nil, 0, 0, ErrBadMagic
	}
	var pc uint64
	var groups int64
scan:
	for {
		groupStart := c.off
		if _, err := c.ReadByte(); err != nil {
			if err == io.EOF {
				break
			}
			return nil, 0, 0, fmt.Errorf("trace: scanning spill: %w", err)
		}
		groups++
		for i := 0; i < groupSize; i++ {
			word, err := binary.ReadUvarint(c)
			if err == io.EOF {
				// Short final group: clean end of stream.
				break scan
			}
			if err != nil {
				return nil, 0, 0, fmt.Errorf("trace: scanning spill: %w", err)
			}
			if events%int64(chunkEvents) == 0 {
				idx = append(idx, chunkPos{off: groupStart, startPC: pc, skip: uint8(i)})
			}
			pc += uint64(unzigzag(word))
			events++
		}
	}
	// Everything that is not the header or a group mask is delta bytes.
	return idx, events, c.off - int64(len(magic)) - groups, nil
}

// chunkSpan computes the byte range of the spill file covering chunk
// k's groups. The skip fields of idx make chunk boundaries independent
// of the format's 8-event groups: when the next chunk starts mid-group,
// this chunk's final events live past that chunk's group offset, so the
// span extends by the mask byte plus at most skip full-width deltas.
func chunkSpan(idx []chunkPos, fileSize int64, k int) (start, end int64) {
	start = idx[k].off
	end = fileSize
	if k+1 < len(idx) {
		end = idx[k+1].off
		if s := int64(idx[k+1].skip); s > 0 {
			end += 1 + s*binary.MaxVarintLen64
			if end > fileSize {
				end = fileSize
			}
		}
	}
	return start, end
}

// pageBufPool recycles the scratch buffers spill page-ins read encoded
// group spans into. The decode copies everything it needs into the
// chunk's columns, so the buffer never outlives the call and
// steady-state streaming does zero per-page-in allocations.
var pageBufPool = sync.Pool{New: func() any { return new([]byte) }}

// getPageBuf returns a pooled scratch buffer of length n.
func getPageBuf(n int) *[]byte {
	bp := pageBufPool.Get().(*[]byte)
	if cap(*bp) < n {
		*bp = make([]byte, n)
	}
	*bp = (*bp)[:n]
	return bp
}

func putPageBuf(bp *[]byte) { pageBufPool.Put(bp) }

// readChunkAt pages chunk k (n events) from an open spill file: one
// ReadAt covering the chunk's group span, then a straight decode.
// Buffers are reused when large enough.
func readChunkAt(f *os.File, idx []chunkPos, fileSize int64, k, n, chunkEvents int, pcs, dirs []uint64) (DecodedChunk, error) {
	start, end := chunkSpan(idx, fileSize, k)
	bp := getPageBuf(int(end - start))
	defer putPageBuf(bp)
	buf := *bp
	if _, err := f.ReadAt(buf, start); err != nil {
		return DecodedChunk{}, fmt.Errorf("trace: paging spill chunk %d: %w", k, err)
	}
	return decodeChunkBytes(buf, idx[k], k, n, chunkEvents, pcs, dirs)
}

// readChunkMapped is readChunkAt over an mmapped spill file: the same
// decode, but straight out of the mapping — no read syscall, no copy of
// the encoded bytes.
func readChunkMapped(mm *mmapRegion, idx []chunkPos, fileSize int64, k, n, chunkEvents int, pcs, dirs []uint64) (DecodedChunk, error) {
	start, end := chunkSpan(idx, fileSize, k)
	return decodeChunkBytes(mm.data[start:end], idx[k], k, n, chunkEvents, pcs, dirs)
}

// decodeChunkBytes decodes chunk k (n events) from buf, which must hold
// at least the chunk's group span starting at pos.off (the decode stops
// after n events, so trailing bytes beyond the span are ignored).
func decodeChunkBytes(buf []byte, pos chunkPos, k, n, chunkEvents int, pcs, dirs []uint64) (DecodedChunk, error) {
	corrupt := func() (DecodedChunk, error) {
		return DecodedChunk{}, fmt.Errorf("trace: corrupt spill chunk %d", k)
	}
	if cap(pcs) < n {
		pcs = make([]uint64, n)
	}
	pcs = pcs[:n]
	words := (chunkEvents + 63) / 64
	if cap(dirs) < words {
		dirs = make([]uint64, words)
	}
	dirs = dirs[:words]
	for i := range dirs {
		dirs[i] = 0
	}

	if len(buf) == 0 {
		return corrupt()
	}
	mask := buf[0]
	p := 1
	gi := 0
	for s := 0; s < int(pos.skip); s++ {
		_, w := binary.Uvarint(buf[p:])
		if w <= 0 {
			return corrupt()
		}
		p += w
		gi++
	}
	pc := pos.startPC
	for i := 0; i < n; i++ {
		if gi == groupSize {
			if p >= len(buf) {
				return corrupt()
			}
			mask = buf[p]
			p++
			gi = 0
		}
		word, w := binary.Uvarint(buf[p:])
		if w <= 0 {
			return corrupt()
		}
		p += w
		pc += uint64(unzigzag(word))
		pcs[i] = pc
		if mask&(1<<uint(gi)) != 0 {
			dirs[i>>6] |= 1 << (uint(i) & 63)
		}
		gi++
	}
	return DecodedChunk{PCs: pcs, Dirs: dirs, N: n}, nil
}

// StreamRecorder is a Sink that writes a recording straight to a BTR1
// spill file as events arrive, keeping at most a bounded prefix of
// chunk columns resident — the out-of-core replacement for recording
// into a ChunkRecorder and spilling afterwards, with peak memory
// O(budget) instead of O(trace). Seal returns the finished recording
// as a Handle whose resident prefix serves the hot head of replays and
// whose remainder pages back in from the file it just wrote.
//
// With path == "" the recorder writes an anonymous temp file (unlinked
// immediately; the open descriptor keeps it readable), so a bounded
// run without a cache directory leaves nothing behind. With a path the
// file is written via temp-and-rename, landing exactly where the trace
// cache's spill probe will find it.
//
// The resident budget is a target, not a hard wall: retention stops at
// the first chunk boundary past it, so the prefix may overshoot by up
// to one chunk. residentBudget <= 0 retains nothing.
type StreamRecorder struct {
	chunkEvents int
	budget      int64

	f         *os.File
	bw        *bufio.Writer
	tmpPath   string
	finalPath string

	off         int64 // bytes emitted: header + complete groups
	groupMask   byte
	groupDeltas []byte
	np          int // events pending in the current group
	lastPC      uint64
	events      int64
	deltaBytes  int64
	idx         []chunkPos

	rec           *ChunkRecorder // resident-prefix recorder; nil once the budget is hit
	prefix        *ChunkedTrace
	retainedBytes int64

	err    error
	sealed bool
}

var _ Sink = (*StreamRecorder)(nil)

// NewStreamRecorder opens a streaming recorder writing to path (or an
// anonymous temp file when path is ""), cutting chunks every
// chunkEvents events (<= 0 means DefaultChunkEvents) and keeping about
// residentBudget bytes of leading chunk columns in memory.
func NewStreamRecorder(path string, chunkEvents int, residentBudget int64) (*StreamRecorder, error) {
	if chunkEvents <= 0 {
		chunkEvents = DefaultChunkEvents
	}
	s := &StreamRecorder{chunkEvents: chunkEvents, budget: residentBudget, finalPath: path}
	var err error
	if path == "" {
		s.f, err = os.CreateTemp("", "btr-stream-*.btr")
		if err != nil {
			return nil, err
		}
		// Unlink immediately: the descriptor keeps the file readable and
		// the OS reclaims it when the handle is garbage, crash included.
		os.Remove(s.f.Name())
	} else {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			return nil, err
		}
		s.f, err = os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
		if err != nil {
			return nil, err
		}
		s.tmpPath = s.f.Name()
	}
	s.bw = bufio.NewWriterSize(s.f, 1<<16)
	if _, err := s.bw.Write(magic[:]); err != nil {
		s.Discard()
		return nil, fmt.Errorf("trace: writing spill header: %w", err)
	}
	s.off = int64(len(magic))
	if residentBudget > 0 {
		s.rec = NewChunkRecorder(chunkEvents)
	}
	return s, nil
}

// Branch streams one event. Write errors are sticky and reported by
// Seal.
func (s *StreamRecorder) Branch(pc uint64, taken bool) {
	if s.sealed {
		panic("trace: recording into a sealed StreamRecorder")
	}
	if s.err != nil {
		return
	}
	if s.events%int64(s.chunkEvents) == 0 {
		if s.rec != nil && s.events > 0 {
			// A chunk just completed (and was flushed by the prefix
			// recorder at the end of the previous event): charge it, and
			// stop retaining at the first boundary past the budget.
			last := &s.rec.tr.chunks[len(s.rec.tr.chunks)-1]
			s.retainedBytes += int64(len(last.deltas)) + int64(len(last.dirs))*8
			if s.retainedBytes > s.budget {
				s.prefix = s.rec.Trace()
				s.rec = nil
			}
		}
		s.idx = append(s.idx, chunkPos{off: s.off, startPC: s.lastPC, skip: uint8(s.np)})
	}
	if taken {
		s.groupMask |= 1 << uint(s.np)
	}
	var scratch [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(scratch[:], zigzag(int64(pc-s.lastPC)))
	s.groupDeltas = append(s.groupDeltas, scratch[:n]...)
	s.deltaBytes += int64(n)
	s.lastPC = pc
	s.np++
	s.events++
	if s.rec != nil {
		s.rec.Branch(pc, taken)
	}
	if s.np == groupSize {
		s.emitGroup()
	}
}

func (s *StreamRecorder) emitGroup() {
	if s.np == 0 || s.err != nil {
		return
	}
	if err := s.bw.WriteByte(s.groupMask); err != nil {
		s.err = fmt.Errorf("trace: writing spill group: %w", err)
		return
	}
	if _, err := s.bw.Write(s.groupDeltas); err != nil {
		s.err = fmt.Errorf("trace: writing spill group: %w", err)
		return
	}
	s.off += 1 + int64(len(s.groupDeltas))
	s.np = 0
	s.groupMask = 0
	s.groupDeltas = s.groupDeltas[:0]
}

// Events returns the number of events streamed so far.
func (s *StreamRecorder) Events() int64 { return s.events }

// Seal flushes the final group, lands the file (temp-and-rename for
// named paths) and returns the recording as a Handle: resident prefix
// in memory, everything else paged from the file on demand. Call it
// exactly once; a failed Seal cleans up after itself.
func (s *StreamRecorder) Seal() (*Handle, error) {
	if s.sealed {
		panic("trace: sealing a sealed StreamRecorder")
	}
	s.emitGroup()
	if s.err == nil {
		s.err = s.bw.Flush()
	}
	if s.err != nil {
		err := s.err
		s.Discard()
		return nil, err
	}
	s.sealed = true

	path := ""
	if s.tmpPath != "" {
		if err := os.Rename(s.tmpPath, s.finalPath); err != nil {
			// The unlinked temp still backs the open descriptor, so the
			// recording survives as an anonymous handle; only the durable
			// path is lost.
			os.Remove(s.tmpPath)
		} else {
			path = s.finalPath
		}
		s.tmpPath = ""
	}

	prefix := s.prefix
	if s.rec != nil {
		prefix = s.rec.Trace() // the whole recording fit the budget
	}
	var peak int64
	if prefix != nil {
		peak = prefix.SizeBytes()
	}
	return &Handle{
		chunkEvents:  s.chunkEvents,
		events:       s.events,
		nchunks:      len(s.idx),
		encoded:      s.deltaBytes + int64(len(s.idx))*int64((s.chunkEvents+63)/64)*8,
		residentPeak: peak,
		res:          prefix,
		path:         path,
		f:            s.f,
		fileSize:     s.off,
		idx:          s.idx,
	}, nil
}

// Discard abandons the recording, closing and removing any file the
// recorder created. Safe to call after a failed Seal or on an
// abandoned recorder; a successful Seal hands the file to the Handle
// and Discard must not be called.
func (s *StreamRecorder) Discard() {
	if s.f != nil {
		s.f.Close()
		s.f = nil
	}
	if s.tmpPath != "" {
		os.Remove(s.tmpPath)
		s.tmpPath = ""
	}
	s.sealed = true
}
