package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// Spill-file machinery for out-of-core recordings: BTR files double as
// the paging store behind a Handle. New spill files are written in the
// checksummed BTR2 chunk-frame format (codec.go), whose frames map 1:1
// onto the handle's chunks — random access is one bounded ReadAt per
// frame, and the frame checksum is verified on every page-in, pread and
// mmap alike. Legacy BTR1 files remain readable: their self-delimiting
// group stream needs a sequential scan to build a chunk index
// (chunkPos), after which chunks decode from group spans, with
// structural checks but no checksums.

// spillEncoder streams events into BTR2 chunk frames on an io.Writer,
// tracking the chunk index as it goes. It is the shared encoding core
// of writeSpill (whole trace at once) and StreamRecorder (out-of-core,
// event at a time).
type spillEncoder struct {
	w           io.Writer
	chunkEvents int

	off          int64 // bytes emitted: header + completed frames
	idx          []chunkPos
	groupMask    byte
	groupDeltas  []byte
	np           int // events pending in the current group
	lastPC       uint64
	chunkStartPC uint64
	chunkN       int    // events in the open chunk
	chunkBuf     []byte // the open chunk's encoded groups
	events       int64
	deltaBytes   int64

	err error
}

// newSpillEncoder writes the BTR2 header and returns an encoder cutting
// frames every chunkEvents events (<= 0 means DefaultChunkEvents).
func newSpillEncoder(w io.Writer, chunkEvents int) (*spillEncoder, error) {
	if chunkEvents <= 0 {
		chunkEvents = DefaultChunkEvents
	}
	e := &spillEncoder{w: w, chunkEvents: chunkEvents}
	var hdr [4 + binary.MaxVarintLen64]byte
	copy(hdr[:], magic2[:])
	n := 4 + binary.PutUvarint(hdr[4:], uint64(chunkEvents))
	if _, err := w.Write(hdr[:n]); err != nil {
		return nil, fmt.Errorf("trace: writing spill header: %w", err)
	}
	e.off = int64(n)
	return e, nil
}

// Branch encodes one event. Write errors are sticky; finish reports them.
func (e *spillEncoder) Branch(pc uint64, taken bool) {
	if e.err != nil {
		return
	}
	if e.chunkN == 0 {
		e.chunkStartPC = e.lastPC
	}
	if taken {
		e.groupMask |= 1 << uint(e.np)
	}
	var scratch [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(scratch[:], zigzag(int64(pc-e.lastPC)))
	e.groupDeltas = append(e.groupDeltas, scratch[:n]...)
	e.deltaBytes += int64(n)
	e.lastPC = pc
	e.np++
	e.chunkN++
	e.events++
	if e.np == groupSize {
		e.emitGroup()
	}
	if e.chunkN == e.chunkEvents {
		e.flushChunk()
	}
}

// emitGroup appends the pending (possibly short) group to the open
// chunk's payload. Short groups only ever end a chunk: Branch emits at
// every 8th event, and flushChunk drains the remainder.
func (e *spillEncoder) emitGroup() {
	if e.np == 0 {
		return
	}
	e.chunkBuf = append(e.chunkBuf, e.groupMask)
	e.chunkBuf = append(e.chunkBuf, e.groupDeltas...)
	e.np = 0
	e.groupMask = 0
	e.groupDeltas = e.groupDeltas[:0]
}

// flushChunk frames and writes the open chunk: header (event count,
// payload length, chaining PC, CRC32C), then the payload.
func (e *spillEncoder) flushChunk() {
	if e.err != nil || e.chunkN == 0 {
		return
	}
	e.emitGroup()
	sum := crc32.Checksum(e.chunkBuf, castagnoli)
	var hdr [3*binary.MaxVarintLen64 + 4]byte
	n := binary.PutUvarint(hdr[:], uint64(e.chunkN))
	n += binary.PutUvarint(hdr[n:], uint64(len(e.chunkBuf)))
	n += binary.PutUvarint(hdr[n:], e.chunkStartPC)
	binary.LittleEndian.PutUint32(hdr[n:], sum)
	n += 4
	if _, err := e.w.Write(hdr[:n]); err != nil {
		e.err = fmt.Errorf("trace: writing spill chunk frame: %w", err)
		return
	}
	if _, err := e.w.Write(e.chunkBuf); err != nil {
		e.err = fmt.Errorf("trace: writing spill chunk payload: %w", err)
		return
	}
	e.idx = append(e.idx, chunkPos{
		off:     e.off + int64(n),
		startPC: e.chunkStartPC,
		plen:    int64(len(e.chunkBuf)),
		crc:     sum,
	})
	e.off += int64(n) + int64(len(e.chunkBuf))
	e.chunkBuf = e.chunkBuf[:0]
	e.chunkN = 0
}

// finish flushes the final (possibly short) chunk and writes the
// end-of-stream trailer, after which truncation anywhere in the file is
// detectable.
func (e *spillEncoder) finish() error {
	e.flushChunk()
	if e.err != nil {
		return e.err
	}
	var tr [2 * binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tr[:], 0)
	n += binary.PutUvarint(tr[n:], uint64(e.events))
	if _, err := e.w.Write(tr[:n]); err != nil {
		return fmt.Errorf("trace: writing spill trailer: %w", err)
	}
	e.off += int64(n)
	return nil
}

// writeSpill encodes the trace as a BTR2 file, via a temp file, fsync
// and rename: a process killed at any point leaves either the complete
// file or a stray .tmp that no probe ever opens — never a torn .btr.
func writeSpill(path string, tr *ChunkedTrace) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	enc, err := newSpillEncoder(bw, tr.chunkEvents)
	if err == nil {
		tr.Replay(enc)
		err = enc.finish()
	}
	if err == nil {
		err = bw.Flush()
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(f.Name())
		return err
	}
	if err := os.Rename(f.Name(), path); err != nil {
		os.Remove(f.Name())
		return err
	}
	return nil
}

// readSpill decodes a spill file back into a chunked trace at the key's
// granularity; the (pc, taken) stream round-trips exactly, so the
// reloaded trace replays bit-identically to the original recording.
func readSpill(path string, chunkEvents int) (*ChunkedTrace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return readSpillFrom(f, chunkEvents)
}

// readSpillFrom is readSpill over an arbitrary reader (e.g. a section
// of an already-open spill file). Either format decodes; BTR2 frames
// are checksum-verified as they stream past.
func readSpillFrom(r io.Reader, chunkEvents int) (*ChunkedTrace, error) {
	br, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	rec := NewChunkRecorder(chunkEvents)
	if _, err := Copy(rec, br); err != nil {
		return nil, err
	}
	return rec.Trace(), nil
}

// countingReader tracks the byte offset of a buffered reader, so the
// spill scanner can record exact chunk positions.
type countingReader struct {
	br  *bufio.Reader
	off int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.br.Read(p)
	c.off += int64(n)
	return n, err
}

func (c *countingReader) ReadByte() (byte, error) {
	b, err := c.br.ReadByte()
	if err == nil {
		c.off++
	}
	return b, err
}

// scanSpill walks a spill stream once, building the chunk index without
// retaining columns, and reports the event count and total delta bytes
// (from which a would-be resident footprint is derived). For BTR2 the
// requested granularity must match the file's; checksums are deferred
// to page-in (the scan is the cheap open path), but frame structure and
// the trailer are verified, so a truncated v2 file fails here.
func scanSpill(r io.Reader, chunkEvents int) (idx []chunkPos, events int64, deltaBytes int64, err error) {
	idx, events, deltaBytes, _, err = scanSpillAny(r, chunkEvents)
	return idx, events, deltaBytes, err
}

// scanSpillAny is scanSpill additionally reporting the granularity the
// index was built at. chunkEvents <= 0 accepts whatever a v2 header
// declares (and scans v1 at DefaultChunkEvents) — the verifier's mode,
// where the caller does not know the file's granularity up front.
func scanSpillAny(r io.Reader, chunkEvents int) (idx []chunkPos, events int64, deltaBytes int64, granularity int, err error) {
	c := &countingReader{br: bufio.NewReaderSize(r, 1<<16)}
	var hdr [4]byte
	if _, err := io.ReadFull(c, hdr[:]); err != nil {
		return nil, 0, 0, 0, fmt.Errorf("trace: reading spill header: %w", err)
	}
	switch hdr {
	case magic2:
		return scanSpillV2(c, chunkEvents)
	case magic:
		if chunkEvents <= 0 {
			chunkEvents = DefaultChunkEvents
		}
		idx, events, deltaBytes, err = scanSpillV1(c, chunkEvents)
		return idx, events, deltaBytes, chunkEvents, err
	default:
		return nil, 0, 0, 0, ErrBadMagic
	}
}

// scanSpillV1 indexes a legacy BTR1 group stream: chunk boundaries fall
// mid-group, so each chunkPos carries the containing group's offset, an
// in-group skip and the chaining PC.
func scanSpillV1(c *countingReader, chunkEvents int) (idx []chunkPos, events int64, deltaBytes int64, err error) {
	var pc uint64
	var groups int64
scan:
	for {
		groupStart := c.off
		if _, err := c.ReadByte(); err != nil {
			if err == io.EOF {
				break
			}
			return nil, 0, 0, fmt.Errorf("trace: scanning spill: %w", err)
		}
		groups++
		for i := 0; i < groupSize; i++ {
			word, err := binary.ReadUvarint(c)
			if err == io.EOF {
				// Short final group: clean end of stream.
				break scan
			}
			if err != nil {
				return nil, 0, 0, fmt.Errorf("trace: scanning spill: %w", err)
			}
			if events%int64(chunkEvents) == 0 {
				idx = append(idx, chunkPos{off: groupStart, startPC: pc, skip: uint8(i)})
			}
			pc += uint64(unzigzag(word))
			events++
		}
	}
	// Everything that is not the header or a group mask is delta bytes.
	return idx, events, deltaBytes + c.off - int64(len(magic)) - groups, nil
}

// scanSpillV2 indexes a BTR2 frame stream, verifying frame structure
// and the end-of-stream trailer (payload checksums are checked at
// page-in). chunkEvents <= 0 accepts the header's declared granularity.
func scanSpillV2(c *countingReader, chunkEvents int) (idx []chunkPos, events int64, deltaBytes int64, granularity int, err error) {
	declared, err := binary.ReadUvarint(c)
	if err != nil || declared == 0 || declared > maxChunkEvents {
		return nil, 0, 0, 0, &CorruptError{Chunk: -1, Reason: "bad chunk granularity in header"}
	}
	if chunkEvents > 0 && int(declared) != chunkEvents {
		return nil, 0, 0, 0, fmt.Errorf("trace: spill file chunks every %d events, want %d", declared, chunkEvents)
	}
	granularity = int(declared)
	corrupt := func(chunk int, reason string) ([]chunkPos, int64, int64, int, error) {
		return nil, 0, 0, 0, &CorruptError{Chunk: chunk, Reason: reason}
	}
	fieldErr := func(ferr error, chunk int, reason string) ([]chunkPos, int64, int64, int, error) {
		if ferr == io.EOF || ferr == io.ErrUnexpectedEOF {
			return corrupt(chunk, reason)
		}
		return nil, 0, 0, 0, fmt.Errorf("trace: scanning spill: %w", ferr)
	}
	short := false
	for {
		n, err := binary.ReadUvarint(c)
		if err != nil {
			return fieldErr(err, len(idx), "stream ends without its trailer (truncated?)")
		}
		if n == 0 {
			total, err := binary.ReadUvarint(c)
			if err != nil {
				return fieldErr(err, -1, "truncated end-of-stream trailer")
			}
			if int64(total) != events {
				return corrupt(-1, fmt.Sprintf("trailer counts %d events, stream holds %d", total, events))
			}
			if _, err := c.ReadByte(); err != io.EOF {
				return corrupt(-1, "bytes past the end-of-stream trailer")
			}
			return idx, events, deltaBytes, granularity, nil
		}
		if short {
			return corrupt(len(idx), "short chunk frame is not the last")
		}
		if n > declared {
			return corrupt(len(idx), fmt.Sprintf("chunk frame holds %d events, granularity is %d", n, declared))
		}
		if n < declared {
			short = true
		}
		plen, err := binary.ReadUvarint(c)
		if err != nil {
			return fieldErr(err, len(idx), "truncated chunk frame header")
		}
		if plen == 0 || plen > maxChunkPayload {
			return corrupt(len(idx), "bad chunk frame length")
		}
		startPC, err := binary.ReadUvarint(c)
		if err != nil {
			return fieldErr(err, len(idx), "truncated chunk frame header")
		}
		var crcb [4]byte
		if _, err := io.ReadFull(c, crcb[:]); err != nil {
			return fieldErr(err, len(idx), "truncated chunk frame header")
		}
		payloadOff := c.off
		if _, err := io.CopyN(io.Discard, c, int64(plen)); err != nil {
			return fieldErr(err, len(idx), "truncated chunk payload")
		}
		idx = append(idx, chunkPos{
			off:     payloadOff,
			startPC: startPC,
			plen:    int64(plen),
			crc:     binary.LittleEndian.Uint32(crcb[:]),
		})
		events += int64(n)
		deltaBytes += int64(plen) - (int64(n)+groupSize-1)/groupSize
	}
}

// chunkSpan computes the byte range of the spill file covering chunk k.
// BTR2 chunks are self-contained frames, so the span is exactly the
// payload. BTR1 chunk boundaries are independent of the format's
// 8-event groups: when the next chunk starts mid-group, this chunk's
// final events live past that chunk's group offset, so the span extends
// by the mask byte plus at most skip full-width deltas.
func chunkSpan(idx []chunkPos, fileSize int64, k int) (start, end int64) {
	if idx[k].plen > 0 {
		return idx[k].off, idx[k].off + idx[k].plen
	}
	start = idx[k].off
	end = fileSize
	if k+1 < len(idx) {
		end = idx[k+1].off
		if s := int64(idx[k+1].skip); s > 0 {
			end += 1 + s*binary.MaxVarintLen64
			if end > fileSize {
				end = fileSize
			}
		}
	}
	return start, end
}

// pageBufPool recycles the scratch buffers spill page-ins read encoded
// spans into. The decode copies everything it needs into the chunk's
// columns, so the buffer never outlives the call and steady-state
// streaming does zero per-page-in allocations.
var pageBufPool = sync.Pool{New: func() any { return new([]byte) }}

// getPageBuf returns a pooled scratch buffer of length n.
func getPageBuf(n int) *[]byte {
	bp := pageBufPool.Get().(*[]byte)
	if cap(*bp) < n {
		*bp = make([]byte, n)
	}
	*bp = (*bp)[:n]
	return bp
}

func putPageBuf(bp *[]byte) { pageBufPool.Put(bp) }

// readChunkAt pages chunk k (n events) from an open spill file: one
// ReadAt covering the chunk's span (retried with backoff on transient
// errors), then a checksum-verified decode. Buffers are reused when
// large enough.
func (h *Handle) readChunkAt(f *os.File, idx []chunkPos, fileSize int64, k, n int, pcs, dirs []uint64) (DecodedChunk, error) {
	start, end := chunkSpan(idx, fileSize, k)
	bp := getPageBuf(int(end - start))
	defer putPageBuf(bp)
	buf := *bp
	if err := h.readFull(f, buf, start); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return DecodedChunk{}, &CorruptError{Chunk: k, Reason: "spill file shorter than its chunk index (truncated?)"}
		}
		return DecodedChunk{}, fmt.Errorf("trace: paging spill chunk %d: %w", k, err)
	}
	return decodeChunk(buf, idx[k], k, n, h.chunkEvents, pcs, dirs)
}

// readChunkMapped is readChunkAt over an mmapped spill file: the same
// checksum-verified decode, but straight out of the mapping — no read
// syscall, no copy of the encoded bytes.
func (h *Handle) readChunkMapped(mm *mmapRegion, idx []chunkPos, fileSize int64, k, n int, pcs, dirs []uint64) (DecodedChunk, error) {
	start, end := chunkSpan(idx, fileSize, k)
	if end > int64(len(mm.data)) {
		return DecodedChunk{}, &CorruptError{Chunk: k, Reason: "chunk span past the mapped file"}
	}
	return decodeChunk(mm.data[start:end], idx[k], k, n, h.chunkEvents, pcs, dirs)
}

// decodeChunk verifies (BTR2) and decodes chunk k from buf, which must
// start at the chunk's span offset. Every page-in funnels through here,
// pread and mmap alike, so a damaged chunk is detected before a single
// wrong event reaches a replay.
func decodeChunk(buf []byte, pos chunkPos, k, n, chunkEvents int, pcs, dirs []uint64) (DecodedChunk, error) {
	if pos.plen > 0 {
		if int64(len(buf)) < pos.plen {
			return DecodedChunk{}, &CorruptError{Chunk: k, Reason: "chunk payload extends past end of file"}
		}
		buf = buf[:pos.plen]
		if crc32.Checksum(buf, castagnoli) != pos.crc {
			return DecodedChunk{}, &CorruptError{Chunk: k, Reason: "chunk checksum mismatch"}
		}
	}
	return decodeChunkBytes(buf, pos, k, n, chunkEvents, pcs, dirs)
}

// decodeChunkBytes decodes chunk k (n events) from buf, which must hold
// at least the chunk's span starting at pos.off (the decode stops after
// n events, so trailing bytes beyond the span are ignored).
func decodeChunkBytes(buf []byte, pos chunkPos, k, n, chunkEvents int, pcs, dirs []uint64) (DecodedChunk, error) {
	corrupt := func() (DecodedChunk, error) {
		return DecodedChunk{}, &CorruptError{Chunk: k, Reason: "undecodable chunk bytes"}
	}
	if cap(pcs) < n {
		pcs = make([]uint64, n)
	}
	pcs = pcs[:n]
	words := (chunkEvents + 63) / 64
	if cap(dirs) < words {
		dirs = make([]uint64, words)
	}
	dirs = dirs[:words]
	for i := range dirs {
		dirs[i] = 0
	}

	if len(buf) == 0 {
		return corrupt()
	}
	mask := buf[0]
	p := 1
	gi := 0
	for s := 0; s < int(pos.skip); s++ {
		_, w := binary.Uvarint(buf[p:])
		if w <= 0 {
			return corrupt()
		}
		p += w
		gi++
	}
	pc := pos.startPC
	for i := 0; i < n; i++ {
		if gi == groupSize {
			if p >= len(buf) {
				return corrupt()
			}
			mask = buf[p]
			p++
			gi = 0
		}
		word, w := binary.Uvarint(buf[p:])
		if w <= 0 {
			return corrupt()
		}
		p += w
		pc += uint64(unzigzag(word))
		pcs[i] = pc
		if mask&(1<<uint(gi)) != 0 {
			dirs[i>>6] |= 1 << (uint(i) & 63)
		}
		gi++
	}
	return DecodedChunk{PCs: pcs, Dirs: dirs, N: n}, nil
}

// faultWriter adapts a SpillIO's Write to io.Writer for one file, so a
// bufio.Writer (and the encoder above it) flushes through the
// injectable layer.
type faultWriter struct {
	f   *os.File
	sio SpillIO
}

func (fw faultWriter) Write(p []byte) (int, error) { return fw.sio.Write(fw.f, p) }

// StreamRecorder is a Sink that writes a recording straight to a BTR2
// spill file as events arrive, keeping at most a bounded prefix of
// chunk columns resident — the out-of-core replacement for recording
// into a ChunkRecorder and spilling afterwards, with peak memory
// O(budget) instead of O(trace). Seal returns the finished recording
// as a Handle whose resident prefix serves the hot head of replays and
// whose remainder pages back in from the file it just wrote.
//
// With path == "" the recorder writes an anonymous temp file (unlinked
// immediately; the open descriptor keeps it readable), so a bounded
// run without a cache directory leaves nothing behind. With a path the
// file is written via temp, fsync and rename, landing exactly where the
// trace cache's spill probe will find it — and never as a torn .btr.
//
// The resident budget is a target, not a hard wall: retention stops at
// the first chunk boundary past it, so the prefix may overshoot by up
// to one chunk. residentBudget <= 0 retains nothing.
type StreamRecorder struct {
	f         *os.File
	bw        *bufio.Writer
	tmpPath   string
	finalPath string
	sio       SpillIO

	enc *spillEncoder

	rec           *ChunkRecorder // resident-prefix recorder; nil once the budget is hit
	budget        int64
	prefix        *ChunkedTrace
	retainedBytes int64

	sealed bool
}

var _ Sink = (*StreamRecorder)(nil)

// NewStreamRecorder opens a streaming recorder writing to path (or an
// anonymous temp file when path is ""), cutting chunks every
// chunkEvents events (<= 0 means DefaultChunkEvents) and keeping about
// residentBudget bytes of leading chunk columns in memory.
func NewStreamRecorder(path string, chunkEvents int, residentBudget int64) (*StreamRecorder, error) {
	return NewStreamRecorderIO(path, chunkEvents, residentBudget, nil)
}

// NewStreamRecorderIO is NewStreamRecorder with an injectable I/O layer
// (nil means direct file ops). The handle Seal returns inherits it, so
// a fault schedule covers the recording's page-ins too.
func NewStreamRecorderIO(path string, chunkEvents int, residentBudget int64, sio SpillIO) (*StreamRecorder, error) {
	if sio == nil {
		sio = defaultSpillIO
	}
	s := &StreamRecorder{budget: residentBudget, finalPath: path, sio: sio}
	var err error
	if path == "" {
		s.f, err = os.CreateTemp("", "btr-stream-*.btr")
		if err != nil {
			return nil, err
		}
		// Unlink immediately: the descriptor keeps the file readable and
		// the OS reclaims it when the handle is garbage, crash included.
		os.Remove(s.f.Name())
	} else {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			return nil, err
		}
		s.f, err = os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
		if err != nil {
			return nil, err
		}
		s.tmpPath = s.f.Name()
	}
	s.bw = bufio.NewWriterSize(faultWriter{f: s.f, sio: sio}, 1<<16)
	s.enc, err = newSpillEncoder(s.bw, chunkEvents)
	if err != nil {
		s.Discard()
		return nil, err
	}
	if residentBudget > 0 {
		s.rec = NewChunkRecorder(s.enc.chunkEvents)
	}
	return s, nil
}

// Branch streams one event. Write errors are sticky and reported by
// Seal.
func (s *StreamRecorder) Branch(pc uint64, taken bool) {
	if s.sealed {
		panic("trace: recording into a sealed StreamRecorder")
	}
	if s.enc.err != nil {
		return
	}
	s.enc.Branch(pc, taken)
	if s.rec != nil {
		s.rec.Branch(pc, taken)
		if s.enc.chunkN == 0 {
			// A chunk just completed (the prefix recorder cuts at the same
			// boundaries, so it just flushed too): charge it, and stop
			// retaining at the first boundary past the budget.
			last := &s.rec.tr.chunks[len(s.rec.tr.chunks)-1]
			s.retainedBytes += int64(len(last.deltas)) + int64(len(last.dirs))*8
			if s.retainedBytes > s.budget {
				s.prefix = s.rec.Trace()
				s.rec = nil
			}
		}
	}
}

// Events returns the number of events streamed so far.
func (s *StreamRecorder) Events() int64 { return s.enc.events }

// Seal flushes the final chunk and trailer, syncs and lands the file
// (temp-and-rename for named paths) and returns the recording as a
// Handle: resident prefix in memory, everything else paged from the
// file on demand. Call it exactly once; a failed Seal cleans up after
// itself.
func (s *StreamRecorder) Seal() (*Handle, error) {
	if s.sealed {
		panic("trace: sealing a sealed StreamRecorder")
	}
	err := s.enc.finish()
	if err == nil {
		err = s.bw.Flush()
	}
	if err == nil {
		if serr := s.sio.Sync(s.f); serr != nil {
			err = fmt.Errorf("trace: syncing spill file: %w", serr)
		}
	}
	if err != nil {
		s.Discard()
		return nil, err
	}
	s.sealed = true

	path := ""
	if s.tmpPath != "" {
		if err := os.Rename(s.tmpPath, s.finalPath); err != nil {
			// The unlinked temp still backs the open descriptor, so the
			// recording survives as an anonymous handle; only the durable
			// path is lost.
			os.Remove(s.tmpPath)
		} else {
			path = s.finalPath
		}
		s.tmpPath = ""
	}

	prefix := s.prefix
	if s.rec != nil {
		prefix = s.rec.Trace() // the whole recording fit the budget
	}
	var peak int64
	if prefix != nil {
		peak = prefix.SizeBytes()
	}
	return &Handle{
		chunkEvents:  s.enc.chunkEvents,
		events:       s.enc.events,
		nchunks:      len(s.enc.idx),
		encoded:      s.enc.deltaBytes + int64(len(s.enc.idx))*int64((s.enc.chunkEvents+63)/64)*8,
		residentPeak: peak,
		res:          prefix,
		path:         path,
		f:            s.f,
		fileSize:     s.enc.off,
		idx:          s.enc.idx,
		sio:          s.sio,
	}, nil
}

// Discard abandons the recording, closing and removing any file the
// recorder created. Safe to call after a failed Seal or on an
// abandoned recorder; a successful Seal hands the file to the Handle
// and Discard must not be called.
func (s *StreamRecorder) Discard() {
	if s.f != nil {
		s.f.Close()
		s.f = nil
	}
	if s.tmpPath != "" {
		os.Remove(s.tmpPath)
		s.tmpPath = ""
	}
	s.sealed = true
}
