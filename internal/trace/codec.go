package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Binary trace format, version 1 ("BTR1"):
//
//	magic   [4]byte  "BTR1"
//	groups  *        repeated event groups, until EOF
//
// Each group encodes up to 8 events:
//
//	mask    byte     bit i = direction (1 = taken) of the group's i-th event
//	deltas  1..8 ×   uvarint( zigzag(pc - prevPC) )
//
// Deltas chain across groups, starting from PC 0. Only the final group may
// hold fewer than 8 events (the stream simply ends after its last delta),
// so the format is self-delimiting without a length header. Branch traces
// revisit a small working set of PCs, so deltas are small: the common
// event costs ~1.1 bytes versus 9 for a fixed-width encoding.
//
// Version 2 ("BTR2") wraps the same group encoding in checksummed chunk
// frames so damage is detected instead of decoded:
//
//	magic       [4]byte  "BTR2"
//	chunkEvents uvarint  the file's chunk granularity
//	frames      *        chunk frames, then one trailer
//
// Each frame is one chunk:
//
//	events   uvarint  events in this chunk (1..chunkEvents; only the
//	                  final data frame may hold fewer than chunkEvents)
//	plen     uvarint  payload length in bytes
//	startPC  uvarint  the PC preceding the chunk's first event
//	crc      u32 LE   CRC32C (Castagnoli) of the payload
//	payload  plen ×   BTR1-style event groups; deltas chain from
//	                  startPC, and groups restart per frame (the final
//	                  group of a frame may be short)
//
// The stream ends with a trailer frame — events == 0 followed by
// uvarint(total events) — so truncation at any byte, frame boundaries
// included, is detectable. Chunks are self-contained (no cross-frame
// delta chaining), so any frame decodes from one bounded read and its
// checksum is verified on every page-in.

var magic = [4]byte{'B', 'T', 'R', '1'}
var magic2 = [4]byte{'B', 'T', 'R', '2'}

// castagnoli is the CRC32C polynomial table used for BTR2 per-chunk
// payload checksums (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// maxChunkPayload bounds a frame's declared payload length; anything
// larger is treated as corruption rather than allocated.
const maxChunkPayload = 1 << 28

// maxChunkEvents bounds a header's declared chunk granularity.
const maxChunkEvents = 1 << 30

// groupSize is the number of events per direction-mask group.
const groupSize = 8

// ErrBadMagic is returned by NewReader when the stream does not begin with
// a BTR1 or BTR2 header.
var ErrBadMagic = errors.New("trace: bad magic (not a BTR trace)")

// ErrCorruptSpill is the sentinel every spill-corruption error unwraps
// to: checksum mismatches, truncated streams, undecodable chunk bytes.
// Callers branch on errors.Is(err, ErrCorruptSpill) to distinguish
// damage (quarantine the file and re-record) from transient I/O trouble
// (already retried) and plain absence (regenerate).
var ErrCorruptSpill = errors.New("trace: corrupt spill data")

// CorruptError describes detected spill damage: where (Path may be
// empty when the reader only sees a stream; Chunk is -1 for structural
// damage outside any one chunk) and what. It unwraps to ErrCorruptSpill.
type CorruptError struct {
	Path   string
	Chunk  int
	Reason string
}

func (e *CorruptError) Error() string {
	msg := "trace: corrupt spill"
	if e.Path != "" {
		msg += " " + e.Path
	}
	if e.Chunk >= 0 {
		msg += fmt.Sprintf(" chunk %d", e.Chunk)
	}
	return msg + ": " + e.Reason
}

func (e *CorruptError) Unwrap() error { return ErrCorruptSpill }

// ErrWriterClosed is returned when writing to a closed Writer.
var ErrWriterClosed = errors.New("trace: writer is closed")

func zigzag(v int64) uint64   { return uint64((v << 1) ^ (v >> 63)) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Writer streams events into an io.Writer in BTR1 format. It implements
// Sink. Close must be called to emit the final (possibly partial) group
// and flush buffered data; after Close the writer rejects further events.
type Writer struct {
	bw      *bufio.Writer
	lastPC  uint64
	pending [groupSize]Event
	n       int
	closed  bool
	err     error
	scratch [binary.MaxVarintLen64]byte
}

// NewWriter creates a Writer and emits the format header.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(magic[:]); err != nil {
		return nil, fmt.Errorf("trace: writing header: %w", err)
	}
	return &Writer{bw: bw}, nil
}

// Branch buffers one event, emitting a group every eight. Encoding errors
// are sticky and reported by Close.
func (w *Writer) Branch(pc uint64, taken bool) {
	if w.err != nil {
		return
	}
	if w.closed {
		w.err = ErrWriterClosed
		return
	}
	w.pending[w.n] = Event{PC: pc, Taken: taken}
	w.n++
	if w.n == groupSize {
		w.emitGroup()
	}
}

func (w *Writer) emitGroup() {
	if w.n == 0 || w.err != nil {
		return
	}
	var mask byte
	for i := 0; i < w.n; i++ {
		if w.pending[i].Taken {
			mask |= 1 << uint(i)
		}
	}
	if err := w.bw.WriteByte(mask); err != nil {
		w.err = fmt.Errorf("trace: writing group mask: %w", err)
		return
	}
	for i := 0; i < w.n; i++ {
		delta := int64(w.pending[i].PC - w.lastPC)
		w.lastPC = w.pending[i].PC
		n := binary.PutUvarint(w.scratch[:], zigzag(delta))
		if _, err := w.bw.Write(w.scratch[:n]); err != nil {
			w.err = fmt.Errorf("trace: writing event: %w", err)
			return
		}
	}
	w.n = 0
}

// Close emits the final partial group and flushes. It does not close the
// underlying io.Writer. Close is idempotent.
func (w *Writer) Close() error {
	if !w.closed {
		w.emitGroup()
		w.closed = true
	}
	if w.err != nil {
		return w.err
	}
	return w.bw.Flush()
}

// Flush writes all *complete* groups to the underlying writer. Buffered
// events of a partial group are retained (the format only allows a short
// group at end of stream); call Close to emit them.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.bw.Flush()
}

// Reader decodes a BTR1 or BTR2 stream (the header picks the format).
// It implements Source. BTR2 frames are checksum-verified as they are
// entered, and a missing trailer (truncation) is an error rather than a
// silent short stream.
type Reader struct {
	br     *bufio.Reader
	lastPC uint64
	mask   byte
	idx    int // next event index within the current group; groupSize = exhausted

	// BTR2 framing state.
	v2          bool
	chunkEvents int
	frame       []byte // current frame payload
	fpos        int
	fleft       int   // events left in the current frame
	fidx        int   // frames consumed (chunk number for errors)
	short       bool  // a short data frame was seen (must be the last)
	total       int64 // events decoded so far
	done        bool  // the end-of-stream trailer was consumed
}

// NewReader validates the header and returns a Reader positioned at the
// first event.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	switch hdr {
	case magic:
		return &Reader{br: br, idx: groupSize}, nil
	case magic2:
		ce, err := binary.ReadUvarint(br)
		if err != nil || ce == 0 || ce > maxChunkEvents {
			return nil, &CorruptError{Chunk: -1, Reason: "bad chunk granularity in header"}
		}
		return &Reader{br: br, idx: groupSize, v2: true, chunkEvents: int(ce)}, nil
	default:
		return nil, ErrBadMagic
	}
}

// ChunkEvents returns the stream's declared chunk granularity (BTR2), or
// 0 for BTR1 streams, which have none.
func (r *Reader) ChunkEvents() int { return r.chunkEvents }

// Next returns the next event in the stream.
func (r *Reader) Next() (Event, bool, error) {
	if r.v2 {
		return r.nextV2()
	}
	if r.idx == groupSize {
		mask, err := r.br.ReadByte()
		if err == io.EOF {
			return Event{}, false, nil
		}
		if err != nil {
			return Event{}, false, fmt.Errorf("trace: reading group mask: %w", err)
		}
		r.mask = mask
		r.idx = 0
	}
	word, err := binary.ReadUvarint(r.br)
	if err == io.EOF {
		if r.idx == 0 {
			// A mask byte with no events would mean a truncated stream,
			// except that writers never emit empty groups; tolerate it as
			// clean EOF only at idx 0 of a final group.
			return Event{}, false, nil
		}
		return Event{}, false, nil // short final group: clean end
	}
	if err != nil {
		return Event{}, false, fmt.Errorf("trace: reading event: %w", err)
	}
	r.lastPC += uint64(unzigzag(word))
	taken := r.mask&(1<<uint(r.idx)) != 0
	r.idx++
	return Event{PC: r.lastPC, Taken: taken}, true, nil
}

// nextV2 is Next over BTR2 chunk frames: enter the next frame when the
// current one is exhausted (verifying its checksum), then decode groups
// out of the frame's payload buffer.
func (r *Reader) nextV2() (Event, bool, error) {
	for r.fleft == 0 {
		if r.done {
			return Event{}, false, nil
		}
		if err := r.nextFrame(); err != nil {
			return Event{}, false, err
		}
	}
	if r.idx == groupSize {
		if r.fpos >= len(r.frame) {
			return Event{}, false, &CorruptError{Chunk: r.fidx - 1, Reason: "chunk payload ends mid-group"}
		}
		r.mask = r.frame[r.fpos]
		r.fpos++
		r.idx = 0
	}
	word, w := binary.Uvarint(r.frame[r.fpos:])
	if w <= 0 {
		return Event{}, false, &CorruptError{Chunk: r.fidx - 1, Reason: "undecodable delta in chunk payload"}
	}
	r.fpos += w
	r.lastPC += uint64(unzigzag(word))
	taken := r.mask&(1<<uint(r.idx)) != 0
	r.idx++
	r.fleft--
	r.total++
	return Event{PC: r.lastPC, Taken: taken}, true, nil
}

// frameReadErr maps a failed frame-field read: running out of bytes is
// truncation (corruption); anything else is a real I/O error.
func (r *Reader) frameReadErr(err error, reason string) error {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return &CorruptError{Chunk: r.fidx, Reason: reason}
	}
	return fmt.Errorf("trace: reading chunk frame: %w", err)
}

// nextFrame consumes one BTR2 frame header + payload, or the trailer.
func (r *Reader) nextFrame() error {
	events, err := binary.ReadUvarint(r.br)
	if err != nil {
		return r.frameReadErr(err, "stream ends without its trailer (truncated?)")
	}
	if events == 0 {
		total, err := binary.ReadUvarint(r.br)
		if err != nil {
			return r.frameReadErr(err, "truncated end-of-stream trailer")
		}
		if int64(total) != r.total {
			return &CorruptError{Chunk: -1, Reason: fmt.Sprintf("trailer counts %d events, stream holds %d", total, r.total)}
		}
		if _, err := r.br.ReadByte(); err != io.EOF {
			return &CorruptError{Chunk: -1, Reason: "bytes past the end-of-stream trailer"}
		}
		r.done = true
		return nil
	}
	if r.short {
		return &CorruptError{Chunk: r.fidx, Reason: "short chunk frame is not the last"}
	}
	if int(events) > r.chunkEvents {
		return &CorruptError{Chunk: r.fidx, Reason: fmt.Sprintf("chunk frame holds %d events, granularity is %d", events, r.chunkEvents)}
	}
	if int(events) < r.chunkEvents {
		r.short = true
	}
	plen, err := binary.ReadUvarint(r.br)
	if err != nil || plen == 0 || plen > maxChunkPayload {
		if err == nil {
			return &CorruptError{Chunk: r.fidx, Reason: "bad chunk frame length"}
		}
		return r.frameReadErr(err, "truncated chunk frame header")
	}
	startPC, err := binary.ReadUvarint(r.br)
	if err != nil {
		return r.frameReadErr(err, "truncated chunk frame header")
	}
	var crcb [4]byte
	if _, err := io.ReadFull(r.br, crcb[:]); err != nil {
		return r.frameReadErr(err, "truncated chunk frame header")
	}
	if cap(r.frame) < int(plen) {
		r.frame = make([]byte, plen)
	}
	r.frame = r.frame[:plen]
	if _, err := io.ReadFull(r.br, r.frame); err != nil {
		return r.frameReadErr(err, "truncated chunk payload")
	}
	if crc32.Checksum(r.frame, castagnoli) != binary.LittleEndian.Uint32(crcb[:]) {
		return &CorruptError{Chunk: r.fidx, Reason: "chunk checksum mismatch"}
	}
	r.lastPC = startPC
	r.fpos = 0
	r.fleft = int(events)
	r.idx = groupSize
	r.fidx++
	return nil
}

// WriteText streams events from src to w in a line-oriented text format
// ("0x<pc> T|N"), useful for debugging and diffing. It reports the number
// of events written.
func WriteText(w io.Writer, src Source) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	for {
		ev, ok, err := src.Next()
		if err != nil {
			return n, err
		}
		if !ok {
			break
		}
		dir := byte('N')
		if ev.Taken {
			dir = 'T'
		}
		if _, err := fmt.Fprintf(bw, "0x%x %c\n", ev.PC, dir); err != nil {
			return n, fmt.Errorf("trace: writing text event: %w", err)
		}
		n++
	}
	return n, bw.Flush()
}

// ReadText parses the text format produced by WriteText.
func ReadText(r io.Reader) ([]Event, error) {
	br := bufio.NewScanner(r)
	br.Buffer(make([]byte, 1<<16), 1<<20)
	var events []Event
	line := 0
	for br.Scan() {
		line++
		text := br.Text()
		if text == "" {
			continue
		}
		var pc uint64
		var dir string
		if _, err := fmt.Sscanf(text, "0x%x %s", &pc, &dir); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		switch dir {
		case "T":
			events = append(events, Event{PC: pc, Taken: true})
		case "N":
			events = append(events, Event{PC: pc, Taken: false})
		default:
			return nil, fmt.Errorf("trace: line %d: direction %q is not T or N", line, dir)
		}
	}
	if err := br.Err(); err != nil {
		return nil, fmt.Errorf("trace: scanning text: %w", err)
	}
	return events, nil
}
