package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Binary trace format ("BTR1"):
//
//	magic   [4]byte  "BTR1"
//	groups  *        repeated event groups, until EOF
//
// Each group encodes up to 8 events:
//
//	mask    byte     bit i = direction (1 = taken) of the group's i-th event
//	deltas  1..8 ×   uvarint( zigzag(pc - prevPC) )
//
// Deltas chain across groups, starting from PC 0. Only the final group may
// hold fewer than 8 events (the stream simply ends after its last delta),
// so the format is self-delimiting without a length header. Branch traces
// revisit a small working set of PCs, so deltas are small: the common
// event costs ~1.1 bytes versus 9 for a fixed-width encoding.

var magic = [4]byte{'B', 'T', 'R', '1'}

// groupSize is the number of events per direction-mask group.
const groupSize = 8

// ErrBadMagic is returned by NewReader when the stream does not begin with
// the BTR1 header.
var ErrBadMagic = errors.New("trace: bad magic (not a BTR1 trace)")

// ErrWriterClosed is returned when writing to a closed Writer.
var ErrWriterClosed = errors.New("trace: writer is closed")

func zigzag(v int64) uint64   { return uint64((v << 1) ^ (v >> 63)) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Writer streams events into an io.Writer in BTR1 format. It implements
// Sink. Close must be called to emit the final (possibly partial) group
// and flush buffered data; after Close the writer rejects further events.
type Writer struct {
	bw      *bufio.Writer
	lastPC  uint64
	pending [groupSize]Event
	n       int
	closed  bool
	err     error
	scratch [binary.MaxVarintLen64]byte
}

// NewWriter creates a Writer and emits the format header.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(magic[:]); err != nil {
		return nil, fmt.Errorf("trace: writing header: %w", err)
	}
	return &Writer{bw: bw}, nil
}

// Branch buffers one event, emitting a group every eight. Encoding errors
// are sticky and reported by Close.
func (w *Writer) Branch(pc uint64, taken bool) {
	if w.err != nil {
		return
	}
	if w.closed {
		w.err = ErrWriterClosed
		return
	}
	w.pending[w.n] = Event{PC: pc, Taken: taken}
	w.n++
	if w.n == groupSize {
		w.emitGroup()
	}
}

func (w *Writer) emitGroup() {
	if w.n == 0 || w.err != nil {
		return
	}
	var mask byte
	for i := 0; i < w.n; i++ {
		if w.pending[i].Taken {
			mask |= 1 << uint(i)
		}
	}
	if err := w.bw.WriteByte(mask); err != nil {
		w.err = fmt.Errorf("trace: writing group mask: %w", err)
		return
	}
	for i := 0; i < w.n; i++ {
		delta := int64(w.pending[i].PC - w.lastPC)
		w.lastPC = w.pending[i].PC
		n := binary.PutUvarint(w.scratch[:], zigzag(delta))
		if _, err := w.bw.Write(w.scratch[:n]); err != nil {
			w.err = fmt.Errorf("trace: writing event: %w", err)
			return
		}
	}
	w.n = 0
}

// Close emits the final partial group and flushes. It does not close the
// underlying io.Writer. Close is idempotent.
func (w *Writer) Close() error {
	if !w.closed {
		w.emitGroup()
		w.closed = true
	}
	if w.err != nil {
		return w.err
	}
	return w.bw.Flush()
}

// Flush writes all *complete* groups to the underlying writer. Buffered
// events of a partial group are retained (the format only allows a short
// group at end of stream); call Close to emit them.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.bw.Flush()
}

// Reader decodes a BTR1 stream. It implements Source.
type Reader struct {
	br     *bufio.Reader
	lastPC uint64
	mask   byte
	idx    int // next event index within the current group; groupSize = exhausted
}

// NewReader validates the header and returns a Reader positioned at the
// first event.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if hdr != magic {
		return nil, ErrBadMagic
	}
	return &Reader{br: br, idx: groupSize}, nil
}

// Next returns the next event in the stream.
func (r *Reader) Next() (Event, bool, error) {
	if r.idx == groupSize {
		mask, err := r.br.ReadByte()
		if err == io.EOF {
			return Event{}, false, nil
		}
		if err != nil {
			return Event{}, false, fmt.Errorf("trace: reading group mask: %w", err)
		}
		r.mask = mask
		r.idx = 0
	}
	word, err := binary.ReadUvarint(r.br)
	if err == io.EOF {
		if r.idx == 0 {
			// A mask byte with no events would mean a truncated stream,
			// except that writers never emit empty groups; tolerate it as
			// clean EOF only at idx 0 of a final group.
			return Event{}, false, nil
		}
		return Event{}, false, nil // short final group: clean end
	}
	if err != nil {
		return Event{}, false, fmt.Errorf("trace: reading event: %w", err)
	}
	r.lastPC += uint64(unzigzag(word))
	taken := r.mask&(1<<uint(r.idx)) != 0
	r.idx++
	return Event{PC: r.lastPC, Taken: taken}, true, nil
}

// WriteText streams events from src to w in a line-oriented text format
// ("0x<pc> T|N"), useful for debugging and diffing. It reports the number
// of events written.
func WriteText(w io.Writer, src Source) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	for {
		ev, ok, err := src.Next()
		if err != nil {
			return n, err
		}
		if !ok {
			break
		}
		dir := byte('N')
		if ev.Taken {
			dir = 'T'
		}
		if _, err := fmt.Fprintf(bw, "0x%x %c\n", ev.PC, dir); err != nil {
			return n, fmt.Errorf("trace: writing text event: %w", err)
		}
		n++
	}
	return n, bw.Flush()
}

// ReadText parses the text format produced by WriteText.
func ReadText(r io.Reader) ([]Event, error) {
	br := bufio.NewScanner(r)
	br.Buffer(make([]byte, 1<<16), 1<<20)
	var events []Event
	line := 0
	for br.Scan() {
		line++
		text := br.Text()
		if text == "" {
			continue
		}
		var pc uint64
		var dir string
		if _, err := fmt.Sscanf(text, "0x%x %s", &pc, &dir); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		switch dir {
		case "T":
			events = append(events, Event{PC: pc, Taken: true})
		case "N":
			events = append(events, Event{PC: pc, Taken: false})
		default:
			return nil, fmt.Errorf("trace: line %d: direction %q is not T or N", line, dir)
		}
	}
	if err := br.Err(); err != nil {
		return nil, fmt.Errorf("trace: scanning text: %w", err)
	}
	return events, nil
}
