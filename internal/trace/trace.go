// Package trace defines the branch event model shared by every layer of the
// system: workloads emit events, predictors consume them, and the codecs in
// this package persist them.
//
// An event is the pair (PC, outcome) for one dynamic execution of a
// conditional branch — exactly the information the paper's modified
// sim-bpred extracted from SimpleScalar. Only conditional branches are
// represented; unconditional control flow never reaches this layer.
package trace

// Event is one dynamic execution of a conditional branch.
type Event struct {
	// PC identifies the static branch site. Synthetic workloads map their
	// instrumentation site IDs into a sparse address space; stored traces
	// carry whatever addresses they were recorded with.
	PC uint64
	// Taken reports the branch direction for this execution.
	Taken bool
}

// Sink consumes a stream of branch events. Profilers, predictors and trace
// writers all implement Sink.
type Sink interface {
	// Branch records one dynamic branch execution.
	Branch(pc uint64, taken bool)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(pc uint64, taken bool)

// Branch calls f(pc, taken).
func (f SinkFunc) Branch(pc uint64, taken bool) { f(pc, taken) }

// Source produces a stream of branch events. Stored traces and recorded
// in-memory traces implement Source.
type Source interface {
	// Next returns the next event. ok is false when the stream is
	// exhausted; err (if any) is returned alongside ok == false.
	Next() (ev Event, ok bool, err error)
}

// Tee returns a Sink that forwards every event to each of sinks in order.
// A nil entry is skipped.
func Tee(sinks ...Sink) Sink {
	filtered := make([]Sink, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			filtered = append(filtered, s)
		}
	}
	return teeSink(filtered)
}

type teeSink []Sink

func (t teeSink) Branch(pc uint64, taken bool) {
	for _, s := range t {
		s.Branch(pc, taken)
	}
}

// Copy drains src into dst and reports the number of events copied.
func Copy(dst Sink, src Source) (int64, error) {
	var n int64
	for {
		ev, ok, err := src.Next()
		if err != nil {
			return n, err
		}
		if !ok {
			return n, nil
		}
		dst.Branch(ev.PC, ev.Taken)
		n++
	}
}

// Recorder is a Sink that stores events in memory, for tests and small
// analyses. Use Source() to replay it.
type Recorder struct {
	Events []Event
}

// Branch appends the event.
func (r *Recorder) Branch(pc uint64, taken bool) {
	r.Events = append(r.Events, Event{PC: pc, Taken: taken})
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int { return len(r.Events) }

// Source returns a replayable view of the recorded events.
func (r *Recorder) Source() Source { return &sliceSource{events: r.Events} }

// SliceSource returns a Source that yields the given events in order.
func SliceSource(events []Event) Source { return &sliceSource{events: events} }

type sliceSource struct {
	events []Event
	pos    int
}

func (s *sliceSource) Next() (Event, bool, error) {
	if s.pos >= len(s.events) {
		return Event{}, false, nil
	}
	ev := s.events[s.pos]
	s.pos++
	return ev, true, nil
}

// CountingSink wraps a Sink and counts events; a nil inner Sink just counts.
type CountingSink struct {
	Inner Sink
	N     int64
}

// Branch forwards to the inner sink (if any) and increments the count.
func (c *CountingSink) Branch(pc uint64, taken bool) {
	if c.Inner != nil {
		c.Inner.Branch(pc, taken)
	}
	c.N++
}
