package trace

import (
	"reflect"
	"sync"
	"testing"
)

// poolHandle builds a spill-backed handle with nothing resident, so
// every first decode is a page-in.
func poolHandle(t *testing.T, n, chunkEvents int) *Handle {
	t.Helper()
	sr, err := NewStreamRecorder("", chunkEvents, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range syntheticEvents(n, 17) {
		sr.Branch(ev.PC, ev.Taken)
	}
	h, err := sr.Seal()
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// TestDecodedPoolUnlimited pins budget 0: decode once, retain forever.
func TestDecodedPoolUnlimited(t *testing.T) {
	h := poolHandle(t, 4000, 256)
	p := NewDecodedPool(h, 0)
	for pass := 0; pass < 3; pass++ {
		for k := 0; k < h.Chunks(); k++ {
			d := p.Checkout(k)
			if d.N != h.chunkLen(k) || d.Base != int64(k)*256 {
				t.Fatalf("chunk %d: n=%d base=%d", k, d.N, d.Base)
			}
			p.Release(k)
		}
	}
	s := p.Stats()
	if s.Decodes != int64(h.Chunks()) || s.Redecodes != 0 || s.Evicted != 0 {
		t.Fatalf("unlimited pool stats %+v: want one decode per chunk, no re-decodes", s)
	}
	if s.Hits != int64(2*h.Chunks()) {
		t.Fatalf("Hits = %d, want %d", s.Hits, 2*h.Chunks())
	}
}

// TestDecodedPoolEvictsAndRedecodes pins the budgeted mode: columns
// past the budget are evicted LRU-first and revisits re-decode.
func TestDecodedPoolEvictsAndRedecodes(t *testing.T) {
	h := poolHandle(t, 4000, 256)
	chunkBytes := func() int64 {
		d, err := h.DecodeChunk(0)
		if err != nil {
			t.Fatal(err)
		}
		return d.SizeBytes()
	}()
	// Room for roughly two chunks.
	p := NewDecodedPool(h, 2*chunkBytes+chunkBytes/2)
	for pass := 0; pass < 2; pass++ {
		for k := 0; k < h.Chunks(); k++ {
			d := p.Checkout(k)
			want, err := h.DecodeChunk(k)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(d.PCs, want.PCs) || !reflect.DeepEqual(d.Dirs, want.Dirs) {
				t.Fatalf("pass %d chunk %d: columns diverged", pass, k)
			}
			p.Release(k)
		}
	}
	s := p.Stats()
	if s.Redecodes == 0 || s.Evicted == 0 {
		t.Fatalf("budgeted pool stats %+v: want evictions and re-decodes", s)
	}
	if s.HighWater > 3*chunkBytes+chunkBytes/2 {
		t.Fatalf("high water %d far exceeds budget (chunk=%d)", s.HighWater, chunkBytes)
	}
}

// TestDecodedPoolCacheNothing pins the negative budget: columns drop
// at last release, every revisit decodes.
func TestDecodedPoolCacheNothing(t *testing.T) {
	h := poolHandle(t, 2000, 256)
	p := NewDecodedPool(h, -1)
	for pass := 0; pass < 2; pass++ {
		for k := 0; k < h.Chunks(); k++ {
			p.Checkout(k)
			p.Release(k)
		}
	}
	s := p.Stats()
	if want := int64(2 * h.Chunks()); s.Decodes != want || s.Evicted != want {
		t.Fatalf("cache-nothing stats %+v: want %d decodes and evictions", s, want)
	}
	if s.Hits != 0 {
		t.Fatalf("Hits = %d, want 0", s.Hits)
	}
}

// TestDecodedPoolPinnedOvershoot pins forward progress: concurrent
// checkouts may pin more than the budget; nothing pinned is evicted.
func TestDecodedPoolPinnedOvershoot(t *testing.T) {
	h := poolHandle(t, 2000, 256)
	p := NewDecodedPool(h, 1) // budget below a single chunk
	var held []*DecodedChunk
	for k := 0; k < h.Chunks(); k++ {
		held = append(held, p.Checkout(k))
	}
	for k := 0; k < h.Chunks(); k++ {
		if held[k] == nil || held[k].N == 0 {
			t.Fatalf("pinned chunk %d lost", k)
		}
		p.Release(k)
	}
	if s := p.Stats(); s.Evicted != int64(h.Chunks()) {
		t.Fatalf("stats %+v: every release past the budget should evict", s)
	}
}

// TestDecodedPoolConcurrent hammers one pool from many goroutines
// (meaningful under -race): every checkout must observe the right
// columns regardless of eviction races.
func TestDecodedPoolConcurrent(t *testing.T) {
	h := poolHandle(t, 8000, 256)
	want := make([]DecodedChunk, h.Chunks())
	for k := range want {
		d, err := h.DecodeChunk(k)
		if err != nil {
			t.Fatal(err)
		}
		want[k] = d
	}
	p := NewDecodedPool(h, 3000)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for pass := 0; pass < 4; pass++ {
				for i := 0; i < h.Chunks(); i++ {
					k := (i + g) % h.Chunks() // offset walks desynchronise the goroutines
					d := p.Checkout(k)
					if d.N != want[k].N || d.PCs[0] != want[k].PCs[0] || d.PCs[d.N-1] != want[k].PCs[want[k].N-1] {
						panic("concurrent checkout observed wrong columns")
					}
					p.Release(k)
				}
			}
		}()
	}
	wg.Wait()
}
