package trace

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

// recordSpill streams n synthetic events into a named BTR2 spill file
// through sio (nil = direct I/O) with nothing resident, so every later
// DecodeChunk pages from disk.
func recordSpill(t *testing.T, path string, n, chunkEvents int, seed uint64, sio SpillIO) *Handle {
	t.Helper()
	sr, err := NewStreamRecorderIO(path, chunkEvents, 0, sio)
	if err != nil {
		t.Fatalf("NewStreamRecorderIO: %v", err)
	}
	for _, e := range syntheticEvents(n, seed) {
		sr.Branch(e.PC, e.Taken)
	}
	h, err := sr.Seal()
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	return h
}

// flipByte XORs one bit of the file at off in place.
func flipByte(t *testing.T, path string, off int64) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatalf("open for corruption: %v", err)
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatalf("read byte: %v", err)
	}
	b[0] ^= 0x10
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatalf("write byte: %v", err)
	}
}

func TestVerifySpillClean(t *testing.T) {
	path := filepath.Join(t.TempDir(), "clean.btr")
	h := recordSpill(t, path, 1000, 64, 1, nil)
	defer h.Release()

	rep := VerifySpill(path)
	if !rep.OK() {
		t.Fatalf("clean file failed verify: %v", rep.Err)
	}
	if rep.Format != 2 {
		t.Fatalf("Format = %d, want 2", rep.Format)
	}
	if rep.Events != 1000 {
		t.Fatalf("Events = %d, want 1000", rep.Events)
	}
	if want := (1000 + 63) / 64; rep.Chunks != want {
		t.Fatalf("Chunks = %d, want %d", rep.Chunks, want)
	}
}

func TestVerifySpillDetectsBitFlip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flip.btr")
	recordSpill(t, path, 1000, 64, 2, nil).Release()

	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// Mid-file lands inside frame payload (payload dominates the
	// layout); either a checksum mismatch or a torn frame structure must
	// surface, and both unwrap to ErrCorruptSpill.
	flipByte(t, path, st.Size()/2)

	rep := VerifySpill(path)
	if rep.OK() {
		t.Fatal("bit-flipped file passed verify")
	}
	if !errors.Is(rep.Err, ErrCorruptSpill) {
		t.Fatalf("Err = %v, want ErrCorruptSpill", rep.Err)
	}
}

func TestVerifySpillDetectsTruncation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trunc.btr")
	recordSpill(t, path, 1000, 64, 3, nil).Release()

	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, st.Size()-5); err != nil {
		t.Fatal(err)
	}

	rep := VerifySpill(path)
	if rep.OK() {
		t.Fatal("truncated file passed verify")
	}
	if !errors.Is(rep.Err, ErrCorruptSpill) {
		t.Fatalf("Err = %v, want ErrCorruptSpill", rep.Err)
	}
}

func TestVerifySpillBadMagic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "magic.btr")
	recordSpill(t, path, 100, 64, 4, nil).Release()
	flipByte(t, path, 0)

	rep := VerifySpill(path)
	if rep.OK() || !errors.Is(rep.Err, ErrBadMagic) {
		t.Fatalf("Err = %v, want ErrBadMagic", rep.Err)
	}
}

func TestTransientReadFaultIsRetried(t *testing.T) {
	fio := NewFaultingIO(Fault{Op: OpReadAt, Nth: 1, Kind: FaultError})
	path := filepath.Join(t.TempDir(), "retry.btr")
	h := recordSpill(t, path, 1000, 64, 5, fio)

	want := syntheticEvents(1000, 5)
	got := replayHandle(h)
	if len(got) != len(want) {
		t.Fatalf("replay produced %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if h.ReadRetries() == 0 {
		t.Fatal("transient fault produced no retry")
	}
	if fio.Fired() != 1 {
		t.Fatalf("Fired = %d, want 1", fio.Fired())
	}
}

func TestStickyReadFaultFailsBounded(t *testing.T) {
	fio := NewFaultingIO(Fault{Op: OpReadAt, Nth: 1, Sticky: true})
	path := filepath.Join(t.TempDir(), "sticky.btr")
	h := recordSpill(t, path, 1000, 64, 6, fio)

	_, err := h.DecodeChunk(0)
	if err == nil {
		t.Fatal("DecodeChunk succeeded through a sticky read fault")
	}
	if errors.Is(err, ErrCorruptSpill) {
		t.Fatalf("sticky EIO classified as corruption: %v", err)
	}
	if !errors.Is(err, syscall.EIO) {
		t.Fatalf("err = %v, want to unwrap to EIO", err)
	}
	// Bounded persistence: the first attempt plus one per backoff step,
	// then escalation — not an infinite retry loop.
	if want := 1 + len(spillRetryDelays); fio.Ops(OpReadAt) != want {
		t.Fatalf("ReadAt ops = %d, want %d", fio.Ops(OpReadAt), want)
	}
}

func TestShortReadIsCorruption(t *testing.T) {
	fio := NewFaultingIO(Fault{Op: OpReadAt, Nth: 1, Kind: FaultShortRead, Sticky: true})
	path := filepath.Join(t.TempDir(), "short.btr")
	h := recordSpill(t, path, 1000, 64, 7, fio)

	_, err := h.DecodeChunk(0)
	if !errors.Is(err, ErrCorruptSpill) {
		t.Fatalf("err = %v, want ErrCorruptSpill (short read = truncation)", err)
	}
	// Truncation is not a glitch: no retries.
	if fio.Ops(OpReadAt) != 1 {
		t.Fatalf("ReadAt ops = %d, want 1 (no retry on short read)", fio.Ops(OpReadAt))
	}
}

func TestBitFlipCaughtOnPageIn(t *testing.T) {
	fio := NewFaultingIO(Fault{Op: OpReadAt, Nth: 1, Kind: FaultBitFlip, Sticky: true})
	path := filepath.Join(t.TempDir(), "pageflip.btr")
	h := recordSpill(t, path, 1000, 64, 8, fio)

	_, err := h.DecodeChunk(0)
	if !errors.Is(err, ErrCorruptSpill) {
		t.Fatalf("err = %v, want ErrCorruptSpill", err)
	}
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CorruptError", err)
	}
}

func TestWriteENOSPCFailsSealCleanly(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "nospace.btr")
	fio := NewFaultingIO(Fault{Op: OpWrite, Nth: 1, Kind: FaultENOSPC, Sticky: true})
	sr, err := NewStreamRecorderIO(path, 64, 0, fio)
	if err != nil {
		t.Fatalf("NewStreamRecorderIO: %v", err)
	}
	for _, e := range syntheticEvents(1000, 9) {
		sr.Branch(e.PC, e.Taken)
	}
	h, err := sr.Seal()
	if err == nil {
		t.Fatal("Seal succeeded on a full disk")
	}
	if h != nil {
		t.Fatal("failed Seal returned a handle")
	}
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("err = %v, want ENOSPC", err)
	}
	// A failed Seal cleans up after itself: no torn .btr, no leaked temp.
	if _, err := os.Stat(path); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("final path exists after failed Seal (err=%v)", err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("failed Seal left %d file(s) behind: %v", len(ents), ents)
	}
}

func TestSyncFaultFailsSeal(t *testing.T) {
	dir := t.TempDir()
	fio := NewFaultingIO(Fault{Op: OpSync, Nth: 1})
	sr, err := NewStreamRecorderIO(filepath.Join(dir, "sync.btr"), 64, 0, fio)
	if err != nil {
		t.Fatalf("NewStreamRecorderIO: %v", err)
	}
	for _, e := range syntheticEvents(200, 10) {
		sr.Branch(e.PC, e.Taken)
	}
	if _, err := sr.Seal(); err == nil {
		t.Fatal("Seal succeeded through a sync fault")
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("failed Seal left %d file(s) behind: %v", len(ents), ents)
	}
}

func TestCacheQuarantinesCorruptSpill(t *testing.T) {
	dir := t.TempDir()
	key := CacheKey{Name: "synthetic/fault", Scale: 1, ChunkEvents: 64}
	tr := recordSynthetic(1000, 64, 11)

	c := NewCache(1<<20, dir, 0)
	if err := c.Put(key, tr); err != nil {
		t.Fatalf("Put: %v", err)
	}
	path := c.SpillPathFor(key)
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("Put did not write a spill file: %v", err)
	}

	// Damage the payload, then come back as a fresh process: the probe
	// scan passes (frame headers are intact), materialisation trips the
	// checksum, and the cache quarantines instead of re-probing the same
	// damaged bytes forever.
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	flipByte(t, path, st.Size()/2)

	c2 := NewCache(1<<20, dir, 0)
	if _, ok := c2.Get(key); ok {
		t.Fatal("Get returned a trace from a corrupt spill file")
	}
	s := c2.Stats()
	if s.Quarantined == 0 {
		t.Fatalf("Quarantined = 0, want >= 1 (stats: %+v)", s)
	}
	if _, err := os.Stat(path); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("corrupt spill still at %s (err=%v)", path, err)
	}
	if _, err := os.Stat(path + ".quarantined"); err != nil {
		t.Fatalf("quarantined file missing: %v", err)
	}

	// The slot is usable again: a re-record lands and round-trips.
	if err := c2.Put(key, tr); err != nil {
		t.Fatalf("re-Put after quarantine: %v", err)
	}
	got, ok := NewCache(1<<20, dir, 0).Get(key)
	if !ok {
		t.Fatal("re-recorded spill not readable")
	}
	want, have := collect(tr), collect(got)
	if len(want) != len(have) {
		t.Fatalf("re-recorded trace has %d events, want %d", len(have), len(want))
	}
	for i := range want {
		if want[i] != have[i] {
			t.Fatalf("event %d = %+v, want %+v", i, have[i], want[i])
		}
	}
}

func TestCacheQuarantinesTruncatedSpillOnProbe(t *testing.T) {
	dir := t.TempDir()
	key := CacheKey{Name: "synthetic/trunc", Scale: 1, ChunkEvents: 64}

	c := NewCache(1<<20, dir, 0)
	if err := c.Put(key, recordSynthetic(1000, 64, 12)); err != nil {
		t.Fatalf("Put: %v", err)
	}
	path := c.SpillPathFor(key)
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, st.Size()-7); err != nil {
		t.Fatal(err)
	}

	// Truncation is structural, so the probe scan itself rejects the
	// file and the handle never materialises.
	c2 := NewCache(1<<20, dir, 0)
	if _, ok := c2.GetHandle(key); ok {
		t.Fatal("GetHandle succeeded on a truncated spill file")
	}
	if c2.Stats().Quarantined == 0 {
		t.Fatal("truncated spill was not quarantined at probe time")
	}
	if _, err := os.Stat(path + ".quarantined"); err != nil {
		t.Fatalf("quarantined file missing: %v", err)
	}
}
