//go:build unix

package trace

import (
	"fmt"
	"math"
	"os"
	"runtime"
	"syscall"
)

// mmapSupported reports whether this platform can map spill files.
const mmapSupported = true

// mmapRegion is a read-only mapping of a whole spill file. The mapping
// is unmapped by a finalizer once the region (and thus the Handle
// holding it) becomes unreachable, mirroring how anonymous spill temp
// files are reclaimed through their descriptor.
type mmapRegion struct {
	data []byte
}

// mapFile maps size bytes of f read-only and shared. Zero-length files
// cannot be mapped (mmap rejects them); callers gate on size > 0.
func mapFile(f *os.File, size int64) (*mmapRegion, error) {
	if size <= 0 {
		return nil, fmt.Errorf("trace: cannot mmap empty spill file")
	}
	if size > math.MaxInt {
		return nil, fmt.Errorf("trace: spill file too large to mmap (%d bytes)", size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("trace: mmap spill file: %w", err)
	}
	mm := &mmapRegion{data: data}
	runtime.SetFinalizer(mm, func(r *mmapRegion) {
		syscall.Munmap(r.data)
	})
	return mm, nil
}
