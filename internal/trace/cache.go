package trace

import (
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sync"
)

// Cache is a process-wide store of recorded traces keyed by the three
// values that determine a recording bit-for-bit: workload name, scale,
// and chunk granularity. Experiment contexts that agree on all three
// share one recording instead of re-running the generator per context.
//
// Entries are recording Handles, so the cache bounds bytes, not
// recordings: eviction releases a spill-backed handle's resident
// columns while the handle itself — and every replay already paging
// through it — stays valid, re-reading chunks from its BTR1 file on
// demand. With a spill directory configured, stored traces are written
// through as BTR1 files and transparently re-loaded on the next Get —
// so a memory-constrained run degrades to disk instead of
// regenerating, and a later process pointed at the same directory
// starts warm. Spill filenames carry the workload-registry fingerprint
// the cache was built with, so files left by a different workload
// generation are invisible rather than silently wrong.

// DefaultCacheBytes is the resident-column budget used by callers that
// have no better number: 1 GiB, comfortably above a full Table 1 suite
// at scale 1.0 (~1.2 bytes/event).
const DefaultCacheBytes = 1 << 30

// CacheKey identifies one recorded stream. ChunkEvents <= 0 is
// normalised to DefaultChunkEvents and Scale <= 0 to 1 (matching the
// workload runner's treatment) so configs that spell the defaults
// differently still share.
type CacheKey struct {
	// Name is the workload's "bench/input" name.
	Name string
	// Fingerprint disambiguates workloads that share a Name — e.g.
	// custom specs with the same bench/input but different target, seed
	// or generator (workload.Spec.Fingerprint). Zero is fine when names
	// are known unique.
	Fingerprint uint64
	// Scale is the workload scale the stream was generated at.
	Scale float64
	// ChunkEvents is the recording's chunk granularity.
	ChunkEvents int
}

// Normalised returns the key with defaults spelled out, the form the
// cache indexes by; derived caches keyed the same way (sim.ProfileCache)
// must normalise too so aliasing configs share entries.
func (k CacheKey) Normalised() CacheKey {
	if k.ChunkEvents <= 0 {
		k.ChunkEvents = DefaultChunkEvents
	}
	if k.Scale <= 0 {
		k.Scale = 1
	}
	return k
}

// CacheStats counts cache traffic; all cumulative except the Resident
// pair, which snapshot current occupancy.
type CacheStats struct {
	Hits          int64 // Gets served, from memory or disk
	Misses        int64 // Gets that found nothing
	Loads         int64 // hits that re-read a spill file
	Spills        int64 // traces written to the spill directory
	SpillFailures int64 // spill writes that failed (persistence lost, memory reuse kept)
	Evicted       int64 // entries whose columns were released from memory
	Quarantined   int64 // corrupt spill files renamed aside (entry dropped, caller re-records)
	Resident      int   // entries currently holding columns in memory
	ResidentBytes int64 // bytes of resident columns
}

// Cache is safe for concurrent use.
type Cache struct {
	mu          sync.Mutex
	maxBytes    int64
	dir         string
	fingerprint uint64
	entries     map[CacheKey]*cacheEntry
	bytes       int64
	tick        int64
	stats       CacheStats
}

// cacheEntry is one keyed recording handle. charged is the resident
// byte count the budget was last billed for; it is re-synced whenever
// the handle's residency changes under the cache's control.
type cacheEntry struct {
	h       *Handle
	charged int64
	used    int64
}

// NewCache builds a cache bounded to maxBytes of resident trace columns
// (<= 0 means unbounded). A non-empty spillDir enables the BTR1 spill
// mode: stored traces are written through to the directory (created if
// missing), evictions keep their file, and Get probes the directory
// for recordings left by earlier processes.
//
// fingerprint names the workload-registry generation the cache belongs
// to (e.g. workload.RegistryFingerprint(): a hash of every spec's name,
// target and seed). It is embedded in every spill filename, so a spill
// directory left by a build with different workloads simply never
// matches — stale directories self-invalidate instead of being trusted
// to match their key. Pass 0 for a memory-only cache or when a single
// fixed workload set owns the directory.
func NewCache(maxBytes int64, spillDir string, fingerprint uint64) *Cache {
	return &Cache{
		maxBytes:    maxBytes,
		dir:         spillDir,
		fingerprint: fingerprint,
		entries:     make(map[CacheKey]*cacheEntry),
	}
}

// handleFor is the shared lookup core: an existing entry, else a
// spill-directory probe (scanning the file into a cold handle, no
// columns read). probed reports that a probe built the handle. Counts
// nothing — the public wrappers own the stats.
func (c *Cache) handleFor(key CacheKey) (h *Handle, probed, ok bool) {
	c.mu.Lock()
	if e := c.entries[key]; e != nil {
		c.tick++
		e.used = c.tick
		h := e.h
		c.mu.Unlock()
		return h, false, true
	}
	dir := c.dir
	c.mu.Unlock()
	if dir == "" {
		return nil, false, false
	}
	// Probe the spill dir: a previous process may have left the file;
	// an open failure is simply a miss. A file the scan rejects as
	// corrupt (torn BTR2 structure, bad trailer) is moved aside so the
	// miss does not repeat the doomed scan on every later probe.
	h, err := OpenSpillHandle(c.spillPath(key), key.ChunkEvents)
	if err != nil {
		if errors.Is(err, ErrCorruptSpill) {
			c.Quarantine(key)
		}
		return nil, false, false
	}
	c.mu.Lock()
	h = c.adoptLocked(key, h)
	c.mu.Unlock()
	return h, true, true
}

// GetHandle returns the recording handle for key without materialising
// its columns — the entry point for streaming replays, which page
// through the handle within their own memory budget. The handle stays
// valid across evictions (eviction only releases resident columns of
// spill-backed handles).
func (c *Cache) GetHandle(key CacheKey) (*Handle, bool) {
	key = key.Normalised()
	h, probed, ok := c.handleFor(key)
	c.mu.Lock()
	defer c.mu.Unlock()
	if !ok {
		c.stats.Misses++
		return nil, false
	}
	c.stats.Hits++
	if probed {
		c.stats.Loads++ // the probe scanned the spill file
	}
	return h, true
}

// Get returns the recording for key as a fully resident trace,
// re-reading a spill file if the columns are no longer in memory. All
// disk I/O happens outside the cache lock, so a reload (or a spill-dir
// probe) never stalls other callers' in-memory traffic.
func (c *Cache) Get(key CacheKey) (*ChunkedTrace, bool) {
	key = key.Normalised()
	h, probed, ok := c.handleFor(key)
	if !ok {
		c.countMiss()
		return nil, false
	}
	tr, paged, err := h.materialise()
	if err != nil {
		// The file is missing, vanished or corrupt: forget the entry and
		// report a miss so the caller regenerates. Detected corruption
		// additionally moves the file aside — otherwise the next Get
		// would probe the same damaged bytes forever.
		if errors.Is(err, ErrCorruptSpill) {
			c.Quarantine(key)
		}
		c.mu.Lock()
		defer c.mu.Unlock()
		if e := c.entries[key]; e != nil && e.h == h {
			c.bytes -= e.charged
			delete(c.entries, key)
		}
		c.stats.Misses++
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Hits++
	if probed || paged {
		c.stats.Loads++
	}
	c.rechargeLocked(key, h)
	return tr, true
}

func (c *Cache) countMiss() {
	c.mu.Lock()
	c.stats.Misses++
	c.mu.Unlock()
}

// rechargeLocked re-syncs the budget charge for key's entry after its
// handle's residency changed (a materialise or re-adoption), evicting
// if the growth pushed the cache past its budget.
func (c *Cache) rechargeLocked(key CacheKey, h *Handle) {
	e := c.entries[key]
	if e == nil || e.h != h {
		return
	}
	now := h.ResidentBytes()
	c.bytes += now - e.charged
	e.charged = now
	c.evictLocked()
}

// adoptLocked installs (or refreshes) the entry for key. If another
// goroutine installed a handle first, theirs wins and is returned so
// concurrent callers share one handle per recording.
func (c *Cache) adoptLocked(key CacheKey, h *Handle) *Handle {
	c.tick++
	e := c.entries[key]
	if e == nil {
		e = &cacheEntry{h: h, charged: h.ResidentBytes()}
		c.entries[key] = e
		c.bytes += e.charged
		e.used = c.tick
		c.evictLocked()
		return h
	}
	e.used = c.tick
	return e.h
}

// Put stores a recording under key. With a spill directory the trace is
// written through immediately (outside the cache lock, so concurrent
// workers' cache traffic never waits on disk), making it durable across
// evictions and processes; a failed spill is reported but the trace is
// still cached in memory — an unwritable directory only loses
// persistence, never reuse. Storing an already-present key refreshes
// recency; if that entry's columns were evicted, the offered trace is
// re-adopted so the next Get is served from memory (recordings are
// deterministic, so the two are identical).
func (c *Cache) Put(key CacheKey, tr *ChunkedTrace) error {
	return c.putHandle(key.Normalised(), NewResidentHandle(tr), tr)
}

// PutHandle stores an already-built recording handle — e.g. a
// StreamRecorder's spill-backed result — under key. No write-through
// happens for handles that already carry a spill file.
func (c *Cache) PutHandle(key CacheKey, h *Handle) error {
	return c.putHandle(key.Normalised(), h, nil)
}

func (c *Cache) putHandle(key CacheKey, h *Handle, offered *ChunkedTrace) error {
	c.mu.Lock()
	if e := c.entries[key]; e != nil {
		// Refresh recency; re-adopt the offered columns if the entry's
		// were evicted.
		c.tick++
		e.used = c.tick
		if offered != nil {
			e.h.adoptResident(offered)
		}
		c.rechargeLocked(key, e.h)
		c.mu.Unlock()
		return nil
	}
	dir := c.dir
	c.mu.Unlock()

	// Spill without the lock; the deterministic temp-and-rename write
	// means concurrent Puts of the same recording cannot tear the file.
	var spillErr error
	spilled := h.SpillPath() != "" // stream-recorded straight to a durable file
	if dir != "" && !h.Spilled() {
		if offered == nil {
			// A handle without resident columns and without a spill file
			// cannot exist (it would have no backing at all), so offered
			// is only nil here for already-spilled handles.
			offered, spillErr = h.Materialise()
		}
		if spillErr == nil {
			path := c.spillPath(key)
			if err := writeSpill(path, offered); err != nil {
				spillErr = fmt.Errorf("trace: spilling %s: %w", key.Name, err)
			} else {
				h.attachSpill(path)
				spilled = true
			}
		}
	}

	c.mu.Lock()
	if spilled {
		c.stats.Spills++
	} else if spillErr != nil {
		c.stats.SpillFailures++
	}
	c.adoptLocked(key, h)
	c.mu.Unlock()
	return spillErr
}

// Quarantine drops key's entry and moves its spill file aside (renamed
// with a ".quarantined" suffix, or removed if the rename fails), so the
// next Get misses cleanly and re-records instead of re-reading damaged
// bytes. Probes never match the quarantined name, and the re-recording
// lands at the original path via the usual temp-and-rename. Callers
// invoke it when a replay detects corruption (errors.Is
// ErrCorruptSpill) after the entry was already handed out.
func (c *Cache) Quarantine(key CacheKey) {
	key = key.Normalised()
	c.mu.Lock()
	e := c.entries[key]
	if e != nil {
		c.bytes -= e.charged
		delete(c.entries, key)
	}
	dir := c.dir
	c.mu.Unlock()

	moved := false
	if dir != "" {
		path := c.spillPath(key)
		if err := os.Rename(path, path+".quarantined"); err == nil {
			moved = true
		} else if os.Remove(path) == nil {
			moved = true
		}
	}
	if e != nil || moved {
		c.mu.Lock()
		c.stats.Quarantined++
		c.mu.Unlock()
	}
}

// SpillPathFor returns the deterministic spill-file path for key, or
// "" when the cache has no spill directory. Streaming recorders write
// there directly, so the recording lands exactly where a later
// process's Get probe looks.
func (c *Cache) SpillPathFor(key CacheKey) string {
	if c.dir == "" {
		return ""
	}
	return c.spillPath(key.Normalised())
}

// Flush releases every resident trace column (spill files are kept), so
// a long-lived process can return the cache's memory without losing the
// disk-backed recordings. Counters are preserved.
func (c *Cache) Flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for key, e := range c.entries {
		c.releaseLocked(key, e)
	}
}

// releaseLocked evicts one entry's resident columns: spill-backed
// handles stay (and reload on demand), memory-only entries are dropped
// entirely — without a file the columns were the recording.
func (c *Cache) releaseLocked(key CacheKey, e *cacheEntry) {
	if e.h.Spilled() {
		if freed := e.h.Release(); freed > 0 || e.charged > 0 {
			c.bytes -= e.charged
			e.charged = 0
			c.stats.Evicted++
		}
		return
	}
	c.bytes -= e.charged
	delete(c.entries, key)
	c.stats.Evicted++
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.ResidentBytes = c.bytes
	for _, e := range c.entries {
		if e.charged > 0 {
			s.Resident++
		}
	}
	return s
}

// evictLocked releases least-recently-used resident columns until the
// budget is met. Recordings are immutable and callers keep their own
// references, so even a just-stored or just-returned entry may be
// released: the caller's pointer stays valid, only the cache forgets.
// Spilled entries keep their handle (and file) and page back on
// demand; without a spill path the entry is dropped and the next Get
// misses.
func (c *Cache) evictLocked() {
	if c.maxBytes <= 0 {
		return
	}
	for c.bytes > c.maxBytes {
		var victim *cacheEntry
		var victimKey CacheKey
		for k, e := range c.entries {
			if e.charged == 0 {
				continue
			}
			if victim == nil || e.used < victim.used {
				victim, victimKey = e, k
			}
		}
		if victim == nil {
			return
		}
		c.releaseLocked(victimKey, victim)
	}
}

// spillPath derives a deterministic file name from the key so separate
// processes agree on where a recording lives. The name is
// "<registry fingerprint>-<key hash>.btr": the leading hex field is the
// workload-registry fingerprint the cache was built with, so two builds
// whose registries differ read and write disjoint file sets inside the
// same -cachedir and a stale directory is ignored, not trusted.
func (c *Cache) spillPath(key CacheKey) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%x|%g|%d", key.Name, key.Fingerprint, key.Scale, key.ChunkEvents)
	return filepath.Join(c.dir, fmt.Sprintf("%016x-%016x.btr", c.fingerprint, h.Sum64()))
}
