package trace

import (
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sync"
)

// Cache is a process-wide store of recorded traces keyed by the three
// values that determine a recording bit-for-bit: workload name, scale,
// and chunk granularity. Experiment contexts that agree on all three
// share one recording instead of re-running the generator per context.
//
// The cache is size-bounded: once resident columns exceed the byte
// budget, least-recently-used entries are evicted. With a spill
// directory configured, evicted (and freshly stored) traces are written
// as BTR1 files and transparently re-loaded on the next Get — so a
// memory-constrained run degrades to disk instead of regenerating, and
// a later process pointed at the same directory starts warm. Spill
// filenames carry the workload-registry fingerprint the cache was built
// with, so files left by a different workload generation are invisible
// rather than silently wrong.

// DefaultCacheBytes is the resident-column budget used by callers that
// have no better number: 1 GiB, comfortably above a full Table 1 suite
// at scale 1.0 (~1.2 bytes/event).
const DefaultCacheBytes = 1 << 30

// CacheKey identifies one recorded stream. ChunkEvents <= 0 is
// normalised to DefaultChunkEvents and Scale <= 0 to 1 (matching the
// workload runner's treatment) so configs that spell the defaults
// differently still share.
type CacheKey struct {
	// Name is the workload's "bench/input" name.
	Name string
	// Fingerprint disambiguates workloads that share a Name — e.g.
	// custom specs with the same bench/input but different target, seed
	// or generator (workload.Spec.Fingerprint). Zero is fine when names
	// are known unique.
	Fingerprint uint64
	// Scale is the workload scale the stream was generated at.
	Scale float64
	// ChunkEvents is the recording's chunk granularity.
	ChunkEvents int
}

// Normalised returns the key with defaults spelled out, the form the
// cache indexes by; derived caches keyed the same way (sim.ProfileCache)
// must normalise too so aliasing configs share entries.
func (k CacheKey) Normalised() CacheKey {
	if k.ChunkEvents <= 0 {
		k.ChunkEvents = DefaultChunkEvents
	}
	if k.Scale <= 0 {
		k.Scale = 1
	}
	return k
}

// CacheStats counts cache traffic; all cumulative except the Resident
// pair, which snapshot current occupancy.
type CacheStats struct {
	Hits          int64 // Gets served, from memory or disk
	Misses        int64 // Gets that found nothing
	Loads         int64 // hits that re-read a BTR1 spill file
	Spills        int64 // traces written to the spill directory
	SpillFailures int64 // spill writes that failed (persistence lost, memory reuse kept)
	Evicted       int64 // entries whose columns were released from memory
	Resident      int   // entries currently holding columns in memory
	ResidentBytes int64 // bytes of resident columns
}

// Cache is safe for concurrent use.
type Cache struct {
	mu          sync.Mutex
	maxBytes    int64
	dir         string
	fingerprint uint64
	entries     map[CacheKey]*cacheEntry
	bytes       int64
	tick        int64
	stats       CacheStats
}

// cacheEntry is one keyed recording: resident (tr != nil), spilled
// (tr == nil, path != ""), or both (written through, still resident).
type cacheEntry struct {
	tr   *ChunkedTrace
	path string
	used int64
}

// NewCache builds a cache bounded to maxBytes of resident trace columns
// (<= 0 means unbounded). A non-empty spillDir enables the BTR1 spill
// mode: stored traces are written through to the directory (created if
// missing), evictions keep their file, and Get probes the directory
// for recordings left by earlier processes.
//
// fingerprint names the workload-registry generation the cache belongs
// to (e.g. workload.RegistryFingerprint(): a hash of every spec's name,
// target and seed). It is embedded in every spill filename, so a spill
// directory left by a build with different workloads simply never
// matches — stale directories self-invalidate instead of being trusted
// to match their key. Pass 0 for a memory-only cache or when a single
// fixed workload set owns the directory.
func NewCache(maxBytes int64, spillDir string, fingerprint uint64) *Cache {
	return &Cache{
		maxBytes:    maxBytes,
		dir:         spillDir,
		fingerprint: fingerprint,
		entries:     make(map[CacheKey]*cacheEntry),
	}
}

// Get returns the recording for key, re-reading a spill file if the
// columns are no longer resident. All disk I/O happens outside the
// cache lock, so a reload (or a spill-dir probe) never stalls other
// callers' in-memory traffic.
func (c *Cache) Get(key CacheKey) (*ChunkedTrace, bool) {
	key = key.Normalised()
	c.mu.Lock()
	e := c.entries[key]
	if e != nil {
		c.tick++
		e.used = c.tick
		if tr := e.tr; tr != nil {
			c.stats.Hits++
			c.mu.Unlock()
			return tr, true
		}
		path := e.path
		c.mu.Unlock()
		return c.loadSpill(key, e, path)
	}
	dir := c.dir
	c.mu.Unlock()
	if dir == "" {
		c.countMiss()
		return nil, false
	}
	// Probe the spill dir: a previous process may have left the file;
	// an open failure is simply a miss.
	return c.loadSpill(key, nil, c.spillPath(key))
}

func (c *Cache) countMiss() {
	c.mu.Lock()
	c.stats.Misses++
	c.mu.Unlock()
}

// loadSpill reads a spill file outside the lock and adopts the result
// under it. e is the entry the caller saw (nil when probing the dir for
// a key the cache has never seen). Concurrent loads of the same key may
// each read the file; adoption is idempotent and the extra reads only
// cost duplicate I/O on an already-rare path.
func (c *Cache) loadSpill(key CacheKey, e *cacheEntry, path string) (*ChunkedTrace, bool) {
	tr, err := readSpill(path, key.ChunkEvents)
	c.mu.Lock()
	defer c.mu.Unlock()
	if err != nil {
		// The file is missing, vanished or corrupt: forget it and
		// report a miss so the caller regenerates.
		if e != nil && c.entries[key] == e {
			delete(c.entries, key)
		}
		c.stats.Misses++
		return nil, false
	}
	c.stats.Loads++
	c.stats.Hits++
	// May release the entry right back if it alone exceeds the budget;
	// the caller's reference keeps the returned trace valid.
	return c.adoptLocked(key, tr, path), true
}

// adoptLocked installs (or refreshes) the entry for key with resident
// columns tr and spill path. If another goroutine adopted resident
// columns first, theirs are returned so concurrent callers share one
// copy.
func (c *Cache) adoptLocked(key CacheKey, tr *ChunkedTrace, path string) *ChunkedTrace {
	c.tick++
	e := c.entries[key]
	if e == nil {
		e = &cacheEntry{}
		c.entries[key] = e
	}
	e.used = c.tick
	if e.path == "" {
		e.path = path
	}
	if e.tr == nil {
		e.tr = tr
		c.bytes += tr.SizeBytes()
		c.evictLocked()
	}
	if e.tr != nil {
		return e.tr
	}
	return tr
}

// Put stores a recording under key. With a spill directory the trace is
// written through immediately (outside the cache lock, so concurrent
// workers' cache traffic never waits on disk), making it durable across
// evictions and processes; a failed spill is reported but the trace is
// still cached in memory — an unwritable directory only loses
// persistence, never reuse. Storing an already-present key refreshes
// recency; if that entry's columns were evicted, the offered trace is
// re-adopted so the next Get is served from memory (recordings are
// deterministic, so the two are identical).
func (c *Cache) Put(key CacheKey, tr *ChunkedTrace) error {
	key = key.Normalised()
	c.mu.Lock()
	if e := c.entries[key]; e != nil {
		c.adoptLocked(key, tr, e.path)
		c.mu.Unlock()
		return nil
	}
	dir := c.dir
	c.mu.Unlock()

	// Spill without the lock; the deterministic temp-and-rename write
	// means concurrent Puts of the same recording cannot tear the file.
	var path string
	var spillErr error
	if dir != "" {
		path = c.spillPath(key)
		if err := writeSpill(path, tr); err != nil {
			path = ""
			spillErr = fmt.Errorf("trace: spilling %s: %w", key.Name, err)
		}
	}

	c.mu.Lock()
	if path != "" {
		c.stats.Spills++
	} else if spillErr != nil {
		c.stats.SpillFailures++
	}
	c.adoptLocked(key, tr, path)
	c.mu.Unlock()
	return spillErr
}

// Flush releases every resident trace column (spill files are kept), so
// a long-lived process can return the cache's memory without losing the
// disk-backed recordings. Counters are preserved.
func (c *Cache) Flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for key, e := range c.entries {
		if e.tr != nil {
			c.bytes -= e.tr.SizeBytes()
			e.tr = nil
			c.stats.Evicted++
		}
		if e.path == "" {
			delete(c.entries, key)
		}
	}
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.ResidentBytes = c.bytes
	for _, e := range c.entries {
		if e.tr != nil {
			s.Resident++
		}
	}
	return s
}

// evictLocked releases least-recently-used resident columns until the
// budget is met. Traces are immutable and callers keep their own
// references, so even a just-stored or just-returned entry may be
// released: the caller's pointer stays valid, only the cache forgets.
// Spilled entries keep their file and reload on demand; without a spill
// path the columns are simply dropped and the next Get misses.
func (c *Cache) evictLocked() {
	if c.maxBytes <= 0 {
		return
	}
	for c.bytes > c.maxBytes {
		var victim *cacheEntry
		var victimKey CacheKey
		for k, e := range c.entries {
			if e.tr == nil {
				continue
			}
			if victim == nil || e.used < victim.used {
				victim, victimKey = e, k
			}
		}
		if victim == nil {
			return
		}
		c.bytes -= victim.tr.SizeBytes()
		victim.tr = nil
		c.stats.Evicted++
		if victim.path == "" {
			delete(c.entries, victimKey)
		}
	}
}

// spillPath derives a deterministic file name from the key so separate
// processes agree on where a recording lives. The name is
// "<registry fingerprint>-<key hash>.btr": the leading hex field is the
// workload-registry fingerprint the cache was built with, so two builds
// whose registries differ read and write disjoint file sets inside the
// same -cachedir and a stale directory is ignored, not trusted.
func (c *Cache) spillPath(key CacheKey) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%x|%g|%d", key.Name, key.Fingerprint, key.Scale, key.ChunkEvents)
	return filepath.Join(c.dir, fmt.Sprintf("%016x-%016x.btr", c.fingerprint, h.Sum64()))
}

// writeSpill encodes the trace as a BTR1 file, via a temp file and
// rename so concurrent writers of the same deterministic recording
// cannot leave a torn file.
func writeSpill(path string, tr *ChunkedTrace) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	w, err := NewWriter(f)
	if err == nil {
		tr.Replay(w)
		err = w.Close()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(f.Name())
		return err
	}
	if err := os.Rename(f.Name(), path); err != nil {
		os.Remove(f.Name())
		return err
	}
	return nil
}

// readSpill decodes a BTR1 spill file back into a chunked trace at the
// key's granularity; the (pc, taken) stream round-trips exactly, so the
// reloaded trace replays bit-identically to the original recording.
func readSpill(path string, chunkEvents int) (*ChunkedTrace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r, err := NewReader(f)
	if err != nil {
		return nil, err
	}
	rec := NewChunkRecorder(chunkEvents)
	if _, err := Copy(rec, r); err != nil {
		return nil, err
	}
	return rec.Trace(), nil
}
