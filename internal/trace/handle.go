package trace

import (
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Handle is the out-of-core view of one recording: the same chunked
// event stream a ChunkedTrace holds, but whose columns may live in
// memory, in a BTR1 spill file, or both. A fully resident handle wraps
// an existing trace with zero copying; a spill-backed handle pages
// chunks in on demand and can drop its resident columns (Release)
// without invalidating readers. Replay paths that used to require the
// whole recording in RAM — the simulator's bank sweep, ablation
// replays, CLI audits — read through a Handle instead, so peak memory
// is bounded by what the caller chooses to keep resident.
//
// A Handle is safe for concurrent use. Decoded chunks are immutable
// once returned; releasing residency mid-read only affects where later
// reads come from, never the bytes they see.

// ChunkReader is the sequential chunk-at-a-time replay protocol shared
// by the in-memory Replayer and the handle's paging reader. The
// returned pcs slice is owned by the reader and overwritten by the next
// call; dirs may alias immutable storage.
type ChunkReader interface {
	NextChunk() (pcs []uint64, dirs []uint64, n int, ok bool)
}

var _ ChunkReader = (*Replayer)(nil)

// DecodedChunk is one chunk's decoded columns: the PC column, the
// direction bitmap (event i's outcome is bit i&63 of word i>>6), the
// event count, and the chunk's first event index in the stream.
type DecodedChunk struct {
	PCs  []uint64
	Dirs []uint64
	N    int
	Base int64
}

// SizeBytes is the decoded footprint charged against pool budgets.
func (d *DecodedChunk) SizeBytes() int64 {
	return int64(len(d.PCs))*8 + int64(len(d.Dirs))*8
}

// chunkPos locates one chunk inside a spill file. In a BTR2 file each
// chunk is a self-contained frame: off is the payload offset, plen its
// length and crc its CRC32C, verified on every page-in. In a legacy
// BTR1 file (plen == 0) chunk boundaries need not align with the
// format's 8-event groups, so a chunk may start mid-group: off is the
// offset of the group containing the chunk's first event and skip
// counts that group's leading events (and their deltas) belonging to
// the previous chunk. Either way startPC is the PC preceding the
// chunk's first event, from which its deltas chain.
type chunkPos struct {
	off     int64
	startPC uint64
	plen    int64
	crc     uint32
	skip    uint8
}

// Handle is one recording, resident and/or spill-backed.
type Handle struct {
	chunkEvents  int
	events       int64
	nchunks      int
	encoded      int64 // full column footprint if materialised
	residentPeak int64 // high-water mark of resident column bytes

	mu       sync.Mutex
	res      *ChunkedTrace // resident chunk prefix (possibly all chunks); nil = none
	path     string        // spill file, "" for anonymous temp or memory-only
	f        *os.File      // open spill file, lazily opened from path
	fileSize int64
	idx      []chunkPos  // per-chunk file positions, lazily built
	mm       *mmapRegion // read-only mapping of the spill file; nil = pread
	sio      SpillIO     // injectable spill file ops; nil = direct

	pageIns     atomic.Int64
	readRetries atomic.Int64
}

// NewResidentHandle wraps an in-memory trace as a fully resident
// handle. No copying: the handle shares the trace's immutable columns.
func NewResidentHandle(tr *ChunkedTrace) *Handle {
	size := tr.SizeBytes()
	return &Handle{
		chunkEvents:  tr.chunkEvents,
		events:       tr.events,
		nchunks:      len(tr.chunks),
		encoded:      size,
		residentPeak: size,
		res:          tr,
	}
}

// OpenSpillHandle opens a spill file (BTR2 or legacy BTR1) as a handle
// with no resident columns: one sequential scan builds the chunk index
// (offsets only — no columns are retained), after which chunks page in
// on demand. A structurally damaged or truncated BTR2 file fails here
// with an error unwrapping to ErrCorruptSpill.
func OpenSpillHandle(path string, chunkEvents int) (*Handle, error) {
	if chunkEvents <= 0 {
		chunkEvents = DefaultChunkEvents
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	idx, events, deltaBytes, err := scanSpill(io.NewSectionReader(f, 0, st.Size()), chunkEvents)
	if err != nil {
		f.Close()
		return nil, err
	}
	return &Handle{
		chunkEvents: chunkEvents,
		events:      events,
		nchunks:     len(idx),
		encoded:     deltaBytes + int64(len(idx))*int64((chunkEvents+63)/64)*8,
		path:        path,
		f:           f,
		fileSize:    st.Size(),
		idx:         idx,
	}, nil
}

// Events returns the number of recorded events.
func (h *Handle) Events() int64 { return h.events }

// Chunks returns the number of chunks.
func (h *Handle) Chunks() int { return h.nchunks }

// ChunkEvents returns the chunk granularity.
func (h *Handle) ChunkEvents() int { return h.chunkEvents }

// EncodedBytes returns the full column footprint the recording would
// occupy if materialised, resident or not.
func (h *Handle) EncodedBytes() int64 { return h.encoded }

// ResidentBytes returns the bytes of chunk columns currently in memory.
func (h *Handle) ResidentBytes() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.res == nil {
		return 0
	}
	return h.res.SizeBytes()
}

// ResidentPeak returns the high-water mark of resident column bytes
// over the handle's lifetime (for streamed recordings, the bounded
// window; for resident ones, the whole trace).
func (h *Handle) ResidentPeak() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.residentPeak
}

// PageIns returns the cumulative count of chunks re-read from the spill
// file.
func (h *Handle) PageIns() int64 { return h.pageIns.Load() }

// ReadRetries returns the cumulative count of spill reads re-issued
// after a transient I/O error.
func (h *Handle) ReadRetries() int64 { return h.readRetries.Load() }

// SetSpillIO injects the I/O layer the handle's spill page-ins go
// through (nil restores direct file ops). For fault-injection tests.
func (h *Handle) SetSpillIO(sio SpillIO) {
	h.mu.Lock()
	h.sio = sio
	h.mu.Unlock()
}

// spillIO returns the handle's effective I/O layer.
func (h *Handle) spillIO() SpillIO {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.sio == nil {
		return defaultSpillIO
	}
	return h.sio
}

// readFull reads len(p) bytes at off, retrying transient failures with
// bounded backoff. A short read with no error (or EOF) surfaces as
// io.ErrUnexpectedEOF — the file is shorter than the index says, which
// is truncation, not a glitch — and is not retried.
func (h *Handle) readFull(f *os.File, p []byte, off int64) error {
	sio := h.spillIO()
	for attempt := 0; ; attempt++ {
		n, err := sio.ReadAt(f, p, off)
		if err == nil && n == len(p) {
			return nil
		}
		if err == nil || err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		if !transientIOError(err) || attempt >= len(spillRetryDelays) {
			return err
		}
		h.readRetries.Add(1)
		time.Sleep(spillRetryDelays[attempt])
	}
}

// Spilled reports whether the recording is backed by a BTR1 file.
func (h *Handle) Spilled() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.f != nil || h.path != ""
}

// SpillPath returns the spill file's path ("" for memory-only handles
// and anonymous temp files).
func (h *Handle) SpillPath() string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.path
}

// Release drops the resident columns of a spill-backed handle and
// returns the bytes freed; later reads page back in from disk. A
// memory-only handle keeps its columns (dropping them would lose the
// recording) and returns 0.
func (h *Handle) Release() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.f == nil && h.path == "" {
		return 0
	}
	if h.res == nil {
		return 0
	}
	freed := h.res.SizeBytes()
	h.res = nil
	return freed
}

// attachSpill records that the recording now also lives at path (a
// write-through by the cache). The file is opened lazily; the chunk
// index is built on the first page-in.
func (h *Handle) attachSpill(path string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.path == "" && h.f == nil {
		h.path = path
	}
}

// adoptResident installs tr as the handle's resident columns if it
// currently holds fewer (a re-Put after eviction re-adopts the offered
// trace; recordings are deterministic, so the two are identical).
func (h *Handle) adoptResident(tr *ChunkedTrace) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.res == nil || len(h.res.chunks) < h.nchunks {
		h.res = tr
		if s := tr.SizeBytes(); s > h.residentPeak {
			h.residentPeak = s
		}
	}
}

// fileLocked returns the open spill file, opening h.path on first use.
// Callers must hold h.mu.
func (h *Handle) fileLocked() (*os.File, error) {
	if h.f != nil {
		return h.f, nil
	}
	if h.path == "" {
		return nil, fmt.Errorf("trace: handle has no spill backing")
	}
	f, err := os.Open(h.path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	h.f = f
	h.fileSize = st.Size()
	return f, nil
}

// indexLocked returns the chunk index, scanning the spill file once to
// build it if needed (write-through handles defer the scan until the
// first page-in). Callers must hold h.mu.
func (h *Handle) indexLocked() ([]chunkPos, error) {
	if h.idx != nil {
		return h.idx, nil
	}
	f, err := h.fileLocked()
	if err != nil {
		return nil, err
	}
	idx, events, _, err := scanSpill(io.NewSectionReader(f, 0, h.fileSize), h.chunkEvents)
	if err != nil {
		return nil, err
	}
	if events != h.events {
		return nil, &CorruptError{Path: h.path, Chunk: -1,
			Reason: fmt.Sprintf("spill file holds %d events, handle expects %d", events, h.events)}
	}
	h.idx = idx
	return idx, nil
}

// EnableMmap switches the handle's spill paging from pread to a
// read-only shared mapping of the whole file. Page-ins then decode
// straight out of the mapping — no read syscall, no copy of the encoded
// bytes — and the OS page cache, not the handle, decides what stays
// warm. Idempotent; requires spill backing. On platforms without mmap
// support (or for files too large to map) it returns an error and the
// handle keeps paging via pread, so callers may treat failure as a soft
// fallback.
func (h *Handle) EnableMmap() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.mm != nil {
		return nil
	}
	f, err := h.fileLocked()
	if err != nil {
		return err
	}
	mm, err := mapFile(f, h.fileSize)
	if err != nil {
		return err
	}
	h.mm = mm
	return nil
}

// Mmapped reports whether spill page-ins decode from a mapping.
func (h *Handle) Mmapped() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.mm != nil
}

// chunkLen returns chunk k's event count.
func (h *Handle) chunkLen(k int) int {
	if k == h.nchunks-1 {
		return int(h.events - int64(k)*int64(h.chunkEvents))
	}
	return h.chunkEvents
}

// DecodeChunk decodes chunk k into fresh columns, from the resident
// trace when k is resident, otherwise paging from the spill file.
func (h *Handle) DecodeChunk(k int) (DecodedChunk, error) {
	return h.DecodeChunkInto(k, nil, nil)
}

// DecodeChunkInto is DecodeChunk reusing the caller's buffers when
// they are large enough (pass nil to allocate). The returned Dirs may
// alias the resident trace's immutable bitmap.
func (h *Handle) DecodeChunkInto(k int, pcs, dirs []uint64) (DecodedChunk, error) {
	if k < 0 || k >= h.nchunks {
		return DecodedChunk{}, fmt.Errorf("trace: chunk %d out of range [0,%d)", k, h.nchunks)
	}
	base := int64(k) * int64(h.chunkEvents)
	h.mu.Lock()
	if h.res != nil && k < len(h.res.chunks) {
		c := &h.res.chunks[k]
		h.mu.Unlock()
		if cap(pcs) < c.n {
			pcs = make([]uint64, c.n)
		}
		c.decodeInto(pcs[:c.n])
		return DecodedChunk{PCs: pcs[:c.n], Dirs: c.dirs, N: c.n, Base: base}, nil
	}
	f, err := h.fileLocked()
	if err != nil {
		h.mu.Unlock()
		return DecodedChunk{}, err
	}
	idx, err := h.indexLocked()
	if err != nil {
		h.mu.Unlock()
		return DecodedChunk{}, err
	}
	fileSize := h.fileSize
	mm := h.mm
	h.mu.Unlock()

	var d DecodedChunk
	if mm != nil {
		d, err = h.readChunkMapped(mm, idx, fileSize, k, h.chunkLen(k), pcs, dirs)
	} else {
		d, err = h.readChunkAt(f, idx, fileSize, k, h.chunkLen(k), pcs, dirs)
	}
	if err != nil {
		return DecodedChunk{}, err
	}
	d.Base = base
	h.pageIns.Add(1)
	return d, nil
}

// DecodeChunkRun decodes the n consecutive chunks starting at k0 into
// fresh columns. Chunks paged via pread coalesce into a single ReadAt
// covering the run's whole byte span; resident and mmapped chunks
// decode per-chunk exactly as DecodeChunk does. It exists for the
// decoded pool's prefetcher, which batches adjacent read-ahead hints.
func (h *Handle) DecodeChunkRun(k0, n int) ([]DecodedChunk, error) {
	if n <= 0 || k0 < 0 || k0+n > h.nchunks {
		return nil, fmt.Errorf("trace: chunk run [%d,%d) out of range [0,%d)", k0, k0+n, h.nchunks)
	}
	out := make([]DecodedChunk, n)

	// The resident prefix (if it covers the head of the run) decodes
	// from memory chunk by chunk.
	h.mu.Lock()
	resident := 0
	if h.res != nil && k0 < len(h.res.chunks) {
		resident = len(h.res.chunks) - k0
		if resident > n {
			resident = n
		}
	}
	h.mu.Unlock()
	for i := 0; i < resident; i++ {
		d, err := h.DecodeChunk(k0 + i)
		if err != nil {
			return nil, err
		}
		out[i] = d
	}
	if resident == n {
		return out, nil
	}
	rest := out[resident:]
	k0 += resident
	n = len(rest)

	h.mu.Lock()
	f, err := h.fileLocked()
	if err != nil {
		h.mu.Unlock()
		return nil, err
	}
	idx, err := h.indexLocked()
	if err != nil {
		h.mu.Unlock()
		return nil, err
	}
	fileSize := h.fileSize
	mm := h.mm
	h.mu.Unlock()

	if mm != nil || n == 1 {
		// The mapping already makes every span a plain memory read;
		// nothing to coalesce.
		for i := range rest {
			d, err := h.DecodeChunk(k0 + i)
			if err != nil {
				return nil, err
			}
			rest[i] = d
		}
		return out, nil
	}

	start, _ := chunkSpan(idx, fileSize, k0)
	_, end := chunkSpan(idx, fileSize, k0+n-1)
	bp := getPageBuf(int(end - start))
	defer putPageBuf(bp)
	buf := *bp
	if err := h.readFull(f, buf, start); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, &CorruptError{Chunk: k0, Reason: "spill file shorter than its chunk index (truncated?)"}
		}
		return nil, fmt.Errorf("trace: paging spill chunks [%d,%d): %w", k0, k0+n, err)
	}
	for i := range rest {
		k := k0 + i
		d, err := decodeChunk(buf[idx[k].off-start:], idx[k], k, h.chunkLen(k), h.chunkEvents, nil, nil)
		if err != nil {
			return nil, err
		}
		d.Base = int64(k) * int64(h.chunkEvents)
		rest[i] = d
	}
	h.pageIns.Add(int64(n))
	return out, nil
}

// Materialise returns the recording as a fully resident ChunkedTrace,
// reading the spill file if the columns are not already in memory. The
// materialised columns become the handle's resident set.
func (h *Handle) Materialise() (*ChunkedTrace, error) {
	tr, _, err := h.materialise()
	return tr, err
}

// materialise additionally reports whether the spill file was read.
func (h *Handle) materialise() (*ChunkedTrace, bool, error) {
	h.mu.Lock()
	if h.res != nil && len(h.res.chunks) == h.nchunks {
		tr := h.res
		h.mu.Unlock()
		return tr, false, nil
	}
	f, err := h.fileLocked()
	if err != nil {
		h.mu.Unlock()
		return nil, false, err
	}
	size := h.fileSize
	h.mu.Unlock()

	tr, err := readSpillFrom(io.NewSectionReader(f, 0, size), h.chunkEvents)
	if err != nil {
		return nil, true, err
	}
	if tr.events != h.events {
		return nil, true, &CorruptError{Path: h.path, Chunk: -1,
			Reason: fmt.Sprintf("spill file holds %d events, handle expects %d", tr.events, h.events)}
	}
	h.pageIns.Add(int64(len(tr.chunks)))

	h.mu.Lock()
	if h.res == nil || len(h.res.chunks) < h.nchunks {
		h.res = tr
		if s := tr.SizeBytes(); s > h.residentPeak {
			h.residentPeak = s
		}
	}
	tr = h.res
	h.mu.Unlock()
	return tr, true, nil
}

// ChunkReader returns a sequential reader over the whole recording:
// the resident prefix decodes from memory, the remainder pages in from
// the spill file. Each reader owns its buffers, so any number may run
// concurrently. Paging errors panic with context (replay interfaces
// have no error path); the simulator converts such panics into
// per-input errors.
func (h *Handle) ChunkReader() ChunkReader {
	h.mu.Lock()
	res := h.res
	h.mu.Unlock()
	r := &handleReader{h: h}
	if res != nil {
		r.rep = res.NewReplayer()
		r.next = len(res.chunks)
	}
	return r
}

// handleReader pages through the handle: the resident prefix snapshot
// via a Replayer, then chunk-at-a-time from the spill file.
type handleReader struct {
	h    *Handle
	rep  *Replayer // over the resident prefix snapshot; nil when exhausted
	next int       // next chunk index once rep is exhausted
	pcs  []uint64
	dirs []uint64
}

func (r *handleReader) NextChunk() (pcs []uint64, dirs []uint64, n int, ok bool) {
	if r.rep != nil {
		if pcs, dirs, n, ok = r.rep.NextChunk(); ok {
			return pcs, dirs, n, true
		}
		r.rep = nil
	}
	if r.next >= r.h.nchunks {
		return nil, nil, 0, false
	}
	d, err := r.h.DecodeChunkInto(r.next, r.pcs, r.dirs)
	if err != nil {
		// The panic value is an error wrapping the cause, so a recover
		// further up can errors.Is it (e.g. against ErrCorruptSpill).
		panic(fmt.Errorf("trace: paging chunk %d: %w", r.next, err))
	}
	r.next++
	r.pcs = d.PCs
	if cap(r.dirs) >= len(d.Dirs) {
		r.dirs = d.Dirs
	}
	return d.PCs, d.Dirs, d.N, true
}

// Replay drives every recorded event through sink, paging spilled
// chunks as needed. Paging errors panic with context, matching
// ChunkReader.
func (h *Handle) Replay(sink Sink) {
	r := h.ChunkReader()
	for {
		pcs, dirs, n, ok := r.NextChunk()
		if !ok {
			return
		}
		for i := 0; i < n; i++ {
			sink.Branch(pcs[i], dirs[i>>6]&(1<<(uint(i)&63)) != 0)
		}
	}
}

// Source returns an event-at-a-time view of the recording.
func (h *Handle) Source() Source {
	return &chunkSource{r: h.ChunkReader()}
}
