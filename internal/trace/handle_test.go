package trace

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// syntheticEvents generates the same deterministic stream as
// recordSynthetic, as an event slice.
func syntheticEvents(n int, seed uint64) []Event {
	out := make([]Event, 0, n)
	r := seed | 1
	for i := 0; i < n; i++ {
		r ^= r << 13
		r ^= r >> 7
		r ^= r << 17
		out = append(out, Event{PC: 0x400000 + (r%512)*4, Taken: r&2 != 0})
	}
	return out
}

func replayHandle(h *Handle) []Event {
	var rec Recorder
	h.Replay(&rec)
	return rec.Events
}

// chunkOf decodes chunk k of a fully resident trace, the reference the
// spill pager must match.
func chunkOf(tr *ChunkedTrace, k int) DecodedChunk {
	rep := tr.NewReplayer()
	var base int64
	for i := 0; ; i++ {
		pcs, dirs, n, ok := rep.NextChunk()
		if !ok {
			panic("chunk out of range")
		}
		if i == k {
			cp := make([]uint64, n)
			copy(cp, pcs)
			return DecodedChunk{PCs: cp, Dirs: dirs, N: n, Base: base}
		}
		base += int64(n)
	}
}

// TestStreamRecorderRoundTrip pins the out-of-core recording path: a
// stream recorded straight to a spill file replays bit-identically,
// pages chunks in random order correctly, and bounds its resident
// prefix — across chunk sizes that do and do not align with the BTR1
// 8-event groups (chunk boundaries mid-group exercise the skip logic).
func TestStreamRecorderRoundTrip(t *testing.T) {
	const n = 5000
	events := syntheticEvents(n, 42)
	for _, chunkEvents := range []int{7, 100, 1024} {
		for _, budget := range []int64{0, 1500, 1 << 30} {
			sr, err := NewStreamRecorder("", chunkEvents, budget)
			if err != nil {
				t.Fatal(err)
			}
			for _, ev := range events {
				sr.Branch(ev.PC, ev.Taken)
			}
			h, err := sr.Seal()
			if err != nil {
				t.Fatalf("chunk=%d budget=%d: %v", chunkEvents, budget, err)
			}
			if h.Events() != n {
				t.Fatalf("chunk=%d: events %d != %d", chunkEvents, h.Events(), n)
			}
			wantChunks := (n + chunkEvents - 1) / chunkEvents
			if h.Chunks() != wantChunks {
				t.Fatalf("chunk=%d: chunks %d != %d", chunkEvents, h.Chunks(), wantChunks)
			}
			if got := replayHandle(h); !reflect.DeepEqual(got, events) {
				t.Fatalf("chunk=%d budget=%d: streamed replay diverged", chunkEvents, budget)
			}
			if budget == 1500 && h.ResidentPeak() >= h.EncodedBytes() {
				t.Fatalf("chunk=%d: bounded recording kept everything resident (peak %d, encoded %d)",
					chunkEvents, h.ResidentPeak(), h.EncodedBytes())
			}
			if budget == 0 && h.PageIns() == 0 {
				t.Fatalf("chunk=%d: zero-budget replay should have paged from disk", chunkEvents)
			}

			// Random-order page-ins must match the in-memory decode.
			ref := recordSynthetic(n, chunkEvents, 42)
			for _, k := range []int{wantChunks - 1, 0, wantChunks / 2, 1} {
				want := chunkOf(ref, k)
				got, err := h.DecodeChunk(k)
				if err != nil {
					t.Fatalf("chunk=%d budget=%d: DecodeChunk(%d): %v", chunkEvents, budget, k, err)
				}
				if got.N != want.N || got.Base != want.Base ||
					!reflect.DeepEqual(got.PCs, want.PCs) || !reflect.DeepEqual(got.Dirs, want.Dirs) {
					t.Fatalf("chunk=%d budget=%d: DecodeChunk(%d) diverged", chunkEvents, budget, k)
				}
			}
		}
	}
}

// TestStreamRecorderNamedPath pins the durable mode: the recording
// lands at the requested path as a valid BTR1 file a fresh handle (and
// a plain reader) can open.
func TestStreamRecorderNamedPath(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sub", "rec.btr")
	events := syntheticEvents(3000, 7)
	sr, err := NewStreamRecorder(path, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		sr.Branch(ev.PC, ev.Taken)
	}
	h, err := sr.Seal()
	if err != nil {
		t.Fatal(err)
	}
	if h.SpillPath() != path {
		t.Fatalf("SpillPath %q != %q", h.SpillPath(), path)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("sealed file missing: %v", err)
	}
	reopened, err := OpenSpillHandle(path, 100)
	if err != nil {
		t.Fatal(err)
	}
	if got := replayHandle(reopened); !reflect.DeepEqual(got, events) {
		t.Fatal("reopened spill replay diverged")
	}
	tr, err := reopened.Materialise()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(collect(tr), events) {
		t.Fatal("materialised trace diverged")
	}
}

// TestStreamRecorderEmpty pins the zero-event edge: sealing an empty
// stream yields a valid empty handle.
func TestStreamRecorderEmpty(t *testing.T) {
	sr, err := NewStreamRecorder("", 0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	h, err := sr.Seal()
	if err != nil {
		t.Fatal(err)
	}
	if h.Events() != 0 || h.Chunks() != 0 {
		t.Fatalf("empty handle: events=%d chunks=%d", h.Events(), h.Chunks())
	}
	if got := replayHandle(h); len(got) != 0 {
		t.Fatalf("empty replay yielded %d events", len(got))
	}
}

// TestHandleReleaseAndRepage pins eviction-while-reading: dropping a
// spill-backed handle's resident columns mid-replay must not change
// the stream, and later reads page back in.
func TestHandleReleaseAndRepage(t *testing.T) {
	events := syntheticEvents(4000, 99)
	sr, err := NewStreamRecorder("", 128, 1<<30) // everything resident, spill on disk
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		sr.Branch(ev.PC, ev.Taken)
	}
	h, err := sr.Seal()
	if err != nil {
		t.Fatal(err)
	}
	r := h.ChunkReader()
	r.NextChunk() // resident prefix snapshot in hand
	if freed := h.Release(); freed == 0 {
		t.Fatal("release of a resident spill-backed handle must free bytes")
	}
	if h.ResidentBytes() != 0 {
		t.Fatal("columns still resident after Release")
	}
	var rec Recorder
	// The in-flight reader keeps its snapshot; a fresh replay pages in.
	for {
		pcs, dirs, n, ok := r.NextChunk()
		if !ok {
			break
		}
		_ = pcs
		_ = dirs
		_ = n
	}
	h.Replay(&rec)
	if !reflect.DeepEqual(rec.Events, events) {
		t.Fatal("post-release replay diverged")
	}
	if h.PageIns() == 0 {
		t.Fatal("post-release replay should have paged from disk")
	}
}

// TestResidentHandle pins the zero-cost wrap of an in-memory trace.
func TestResidentHandle(t *testing.T) {
	tr := recordSynthetic(2500, 100, 3)
	h := NewResidentHandle(tr)
	if h.Spilled() {
		t.Fatal("resident handle reports spilled")
	}
	if h.Release() != 0 {
		t.Fatal("memory-only handle must not release its only copy")
	}
	got, err := h.Materialise()
	if err != nil || got != tr {
		t.Fatalf("Materialise must return the wrapped trace (err %v)", err)
	}
	if !reflect.DeepEqual(replayHandle(h), collect(tr)) {
		t.Fatal("handle replay diverged from trace replay")
	}
	if h.EncodedBytes() != tr.SizeBytes() {
		t.Fatalf("EncodedBytes %d != SizeBytes %d", h.EncodedBytes(), tr.SizeBytes())
	}
}
