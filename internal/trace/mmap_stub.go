//go:build !unix

package trace

import (
	"fmt"
	"os"
)

// mmapSupported reports whether this platform can map spill files.
const mmapSupported = false

// mmapRegion is never instantiated on platforms without mmap support;
// paging stays on the pread path.
type mmapRegion struct {
	data []byte
}

func mapFile(f *os.File, size int64) (*mmapRegion, error) {
	return nil, fmt.Errorf("trace: mmap not supported on this platform")
}
