package trace

import (
	"reflect"
	"sync"
	"testing"
	"time"
)

// TestCheckoutSingleFlight pins the single-flight contract: N
// goroutines first-touching the same chunk at once produce exactly one
// decode, with everyone else sharing the install.
func TestCheckoutSingleFlight(t *testing.T) {
	h := poolHandle(t, 4000, 256)
	const goroutines = 16
	p := NewDecodedPool(h, 0)
	for k := 0; k < h.Chunks(); k++ {
		start := make(chan struct{})
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				d := p.Checkout(k)
				if d.N != h.chunkLen(k) {
					panic("single-flight checkout observed wrong chunk")
				}
				p.Release(k)
			}()
		}
		close(start)
		wg.Wait()
		if s := p.Stats(); s.Decodes != int64(k+1) {
			t.Fatalf("chunk %d: Decodes = %d after %d concurrent first-touches, want %d (one per chunk)",
				k, s.Decodes, goroutines, k+1)
		}
	}
	s := p.Stats()
	if s.Redecodes != 0 {
		t.Fatalf("stats %+v: single-flight must not re-decode", s)
	}
	if want := int64(h.Chunks() * (goroutines - 1)); s.Hits != want {
		t.Fatalf("Hits = %d, want %d (everyone but the decoder)", s.Hits, want)
	}
	if s.InFlightPeak < 1 {
		t.Fatalf("InFlightPeak = %d, want >= 1", s.InFlightPeak)
	}
}

// TestPrefetchWarmsCheckout pins the happy path: prefetched chunks are
// checkout hits, not demand decodes, and each warm install counts as a
// prefetch hit exactly once.
func TestPrefetchWarmsCheckout(t *testing.T) {
	h := poolHandle(t, 4000, 256)
	p := NewDecodedPool(h, 0)
	p.EnablePrefetch(2, h.Chunks()+8)
	for k := 0; k < h.Chunks(); k++ {
		p.Prefetch(k)
	}
	// Wait for the workers to install everything (budget 0 retains all
	// installs, so Decodes converges on the chunk count).
	deadline := time.Now().Add(10 * time.Second)
	for p.Stats().Decodes < int64(h.Chunks()) {
		if time.Now().After(deadline) {
			t.Fatalf("prefetcher stalled: %+v", p.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	for k := 0; k < h.Chunks(); k++ {
		d := p.Checkout(k)
		want, err := h.DecodeChunk(k)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(d.PCs, want.PCs) || !reflect.DeepEqual(d.Dirs, want.Dirs) {
			t.Fatalf("chunk %d: prefetched columns diverged", k)
		}
		p.Release(k)
	}
	p.ClosePrefetch()
	s := p.Stats()
	if s.Decodes != int64(h.Chunks()) {
		t.Fatalf("Decodes = %d, want %d (prefetch decoded everything once)", s.Decodes, h.Chunks())
	}
	if s.PrefetchHits != int64(h.Chunks()) {
		t.Fatalf("PrefetchHits = %d, want %d", s.PrefetchHits, h.Chunks())
	}
	if s.Hits != int64(h.Chunks()) || s.PrefetchWasted != 0 {
		t.Fatalf("stats %+v: every checkout should hit warm columns", s)
	}
}

// TestPrefetchBudgetBounded pins the O(budget) promise: read-ahead far
// past a tiny budget must not balloon the pool — batch claims are
// capped at what the budget holds and installs evict as they land.
func TestPrefetchBudgetBounded(t *testing.T) {
	h := poolHandle(t, 8000, 256)
	chunkBytes := func() int64 {
		d, err := h.DecodeChunk(0)
		if err != nil {
			t.Fatal(err)
		}
		return d.SizeBytes()
	}()
	budget := 2*chunkBytes + chunkBytes/2
	p := NewDecodedPool(h, budget)
	p.EnablePrefetch(1, 64)
	const ra = 6 // deliberately wider than the budget
	pf := 1
	for k := 0; k < h.Chunks(); k++ {
		hi := k + 1 + ra
		if hi > h.Chunks() {
			hi = h.Chunks()
		}
		if pf <= k {
			pf = k + 1
		}
		for ; pf < hi; pf++ {
			p.Prefetch(pf)
		}
		d := p.Checkout(k)
		if d.N != h.chunkLen(k) {
			t.Fatalf("chunk %d: n=%d want %d", k, d.N, h.chunkLen(k))
		}
		p.Release(k)
	}
	p.ClosePrefetch()
	s := p.Stats()
	// Worst case: the warm set at the budget, the full prefetch-window
	// allowance of spared installs, one pinned demand chunk, and one
	// freshly-installed chunk before its eviction pass.
	if limit := budget + 6*chunkBytes + chunkBytes/2; s.HighWater > limit {
		t.Fatalf("HighWater = %d exceeds budget-bounded limit %d (budget=%d chunk=%d)",
			s.HighWater, limit, budget, chunkBytes)
	}
	if s.PrefetchHits+s.PrefetchWasted == 0 {
		t.Fatalf("stats %+v: the prefetcher never processed a hint", s)
	}
	if s.Evicted == 0 {
		t.Fatalf("stats %+v: want eviction churn", s)
	}
}

// TestPrefetchConcurrentChurn hammers a tiny-budget pool from many
// goroutines issuing both demand checkouts and read-ahead hints
// (meaningful under -race): eviction, prefetch installs and
// single-flight waits race constantly and every checkout must still
// observe the right columns.
func TestPrefetchConcurrentChurn(t *testing.T) {
	h := poolHandle(t, 8000, 256)
	want := make([]DecodedChunk, h.Chunks())
	for k := range want {
		d, err := h.DecodeChunk(k)
		if err != nil {
			t.Fatal(err)
		}
		want[k] = d
	}
	chunkBytes := want[0].SizeBytes()
	p := NewDecodedPool(h, 2*chunkBytes) // room for ~two chunks: constant churn
	p.EnablePrefetch(2, 32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for pass := 0; pass < 4; pass++ {
				for i := 0; i < h.Chunks(); i++ {
					k := (i + 3*g) % h.Chunks() // offset walks desynchronise the goroutines
					p.Prefetch((k + 1) % h.Chunks())
					p.Prefetch((k + 2) % h.Chunks())
					d := p.Checkout(k)
					if d.N != want[k].N || d.PCs[0] != want[k].PCs[0] || d.PCs[d.N-1] != want[k].PCs[want[k].N-1] {
						panic("churning checkout observed wrong columns")
					}
					p.Release(k)
				}
			}
		}()
	}
	wg.Wait()
	p.ClosePrefetch()
	if p.Prefetch(0); false { // post-close Prefetch must be a no-op, not a panic
		t.Fatal("unreachable")
	}
	s := p.Stats()
	if s.Decodes == 0 || s.Evicted == 0 {
		t.Fatalf("stats %+v: churn test should decode and evict", s)
	}
}

// TestDecodeChunkRunMatches pins the coalesced page-in: a run decode
// spanning the resident prefix, the spill, and the file tail must be
// byte-identical to per-chunk decodes.
func TestDecodeChunkRunMatches(t *testing.T) {
	// A small resident budget leaves a few chunks resident and spills
	// the rest, so runs cross the resident/spill boundary.
	sr, err := NewStreamRecorder("", 256, 1500)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range syntheticEvents(6000, 17) {
		sr.Branch(ev.PC, ev.Taken)
	}
	h, err := sr.Seal()
	if err != nil {
		t.Fatal(err)
	}
	if !h.Spilled() {
		t.Fatal("handle did not spill; test needs a spill-backed tail")
	}
	runs := [][2]int{
		{0, h.Chunks()},     // everything, across the boundary
		{1, 3},              // interior
		{h.Chunks() - 2, 2}, // file tail (short last chunk)
		{h.Chunks() - 1, 1}, // single-chunk degenerate case
	}
	for _, r := range runs {
		k0, n := r[0], r[1]
		ds, err := h.DecodeChunkRun(k0, n)
		if err != nil {
			t.Fatalf("DecodeChunkRun(%d, %d): %v", k0, n, err)
		}
		if len(ds) != n {
			t.Fatalf("DecodeChunkRun(%d, %d) returned %d chunks", k0, n, len(ds))
		}
		for i, d := range ds {
			want, err := h.DecodeChunk(k0 + i)
			if err != nil {
				t.Fatal(err)
			}
			if d.N != want.N || d.Base != want.Base ||
				!reflect.DeepEqual(d.PCs[:d.N], want.PCs[:want.N]) ||
				!reflect.DeepEqual(d.Dirs, want.Dirs) {
				t.Fatalf("run (%d,%d) chunk %d diverged from per-chunk decode", k0, n, k0+i)
			}
		}
	}
}

// TestDecodeChunkIntoAllocs pins the pooled page-in buffer: steady-state
// spill decodes with reused column buffers must not allocate per call.
func TestDecodeChunkIntoAllocs(t *testing.T) {
	h := poolHandle(t, 8000, 256)
	// Warm the scratch pool and size the reusable columns off chunk 0
	// (the largest; later chunks fit inside its capacity).
	d, err := h.DecodeChunkInto(0, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	pcs, dirs := d.PCs, d.Dirs
	k := 0
	avg := testing.AllocsPerRun(100, func() {
		d, err := h.DecodeChunkInto(k%h.Chunks(), pcs, dirs)
		if err != nil {
			panic(err)
		}
		pcs, dirs = d.PCs, d.Dirs
		k++
	})
	if avg > 0.5 {
		t.Fatalf("DecodeChunkInto allocates %.1f allocs/op with reused buffers, want 0", avg)
	}
}
