package trace

import (
	"reflect"
	"testing"
)

// TestMmapDecodeMatchesPread pins the mmap paging path: after
// EnableMmap, every chunk decoded from the mapping — in random order,
// across chunk sizes that do and do not align with the BTR1 8-event
// groups — is bit-identical to the pread decode and to the in-memory
// reference, and full replays still round-trip.
func TestMmapDecodeMatchesPread(t *testing.T) {
	const n = 5000
	events := syntheticEvents(n, 42)
	for _, chunkEvents := range []int{7, 100, 1024} {
		sr, err := NewStreamRecorder("", chunkEvents, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, ev := range events {
			sr.Branch(ev.PC, ev.Taken)
		}
		h, err := sr.Seal()
		if err != nil {
			t.Fatalf("chunk=%d: %v", chunkEvents, err)
		}
		if h.Mmapped() {
			t.Fatalf("chunk=%d: handle mapped before EnableMmap", chunkEvents)
		}

		// pread decodes first, as the reference the mapping must match.
		pread := make([]DecodedChunk, h.Chunks())
		for k := range pread {
			d, err := h.DecodeChunk(k)
			if err != nil {
				t.Fatalf("chunk=%d: pread DecodeChunk(%d): %v", chunkEvents, k, err)
			}
			pread[k] = d
		}

		if !mmapSupported {
			if err := h.EnableMmap(); err == nil {
				t.Fatalf("chunk=%d: EnableMmap succeeded on a platform without mmap", chunkEvents)
			}
			continue
		}
		if err := h.EnableMmap(); err != nil {
			t.Fatalf("chunk=%d: EnableMmap: %v", chunkEvents, err)
		}
		if err := h.EnableMmap(); err != nil { // idempotent
			t.Fatalf("chunk=%d: second EnableMmap: %v", chunkEvents, err)
		}
		if !h.Mmapped() {
			t.Fatalf("chunk=%d: handle not mapped after EnableMmap", chunkEvents)
		}

		before := h.PageIns()
		ref := recordSynthetic(n, chunkEvents, 42)
		for _, k := range []int{h.Chunks() - 1, 0, h.Chunks() / 2, 1} {
			want := chunkOf(ref, k)
			got, err := h.DecodeChunk(k)
			if err != nil {
				t.Fatalf("chunk=%d: mapped DecodeChunk(%d): %v", chunkEvents, k, err)
			}
			if got.N != want.N || got.Base != want.Base ||
				!reflect.DeepEqual(got.PCs, want.PCs) || !reflect.DeepEqual(got.Dirs, want.Dirs) {
				t.Fatalf("chunk=%d: mapped DecodeChunk(%d) diverged from reference", chunkEvents, k)
			}
			p := pread[k]
			if !reflect.DeepEqual(got.PCs, p.PCs) || !reflect.DeepEqual(got.Dirs, p.Dirs) {
				t.Fatalf("chunk=%d: mapped DecodeChunk(%d) diverged from pread", chunkEvents, k)
			}
		}
		if h.PageIns() == before {
			t.Fatalf("chunk=%d: mapped decodes not counted as page-ins", chunkEvents)
		}
		if got := replayHandle(h); !reflect.DeepEqual(got, events) {
			t.Fatalf("chunk=%d: mapped replay diverged", chunkEvents)
		}
	}
}

// TestMmapRequiresSpillBacking pins the soft-failure contract: a
// memory-only handle cannot be mapped, and the error leaves the pread
// path (and the recording) fully usable.
func TestMmapRequiresSpillBacking(t *testing.T) {
	tr := recordSynthetic(500, 64, 9)
	h := NewResidentHandle(tr)
	if err := h.EnableMmap(); err == nil {
		t.Fatal("EnableMmap succeeded on a memory-only handle")
	}
	if h.Mmapped() {
		t.Fatal("memory-only handle reports itself mapped")
	}
	if got := replayHandle(h); len(got) != 500 {
		t.Fatalf("replay after failed EnableMmap returned %d events", len(got))
	}
}
