package trace

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func sampleEvents() []Event {
	return []Event{
		{PC: 0x400000, Taken: true},
		{PC: 0x400004, Taken: false},
		{PC: 0x400000, Taken: true},
		{PC: 0x7fffffffffff, Taken: false},
		{PC: 0x400008, Taken: true},
		{PC: 0, Taken: false},
	}
}

func TestRecorderRoundTrip(t *testing.T) {
	rec := &Recorder{}
	for _, ev := range sampleEvents() {
		rec.Branch(ev.PC, ev.Taken)
	}
	if rec.Len() != len(sampleEvents()) {
		t.Fatalf("recorder length %d, want %d", rec.Len(), len(sampleEvents()))
	}
	src := rec.Source()
	for i, want := range sampleEvents() {
		got, ok, err := src.Next()
		if err != nil || !ok {
			t.Fatalf("event %d: ok=%v err=%v", i, ok, err)
		}
		if got != want {
			t.Fatalf("event %d: got %+v want %+v", i, got, want)
		}
	}
	if _, ok, _ := src.Next(); ok {
		t.Fatal("source yielded extra event")
	}
}

func TestBinaryCodecRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range sampleEvents() {
		w.Branch(ev.PC, ev.Taken)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range sampleEvents() {
		got, ok, err := r.Next()
		if err != nil || !ok {
			t.Fatalf("event %d: ok=%v err=%v", i, ok, err)
		}
		if got != want {
			t.Fatalf("event %d: got %+v want %+v", i, got, want)
		}
	}
	if _, ok, _ := r.Next(); ok {
		t.Fatal("reader yielded extra event")
	}
}

func TestBinaryCodecCompactness(t *testing.T) {
	// A hot-loop trace (one PC, alternating outcomes) must cost ~1
	// byte/event, far below the naive 9.
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	const n = 10000
	for i := 0; i < n; i++ {
		w.Branch(0x400100, i%2 == 0)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	perEvent := float64(buf.Len()-4) / n
	if perEvent > 1.13 {
		t.Fatalf("hot-loop encoding costs %.3f bytes/event, want ~1.125", perEvent)
	}
}

func TestWriterPartialFinalGroup(t *testing.T) {
	// Streams whose length is not a multiple of the group size must
	// round-trip: the final short group is implicit in EOF.
	for _, n := range []int{1, 2, 7, 8, 9, 15, 16, 17} {
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			w.Branch(uint64(0x1000+4*i), i%3 == 0)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		r, err := NewReader(&buf)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			ev, ok, err := r.Next()
			if err != nil || !ok {
				t.Fatalf("n=%d event %d: ok=%v err=%v", n, i, ok, err)
			}
			if ev.PC != uint64(0x1000+4*i) || ev.Taken != (i%3 == 0) {
				t.Fatalf("n=%d event %d: got %+v", n, i, ev)
			}
		}
		if _, ok, _ := r.Next(); ok {
			t.Fatalf("n=%d: extra event", n)
		}
	}
}

func TestWriterRejectsAfterClose(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w.Branch(1, true)
	if err := w.Close(); !errors.Is(err, ErrWriterClosed) {
		t.Fatalf("err = %v, want ErrWriterClosed", err)
	}
}

func TestWriterFlushKeepsPartialGroup(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	w.Branch(4, true) // one pending event, group not complete
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 4 {
		t.Fatalf("flush emitted a partial group (%d bytes beyond header)", buf.Len()-4)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	ev, ok, err := r.Next()
	if err != nil || !ok || ev.PC != 4 || !ev.Taken {
		t.Fatalf("event after close: %+v ok=%v err=%v", ev, ok, err)
	}
}

func TestReaderRejectsBadMagic(t *testing.T) {
	_, err := NewReader(bytes.NewReader([]byte("NOPE....")))
	if !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestReaderShortHeader(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("BT"))); err == nil {
		t.Fatal("short header accepted")
	}
}

func TestTextCodecRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	n, err := WriteText(&buf, SliceSource(sampleEvents()))
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(sampleEvents())) {
		t.Fatalf("wrote %d events, want %d", n, len(sampleEvents()))
	}
	events, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != len(sampleEvents()) {
		t.Fatalf("read %d events, want %d", len(events), len(sampleEvents()))
	}
	for i, want := range sampleEvents() {
		if events[i] != want {
			t.Fatalf("event %d: got %+v want %+v", i, events[i], want)
		}
	}
}

func TestReadTextRejectsGarbage(t *testing.T) {
	if _, err := ReadText(bytes.NewBufferString("0x10 X\n")); err == nil {
		t.Fatal("bad direction accepted")
	}
	if _, err := ReadText(bytes.NewBufferString("zzz\n")); err == nil {
		t.Fatal("bad line accepted")
	}
}

func TestTee(t *testing.T) {
	a, b := &Recorder{}, &Recorder{}
	sink := Tee(a, nil, b)
	sink.Branch(1, true)
	sink.Branch(2, false)
	if a.Len() != 2 || b.Len() != 2 {
		t.Fatalf("tee delivered %d/%d events, want 2/2", a.Len(), b.Len())
	}
}

func TestCopy(t *testing.T) {
	rec := &Recorder{}
	n, err := Copy(rec, SliceSource(sampleEvents()))
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(sampleEvents())) || rec.Len() != len(sampleEvents()) {
		t.Fatalf("copied %d, recorded %d", n, rec.Len())
	}
}

func TestCountingSink(t *testing.T) {
	inner := &Recorder{}
	c := &CountingSink{Inner: inner}
	c.Branch(1, true)
	c.Branch(2, false)
	if c.N != 2 || inner.Len() != 2 {
		t.Fatalf("count=%d inner=%d", c.N, inner.Len())
	}
	bare := &CountingSink{}
	bare.Branch(3, true)
	if bare.N != 1 {
		t.Fatalf("bare count=%d", bare.N)
	}
}

func TestStatsSink(t *testing.T) {
	s := NewStatsSink()
	s.Branch(1, true)
	s.Branch(1, false)
	s.Branch(2, true)
	st := s.Stats()
	if st.Events != 3 || st.Taken != 2 || st.StaticSites != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if got := st.TakenFraction(); got < 0.66 || got > 0.67 {
		t.Fatalf("taken fraction %v", got)
	}
	if (Stats{}).TakenFraction() != 0 {
		t.Fatal("empty stats taken fraction not 0")
	}
	if st.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestSiteCounts(t *testing.T) {
	pcs, counts, err := SiteCounts(SliceSource(sampleEvents()))
	if err != nil {
		t.Fatal(err)
	}
	if len(pcs) != len(counts) {
		t.Fatal("length mismatch")
	}
	total := int64(0)
	for i := 1; i < len(pcs); i++ {
		if pcs[i-1] >= pcs[i] {
			t.Fatal("pcs not sorted")
		}
	}
	for _, c := range counts {
		total += c
	}
	if total != int64(len(sampleEvents())) {
		t.Fatalf("counts sum %d, want %d", total, len(sampleEvents()))
	}
}

func TestZigzagRoundTrip(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 63, -64, 1 << 40, -(1 << 40), -1 << 62} {
		if got := unzigzag(zigzag(v)); got != v {
			t.Fatalf("zigzag(%d) round-trips to %d", v, got)
		}
	}
}

func TestQuickBinaryRoundTrip(t *testing.T) {
	f := func(pcs []uint64, dirs []bool) bool {
		n := len(pcs)
		if len(dirs) < n {
			n = len(dirs)
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			w.Branch(pcs[i], dirs[i])
		}
		if w.Close() != nil {
			return false
		}
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			ev, ok, err := r.Next()
			if err != nil || !ok || ev.PC != pcs[i] || ev.Taken != dirs[i] {
				return false
			}
		}
		_, ok, err := r.Next()
		return !ok && err == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
