package bpred

import "testing"

func altPredictors() []Predictor {
	return []Predictor{
		NewBiMode(12, 11, 8),
		NewYAGS(12, 10, 8, 8),
		NewFilter(12, 16, NewGShare(12, 8)),
		NewGSkew(12, 8),
	}
}

func TestAltPredictorsOnBiasedBranch(t *testing.T) {
	for _, p := range altPredictors() {
		if miss := runPattern(p, 0x400100, []bool{true}, 64, 2000); miss > 0.001 {
			t.Fatalf("%s misses %.4f on always-taken", p.Name(), miss)
		}
	}
}

func TestAltPredictorsOnAlternator(t *testing.T) {
	// All four use global history, so a lone alternator is learnable.
	for _, p := range altPredictors() {
		if miss := runPattern(p, 0x400100, []bool{true, false}, 256, 2000); miss > 0.05 {
			t.Fatalf("%s misses %.4f on alternator", p.Name(), miss)
		}
	}
}

func TestAltPredictorsSizeAccounting(t *testing.T) {
	for _, p := range altPredictors() {
		if p.SizeBits() <= 0 {
			t.Fatalf("%s reports %d bits", p.Name(), p.SizeBits())
		}
		if p.Name() == "" {
			t.Fatal("empty name")
		}
	}
}

func TestBiModeSeparatesOppositeBiases(t *testing.T) {
	// Two branches with opposite strong biases that alias in the
	// direction banks (same pc-xor-history index cannot be forced easily,
	// so use many branch pairs and compare against plain gshare of the
	// same bank size — Bi-Mode must not be worse).
	run := func(p Predictor) float64 {
		r := newTestRand(5)
		misses, events := 0, 0
		for i := 0; i < 60000; i++ {
			pc := 0x400000 + (r.next()%4096)*4
			taken := pc&4 == 0 // direction fixed per branch, half each way
			if i > 8000 {
				if p.Predict(pc) != taken {
					misses++
				}
				events++
			}
			p.Update(pc, taken)
		}
		return float64(misses) / float64(events)
	}
	bimode := run(NewBiMode(8, 8, 6)) // deliberately tiny, heavy aliasing
	gshare := run(NewGShare(8, 6))
	if bimode > gshare+0.005 {
		t.Fatalf("BiMode (%.4f) worse than gshare (%.4f) under opposite-bias aliasing", bimode, gshare)
	}
}

func TestYAGSExceptionCache(t *testing.T) {
	// A branch that is taken except every 8th execution: the choice PHT
	// says taken, the not-taken cache learns the exceptions via history.
	y := NewYAGS(12, 10, 8, 8)
	misses := 0
	for i := 0; i < 4000; i++ {
		taken := i%8 != 7
		if i >= 1000 && y.Predict(0x400200) != taken {
			misses++
		}
		y.Update(0x400200, taken)
	}
	if rate := float64(misses) / 3000; rate > 0.02 {
		t.Fatalf("YAGS missed %.4f on periodic exception pattern", rate)
	}
}

func TestFilterKeepsBiasedBranchesOut(t *testing.T) {
	inner := NewGShare(12, 8)
	f := NewFilter(12, 8, inner)
	// 100 consecutive taken: the branch must become filtered.
	for i := 0; i < 100; i++ {
		f.Update(0x400300, true)
	}
	if !f.Filtered(0x400300) {
		t.Fatal("biased branch not filtered after a long run")
	}
	if !f.Predict(0x400300) {
		t.Fatal("filtered branch must predict its run direction")
	}
	// One transition re-admits it.
	f.Update(0x400300, false)
	if f.Filtered(0x400300) {
		t.Fatal("transition must unfilter the branch")
	}
}

func TestFilterIsTransitionClassification(t *testing.T) {
	// The paper: the filter counter "counts the number of branch
	// executions since the last time a transition occurred" — so an
	// alternator must never be filtered regardless of run length.
	f := NewFilter(12, 4, NewGShare(12, 4))
	for i := 0; i < 1000; i++ {
		f.Update(0x400400, i%2 == 0)
		if f.Filtered(0x400400) {
			t.Fatal("alternator became filtered")
		}
	}
}

func TestGSkewBanksDisagree(t *testing.T) {
	g := NewGSkew(10, 6)
	// The three skewing hashes must map a pc to (generally) different
	// bank indices, otherwise the vote degenerates.
	same := 0
	for pc := uint64(0x400000); pc < 0x400000+4096; pc += 4 {
		i0, i1, i2 := g.skew(pc, 0), g.skew(pc, 1), g.skew(pc, 2)
		if i0 == i1 && i1 == i2 {
			same++
		}
	}
	if same > 4 {
		t.Fatalf("%d/1024 pcs map identically in all three banks", same)
	}
}

func TestBiModePanicsOnBadHistory(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewBiMode(8, 8, 9)
}
