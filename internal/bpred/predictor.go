package bpred

import "btr/internal/trace"

// Predictor is a dynamic conditional branch predictor. The simulation
// protocol is predict-then-update for every dynamic branch, in program
// order, exactly as sim-bpred does:
//
//	predicted := p.Predict(pc)
//	p.Update(pc, actual)
//
// Implementations are not safe for concurrent use; the sweep harness runs
// one predictor per goroutine.
type Predictor interface {
	// Name identifies the configuration, e.g. "PAs(k=8)".
	Name() string
	// Predict returns the predicted direction for the branch at pc,
	// without modifying any state.
	Predict(pc uint64) bool
	// Update trains the predictor with the branch's actual outcome.
	Update(pc uint64, taken bool)
	// SizeBits returns the hardware budget the configuration consumes,
	// in bits of predictor state (tables and history registers).
	SizeBits() int64
}

// PredictUpdater is the optional fused fast path: one call performs the
// predict-then-update protocol and returns the pre-update prediction,
// letting implementations compute each table index once instead of twice.
// Fused and separate calls must be behaviourally identical; the sweep
// harness and Step rely on that equivalence.
type PredictUpdater interface {
	// PredictUpdate returns Predict(pc), then applies Update(pc, taken).
	PredictUpdate(pc uint64, taken bool) bool
}

// Step performs one predict-then-update step, using the fused path when
// the predictor provides one.
func Step(p Predictor, pc uint64, taken bool) bool {
	if pu, ok := p.(PredictUpdater); ok {
		return pu.PredictUpdate(pc, taken)
	}
	predicted := p.Predict(pc)
	p.Update(pc, taken)
	return predicted
}

// Result summarises a predictor's accuracy over a stream.
type Result struct {
	Name   string
	Events int64
	Misses int64
}

// MissRate returns Misses/Events, or 0 for an empty run.
func (r Result) MissRate() float64 {
	if r.Events == 0 {
		return 0
	}
	return float64(r.Misses) / float64(r.Events)
}

// Run drives a predictor over a trace source and returns its Result.
func Run(p Predictor, src trace.Source) (Result, error) {
	res := Result{Name: p.Name()}
	for {
		ev, ok, err := src.Next()
		if err != nil {
			return res, err
		}
		if !ok {
			return res, nil
		}
		if Step(p, ev.PC, ev.Taken) != ev.Taken {
			res.Misses++
		}
		res.Events++
	}
}

// Sink adapts a Predictor to trace.Sink, accumulating a Result and
// optionally reporting each (pc, predicted, taken) to observe. It is the
// building block for class-attributed simulation and confidence studies.
type Sink struct {
	P       Predictor
	Res     Result
	Observe func(pc uint64, predicted, taken bool)
}

// NewSink wraps p.
func NewSink(p Predictor) *Sink {
	return &Sink{P: p, Res: Result{Name: p.Name()}}
}

var _ trace.Sink = (*Sink)(nil)

// Branch performs one predict-update step.
func (s *Sink) Branch(pc uint64, taken bool) {
	predicted := Step(s.P, pc, taken)
	if predicted != taken {
		s.Res.Misses++
	}
	s.Res.Events++
	if s.Observe != nil {
		s.Observe(pc, predicted, taken)
	}
}
