package bpred

import "fmt"

// The interference-reducing predictors the paper's related-work section
// surveys (§2, citing the YAGS paper's taxonomy): Bi-Mode, YAGS, the
// Filter, and the skewed predictor. All of them are implicit
// classification schemes — which is the paper's point — so having them
// here lets the ablations compare explicit (taken/transition) against
// implicit classification at equal budgets.

// BiMode is Lee, Chen & Mudge's predictor: a pc-indexed choice PHT picks
// one of two gshare-indexed direction PHTs ("mostly taken" and "mostly
// not-taken" banks), separating branches by bias so destructive aliasing
// between opposite-biased branches disappears.
type BiMode struct {
	k          int
	phtBits    int
	ghr        uint64
	histMask   uint64
	choice     *CounterTable
	banks      [2]*CounterTable
	choiceBits int
}

// NewBiMode builds a Bi-Mode predictor: 2^phtBits counters per direction
// bank, 2^choiceBits choice counters, history length k.
func NewBiMode(phtBits, choiceBits, k int) *BiMode {
	if k < 0 || k > phtBits {
		panic("bpred: BiMode history length out of range")
	}
	return &BiMode{
		k:          k,
		phtBits:    phtBits,
		histMask:   (1 << uint(k)) - 1,
		choice:     NewCounterTable(choiceBits),
		banks:      [2]*CounterTable{NewCounterTable(phtBits), NewCounterTable(phtBits)},
		choiceBits: choiceBits,
	}
}

// Name implements Predictor.
func (b *BiMode) Name() string { return fmt.Sprintf("BiMode(%d,k=%d)", b.phtBits, b.k) }

func (b *BiMode) index(pc uint64) uint64 { return pcIndex(pc) ^ (b.ghr & b.histMask) }

func (b *BiMode) bank(pc uint64) int {
	if b.choice.Predict(pcIndex(pc)) {
		return 1 // taken bank
	}
	return 0
}

// Predict implements Predictor.
func (b *BiMode) Predict(pc uint64) bool {
	return b.banks[b.bank(pc)].Predict(b.index(pc))
}

// Update implements Predictor. Only the chosen bank trains; the choice
// table trains except when it mispicked but the chosen bank still
// predicted correctly (the Bi-Mode partial-update rule).
func (b *BiMode) Update(pc uint64, taken bool) {
	bank := b.bank(pc)
	idx := b.index(pc)
	bankCorrect := b.banks[bank].Predict(idx) == taken
	choiceAgrees := (bank == 1) == taken
	if !(bankCorrect && !choiceAgrees) {
		b.choice.Update(pcIndex(pc), taken)
	}
	b.banks[bank].Update(idx, taken)
	b.ghr <<= 1
	if taken {
		b.ghr |= 1
	}
}

// SizeBits implements Predictor.
func (b *BiMode) SizeBits() int64 {
	return b.choice.SizeBits() + b.banks[0].SizeBits() + b.banks[1].SizeBits() + int64(b.k)
}

// YAGS (Eden & Mudge) keeps a bimodal choice PHT for the common, biased
// case and two small tagged "exception caches" that record only the
// branches that deviate from their bias — taken-biased branches that
// sometimes fall through live in the not-taken cache and vice versa.
type YAGS struct {
	k         int
	cacheBits int
	tagBits   uint
	ghr       uint64
	histMask  uint64
	choice    *CounterTable
	caches    [2]yagsCache // [0] = not-taken cache, [1] = taken cache
}

type yagsCache struct {
	tags     []uint16
	counters []Counter2
	valid    []bool
	mask     uint64
}

func newYagsCache(bits int) yagsCache {
	n := 1 << uint(bits)
	c := yagsCache{
		tags:     make([]uint16, n),
		counters: make([]Counter2, n),
		valid:    make([]bool, n),
		mask:     uint64(n - 1),
	}
	for i := range c.counters {
		c.counters[i] = 1
	}
	return c
}

// NewYAGS builds a YAGS predictor: 2^choiceBits choice counters, two
// 2^cacheBits exception caches with tagBits-bit partial tags, history
// length k.
func NewYAGS(choiceBits, cacheBits, tagBits, k int) *YAGS {
	if k < 0 || k > 24 {
		panic("bpred: YAGS history length out of range")
	}
	return &YAGS{
		k:         k,
		cacheBits: cacheBits,
		tagBits:   uint(tagBits),
		histMask:  (1 << uint(k)) - 1,
		choice:    NewCounterTable(choiceBits),
		caches:    [2]yagsCache{newYagsCache(cacheBits), newYagsCache(cacheBits)},
	}
}

// Name implements Predictor.
func (y *YAGS) Name() string { return fmt.Sprintf("YAGS(%d,k=%d)", y.cacheBits, y.k) }

func (y *YAGS) cacheIndex(pc uint64) uint64 { return pcIndex(pc) ^ (y.ghr & y.histMask) }
func (y *YAGS) tag(pc uint64) uint16 {
	return uint16(pcIndex(pc) & ((1 << y.tagBits) - 1))
}

// Predict implements Predictor: consult the cache opposite the bias; on a
// tag hit its counter overrides the choice prediction.
func (y *YAGS) Predict(pc uint64) bool {
	bias := y.choice.Predict(pcIndex(pc))
	cache := &y.caches[0] // bias taken -> consult not-taken cache
	if !bias {
		cache = &y.caches[1]
	}
	i := y.cacheIndex(pc) & cache.mask
	if cache.valid[i] && cache.tags[i] == y.tag(pc) {
		return cache.counters[i].Predict()
	}
	return bias
}

// Update implements Predictor.
func (y *YAGS) Update(pc uint64, taken bool) {
	bias := y.choice.Predict(pcIndex(pc))
	cache := &y.caches[0]
	if !bias {
		cache = &y.caches[1]
	}
	i := y.cacheIndex(pc) & cache.mask
	hit := cache.valid[i] && cache.tags[i] == y.tag(pc)
	if hit {
		cache.counters[i] = cache.counters[i].Update(taken)
	} else if taken != bias {
		// The branch deviated from its bias: allocate an exception entry.
		cache.valid[i] = true
		cache.tags[i] = y.tag(pc)
		cache.counters[i] = 1
		cache.counters[i] = cache.counters[i].Update(taken)
	}
	// The choice PHT trains unless the cache overrode it correctly while
	// the choice itself was wrong (same partial-update idea as Bi-Mode).
	overrodeCorrectly := hit && cache.counters[i].Predict() == taken && bias != taken
	if !overrodeCorrectly {
		y.choice.Update(pcIndex(pc), taken)
	}
	y.ghr <<= 1
	if taken {
		y.ghr |= 1
	}
}

// SizeBits implements Predictor.
func (y *YAGS) SizeBits() int64 {
	perCache := int64(len(y.caches[0].tags)) * (int64(y.tagBits) + 2 + 1)
	return y.choice.SizeBits() + 2*perCache + int64(y.k)
}

// Filter (Chang, Evers & Patt, PACT 1996) keeps heavily biased branches
// out of the dynamic tables with a per-branch run-length counter: once a
// branch repeats one direction more than threshold times in a row, it is
// predicted statically with that direction; any deviation sends it back
// to the dynamic predictor. The paper notes this counter is "a simple
// form of transition rate classification" — it measures executions since
// the last transition.
type Filter struct {
	threshold uint8
	counts    []uint8
	dirs      []bool
	mask      uint64
	dynamic   Predictor
}

// NewFilter wraps a dynamic predictor with a 2^tableBits-entry filter and
// the given run-length threshold (e.g. 32).
func NewFilter(tableBits int, threshold uint8, dynamic Predictor) *Filter {
	n := 1 << uint(tableBits)
	return &Filter{
		threshold: threshold,
		counts:    make([]uint8, n),
		dirs:      make([]bool, n),
		mask:      uint64(n - 1),
		dynamic:   dynamic,
	}
}

// Name implements Predictor.
func (f *Filter) Name() string { return fmt.Sprintf("Filter(t=%d)+%s", f.threshold, f.dynamic.Name()) }

func (f *Filter) slot(pc uint64) uint64 { return pcIndex(pc) & f.mask }

// Filtered reports whether the branch is currently predicted statically.
func (f *Filter) Filtered(pc uint64) bool { return f.counts[f.slot(pc)] >= f.threshold }

// Predict implements Predictor.
func (f *Filter) Predict(pc uint64) bool {
	i := f.slot(pc)
	if f.counts[i] >= f.threshold {
		return f.dirs[i]
	}
	return f.dynamic.Predict(pc)
}

// Update implements Predictor. The dynamic predictor only trains on
// unfiltered branches — filtering exists to keep the biased traffic out
// of the shared tables.
func (f *Filter) Update(pc uint64, taken bool) {
	i := f.slot(pc)
	filtered := f.counts[i] >= f.threshold
	if !filtered {
		f.dynamic.Update(pc, taken)
	}
	if f.dirs[i] == taken {
		if f.counts[i] < 255 {
			f.counts[i]++
		}
	} else {
		// Transition: reset the run and re-admit to the dynamic tables.
		f.counts[i] = 1
		f.dirs[i] = taken
	}
}

// SizeBits implements Predictor.
func (f *Filter) SizeBits() int64 {
	return f.dynamic.SizeBits() + int64(len(f.counts))*9 // 8-bit count + direction
}

// GSkew (Michaud, Seznec & Uhlig) reads three counter banks through three
// different skewing hashes and votes; a branch pair aliasing in one bank
// almost never aliases in the other two, so the majority is clean.
type GSkew struct {
	k        int
	bankBits int
	ghr      uint64
	histMask uint64
	banks    [3]*CounterTable
}

// NewGSkew builds a gskew predictor with 3 banks of 2^bankBits counters
// and history length k.
func NewGSkew(bankBits, k int) *GSkew {
	if k < 0 || k > 24 {
		panic("bpred: gskew history length out of range")
	}
	return &GSkew{
		k:        k,
		bankBits: bankBits,
		histMask: (1 << uint(k)) - 1,
		banks:    [3]*CounterTable{NewCounterTable(bankBits), NewCounterTable(bankBits), NewCounterTable(bankBits)},
	}
}

// Name implements Predictor.
func (g *GSkew) Name() string { return fmt.Sprintf("gskew(%d,k=%d)", g.bankBits, g.k) }

// skew mixes pc and history with three distinct odd multipliers, one per
// bank (a simple stand-in for the paper's H/H^-1 skewing functions with
// the same pairwise-decorrelation goal).
func (g *GSkew) skew(pc uint64, bank int) uint64 {
	x := pcIndex(pc) ^ (g.ghr & g.histMask)
	switch bank {
	case 0:
		x *= 0x9E3779B97F4A7C15
	case 1:
		x *= 0xC2B2AE3D27D4EB4F
	default:
		x *= 0x165667B19E3779F9
	}
	return x >> (64 - uint(g.bankBits))
}

// Predict implements Predictor: majority vote of the three banks.
func (g *GSkew) Predict(pc uint64) bool {
	votes := 0
	for bank := 0; bank < 3; bank++ {
		if g.banks[bank].Predict(g.skew(pc, bank)) {
			votes++
		}
	}
	return votes >= 2
}

// Update implements Predictor: total update policy (all banks train).
func (g *GSkew) Update(pc uint64, taken bool) {
	for bank := 0; bank < 3; bank++ {
		g.banks[bank].Update(g.skew(pc, bank), taken)
	}
	g.ghr <<= 1
	if taken {
		g.ghr |= 1
	}
}

// SizeBits implements Predictor.
func (g *GSkew) SizeBits() int64 {
	return g.banks[0].SizeBits()*3 + int64(g.k)
}

// --- Snapshotter implementations ---

// SnapshotBytes implements Snapshotter.
func (b *BiMode) SnapshotBytes() int64 {
	return b.choice.SnapshotBytes() + b.banks[0].SnapshotBytes() + b.banks[1].SnapshotBytes() + 8
}

// SnapshotTo implements Snapshotter.
func (b *BiMode) SnapshotTo(dst []byte) int {
	n := b.choice.SnapshotTo(dst)
	n += b.banks[0].SnapshotTo(dst[n:])
	n += b.banks[1].SnapshotTo(dst[n:])
	n += putU64(dst[n:], b.ghr)
	return n
}

// RestoreFrom implements Snapshotter.
func (b *BiMode) RestoreFrom(src []byte) int {
	n := b.choice.RestoreFrom(src)
	n += b.banks[0].RestoreFrom(src[n:])
	n += b.banks[1].RestoreFrom(src[n:])
	n += getU64(src[n:], &b.ghr)
	return n
}

func (c *yagsCache) snapshotBytes() int64 {
	return int64(len(c.tags))*2 + int64(len(c.counters)) + int64(len(c.valid))
}

func (c *yagsCache) snapshotTo(dst []byte) int {
	n := putU16s(dst, c.tags)
	n += putCounters(dst[n:], c.counters)
	n += putBools(dst[n:], c.valid)
	return n
}

func (c *yagsCache) restoreFrom(src []byte) int {
	n := getU16s(c.tags, src)
	n += getCounters(c.counters, src[n:])
	n += getBools(c.valid, src[n:])
	return n
}

// SnapshotBytes implements Snapshotter.
func (y *YAGS) SnapshotBytes() int64 {
	return y.choice.SnapshotBytes() + y.caches[0].snapshotBytes() + y.caches[1].snapshotBytes() + 8
}

// SnapshotTo implements Snapshotter.
func (y *YAGS) SnapshotTo(dst []byte) int {
	n := y.choice.SnapshotTo(dst)
	n += y.caches[0].snapshotTo(dst[n:])
	n += y.caches[1].snapshotTo(dst[n:])
	n += putU64(dst[n:], y.ghr)
	return n
}

// RestoreFrom implements Snapshotter.
func (y *YAGS) RestoreFrom(src []byte) int {
	n := y.choice.RestoreFrom(src)
	n += y.caches[0].restoreFrom(src[n:])
	n += y.caches[1].restoreFrom(src[n:])
	n += getU64(src[n:], &y.ghr)
	return n
}

// SnapshotBytes implements Snapshotter; the wrapped dynamic predictor
// must be a Snapshotter.
func (f *Filter) SnapshotBytes() int64 {
	return int64(len(f.counts)) + int64(len(f.dirs)) +
		asSnapshotter(f.dynamic, "Filter").SnapshotBytes()
}

// SnapshotTo implements Snapshotter.
func (f *Filter) SnapshotTo(dst []byte) int {
	n := copy(dst, f.counts)
	n += putBools(dst[n:], f.dirs)
	n += asSnapshotter(f.dynamic, "Filter").SnapshotTo(dst[n:])
	return n
}

// RestoreFrom implements Snapshotter.
func (f *Filter) RestoreFrom(src []byte) int {
	n := copy(f.counts, src[:len(f.counts)])
	n += getBools(f.dirs, src[n:])
	n += asSnapshotter(f.dynamic, "Filter").RestoreFrom(src[n:])
	return n
}

// SnapshotBytes implements Snapshotter.
func (g *GSkew) SnapshotBytes() int64 {
	return g.banks[0].SnapshotBytes() + g.banks[1].SnapshotBytes() + g.banks[2].SnapshotBytes() + 8
}

// SnapshotTo implements Snapshotter.
func (g *GSkew) SnapshotTo(dst []byte) int {
	n := 0
	for _, bank := range g.banks {
		n += bank.SnapshotTo(dst[n:])
	}
	n += putU64(dst[n:], g.ghr)
	return n
}

// RestoreFrom implements Snapshotter.
func (g *GSkew) RestoreFrom(src []byte) int {
	n := 0
	for _, bank := range g.banks {
		n += bank.RestoreFrom(src[n:])
	}
	n += getU64(src[n:], &g.ghr)
	return n
}
