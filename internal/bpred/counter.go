// Package bpred implements the branch predictors the paper simulates and
// compares against: the two-level adaptive PAs and GAs configurations with
// the paper's exact 32 KB hardware budget (§3), plus the baseline and
// hybrid predictors its related-work and §5 discussion reference (static,
// last-time, bimodal, GAg/PAg, gshare, agree, McFarling tournament, and
// classification-guided hybrids).
//
// All predictors are deterministic and allocate their tables up front, so
// a predictor's behaviour is a pure function of the branch event stream.
package bpred

// Counter2 is a 2-bit saturating counter in 0..3. Values 2 and 3 predict
// taken. The weakly-not-taken initial value 1 matches sim-bpred's default.
type Counter2 uint8

// Predict reports the counter's current direction prediction.
func (c Counter2) Predict() bool { return c >= 2 }

// Update returns the counter trained toward the outcome, saturating at 0
// and 3.
func (c Counter2) Update(taken bool) Counter2 {
	if taken {
		if c < 3 {
			return c + 1
		}
		return 3
	}
	if c > 0 {
		return c - 1
	}
	return 0
}

// CounterTable is a power-of-two array of 2-bit counters.
type CounterTable struct {
	counters []Counter2
	mask     uint64
}

// NewCounterTable allocates a table with 2^bits counters, all initialised
// weakly not-taken.
func NewCounterTable(bits int) *CounterTable {
	if bits < 0 || bits > 30 {
		panic("bpred: counter table bits out of range")
	}
	n := 1 << bits
	t := &CounterTable{
		counters: make([]Counter2, n),
		mask:     uint64(n - 1),
	}
	// Fill by doubling copies (memmove) rather than a byte-at-a-time
	// store loop: the sweep harness rebuilds 34 tables (~4 MB) per input,
	// making initialisation a measurable slice of small runs.
	t.counters[0] = 1
	for i := 1; i < n; i *= 2 {
		copy(t.counters[i:], t.counters[:i])
	}
	return t
}

// Len returns the number of counters.
func (t *CounterTable) Len() int { return len(t.counters) }

// SizeBits returns the storage cost in bits (2 per counter).
func (t *CounterTable) SizeBits() int64 { return int64(len(t.counters)) * 2 }

// Predict returns the direction predicted at index.
func (t *CounterTable) Predict(index uint64) bool {
	return t.counters[index&t.mask].Predict()
}

// Update trains the counter at index toward the outcome.
func (t *CounterTable) Update(index uint64, taken bool) {
	i := index & t.mask
	t.counters[i] = t.counters[i].Update(taken)
}

// PredictUpdate performs one fused predict-then-update step at index,
// returning the pre-update prediction. It masks and loads the counter
// once, where separate Predict/Update calls index the table twice.
func (t *CounterTable) PredictUpdate(index uint64, taken bool) bool {
	i := index & t.mask
	c := t.counters[i]
	t.counters[i] = c.Update(taken)
	return c.Predict()
}

// Counter returns the raw counter value at index (for tests/inspection).
func (t *CounterTable) Counter(index uint64) Counter2 {
	return t.counters[index&t.mask]
}

// SnapshotBytes implements Snapshotter: one byte per 2-bit counter, so a
// snapshot is a plain byte copy of the table.
func (t *CounterTable) SnapshotBytes() int64 { return int64(len(t.counters)) }

// SnapshotTo implements Snapshotter.
func (t *CounterTable) SnapshotTo(dst []byte) int {
	for i, c := range t.counters {
		dst[i] = byte(c)
	}
	return len(t.counters)
}

// RestoreFrom implements Snapshotter.
func (t *CounterTable) RestoreFrom(src []byte) int {
	for i := range t.counters {
		t.counters[i] = Counter2(src[i])
	}
	return len(t.counters)
}
