package bpred

import "testing"

func TestAliasStatsRates(t *testing.T) {
	s := AliasStats{Updates: 100, Aliased: 40, Destructive: 10}
	if s.AliasedRate() != 0.4 || s.DestructiveRate() != 0.1 {
		t.Fatalf("rates %v %v", s.AliasedRate(), s.DestructiveRate())
	}
	var empty AliasStats
	if empty.AliasedRate() != 0 || empty.DestructiveRate() != 0 {
		t.Fatal("empty stats must be 0")
	}
}

func TestAliasTrackerDetectsSharing(t *testing.T) {
	tr := NewAliasTracker(4) // 16 counters
	// Same index, same pc: never aliased.
	tr.Observe(3, 0x100, true)
	tr.Observe(3, 0x100, false)
	if s := tr.Stats(); s.Aliased != 0 {
		t.Fatalf("self-updates counted as aliased: %+v", s)
	}
	// Same index, different pc, same direction: aliased, not destructive.
	tr.Observe(3, 0x200, false)
	if s := tr.Stats(); s.Aliased != 1 || s.Destructive != 0 {
		t.Fatalf("neutral alias miscounted: %+v", s)
	}
	// Same index, different pc, opposite direction: destructive.
	tr.Observe(3, 0x300, true)
	if s := tr.Stats(); s.Aliased != 2 || s.Destructive != 1 {
		t.Fatalf("destructive alias miscounted: %+v", s)
	}
	if s := tr.Stats(); s.Updates != 4 {
		t.Fatalf("updates %d", s.Updates)
	}
}

func TestAliasTrackerMasksIndex(t *testing.T) {
	tr := NewAliasTracker(2) // 4 counters
	tr.Observe(1, 0xA, true)
	tr.Observe(5, 0xB, false) // 5 & 3 == 1: same counter
	if s := tr.Stats(); s.Aliased != 1 || s.Destructive != 1 {
		t.Fatalf("index masking broken: %+v", s)
	}
}

func TestIndexExposure(t *testing.T) {
	// The exported Index methods must agree with prediction behaviour:
	// two PCs mapping to the same index alias in the real table.
	// gshare returns raw indices; table masking happens at the counter
	// table (and in AliasTracker), so compare under the table mask.
	g := NewGShare(10, 0) // no history: index = pc>>2, masked to 10 bits
	a, b := uint64(0x400000), uint64(0x400000+(1<<12))
	if g.Index(a)&1023 != g.Index(b)&1023 {
		t.Fatal("expected aliasing pair for gshare(10, k=0)")
	}
	gas := NewGAs(0)
	if gas.Index(0x400004) == gas.Index(0x400008) {
		t.Fatal("distinct low addresses must map to distinct GAs(0) indices")
	}
	// Addresses 2^19 bytes apart wrap the 17-bit GAs(0) index space.
	if gas.Index(0x400004) != gas.Index(0x400004+(1<<19)) {
		t.Fatal("expected aliasing pair for GAs(0) beyond 17 address bits")
	}
	p := NewPAs(4)
	_ = p.Index(0x400004) // must not panic and stays in table
	if p.Index(0x400004) >= 1<<PAsPHTBits {
		t.Fatal("PAs index exceeds PHT")
	}
}
