package bpred

// Interference instrumentation. The paper's §2/§5 framing — and the whole
// line of Agree/Bi-Mode/Filter work it cites — is about *aliasing*:
// multiple static branches sharing one PHT counter. Classification earns
// its keep by keeping easy branches out of the shared tables, which turns
// destructive aliasing into no aliasing at all. AliasTracker measures
// that effect directly.

// AliasStats summarises PHT sharing over a run.
type AliasStats struct {
	// Updates is the total number of counter updates observed.
	Updates int64
	// Aliased counts updates whose counter was last touched by a
	// different static branch.
	Aliased int64
	// Destructive counts aliased updates that also trained the counter
	// in the opposite direction from its previous update — the case that
	// actively corrupts another branch's state.
	Destructive int64
}

// AliasedRate returns Aliased/Updates (0 for an empty run).
func (s AliasStats) AliasedRate() float64 {
	if s.Updates == 0 {
		return 0
	}
	return float64(s.Aliased) / float64(s.Updates)
}

// DestructiveRate returns Destructive/Updates (0 for an empty run).
func (s AliasStats) DestructiveRate() float64 {
	if s.Updates == 0 {
		return 0
	}
	return float64(s.Destructive) / float64(s.Updates)
}

// AliasTracker shadows a PHT's index stream and accumulates AliasStats.
// It stores the last-touching PC and direction per counter.
type AliasTracker struct {
	lastPC  []uint64
	lastDir []bool
	touched []bool
	mask    uint64
	stats   AliasStats
}

// NewAliasTracker covers a table of 2^bits counters.
func NewAliasTracker(bits int) *AliasTracker {
	n := 1 << uint(bits)
	return &AliasTracker{
		lastPC:  make([]uint64, n),
		lastDir: make([]bool, n),
		touched: make([]bool, n),
		mask:    uint64(n - 1),
	}
}

// Observe records one counter update at index by branch pc with the given
// training direction.
func (a *AliasTracker) Observe(index, pc uint64, taken bool) {
	i := index & a.mask
	a.stats.Updates++
	if a.touched[i] && a.lastPC[i] != pc {
		a.stats.Aliased++
		if a.lastDir[i] != taken {
			a.stats.Destructive++
		}
	}
	a.touched[i] = true
	a.lastPC[i] = pc
	a.lastDir[i] = taken
}

// Stats returns the accumulated statistics.
func (a *AliasTracker) Stats() AliasStats { return a.stats }

// Index exposes GShare's PHT index computation for interference analysis.
func (g *GShare) Index(pc uint64) uint64 { return g.index(pc) }

// Index exposes GAs's PHT index computation for interference analysis.
func (g *GAs) Index(pc uint64) uint64 { return g.index(pc) }

// Index exposes PAs's PHT index computation for interference analysis.
func (p *PAs) Index(pc uint64) uint64 { return p.index(pc) }
