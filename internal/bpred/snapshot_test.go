package bpred

import (
	"bytes"
	"testing"
)

// The Snapshotter contract, pinned per predictor: snapshot mid-trace,
// keep running, mutate freely, restore, and the predictor must replay
// the continuation bit-identically. The stream mixes biased,
// alternating, and pseudo-random branches so every table sees traffic.

func snapshotBuilders() map[string]func() Predictor {
	profiles, classes := buildTestProfiles()
	return map[string]func() Predictor{
		"PAs(0)":     func() Predictor { return NewPAs(0) },
		"PAs(1)":     func() Predictor { return NewPAs(1) },
		"PAs(8)":     func() Predictor { return NewPAs(8) },
		"PAs(16)":    func() Predictor { return NewPAs(16) },
		"GAs(0)":     func() Predictor { return NewGAs(0) },
		"GAs(10)":    func() Predictor { return NewGAs(10) },
		"GAs(16)":    func() Predictor { return NewGAs(16) },
		"GAg(12)":    func() Predictor { return NewGAg(12) },
		"PAg(8)":     func() Predictor { return NewPAg(8, 12) },
		"gshare":     func() Predictor { return NewGShare(16, 12) },
		"bimodal":    func() Predictor { return NewBimodal(14) },
		"lasttime":   func() Predictor { return NewLastTime(14) },
		"taken":      func() Predictor { return NewAlwaysTaken() },
		"staticbias": func() Predictor { return NewStaticBias(map[uint64]bool{0x400000: false}) },
		"agree":      func() Predictor { return NewAgree(16, 10, 14) },
		"tournament": func() Predictor {
			return NewTournament("t", NewPAs(6), NewGShare(14, 8), 12)
		},
		"bimode": func() Predictor { return NewBiMode(14, 12, 10) },
		"yags":   func() Predictor { return NewYAGS(14, 10, 8, 10) },
		"filter": func() Predictor { return NewFilter(12, 32, NewGShare(14, 10)) },
		"gskew":  func() Predictor { return NewGSkew(13, 10) },
		"transitionhybrid": func() Predictor {
			return NewTransitionHybrid(classes, profiles, HybridComponents{})
		},
		"dynamichybrid": func() Predictor {
			return NewDynamicClassHybrid(12, 64, HybridComponents{})
		},
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	stream := fusedStream(24000)
	prefix, suffix := stream[:12000], stream[12000:20000]
	poison := stream[20000:]
	for name, build := range snapshotBuilders() {
		p := build()
		s, ok := p.(Snapshotter)
		if !ok {
			t.Errorf("%s: does not implement Snapshotter", name)
			continue
		}
		for _, ev := range prefix {
			p.Update(ev.pc, ev.taken)
		}
		snap := make([]byte, s.SnapshotBytes())
		if n := s.SnapshotTo(snap); n != len(snap) {
			t.Fatalf("%s: SnapshotTo wrote %d bytes, SnapshotBytes says %d", name, n, len(snap))
		}

		// Reference continuation from the snapshotted state.
		want := make([]bool, len(suffix))
		for i, ev := range suffix {
			want[i] = p.Predict(ev.pc)
			p.Update(ev.pc, ev.taken)
		}

		// Mutate well past the snapshot, then restore and replay.
		for _, ev := range poison {
			p.Update(ev.pc, !ev.taken)
		}
		if n := s.RestoreFrom(snap); n != len(snap) {
			t.Fatalf("%s: RestoreFrom consumed %d bytes, want %d", name, n, len(snap))
		}
		resnap := make([]byte, s.SnapshotBytes())
		s.SnapshotTo(resnap)
		if !bytes.Equal(snap, resnap) {
			t.Fatalf("%s: snapshot immediately after restore differs", name)
		}
		for i, ev := range suffix {
			if got := p.Predict(ev.pc); got != want[i] {
				t.Fatalf("%s: event %d: restored replay predicted %v, original %v", name, i, got, want[i])
			}
			p.Update(ev.pc, ev.taken)
		}
	}
}

// TestUpdateChunkMatchesSweepChunk pins the warmup pass the snapshot
// engine relies on: an update-only replay must leave a bank predictor in
// exactly the state a predicting sweep does (Predict has no side
// effects). State equality is checked through the snapshot encoding,
// which covers every mutable field.
func TestUpdateChunkMatchesSweepChunk(t *testing.T) {
	type warmSweeper interface {
		Snapshotter
		SweepChunk(pcs, dirs []uint64, n int, wrong []uint64)
		UpdateChunk(pcs, dirs []uint64, n int)
	}
	builders := map[string]func() warmSweeper{
		"PAs(0)":  func() warmSweeper { return NewPAs(0) },
		"PAs(1)":  func() warmSweeper { return NewPAs(1) },
		"PAs(8)":  func() warmSweeper { return NewPAs(8) },
		"PAs(16)": func() warmSweeper { return NewPAs(16) },
		"GAs(0)":  func() warmSweeper { return NewGAs(0) },
		"GAs(10)": func() warmSweeper { return NewGAs(10) },
		"GAs(16)": func() warmSweeper { return NewGAs(16) },
	}
	stream := fusedStream(10000)
	for name, build := range builders {
		sweep, update := build(), build()
		for start := 0; start < len(stream); {
			n := 97
			if start+n > len(stream) {
				n = len(stream) - start
			}
			pcs := make([]uint64, n)
			dirs := make([]uint64, (n+63)/64)
			for i := 0; i < n; i++ {
				pcs[i] = stream[start+i].pc
				if stream[start+i].taken {
					dirs[i>>6] |= 1 << (uint(i) & 63)
				}
			}
			sweep.SweepChunk(pcs, dirs, n, make([]uint64, (n+63)/64))
			update.UpdateChunk(pcs, dirs, n)
			start += n
		}
		if !bytes.Equal(Snapshot(sweep), Snapshot(update)) {
			t.Fatalf("%s: update-only state diverged from sweep state", name)
		}
	}
}

func TestSnapshotRejectsBareComponent(t *testing.T) {
	// A composite whose component cannot checkpoint must fail loudly,
	// not silently skip state.
	tour := NewTournament("t", plainOnly{NewLastTime(8)}, NewBimodal(10), 8)
	defer func() {
		if recover() == nil {
			t.Fatal("SnapshotBytes on a non-snapshottable component did not panic")
		}
	}()
	tour.SnapshotBytes()
}
