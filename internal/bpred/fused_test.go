package bpred

import "testing"

// The PredictUpdater contract: a fused step must be indistinguishable from
// a Predict-then-Update pair. Each implementation is driven against a
// freshly-built twin over the same stream, comparing every prediction.

func fusedStream(n int) []struct {
	pc    uint64
	taken bool
} {
	out := make([]struct {
		pc    uint64
		taken bool
	}, n)
	r := uint64(0x1234567)
	for i := range out {
		r ^= r << 13
		r ^= r >> 7
		r ^= r << 17
		out[i].pc = 0x400000 + (r%1024)*4
		out[i].taken = r&4 != 0
	}
	return out
}

func TestPredictUpdateMatchesSeparate(t *testing.T) {
	builders := map[string]func() Predictor{
		"PAs(0)":     func() Predictor { return NewPAs(0) },
		"PAs(8)":     func() Predictor { return NewPAs(8) },
		"PAs(16)":    func() Predictor { return NewPAs(16) },
		"GAs(0)":     func() Predictor { return NewGAs(0) },
		"GAs(10)":    func() Predictor { return NewGAs(10) },
		"GAg(12)":    func() Predictor { return NewGAg(12) },
		"PAg(8)":     func() Predictor { return NewPAg(8, 12) },
		"gshare":     func() Predictor { return NewGShare(16, 12) },
		"bimodal":    func() Predictor { return NewBimodal(14) },
		"lasttime":   func() Predictor { return NewLastTime(14) },
		"taken":      func() Predictor { return NewAlwaysTaken() },
		"staticbias": func() Predictor { return NewStaticBias(map[uint64]bool{0x400000: false}) },
		"agree":      func() Predictor { return NewAgree(16, 10, 14) },
		"tournament": func() Predictor {
			return NewTournament("t", NewPAs(6), NewGShare(14, 8), 12)
		},
	}
	stream := fusedStream(20000)
	for name, build := range builders {
		fused, separate := build(), build()
		pu, ok := fused.(PredictUpdater)
		if !ok {
			t.Errorf("%s: does not implement PredictUpdater", name)
			continue
		}
		for i, ev := range stream {
			want := separate.Predict(ev.pc)
			separate.Update(ev.pc, ev.taken)
			if got := pu.PredictUpdate(ev.pc, ev.taken); got != want {
				t.Fatalf("%s: event %d: fused=%v separate=%v", name, i, got, want)
			}
		}
	}
}

// TestSweepChunkMatchesPredictUpdate pins the batch protocol: SweepChunk
// over decoded columns must be indistinguishable from per-event fused
// calls, including across chunk boundaries (history registers persist).
func TestSweepChunkMatchesPredictUpdate(t *testing.T) {
	type sweeper interface {
		SweepChunk(pcs, dirs []uint64, n int, wrong []uint64)
		PredictUpdate(pc uint64, taken bool) bool
	}
	builders := map[string]func() sweeper{
		"PAs(0)":  func() sweeper { return NewPAs(0) },
		"PAs(8)":  func() sweeper { return NewPAs(8) },
		"PAs(16)": func() sweeper { return NewPAs(16) },
		"GAs(0)":  func() sweeper { return NewGAs(0) },
		"GAs(10)": func() sweeper { return NewGAs(10) },
		"GAs(16)": func() sweeper { return NewGAs(16) },
	}
	stream := fusedStream(10000)
	for name, build := range builders {
		batch, scalar := build(), build()
		// Uneven chunk sizes exercise partial words and boundaries.
		for start := 0; start < len(stream); {
			n := 97
			if start+n > len(stream) {
				n = len(stream) - start
			}
			pcs := make([]uint64, n)
			dirs := make([]uint64, (n+63)/64)
			for i := 0; i < n; i++ {
				pcs[i] = stream[start+i].pc
				if stream[start+i].taken {
					dirs[i>>6] |= 1 << (uint(i) & 63)
				}
			}
			wrong := make([]uint64, (n+63)/64)
			batch.SweepChunk(pcs, dirs, n, wrong)
			for i := 0; i < n; i++ {
				ev := stream[start+i]
				miss := scalar.PredictUpdate(ev.pc, ev.taken) != ev.taken
				got := wrong[i>>6]&(1<<(uint(i)&63)) != 0
				if got != miss {
					t.Fatalf("%s: event %d: batch miss=%v scalar miss=%v", name, start+i, got, miss)
				}
			}
			start += n
		}
	}
}

func TestStepFallsBackWithoutFusedPath(t *testing.T) {
	// A predictor implementing only the base interface must still work
	// through Step.
	type bare struct{ LastTime }
	p := &bare{*NewLastTime(8)}
	var plain Predictor = plainOnly{p}
	if got := Step(plain, 0x400000, true); got != false {
		t.Fatal("first prediction of a fresh last-time table must be not-taken")
	}
	if got := Step(plain, 0x400000, false); got != true {
		t.Fatal("second prediction must reflect the first update")
	}
}

// plainOnly hides any fused method so Step takes the fallback path.
type plainOnly struct{ p Predictor }

func (w plainOnly) Name() string                 { return w.p.Name() }
func (w plainOnly) Predict(pc uint64) bool       { return w.p.Predict(pc) }
func (w plainOnly) Update(pc uint64, taken bool) { w.p.Update(pc, taken) }
func (w plainOnly) SizeBits() int64              { return w.p.SizeBits() }
