package bpred

import (
	"btr/internal/core"
)

// ClassHybrid is a profile-classification-guided hybrid predictor in the
// style of §5.4: every static branch is steered to a component according
// to its (taken, transition) class from a profiling run:
//
//   - taken classes 0/10 (always one direction): a profiled static
//     prediction, costing no predictor state at all;
//   - other low-transition branches (transition classes 0-1, e.g. long
//     runs of taken then not-taken): a small counter table — the paper's
//     observation that "such a branch can be well predicted using only a
//     one-bit counter";
//   - alternating branches (transition classes 9-10): a short per-address
//     history, which is near perfect where zero history is pathological;
//   - everything else: the longest-affordable-history component.
//
// Keeping the easy branches out of the pattern history tables is also what
// removes interference. Branches never seen during profiling fall back to
// the long-history component.
type ClassHybrid struct {
	name    string
	classes core.ClassMap
	static  *StaticBias
	biasTbl Predictor
	short   Predictor
	long    Predictor
	// takenOnly restricts classification to taken rate (the Chang et al.
	// baseline): only taken classes 0/10 are diverted, everything else is
	// long-history.
	takenOnly bool
}

// HybridComponents selects the dynamic components of a ClassHybrid.
// Nil fields get sensible defaults.
type HybridComponents struct {
	// BiasTable handles low-transition, non-extreme-bias branches.
	// Default: a 2^12-counter bimodal table.
	BiasTable Predictor
	// Short handles the alternating classes. Default: PAs with the
	// default policy's short history.
	Short Predictor
	// Long handles everything else. Default: gshare sized to the paper's
	// budget with the policy's long history.
	Long Predictor
}

func (c HybridComponents) withDefaults() HybridComponents {
	if c.BiasTable == nil {
		c.BiasTable = NewBimodal(12)
	}
	if c.Short == nil {
		c.Short = NewPAs(core.DefaultPolicy.ShortHistoryMax)
	}
	if c.Long == nil {
		c.Long = NewGShare(GAsPHTBits, core.DefaultPolicy.LongHistory)
	}
	return c
}

// NewTransitionHybrid builds the paper's proposed hybrid from a profiling
// pass: steering derives from the joint (taken, transition) class, and
// each statically-predicted branch uses its profiled majority direction.
func NewTransitionHybrid(classes core.ClassMap, profiles map[uint64]*core.Profile, comp HybridComponents) *ClassHybrid {
	return newClassHybrid("TransitionHybrid", classes, profiles, comp, false)
}

// NewTakenHybrid builds the Chang-style hybrid that classifies by taken
// rate only: taken classes 0 and 10 go static, everything else goes to the
// long-history component. It is the baseline §4.2 compares against.
func NewTakenHybrid(classes core.ClassMap, profiles map[uint64]*core.Profile, comp HybridComponents) *ClassHybrid {
	return newClassHybrid("TakenHybrid", classes, profiles, comp, true)
}

func newClassHybrid(name string, classes core.ClassMap, profiles map[uint64]*core.Profile, comp HybridComponents, takenOnly bool) *ClassHybrid {
	bias := make(map[uint64]bool, len(classes))
	for pc := range classes {
		if p := profiles[pc]; p != nil {
			bias[pc] = p.TakenRate() >= 0.5
		}
	}
	comp = comp.withDefaults()
	return &ClassHybrid{
		name:      name,
		classes:   classes,
		static:    NewStaticBias(bias),
		biasTbl:   comp.BiasTable,
		short:     comp.Short,
		long:      comp.Long,
		takenOnly: takenOnly,
	}
}

// Name implements Predictor.
func (h *ClassHybrid) Name() string { return h.name }

func (h *ClassHybrid) component(pc uint64) Predictor {
	jc, ok := h.classes[pc]
	if !ok {
		return h.long // unprofiled branch: no classification to act on
	}
	extremeBias := jc.Taken == 0 || jc.Taken == 10
	if h.takenOnly {
		if extremeBias {
			return h.static
		}
		return h.long
	}
	switch {
	case extremeBias && jc.Transition <= 1:
		return h.static
	case jc.Transition <= 1:
		return h.biasTbl
	case jc.Transition >= 9:
		return h.short
	default:
		return h.long
	}
}

// Predict implements Predictor.
func (h *ClassHybrid) Predict(pc uint64) bool { return h.component(pc).Predict(pc) }

// Update implements Predictor. Only the owning component trains on the
// branch: the point of the classification is to keep easy branches out of
// the pattern history tables, freeing those resources (and removing their
// interference) for the hard branches.
func (h *ClassHybrid) Update(pc uint64, taken bool) {
	h.component(pc).Update(pc, taken)
}

// SizeBits implements Predictor. Static bias hints are profile outputs
// carried in the binary, not predictor state.
func (h *ClassHybrid) SizeBits() int64 {
	return h.biasTbl.SizeBits() + h.short.SizeBits() + h.long.SizeBits()
}

// SnapshotBytes implements Snapshotter: the three dynamic components
// (class map and profiled bias are fixed at construction); all must be
// Snapshotters.
func (h *ClassHybrid) SnapshotBytes() int64 {
	return asSnapshotter(h.biasTbl, "ClassHybrid").SnapshotBytes() +
		asSnapshotter(h.short, "ClassHybrid").SnapshotBytes() +
		asSnapshotter(h.long, "ClassHybrid").SnapshotBytes()
}

// SnapshotTo implements Snapshotter.
func (h *ClassHybrid) SnapshotTo(dst []byte) int {
	n := asSnapshotter(h.biasTbl, "ClassHybrid").SnapshotTo(dst)
	n += asSnapshotter(h.short, "ClassHybrid").SnapshotTo(dst[n:])
	n += asSnapshotter(h.long, "ClassHybrid").SnapshotTo(dst[n:])
	return n
}

// RestoreFrom implements Snapshotter.
func (h *ClassHybrid) RestoreFrom(src []byte) int {
	n := asSnapshotter(h.biasTbl, "ClassHybrid").RestoreFrom(src)
	n += asSnapshotter(h.short, "ClassHybrid").RestoreFrom(src[n:])
	n += asSnapshotter(h.long, "ClassHybrid").RestoreFrom(src[n:])
	return n
}

// ComponentFor exposes which component a branch is steered to ("static",
// "bias-table", "short-local", "long-history"), for reporting.
func (h *ClassHybrid) ComponentFor(pc uint64) string {
	switch h.component(pc) {
	case Predictor(h.static):
		return "static"
	case h.biasTbl:
		return "bias-table"
	case h.short:
		return "short-local"
	default:
		return "long-history"
	}
}
