package bpred

import "fmt"

// AlwaysTaken predicts taken for every branch (the classic static
// baseline; backward-taken/forward-not-taken needs target addresses, which
// conditional-branch traces do not carry).
type AlwaysTaken struct{}

// NewAlwaysTaken returns the predictor.
func NewAlwaysTaken() AlwaysTaken { return AlwaysTaken{} }

// Name implements Predictor.
func (AlwaysTaken) Name() string { return "AlwaysTaken" }

// Predict implements Predictor.
func (AlwaysTaken) Predict(pc uint64) bool { return true }

// Update implements Predictor.
func (AlwaysTaken) Update(pc uint64, taken bool) {}

// PredictUpdate implements PredictUpdater.
func (AlwaysTaken) PredictUpdate(pc uint64, taken bool) bool { return true }

// SizeBits implements Predictor.
func (AlwaysTaken) SizeBits() int64 { return 0 }

// StaticBias predicts each branch's profiled majority direction — the
// static component Chang et al. assign to heavily biased branches.
// Branches absent from the bias map fall back to taken.
type StaticBias struct {
	bias map[uint64]bool
}

// NewStaticBias returns a profile-guided static predictor. The map gives
// each branch PC its majority direction.
func NewStaticBias(bias map[uint64]bool) *StaticBias {
	return &StaticBias{bias: bias}
}

// Name implements Predictor.
func (s *StaticBias) Name() string { return "StaticBias" }

// Predict implements Predictor.
func (s *StaticBias) Predict(pc uint64) bool {
	if dir, ok := s.bias[pc]; ok {
		return dir
	}
	return true
}

// Update implements Predictor.
func (s *StaticBias) Update(pc uint64, taken bool) {}

// PredictUpdate implements PredictUpdater.
func (s *StaticBias) PredictUpdate(pc uint64, taken bool) bool { return s.Predict(pc) }

// SizeBits implements Predictor. Profiled hints live in the binary, not
// predictor hardware, so the cost is zero table bits.
func (s *StaticBias) SizeBits() int64 { return 0 }

// LastTime predicts that each branch repeats its previous outcome (a
// 1-bit-per-entry table) — the zero-history behaviour the paper uses to
// explain why transition classes 9-10 are pathological without history.
type LastTime struct {
	bits []bool
	mask uint64
}

// NewLastTime returns a last-time predictor with 2^bits entries.
func NewLastTime(bits int) *LastTime {
	return &LastTime{bits: make([]bool, 1<<uint(bits)), mask: (1 << uint(bits)) - 1}
}

// Name implements Predictor.
func (l *LastTime) Name() string { return "LastTime" }

// Predict implements Predictor.
func (l *LastTime) Predict(pc uint64) bool { return l.bits[pcIndex(pc)&l.mask] }

// Update implements Predictor.
func (l *LastTime) Update(pc uint64, taken bool) { l.bits[pcIndex(pc)&l.mask] = taken }

// PredictUpdate implements PredictUpdater: one table index for the fused
// predict-then-update step.
func (l *LastTime) PredictUpdate(pc uint64, taken bool) bool {
	i := pcIndex(pc) & l.mask
	predicted := l.bits[i]
	l.bits[i] = taken
	return predicted
}

// SizeBits implements Predictor.
func (l *LastTime) SizeBits() int64 { return int64(len(l.bits)) }

// Bimodal is a table of 2-bit counters indexed by branch address (Smith),
// equivalent to the paper's k = 0 configuration when sized at 2^17.
type Bimodal struct {
	pht  *CounterTable
	bits int
}

// NewBimodal returns a bimodal predictor with 2^bits counters.
func NewBimodal(bits int) *Bimodal {
	return &Bimodal{pht: NewCounterTable(bits), bits: bits}
}

// Name implements Predictor.
func (b *Bimodal) Name() string { return fmt.Sprintf("Bimodal(%d)", b.bits) }

// Predict implements Predictor.
func (b *Bimodal) Predict(pc uint64) bool { return b.pht.Predict(pcIndex(pc)) }

// Update implements Predictor.
func (b *Bimodal) Update(pc uint64, taken bool) { b.pht.Update(pcIndex(pc), taken) }

// PredictUpdate implements PredictUpdater.
func (b *Bimodal) PredictUpdate(pc uint64, taken bool) bool {
	return b.pht.PredictUpdate(pcIndex(pc), taken)
}

// SizeBits implements Predictor.
func (b *Bimodal) SizeBits() int64 { return b.pht.SizeBits() }

// GShare XORs k bits of global history into the PHT index (McFarling).
type GShare struct {
	k       int
	phtBits int
	ghr     uint64
	mask    uint64
	pht     *CounterTable
}

// NewGShare returns a gshare predictor with 2^phtBits counters and history
// length k <= phtBits.
func NewGShare(phtBits, k int) *GShare {
	if k < 0 || k > phtBits {
		panic("bpred: gshare history length out of range")
	}
	return &GShare{
		k:       k,
		phtBits: phtBits,
		mask:    (1 << uint(k)) - 1,
		pht:     NewCounterTable(phtBits),
	}
}

// Name implements Predictor.
func (g *GShare) Name() string { return fmt.Sprintf("gshare(%d,k=%d)", g.phtBits, g.k) }

func (g *GShare) index(pc uint64) uint64 { return pcIndex(pc) ^ (g.ghr & g.mask) }

// Predict implements Predictor.
func (g *GShare) Predict(pc uint64) bool { return g.pht.Predict(g.index(pc)) }

// Update implements Predictor.
func (g *GShare) Update(pc uint64, taken bool) {
	g.pht.Update(g.index(pc), taken)
	g.ghr <<= 1
	if taken {
		g.ghr |= 1
	}
}

// PredictUpdate implements PredictUpdater: the XORed index is computed
// once for the fused predict-then-update step.
func (g *GShare) PredictUpdate(pc uint64, taken bool) bool {
	predicted := g.pht.PredictUpdate(g.index(pc), taken)
	g.ghr <<= 1
	if taken {
		g.ghr |= 1
	}
	return predicted
}

// SizeBits implements Predictor.
func (g *GShare) SizeBits() int64 { return g.pht.SizeBits() + int64(g.k) }

// Agree stores a per-branch bias bit and lets gshare-indexed counters vote
// on whether the branch will agree with its bias (Sprangle et al.), turning
// destructive PHT interference into neutral or constructive interference.
// The bias is set by the branch's first observed outcome.
type Agree struct {
	inner    *GShare
	bias     []bool
	seen     []bool
	biasMask uint64
}

// NewAgree returns an agree predictor with 2^phtBits agreement counters,
// history length k, and 2^biasBits first-time bias bits.
func NewAgree(phtBits, k, biasBits int) *Agree {
	return &Agree{
		inner:    NewGShare(phtBits, k),
		bias:     make([]bool, 1<<uint(biasBits)),
		seen:     make([]bool, 1<<uint(biasBits)),
		biasMask: (1 << uint(biasBits)) - 1,
	}
}

// Name implements Predictor.
func (a *Agree) Name() string { return fmt.Sprintf("Agree(%d,k=%d)", a.inner.phtBits, a.inner.k) }

// Predict implements Predictor.
func (a *Agree) Predict(pc uint64) bool {
	i := pcIndex(pc) & a.biasMask
	bias := true
	if a.seen[i] {
		bias = a.bias[i]
	}
	agree := a.inner.pht.Predict(a.inner.index(pc))
	return agree == bias
}

// Update implements Predictor.
func (a *Agree) Update(pc uint64, taken bool) {
	i := pcIndex(pc) & a.biasMask
	if !a.seen[i] {
		a.seen[i] = true
		a.bias[i] = taken
	}
	agreed := taken == a.bias[i]
	a.inner.pht.Update(a.inner.index(pc), agreed)
	a.inner.ghr <<= 1
	if taken {
		a.inner.ghr |= 1
	}
}

// PredictUpdate implements PredictUpdater. The prediction uses the
// pre-update bias/seen state, exactly as a Predict-then-Update pair does.
func (a *Agree) PredictUpdate(pc uint64, taken bool) bool {
	i := pcIndex(pc) & a.biasMask
	bias := true
	if a.seen[i] {
		bias = a.bias[i]
	}
	idx := a.inner.index(pc)
	predicted := a.inner.pht.Predict(idx) == bias
	if !a.seen[i] {
		a.seen[i] = true
		a.bias[i] = taken
	}
	a.inner.pht.Update(idx, taken == a.bias[i])
	a.inner.ghr <<= 1
	if taken {
		a.inner.ghr |= 1
	}
	return predicted
}

// SizeBits implements Predictor.
func (a *Agree) SizeBits() int64 { return a.inner.SizeBits() + int64(len(a.bias)) }

// Tournament combines two component predictors with a 2-bit chooser table
// indexed by branch address (McFarling's combining predictor).
type Tournament struct {
	name    string
	a, b    Predictor
	chooser *CounterTable
}

// NewTournament combines a and b; the chooser has 2^chooserBits counters.
// Chooser counter >= 2 selects component a.
func NewTournament(name string, a, b Predictor, chooserBits int) *Tournament {
	return &Tournament{name: name, a: a, b: b, chooser: NewCounterTable(chooserBits)}
}

// Name implements Predictor.
func (t *Tournament) Name() string { return t.name }

// Predict implements Predictor.
func (t *Tournament) Predict(pc uint64) bool {
	if t.chooser.Predict(pcIndex(pc)) {
		return t.a.Predict(pc)
	}
	return t.b.Predict(pc)
}

// Update implements Predictor.
func (t *Tournament) Update(pc uint64, taken bool) {
	aRight := t.a.Predict(pc) == taken
	bRight := t.b.Predict(pc) == taken
	// Train the chooser only when the components disagree.
	if aRight != bRight {
		t.chooser.Update(pcIndex(pc), aRight)
	}
	t.a.Update(pc, taken)
	t.b.Update(pc, taken)
}

// PredictUpdate implements PredictUpdater: each component predicts once,
// serving both the output selection and the chooser training that separate
// Predict/Update calls would recompute.
func (t *Tournament) PredictUpdate(pc uint64, taken bool) bool {
	aPred := t.a.Predict(pc)
	bPred := t.b.Predict(pc)
	predicted := bPred
	if t.chooser.Predict(pcIndex(pc)) {
		predicted = aPred
	}
	if (aPred == taken) != (bPred == taken) {
		t.chooser.Update(pcIndex(pc), aPred == taken)
	}
	t.a.Update(pc, taken)
	t.b.Update(pc, taken)
	return predicted
}

// SizeBits implements Predictor.
func (t *Tournament) SizeBits() int64 {
	return t.a.SizeBits() + t.b.SizeBits() + t.chooser.SizeBits()
}

// --- Snapshotter implementations ---
//
// The stateless predictors snapshot to zero bytes; the rest serialise
// exactly their mutable tables and registers (profiled bias maps are
// fixed at construction and excluded).

// SnapshotBytes implements Snapshotter (no mutable state).
func (AlwaysTaken) SnapshotBytes() int64 { return 0 }

// SnapshotTo implements Snapshotter.
func (AlwaysTaken) SnapshotTo(dst []byte) int { return 0 }

// RestoreFrom implements Snapshotter.
func (AlwaysTaken) RestoreFrom(src []byte) int { return 0 }

// SnapshotBytes implements Snapshotter: the profiled bias map is set at
// construction and never mutated, so there is no state to checkpoint.
func (s *StaticBias) SnapshotBytes() int64 { return 0 }

// SnapshotTo implements Snapshotter.
func (s *StaticBias) SnapshotTo(dst []byte) int { return 0 }

// RestoreFrom implements Snapshotter.
func (s *StaticBias) RestoreFrom(src []byte) int { return 0 }

// SnapshotBytes implements Snapshotter.
func (l *LastTime) SnapshotBytes() int64 { return int64(len(l.bits)) }

// SnapshotTo implements Snapshotter.
func (l *LastTime) SnapshotTo(dst []byte) int { return putBools(dst, l.bits) }

// RestoreFrom implements Snapshotter.
func (l *LastTime) RestoreFrom(src []byte) int { return getBools(l.bits, src) }

// SnapshotBytes implements Snapshotter.
func (b *Bimodal) SnapshotBytes() int64 { return b.pht.SnapshotBytes() }

// SnapshotTo implements Snapshotter.
func (b *Bimodal) SnapshotTo(dst []byte) int { return b.pht.SnapshotTo(dst) }

// RestoreFrom implements Snapshotter.
func (b *Bimodal) RestoreFrom(src []byte) int { return b.pht.RestoreFrom(src) }

// SnapshotBytes implements Snapshotter.
func (g *GShare) SnapshotBytes() int64 { return g.pht.SnapshotBytes() + 8 }

// SnapshotTo implements Snapshotter.
func (g *GShare) SnapshotTo(dst []byte) int {
	n := g.pht.SnapshotTo(dst)
	n += putU64(dst[n:], g.ghr)
	return n
}

// RestoreFrom implements Snapshotter.
func (g *GShare) RestoreFrom(src []byte) int {
	n := g.pht.RestoreFrom(src)
	n += getU64(src[n:], &g.ghr)
	return n
}

// SnapshotBytes implements Snapshotter.
func (a *Agree) SnapshotBytes() int64 {
	return a.inner.SnapshotBytes() + int64(len(a.bias)) + int64(len(a.seen))
}

// SnapshotTo implements Snapshotter.
func (a *Agree) SnapshotTo(dst []byte) int {
	n := a.inner.SnapshotTo(dst)
	n += putBools(dst[n:], a.bias)
	n += putBools(dst[n:], a.seen)
	return n
}

// RestoreFrom implements Snapshotter.
func (a *Agree) RestoreFrom(src []byte) int {
	n := a.inner.RestoreFrom(src)
	n += getBools(a.bias, src[n:])
	n += getBools(a.seen, src[n:])
	return n
}

// SnapshotBytes implements Snapshotter; both components must be
// Snapshotters.
func (t *Tournament) SnapshotBytes() int64 {
	return t.chooser.SnapshotBytes() +
		asSnapshotter(t.a, "Tournament").SnapshotBytes() +
		asSnapshotter(t.b, "Tournament").SnapshotBytes()
}

// SnapshotTo implements Snapshotter.
func (t *Tournament) SnapshotTo(dst []byte) int {
	n := t.chooser.SnapshotTo(dst)
	n += asSnapshotter(t.a, "Tournament").SnapshotTo(dst[n:])
	n += asSnapshotter(t.b, "Tournament").SnapshotTo(dst[n:])
	return n
}

// RestoreFrom implements Snapshotter.
func (t *Tournament) RestoreFrom(src []byte) int {
	n := t.chooser.RestoreFrom(src)
	n += asSnapshotter(t.a, "Tournament").RestoreFrom(src[n:])
	n += asSnapshotter(t.b, "Tournament").RestoreFrom(src[n:])
	return n
}
