package bpred

import (
	"encoding/binary"
	"fmt"
)

// The checkpoint protocol behind the simulator's intra-slot sweep
// parallelism: a predictor serialises its complete mutable state into a
// flat byte slice and restores it later, so a sweep can snapshot a
// predictor at a chunk-range boundary and run later ranges concurrently
// from the restored state instead of chaining them sequentially.
//
// Snapshots are process-internal: the layout is a plain concatenation
// of the predictor's tables and history registers (fixed-width
// little-endian words, one byte per 2-bit counter or flag), carries no
// header or versioning, and is only ever restored into a predictor of
// the identical configuration inside the same process. Restoring is as
// cheap as the copy: a restored predictor is bit-for-bit
// indistinguishable from the snapshotted one (TestSnapshotRoundTrip).

// Snapshotter is the checkpoint protocol. Every predictor in this
// package implements it; composite predictors (Tournament, Filter, the
// hybrids) require their components to implement it too and panic with
// the offending component's name otherwise.
type Snapshotter interface {
	// SnapshotBytes returns the exact size of one snapshot in bytes.
	// It is constant for a given configuration.
	SnapshotBytes() int64
	// SnapshotTo serialises the predictor's complete mutable state into
	// dst, which must hold at least SnapshotBytes bytes, and returns
	// the bytes written.
	SnapshotTo(dst []byte) int
	// RestoreFrom overwrites the predictor's mutable state with a
	// snapshot previously written by SnapshotTo on an identically
	// configured predictor, returning the bytes consumed.
	RestoreFrom(src []byte) int
}

// Snapshot allocates and fills a fresh snapshot of s.
func Snapshot(s Snapshotter) []byte {
	buf := make([]byte, s.SnapshotBytes())
	s.SnapshotTo(buf)
	return buf
}

// asSnapshotter returns p's checkpoint protocol, panicking with a
// message naming the owning composite when p cannot provide one — a
// composite predictor can only checkpoint when every component can.
func asSnapshotter(p Predictor, owner string) Snapshotter {
	if s, ok := p.(Snapshotter); ok {
		return s
	}
	panic(fmt.Sprintf("bpred: %s component %s does not support snapshots", owner, p.Name()))
}

// --- flat codec helpers ---
//
// All fixed width, no framing: the reader knows the layout because it
// is the identically configured predictor.

func putU64(dst []byte, v uint64) int {
	binary.LittleEndian.PutUint64(dst, v)
	return 8
}

func getU64(src []byte, v *uint64) int {
	*v = binary.LittleEndian.Uint64(src)
	return 8
}

func putU64s(dst []byte, src []uint64) int {
	for i, v := range src {
		binary.LittleEndian.PutUint64(dst[i*8:], v)
	}
	return len(src) * 8
}

func getU64s(dst []uint64, src []byte) int {
	for i := range dst {
		dst[i] = binary.LittleEndian.Uint64(src[i*8:])
	}
	return len(dst) * 8
}

func putU16s(dst []byte, src []uint16) int {
	for i, v := range src {
		binary.LittleEndian.PutUint16(dst[i*2:], v)
	}
	return len(src) * 2
}

func getU16s(dst []uint16, src []byte) int {
	for i := range dst {
		dst[i] = binary.LittleEndian.Uint16(src[i*2:])
	}
	return len(dst) * 2
}

func putBools(dst []byte, src []bool) int {
	for i, b := range src {
		dst[i] = 0
		if b {
			dst[i] = 1
		}
	}
	return len(src)
}

func getBools(dst []bool, src []byte) int {
	for i := range dst {
		dst[i] = src[i] != 0
	}
	return len(dst)
}

func putCounters(dst []byte, src []Counter2) int {
	for i, c := range src {
		dst[i] = byte(c)
	}
	return len(src)
}

func getCounters(dst []Counter2, src []byte) int {
	for i := range dst {
		dst[i] = Counter2(src[i])
	}
	return len(dst)
}

func putBool(dst []byte, b bool) int {
	dst[0] = 0
	if b {
		dst[0] = 1
	}
	return 1
}

func getBool(src []byte, b *bool) int {
	*b = src[0] != 0
	return 1
}
