package bpred

import (
	"testing"
	"testing/quick"

	"btr/internal/trace"
)

func TestCounter2Saturation(t *testing.T) {
	c := Counter2(0)
	if c.Predict() {
		t.Fatal("0 must predict not-taken")
	}
	c = c.Update(false)
	if c != 0 {
		t.Fatal("decrement must saturate at 0")
	}
	for i := 0; i < 10; i++ {
		c = c.Update(true)
	}
	if c != 3 {
		t.Fatalf("increment must saturate at 3, got %d", c)
	}
	if !c.Predict() {
		t.Fatal("3 must predict taken")
	}
	c = c.Update(false) // 2: still taken (hysteresis)
	if c != 2 || !c.Predict() {
		t.Fatalf("2-bit hysteresis broken: %d", c)
	}
}

func TestCounterTable(t *testing.T) {
	tbl := NewCounterTable(4)
	if tbl.Len() != 16 || tbl.SizeBits() != 32 {
		t.Fatalf("len=%d size=%d", tbl.Len(), tbl.SizeBits())
	}
	if tbl.Counter(3) != 1 {
		t.Fatal("initial counters must be weakly not-taken (1)")
	}
	tbl.Update(3, true)
	tbl.Update(3, true)
	if !tbl.Predict(3) {
		t.Fatal("trained counter must predict taken")
	}
	// index masking: 19 & 15 == 3
	if !tbl.Predict(19) {
		t.Fatal("index must wrap by mask")
	}
}

func TestCounterTablePanicsOnBadBits(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewCounterTable(-1)
}

func TestBHTEntriesLog2(t *testing.T) {
	// entries = largest power of two with entries*k <= 2^17
	cases := map[int]int{1: 17, 2: 16, 3: 15, 4: 15, 5: 14, 8: 14, 9: 13, 16: 13}
	for k, want := range cases {
		if got := BHTEntriesLog2(k); got != want {
			t.Fatalf("BHTEntriesLog2(%d) = %d, want %d", k, got, want)
		}
		entries := 1 << BHTEntriesLog2(k)
		if entries*k > BHTBudgetBits || entries*2*k <= BHTBudgetBits {
			t.Fatalf("k=%d: %d entries not maximal within budget", k, entries)
		}
	}
}

func TestPaperBudget(t *testing.T) {
	// All PAs and GAs configurations must fit the 32KB (2^18 bits) budget,
	// and use most of it.
	const budget = 1 << 18
	for k := 0; k <= MaxHistory; k++ {
		for _, p := range []Predictor{NewPAs(k), NewGAs(k)} {
			bits := p.SizeBits()
			if bits > budget+MaxHistory {
				t.Fatalf("%s uses %d bits, budget %d", p.Name(), bits, budget)
			}
			if bits < budget/2 {
				t.Fatalf("%s uses only %d bits of %d", p.Name(), bits, budget)
			}
		}
	}
}

func TestPAsGeometry(t *testing.T) {
	p := NewPAs(8)
	if p.BHTEntries() != 1<<14 {
		t.Fatalf("PAs(8) BHT entries %d, want 2^14", p.BHTEntries())
	}
	if p.HistoryLength() != 8 {
		t.Fatal("history length")
	}
	p0 := NewPAs(0)
	if p0.BHTEntries() != 0 {
		t.Fatal("PAs(0) must have no BHT")
	}
	if p0.SizeBits() != 1<<18 {
		t.Fatalf("PAs(0) must be one 2^17-counter table, got %d bits", p0.SizeBits())
	}
}

func TestPanicsOnBadHistory(t *testing.T) {
	for _, f := range []func(){
		func() { NewPAs(-1) },
		func() { NewPAs(MaxHistory + 1) },
		func() { NewGAs(-1) },
		func() { NewGAs(MaxHistory + 1) },
		func() { NewGAg(0) },
		func() { NewPAg(0, 10) },
		func() { NewGShare(10, 11) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

// runPattern drives a predictor with a repeating outcome pattern at one PC
// and returns the miss rate over the last `measure` events (after warmup).
func runPattern(p Predictor, pc uint64, pattern []bool, warmup, measure int) float64 {
	misses := 0
	for i := 0; i < warmup+measure; i++ {
		taken := pattern[i%len(pattern)]
		if i >= warmup && p.Predict(pc) != taken {
			misses++
		}
		p.Update(pc, taken)
	}
	return float64(misses) / float64(measure)
}

func TestBiasedBranchEasyForEveryone(t *testing.T) {
	always := []bool{true}
	preds := []Predictor{
		NewPAs(0), NewPAs(4), NewGAs(0), NewGAs(8),
		NewBimodal(12), NewGShare(12, 6), NewLastTime(12),
		NewGAg(8), NewPAg(8, 10), NewAgree(12, 6, 10),
	}
	for _, p := range preds {
		if miss := runPattern(p, 0x400100, always, 16, 1000); miss > 0 {
			t.Fatalf("%s misses %.3f on always-taken", p.Name(), miss)
		}
	}
}

func TestAlternatorNeedsHistory(t *testing.T) {
	alt := []bool{true, false}
	// Zero history: 2-bit counter oscillates between 1 and 2 -> ~100% miss
	// (the paper's explanation for transition classes 9-10 at k=0).
	if miss := runPattern(NewPAs(0), 0x400100, alt, 64, 1000); miss < 0.9 {
		t.Fatalf("PAs(0) on alternator missed only %.3f, want ~1.0", miss)
	}
	// One bit of local history nails it.
	if miss := runPattern(NewPAs(1), 0x400100, alt, 64, 1000); miss > 0.01 {
		t.Fatalf("PAs(1) on alternator missed %.3f, want ~0", miss)
	}
	// Global history also captures a single alternating branch.
	if miss := runPattern(NewGAs(2), 0x400100, alt, 64, 1000); miss > 0.01 {
		t.Fatalf("GAs(2) on alternator missed %.3f, want ~0", miss)
	}
	// Last-time is the pathological case: always wrong.
	if miss := runPattern(NewLastTime(12), 0x400100, alt, 64, 1000); miss < 0.99 {
		t.Fatalf("LastTime on alternator missed only %.3f, want 1.0", miss)
	}
}

func TestPeriodicPatternNeedsEnoughHistory(t *testing.T) {
	// Period-6 pattern TTTNNN: k >= 5 local history predicts perfectly;
	// k = 1 cannot.
	pattern := []bool{true, true, true, false, false, false}
	if miss := runPattern(NewPAs(6), 0x400100, pattern, 256, 1200); miss > 0.01 {
		t.Fatalf("PAs(6) on period-6 missed %.3f", miss)
	}
	if miss := runPattern(NewPAs(1), 0x400100, pattern, 256, 1200); miss < 0.10 {
		t.Fatalf("PAs(1) on period-6 missed only %.3f, should struggle", miss)
	}
}

func TestPAsZeroEqualsGAsZero(t *testing.T) {
	// k = 0: both degenerate to the same 2^17-counter table (§3).
	pas, gas := NewPAs(0), NewGAs(0)
	r := newTestRand(99)
	for i := 0; i < 20000; i++ {
		pc := uint64(0x400000 + (r.next()%512)*4)
		taken := r.next()%3 != 0
		if pas.Predict(pc) != gas.Predict(pc) {
			t.Fatalf("PAs(0) and GAs(0) diverged at event %d", i)
		}
		pas.Update(pc, taken)
		gas.Update(pc, taken)
	}
}

func TestGAsUsesGlobalCorrelation(t *testing.T) {
	// Branch B is taken iff branch A was taken: global history sees it,
	// per-address history cannot (B alone looks random).
	gas := NewGAs(4)
	r := newTestRand(7)
	warm, measure, misses := 2000, 4000, 0
	for i := 0; i < warm+measure; i++ {
		aTaken := r.next()%2 == 0
		gas.Update(0x400000, aTaken) // branch A (predict value unused)
		predicted := gas.Predict(0x400100)
		if i >= warm && predicted != aTaken {
			misses++
		}
		gas.Update(0x400100, aTaken) // branch B copies A
	}
	if rate := float64(misses) / float64(measure); rate > 0.05 {
		t.Fatalf("GAs missed correlated branch %.3f of the time", rate)
	}
}

func TestStaticBias(t *testing.T) {
	s := NewStaticBias(map[uint64]bool{0x10: false, 0x20: true})
	if s.Predict(0x10) || !s.Predict(0x20) {
		t.Fatal("bias directions")
	}
	if !s.Predict(0x999) {
		t.Fatal("unknown branches default to taken")
	}
	s.Update(0x10, true) // no-op
	if s.Predict(0x10) {
		t.Fatal("static predictor must not learn")
	}
	if s.SizeBits() != 0 || NewAlwaysTaken().SizeBits() != 0 {
		t.Fatal("static predictors cost no table bits")
	}
	if !NewAlwaysTaken().Predict(1) {
		t.Fatal("AlwaysTaken")
	}
}

func TestTournamentLearnsChooser(t *testing.T) {
	// Component a is perfect, b is anti-perfect; the chooser must learn a.
	a := NewStaticBias(map[uint64]bool{0x40: true})
	b := NewStaticBias(map[uint64]bool{0x40: false})
	tour := NewTournament("t", a, b, 10)
	misses := 0
	for i := 0; i < 100; i++ {
		if tour.Predict(0x40) != true {
			misses++
		}
		tour.Update(0x40, true)
	}
	if misses > 5 {
		t.Fatalf("tournament missed %d/100 with a perfect component", misses)
	}
	if tour.Name() != "t" {
		t.Fatal("name")
	}
	if tour.SizeBits() != a.SizeBits()+b.SizeBits()+2*1024 {
		t.Fatalf("size accounting: %d", tour.SizeBits())
	}
}

func TestAgreeLearnsBiasedBranch(t *testing.T) {
	// A 90%-taken branch: agree's first-outcome bias converts most updates
	// into "agree", so even heavy aliasing stays constructive.
	ag := NewAgree(12, 6, 10)
	r := newTestRand(3)
	misses := 0
	const warm, measure = 500, 5000
	for i := 0; i < warm+measure; i++ {
		taken := r.next()%10 != 0
		if i >= warm && ag.Predict(0x80) != taken {
			misses++
		}
		ag.Update(0x80, taken)
	}
	if rate := float64(misses) / measure; rate > 0.2 {
		t.Fatalf("agree missed %.3f on 90%% branch", rate)
	}
}

func TestRunAndSink(t *testing.T) {
	events := []trace.Event{
		{PC: 0x40, Taken: true}, {PC: 0x40, Taken: true},
		{PC: 0x40, Taken: true}, {PC: 0x40, Taken: false},
	}
	res, err := Run(NewBimodal(10), trace.SliceSource(events))
	if err != nil {
		t.Fatal(err)
	}
	if res.Events != 4 {
		t.Fatalf("events %d", res.Events)
	}
	if res.MissRate() < 0 || res.MissRate() > 1 {
		t.Fatalf("miss rate %v", res.MissRate())
	}
	if (Result{}).MissRate() != 0 {
		t.Fatal("empty result miss rate")
	}

	var observed int
	sink := NewSink(NewBimodal(10))
	sink.Observe = func(pc uint64, predicted, taken bool) { observed++ }
	for _, ev := range events {
		sink.Branch(ev.PC, ev.Taken)
	}
	if sink.Res.Events != 4 || observed != 4 {
		t.Fatalf("sink events=%d observed=%d", sink.Res.Events, observed)
	}
}

func TestQuickPredictorDeterminism(t *testing.T) {
	f := func(seed uint64, k8 uint8) bool {
		k := int(k8) % (MaxHistory + 1)
		a, b := NewPAs(k), NewPAs(k)
		g1, g2 := NewGAs(k), NewGAs(k)
		r := newTestRand(seed)
		for i := 0; i < 256; i++ {
			pc := uint64(0x400000 + (r.next()%64)*4)
			taken := r.next()%2 == 0
			if a.Predict(pc) != b.Predict(pc) || g1.Predict(pc) != g2.Predict(pc) {
				return false
			}
			a.Update(pc, taken)
			b.Update(pc, taken)
			g1.Update(pc, taken)
			g2.Update(pc, taken)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// newTestRand is a tiny deterministic generator for predictor tests,
// independent of internal/rng to keep the package dependency-light.
type testRand struct{ s uint64 }

func newTestRand(seed uint64) *testRand { return &testRand{s: seed*2862933555777941757 + 3037000493} }

func (t *testRand) next() uint64 {
	t.s ^= t.s << 13
	t.s ^= t.s >> 7
	t.s ^= t.s << 17
	return t.s
}
