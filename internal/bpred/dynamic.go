package bpred

import (
	"btr/internal/core"
)

// DynamicClassHybrid implements the paper's §6 future-work proposal:
// "It may also be possible to perform classification based on transition
// rate using some form of dynamic counter." Instead of a profiling pass,
// a per-branch monitor table accumulates taken and transition counts over
// a sliding window of executions; once the window fills, the branch is
// classified with the same (taken, transition) policy the static hybrid
// uses, and re-classified every window thereafter so phase changes are
// tracked.
//
// Branches route to the long-history component until first classified
// (the safe default: it handles everything, just with more warmup and
// interference).
type DynamicClassHybrid struct {
	window  uint16
	entries []dynEntry
	mask    uint64
	biasTbl Predictor
	short   Predictor
	long    Predictor
}

type dynEntry struct {
	execs  uint16
	taken  uint16
	trans  uint16
	last   bool
	primed bool

	classified bool
	advice     core.Advice
}

// NewDynamicClassHybrid builds the dynamic hybrid with 2^tableBits monitor
// entries and the given classification window (executions per decision;
// 64 is a good default). Nil components get the same defaults as
// ClassHybrid.
func NewDynamicClassHybrid(tableBits int, window uint16, comp HybridComponents) *DynamicClassHybrid {
	if window == 0 {
		window = 64
	}
	comp = comp.withDefaults()
	return &DynamicClassHybrid{
		window:  window,
		entries: make([]dynEntry, 1<<uint(tableBits)),
		mask:    (1 << uint(tableBits)) - 1,
		biasTbl: comp.BiasTable,
		short:   comp.Short,
		long:    comp.Long,
	}
}

// Name implements Predictor.
func (d *DynamicClassHybrid) Name() string { return "DynamicClassHybrid" }

func (d *DynamicClassHybrid) entry(pc uint64) *dynEntry {
	return &d.entries[pcIndex(pc)&d.mask]
}

func (d *DynamicClassHybrid) component(e *dynEntry) Predictor {
	if !e.classified {
		return d.long
	}
	switch e.advice {
	case core.AdviseStatic:
		return d.biasTbl
	case core.AdviseShortLocal:
		return d.short
	default:
		return d.long
	}
}

// Predict implements Predictor.
func (d *DynamicClassHybrid) Predict(pc uint64) bool {
	return d.component(d.entry(pc)).Predict(pc)
}

// Update implements Predictor: trains the owning component, accumulates
// the monitor counters, and (re)classifies at window boundaries.
func (d *DynamicClassHybrid) Update(pc uint64, taken bool) {
	e := d.entry(pc)
	d.component(e).Update(pc, taken)

	e.execs++
	if taken {
		e.taken++
	}
	if e.primed && taken != e.last {
		e.trans++
	}
	e.last = taken
	e.primed = true

	if e.execs >= d.window {
		takenRate := float64(e.taken) / float64(e.execs)
		transRate := float64(e.trans) / float64(e.execs-1)
		jc := core.JointClass{
			Taken:      core.ClassOf(takenRate),
			Transition: core.ClassOf(transRate),
		}
		e.advice = core.Advise(jc)
		e.classified = true
		e.execs, e.taken, e.trans = 0, 0, 0
		e.primed = false
	}
}

// SizeBits implements Predictor: component state plus the monitor table
// (three window counters, last/primed/classified flags, 2-bit advice per
// entry).
func (d *DynamicClassHybrid) SizeBits() int64 {
	perEntry := int64(3*16 + 3 + 2)
	return d.biasTbl.SizeBits() + d.short.SizeBits() + d.long.SizeBits() +
		int64(len(d.entries))*perEntry
}

// dynEntrySnapshotBytes is the encoded size of one monitor entry:
// three uint16 window counters plus four single-byte flags/advice.
const dynEntrySnapshotBytes = 10

// SnapshotBytes implements Snapshotter: the monitor table plus the
// three dynamic components (all must be Snapshotters).
func (d *DynamicClassHybrid) SnapshotBytes() int64 {
	return int64(len(d.entries))*dynEntrySnapshotBytes +
		asSnapshotter(d.biasTbl, "DynamicClassHybrid").SnapshotBytes() +
		asSnapshotter(d.short, "DynamicClassHybrid").SnapshotBytes() +
		asSnapshotter(d.long, "DynamicClassHybrid").SnapshotBytes()
}

// SnapshotTo implements Snapshotter.
func (d *DynamicClassHybrid) SnapshotTo(dst []byte) int {
	n := 0
	for i := range d.entries {
		e := &d.entries[i]
		dst[n] = byte(e.execs)
		dst[n+1] = byte(e.execs >> 8)
		dst[n+2] = byte(e.taken)
		dst[n+3] = byte(e.taken >> 8)
		dst[n+4] = byte(e.trans)
		dst[n+5] = byte(e.trans >> 8)
		n += 6
		n += putBool(dst[n:], e.last)
		n += putBool(dst[n:], e.primed)
		n += putBool(dst[n:], e.classified)
		dst[n] = byte(e.advice)
		n++
	}
	n += asSnapshotter(d.biasTbl, "DynamicClassHybrid").SnapshotTo(dst[n:])
	n += asSnapshotter(d.short, "DynamicClassHybrid").SnapshotTo(dst[n:])
	n += asSnapshotter(d.long, "DynamicClassHybrid").SnapshotTo(dst[n:])
	return n
}

// RestoreFrom implements Snapshotter.
func (d *DynamicClassHybrid) RestoreFrom(src []byte) int {
	n := 0
	for i := range d.entries {
		e := &d.entries[i]
		e.execs = uint16(src[n]) | uint16(src[n+1])<<8
		e.taken = uint16(src[n+2]) | uint16(src[n+3])<<8
		e.trans = uint16(src[n+4]) | uint16(src[n+5])<<8
		n += 6
		n += getBool(src[n:], &e.last)
		n += getBool(src[n:], &e.primed)
		n += getBool(src[n:], &e.classified)
		e.advice = core.Advice(src[n])
		n++
	}
	n += asSnapshotter(d.biasTbl, "DynamicClassHybrid").RestoreFrom(src[n:])
	n += asSnapshotter(d.short, "DynamicClassHybrid").RestoreFrom(src[n:])
	n += asSnapshotter(d.long, "DynamicClassHybrid").RestoreFrom(src[n:])
	return n
}

// AdviceFor exposes the current dynamic classification of a branch, for
// inspection ("unclassified" during the first window).
func (d *DynamicClassHybrid) AdviceFor(pc uint64) string {
	e := d.entry(pc)
	if !e.classified {
		return "unclassified"
	}
	return e.advice.String()
}
