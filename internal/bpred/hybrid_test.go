package bpred

import (
	"testing"

	"btr/internal/core"
)

// buildTestProfiles fabricates three branch populations: an always-taken
// guard, a strict alternator, and a near-random compare.
func buildTestProfiles() (map[uint64]*core.Profile, core.ClassMap) {
	profiles := make(map[uint64]*core.Profile)

	guard := &core.Profile{}
	for i := 0; i < 1000; i++ {
		guard.Observe(true)
	}
	profiles[0x1000] = guard

	alt := &core.Profile{}
	for i := 0; i < 1000; i++ {
		alt.Observe(i%2 == 0)
	}
	profiles[0x2000] = alt

	rnd := &core.Profile{}
	s := uint64(12345)
	for i := 0; i < 1000; i++ {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		rnd.Observe(s%2 == 0)
	}
	profiles[0x3000] = rnd

	return profiles, core.Classify(profiles)
}

func TestTransitionHybridSteering(t *testing.T) {
	profiles, classes := buildTestProfiles()
	h := NewTransitionHybrid(classes, profiles, HybridComponents{})
	if got := h.ComponentFor(0x1000); got != "static" {
		t.Fatalf("guard steered to %s", got)
	}
	if got := h.ComponentFor(0x2000); got != "short-local" {
		t.Fatalf("alternator steered to %s", got)
	}
	if got := h.ComponentFor(0x3000); got != "long-history" {
		t.Fatalf("random steered to %s", got)
	}
	if got := h.ComponentFor(0xdead); got != "long-history" {
		t.Fatalf("unprofiled steered to %s", got)
	}
	if h.Name() != "TransitionHybrid" {
		t.Fatal("name")
	}
}

func TestTakenHybridSteering(t *testing.T) {
	profiles, classes := buildTestProfiles()
	h := NewTakenHybrid(classes, profiles, HybridComponents{})
	if got := h.ComponentFor(0x1000); got != "static" {
		t.Fatalf("guard steered to %s", got)
	}
	// The taken-rate hybrid misses the alternator: taken rate 0.5.
	if got := h.ComponentFor(0x2000); got != "long-history" {
		t.Fatalf("alternator steered to %s (taken-rate scheme cannot see it)", got)
	}
}

func TestHybridPredictsGuardStatically(t *testing.T) {
	profiles, classes := buildTestProfiles()
	h := NewTransitionHybrid(classes, profiles, HybridComponents{})
	// The static component must predict the guard right from the first
	// dynamic execution — no warmup at all.
	misses := 0
	for i := 0; i < 100; i++ {
		if h.Predict(0x1000) != true {
			misses++
		}
		h.Update(0x1000, true)
	}
	if misses != 0 {
		t.Fatalf("profiled guard missed %d times under the hybrid", misses)
	}
}

func TestHybridAlternatorFastWarmup(t *testing.T) {
	profiles, classes := buildTestProfiles()
	h := NewTransitionHybrid(classes, profiles, HybridComponents{})
	misses := 0
	for i := 0; i < 1000; i++ {
		taken := i%2 == 0
		if i >= 64 && h.Predict(0x2000) != taken {
			misses++
		}
		h.Update(0x2000, taken)
	}
	if misses > 0 {
		t.Fatalf("alternator missed %d times after warmup", misses)
	}
}

func TestHybridBeatsTakenHybridOnMisclassified(t *testing.T) {
	// A block-pattern branch (long runs, ~50% taken, low transition):
	// transition classification sends it to the static component (right),
	// taken classification sends it to the long-history table (slower).
	block := &core.Profile{}
	outcomes := make([]bool, 0, 2000)
	for i := 0; i < 2000; i++ {
		taken := (i/200)%2 == 0 // runs of 200
		outcomes = append(outcomes, taken)
		block.Observe(taken)
	}
	profiles := map[uint64]*core.Profile{0x5000: block}
	classes := core.Classify(profiles)
	if classes[0x5000].Transition > 1 {
		t.Fatalf("block branch transition class %d, expected <= 1", classes[0x5000].Transition)
	}

	trans := NewTransitionHybrid(classes, profiles, HybridComponents{})
	taken := NewTakenHybrid(classes, profiles, HybridComponents{})
	if got := trans.ComponentFor(0x5000); got != "bias-table" {
		t.Fatalf("block branch steered to %s, want bias-table", got)
	}
	if got := taken.ComponentFor(0x5000); got != "long-history" {
		t.Fatalf("taken hybrid steered block branch to %s", got)
	}
	var transMiss, takenMiss int
	for _, o := range outcomes {
		if trans.Predict(0x5000) != o {
			transMiss++
		}
		trans.Update(0x5000, o)
		if taken.Predict(0x5000) != o {
			takenMiss++
		}
		taken.Update(0x5000, o)
	}
	// The bias table misses ~2 per run boundary (2-bit hysteresis), about
	// the same as a long-history table — but costs 1KB instead of 32KB
	// and adds no PHT interference. It must be in the same miss ballpark.
	if transMiss > takenMiss+len(outcomes)/20 {
		t.Fatalf("transition hybrid %d misses vs taken hybrid %d", transMiss, takenMiss)
	}
}

func TestHybridSizeExcludesStaticHints(t *testing.T) {
	profiles, classes := buildTestProfiles()
	h := NewTransitionHybrid(classes, profiles, HybridComponents{})
	biasTbl := NewBimodal(12)
	short := NewPAs(core.DefaultPolicy.ShortHistoryMax)
	long := NewGShare(GAsPHTBits, core.DefaultPolicy.LongHistory)
	if h.SizeBits() != biasTbl.SizeBits()+short.SizeBits()+long.SizeBits() {
		t.Fatalf("hybrid size %d", h.SizeBits())
	}
}

func TestHybridCustomComponents(t *testing.T) {
	profiles, classes := buildTestProfiles()
	h := NewTransitionHybrid(classes, profiles, HybridComponents{
		BiasTable: NewLastTime(10),
		Short:     NewPAs(1),
		Long:      NewGAs(10),
	})
	want := NewLastTime(10).SizeBits() + NewPAs(1).SizeBits() + NewGAs(10).SizeBits()
	if h.SizeBits() != want {
		t.Fatal("custom components not used")
	}
}
