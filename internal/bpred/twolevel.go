package bpred

import "fmt"

// The paper's §3 fixes a 32 KB budget (2^18 bits) for every configuration:
//
//   - GAs: a PHT of 2^17 2-bit counters. For history length k the 17-bit
//     PHT index is k bits of global history with the remaining 17-k bits
//     taken from the branch address.
//   - PAs: a PHT of 2^16 2-bit counters (16 KB), with as much as possible
//     of the remaining 16 KB spent on the per-address branch history table
//     (BHT), restricted to a power-of-two number of entries; that gives
//     2^floor(log2(2^17 / k)) k-bit entries.
//   - k = 0: PAs and GAs degenerate identically to a single table of 2^17
//     2-bit counters indexed by 17 bits of branch address.
//
// MaxHistory bounds the sweep, matching the paper's 0-16.
const (
	// GAsPHTBits is log2 of the GAs pattern history table size.
	GAsPHTBits = 17
	// PAsPHTBits is log2 of the PAs pattern history table size.
	PAsPHTBits = 16
	// BHTBudgetBits is the bit budget for the PAs branch history table.
	BHTBudgetBits = 1 << 17
	// MaxHistory is the largest history length simulated.
	MaxHistory = 16
)

// BHTEntriesLog2 returns log2 of the number of BHT entries the 32 KB
// budget affords for history length k (k >= 1): the largest power of two
// with entries*k <= 2^17.
func BHTEntriesLog2(k int) int {
	if k < 1 {
		panic("bpred: BHTEntriesLog2 requires k >= 1")
	}
	log := 0
	for (1<<(log+1))*k <= BHTBudgetBits {
		log++
	}
	return log
}

// pcIndex extracts the branch-address bits used for indexing. Conditional
// branch instructions are word aligned in the traces, so the two low bits
// carry no information and are dropped, as in sim-bpred.
func pcIndex(pc uint64) uint64 { return pc >> 2 }

// GAs is the global-history two-level adaptive predictor of §3.
type GAs struct {
	k        int
	ghr      uint64 // low k bits hold the global history, newest in bit 0
	histMask uint64
	addrMask uint64
	pht      *CounterTable
}

// NewGAs returns a GAs predictor with history length k in 0..MaxHistory.
func NewGAs(k int) *GAs {
	if k < 0 || k > MaxHistory {
		panic("bpred: GAs history length out of range")
	}
	g := &GAs{
		k:   k,
		pht: NewCounterTable(GAsPHTBits),
	}
	g.histMask = (1 << uint(k)) - 1
	g.addrMask = (1 << uint(GAsPHTBits-k)) - 1
	return g
}

// Name implements Predictor.
func (g *GAs) Name() string { return fmt.Sprintf("GAs(k=%d)", g.k) }

// HistoryLength returns k.
func (g *GAs) HistoryLength() int { return g.k }

func (g *GAs) index(pc uint64) uint64 {
	// k history bits in the low positions, 17-k address bits above them.
	return (pcIndex(pc)&g.addrMask)<<uint(g.k) | (g.ghr & g.histMask)
}

// Predict implements Predictor.
func (g *GAs) Predict(pc uint64) bool { return g.pht.Predict(g.index(pc)) }

// Update implements Predictor.
func (g *GAs) Update(pc uint64, taken bool) {
	g.pht.Update(g.index(pc), taken)
	g.ghr <<= 1
	if taken {
		g.ghr |= 1
	}
}

// PredictUpdate implements PredictUpdater: the PHT index is computed once
// for the fused predict-then-update step.
func (g *GAs) PredictUpdate(pc uint64, taken bool) bool {
	predicted := g.pht.PredictUpdate(g.index(pc), taken)
	g.ghr <<= 1
	if taken {
		g.ghr |= 1
	}
	return predicted
}

// SizeBits implements Predictor.
func (g *GAs) SizeBits() int64 { return g.pht.SizeBits() + int64(g.k) }

// SweepChunk runs the fused predict-then-update protocol over one decoded
// trace chunk — pcs and the direction bitmap dirs (event i's outcome is
// bit i&63 of word i>>6) hold n events — setting bit i of wrong for every
// misprediction. It is the batch hot path of the sweep harness: the loop
// body is fully concrete, and the history register stays in a local.
// Behaviour is identical to n PredictUpdate calls.
func (g *GAs) SweepChunk(pcs, dirs []uint64, n int, wrong []uint64) {
	ghr := g.ghr
	for i := 0; i < n; i++ {
		taken := dirs[i>>6]&(1<<(uint(i)&63)) != 0
		idx := (pcIndex(pcs[i])&g.addrMask)<<uint(g.k) | (ghr & g.histMask)
		if g.pht.PredictUpdate(idx, taken) != taken {
			wrong[i>>6] |= 1 << (uint(i) & 63)
		}
		ghr <<= 1
		if taken {
			ghr |= 1
		}
	}
	g.ghr = ghr
}

// UpdateChunk advances the predictor over one decoded chunk without
// collecting predictions — the warmup pass of the snapshot engine.
// Predict has no side effects, so the post-chunk state is bit-identical
// to SweepChunk's over the same events.
func (g *GAs) UpdateChunk(pcs, dirs []uint64, n int) {
	ghr := g.ghr
	for i := 0; i < n; i++ {
		taken := dirs[i>>6]&(1<<(uint(i)&63)) != 0
		idx := (pcIndex(pcs[i])&g.addrMask)<<uint(g.k) | (ghr & g.histMask)
		g.pht.Update(idx, taken)
		ghr <<= 1
		if taken {
			ghr |= 1
		}
	}
	g.ghr = ghr
}

// SnapshotBytes implements Snapshotter: the PHT plus the global history
// register.
func (g *GAs) SnapshotBytes() int64 { return g.pht.SnapshotBytes() + 8 }

// SnapshotTo implements Snapshotter.
func (g *GAs) SnapshotTo(dst []byte) int {
	n := g.pht.SnapshotTo(dst)
	n += putU64(dst[n:], g.ghr)
	return n
}

// RestoreFrom implements Snapshotter.
func (g *GAs) RestoreFrom(src []byte) int {
	n := g.pht.RestoreFrom(src)
	n += getU64(src[n:], &g.ghr)
	return n
}

// PAs is the per-address-history two-level adaptive predictor of §3.
type PAs struct {
	k        int
	pht      *CounterTable
	bht      []uint64 // per-address history registers, low k bits live
	bhtMask  uint64
	histMask uint64
	addrMask uint64
	phtBits  int
}

// NewPAs returns a PAs predictor with history length k in 0..MaxHistory.
// k = 0 degenerates to the shared 2^17-counter table, identical to GAs(0).
func NewPAs(k int) *PAs {
	if k < 0 || k > MaxHistory {
		panic("bpred: PAs history length out of range")
	}
	p := &PAs{k: k}
	if k == 0 {
		p.phtBits = GAsPHTBits
		p.pht = NewCounterTable(GAsPHTBits)
		p.addrMask = (1 << GAsPHTBits) - 1
		return p
	}
	p.phtBits = PAsPHTBits
	p.pht = NewCounterTable(PAsPHTBits)
	entriesLog := BHTEntriesLog2(k)
	p.bht = make([]uint64, 1<<uint(entriesLog))
	p.bhtMask = uint64(len(p.bht) - 1)
	p.histMask = (1 << uint(k)) - 1
	p.addrMask = (1 << uint(PAsPHTBits-k)) - 1
	return p
}

// Name implements Predictor.
func (p *PAs) Name() string { return fmt.Sprintf("PAs(k=%d)", p.k) }

// HistoryLength returns k.
func (p *PAs) HistoryLength() int { return p.k }

// BHTEntries returns the number of branch history table entries
// (0 when k == 0 and no BHT exists).
func (p *PAs) BHTEntries() int { return len(p.bht) }

func (p *PAs) index(pc uint64) uint64 {
	if p.k == 0 {
		return pcIndex(pc) & p.addrMask
	}
	hist := p.bht[pcIndex(pc)&p.bhtMask] & p.histMask
	return (pcIndex(pc)&p.addrMask)<<uint(p.k) | hist
}

// Predict implements Predictor.
func (p *PAs) Predict(pc uint64) bool { return p.pht.Predict(p.index(pc)) }

// Update implements Predictor.
func (p *PAs) Update(pc uint64, taken bool) {
	p.pht.Update(p.index(pc), taken)
	if p.k == 0 {
		return
	}
	i := pcIndex(pc) & p.bhtMask
	p.bht[i] <<= 1
	if taken {
		p.bht[i] |= 1
	}
}

// PredictUpdate implements PredictUpdater: the BHT entry is loaded and the
// PHT index computed once for the fused predict-then-update step.
func (p *PAs) PredictUpdate(pc uint64, taken bool) bool {
	if p.k == 0 {
		return p.pht.PredictUpdate(pcIndex(pc)&p.addrMask, taken)
	}
	i := pcIndex(pc) & p.bhtMask
	hist := p.bht[i]
	idx := (pcIndex(pc)&p.addrMask)<<uint(p.k) | (hist & p.histMask)
	predicted := p.pht.PredictUpdate(idx, taken)
	hist <<= 1
	if taken {
		hist |= 1
	}
	p.bht[i] = hist
	return predicted
}

// SizeBits implements Predictor.
func (p *PAs) SizeBits() int64 {
	return p.pht.SizeBits() + int64(len(p.bht))*int64(p.k)
}

// SweepChunk is the batch fused step over one decoded trace chunk; see
// GAs.SweepChunk. Behaviour is identical to n PredictUpdate calls.
func (p *PAs) SweepChunk(pcs, dirs []uint64, n int, wrong []uint64) {
	if p.k == 0 {
		for i := 0; i < n; i++ {
			taken := dirs[i>>6]&(1<<(uint(i)&63)) != 0
			if p.pht.PredictUpdate(pcIndex(pcs[i])&p.addrMask, taken) != taken {
				wrong[i>>6] |= 1 << (uint(i) & 63)
			}
		}
		return
	}
	for i := 0; i < n; i++ {
		taken := dirs[i>>6]&(1<<(uint(i)&63)) != 0
		bi := pcIndex(pcs[i]) & p.bhtMask
		hist := p.bht[bi]
		idx := (pcIndex(pcs[i])&p.addrMask)<<uint(p.k) | (hist & p.histMask)
		if p.pht.PredictUpdate(idx, taken) != taken {
			wrong[i>>6] |= 1 << (uint(i) & 63)
		}
		hist <<= 1
		if taken {
			hist |= 1
		}
		p.bht[bi] = hist
	}
}

// UpdateChunk advances the predictor over one decoded chunk without
// collecting predictions; see GAs.UpdateChunk.
func (p *PAs) UpdateChunk(pcs, dirs []uint64, n int) {
	if p.k == 0 {
		for i := 0; i < n; i++ {
			taken := dirs[i>>6]&(1<<(uint(i)&63)) != 0
			p.pht.Update(pcIndex(pcs[i])&p.addrMask, taken)
		}
		return
	}
	for i := 0; i < n; i++ {
		taken := dirs[i>>6]&(1<<(uint(i)&63)) != 0
		bi := pcIndex(pcs[i]) & p.bhtMask
		hist := p.bht[bi]
		idx := (pcIndex(pcs[i])&p.addrMask)<<uint(p.k) | (hist & p.histMask)
		p.pht.Update(idx, taken)
		hist <<= 1
		if taken {
			hist |= 1
		}
		p.bht[bi] = hist
	}
}

// SnapshotBytes implements Snapshotter: the PHT plus the per-address
// history registers (absent when k == 0).
func (p *PAs) SnapshotBytes() int64 {
	return p.pht.SnapshotBytes() + int64(len(p.bht))*8
}

// SnapshotTo implements Snapshotter.
func (p *PAs) SnapshotTo(dst []byte) int {
	n := p.pht.SnapshotTo(dst)
	n += putU64s(dst[n:], p.bht)
	return n
}

// RestoreFrom implements Snapshotter.
func (p *PAs) RestoreFrom(src []byte) int {
	n := p.pht.RestoreFrom(src)
	n += getU64s(p.bht, src[n:])
	return n
}

// GAg is the degenerate global predictor whose PHT is indexed purely by k
// bits of global history (Yeh & Patt's GAg), provided as a baseline.
type GAg struct {
	k    int
	ghr  uint64
	mask uint64
	pht  *CounterTable
}

// NewGAg returns a GAg with history length k in 1..GAsPHTBits.
func NewGAg(k int) *GAg {
	if k < 1 || k > GAsPHTBits {
		panic("bpred: GAg history length out of range")
	}
	return &GAg{k: k, mask: (1 << uint(k)) - 1, pht: NewCounterTable(k)}
}

// Name implements Predictor.
func (g *GAg) Name() string { return fmt.Sprintf("GAg(k=%d)", g.k) }

// Predict implements Predictor.
func (g *GAg) Predict(pc uint64) bool { return g.pht.Predict(g.ghr & g.mask) }

// Update implements Predictor.
func (g *GAg) Update(pc uint64, taken bool) {
	g.pht.Update(g.ghr&g.mask, taken)
	g.ghr <<= 1
	if taken {
		g.ghr |= 1
	}
}

// PredictUpdate implements PredictUpdater.
func (g *GAg) PredictUpdate(pc uint64, taken bool) bool {
	predicted := g.pht.PredictUpdate(g.ghr&g.mask, taken)
	g.ghr <<= 1
	if taken {
		g.ghr |= 1
	}
	return predicted
}

// SizeBits implements Predictor.
func (g *GAg) SizeBits() int64 { return g.pht.SizeBits() + int64(g.k) }

// SnapshotBytes implements Snapshotter.
func (g *GAg) SnapshotBytes() int64 { return g.pht.SnapshotBytes() + 8 }

// SnapshotTo implements Snapshotter.
func (g *GAg) SnapshotTo(dst []byte) int {
	n := g.pht.SnapshotTo(dst)
	n += putU64(dst[n:], g.ghr)
	return n
}

// RestoreFrom implements Snapshotter.
func (g *GAg) RestoreFrom(src []byte) int {
	n := g.pht.RestoreFrom(src)
	n += getU64(src[n:], &g.ghr)
	return n
}

// PAg keeps per-address history registers but shares a single
// history-indexed PHT (Yeh & Patt's PAg), provided as a baseline.
type PAg struct {
	k       int
	bht     []uint64
	bhtMask uint64
	mask    uint64
	pht     *CounterTable
}

// NewPAg returns a PAg with history length k in 1..GAsPHTBits and
// 2^bhtBits history registers.
func NewPAg(k, bhtBits int) *PAg {
	if k < 1 || k > GAsPHTBits {
		panic("bpred: PAg history length out of range")
	}
	if bhtBits < 0 || bhtBits > 24 {
		panic("bpred: PAg BHT bits out of range")
	}
	return &PAg{
		k:       k,
		bht:     make([]uint64, 1<<uint(bhtBits)),
		bhtMask: (1 << uint(bhtBits)) - 1,
		mask:    (1 << uint(k)) - 1,
		pht:     NewCounterTable(k),
	}
}

// Name implements Predictor.
func (p *PAg) Name() string { return fmt.Sprintf("PAg(k=%d)", p.k) }

// Predict implements Predictor.
func (p *PAg) Predict(pc uint64) bool {
	return p.pht.Predict(p.bht[pcIndex(pc)&p.bhtMask] & p.mask)
}

// Update implements Predictor.
func (p *PAg) Update(pc uint64, taken bool) {
	i := pcIndex(pc) & p.bhtMask
	p.pht.Update(p.bht[i]&p.mask, taken)
	p.bht[i] <<= 1
	if taken {
		p.bht[i] |= 1
	}
}

// PredictUpdate implements PredictUpdater.
func (p *PAg) PredictUpdate(pc uint64, taken bool) bool {
	i := pcIndex(pc) & p.bhtMask
	hist := p.bht[i]
	predicted := p.pht.PredictUpdate(hist&p.mask, taken)
	hist <<= 1
	if taken {
		hist |= 1
	}
	p.bht[i] = hist
	return predicted
}

// SizeBits implements Predictor.
func (p *PAg) SizeBits() int64 {
	return p.pht.SizeBits() + int64(len(p.bht))*int64(p.k)
}

// SnapshotBytes implements Snapshotter.
func (p *PAg) SnapshotBytes() int64 {
	return p.pht.SnapshotBytes() + int64(len(p.bht))*8
}

// SnapshotTo implements Snapshotter.
func (p *PAg) SnapshotTo(dst []byte) int {
	n := p.pht.SnapshotTo(dst)
	n += putU64s(dst[n:], p.bht)
	return n
}

// RestoreFrom implements Snapshotter.
func (p *PAg) RestoreFrom(src []byte) int {
	n := p.pht.RestoreFrom(src)
	n += getU64s(p.bht, src[n:])
	return n
}
