package bpred

import (
	"testing"
)

func TestDynamicHybridClassifiesAlternator(t *testing.T) {
	d := NewDynamicClassHybrid(12, 64, HybridComponents{})
	pc := uint64(0x400100)
	if got := d.AdviceFor(pc); got != "unclassified" {
		t.Fatalf("fresh branch advice %q", got)
	}
	misses := 0
	for i := 0; i < 1000; i++ {
		taken := i%2 == 0
		if i >= 200 && d.Predict(pc) != taken {
			misses++
		}
		d.Update(pc, taken)
	}
	if got := d.AdviceFor(pc); got != "short-local" {
		t.Fatalf("alternator dynamically classified as %q", got)
	}
	if misses > 0 {
		t.Fatalf("alternator missed %d times after dynamic classification", misses)
	}
}

func TestDynamicHybridClassifiesBiased(t *testing.T) {
	d := NewDynamicClassHybrid(12, 64, HybridComponents{})
	pc := uint64(0x400200)
	misses := 0
	for i := 0; i < 1000; i++ {
		if i >= 200 && !d.Predict(pc) {
			misses++
		}
		d.Update(pc, true)
	}
	if got := d.AdviceFor(pc); got != "static" {
		t.Fatalf("always-taken branch dynamically classified as %q", got)
	}
	if misses > 0 {
		t.Fatalf("biased branch missed %d times after warmup", misses)
	}
}

func TestDynamicHybridKeepsRandomOnLong(t *testing.T) {
	d := NewDynamicClassHybrid(12, 64, HybridComponents{})
	pc := uint64(0x400300)
	r := newTestRand(41)
	for i := 0; i < 2000; i++ {
		taken := r.next()%2 == 0
		d.Predict(pc)
		d.Update(pc, taken)
	}
	// Random branch lands in a middle class -> long-history (or, with
	// window noise, occasionally non-predictive, which also routes long).
	if got := d.AdviceFor(pc); got != "long-history" && got != "non-predictive" {
		t.Fatalf("random branch dynamically classified as %q", got)
	}
}

func TestDynamicHybridAdaptsToPhaseChange(t *testing.T) {
	// A branch that is an alternator for a long phase, then becomes
	// always-taken: the periodic re-classification must move it.
	d := NewDynamicClassHybrid(12, 64, HybridComponents{})
	pc := uint64(0x400400)
	for i := 0; i < 640; i++ {
		d.Update(pc, i%2 == 0)
	}
	if got := d.AdviceFor(pc); got != "short-local" {
		t.Fatalf("phase 1 classification %q", got)
	}
	misses := 0
	for i := 0; i < 640; i++ {
		if i >= 200 && !d.Predict(pc) {
			misses++
		}
		d.Update(pc, true)
	}
	if got := d.AdviceFor(pc); got != "static" {
		t.Fatalf("phase 2 classification %q", got)
	}
	if misses > 5 {
		t.Fatalf("missed %d times after phase change", misses)
	}
}

func TestDynamicHybridWindowDefault(t *testing.T) {
	d := NewDynamicClassHybrid(8, 0, HybridComponents{})
	if d.window != 64 {
		t.Fatalf("default window %d", d.window)
	}
	if d.SizeBits() <= 0 {
		t.Fatal("size accounting")
	}
}
