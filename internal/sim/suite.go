package sim

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"btr/internal/core"
	"btr/internal/sched"
	"btr/internal/stats"
	"btr/internal/trace"
	"btr/internal/workload"
)

// InputError records one input that produced no result, with the
// recovered cause (e.g. a panicking workload generator).
type InputError struct {
	// Spec names the failed input; zero when the caller aggregated a nil
	// result without spec context.
	Spec workload.Spec
	// Err is the recovered cause.
	Err error
}

// Error renders "bench/input: cause".
func (e InputError) Error() string {
	name := e.Spec.Name()
	if e.Spec.Bench == "" && e.Spec.Input == "" {
		name = "input"
	}
	return fmt.Sprintf("%s: %v", name, e.Err)
}

// Unwrap exposes the cause to errors.Is/As.
func (e InputError) Unwrap() error { return e.Err }

// errNoResult is the cause recorded when a nil result carries no
// explanation of its own.
var errNoResult = errors.New("produced no result")

// ErrCanceled is the cause recorded for inputs dropped because their
// suite run's group was canceled (sched.Group.Cancel — a disconnected
// brserve client, a deadline, an interrupt). Test with errors.Is: the
// recorded error may wrap it in task context.
var ErrCanceled = errors.New("suite run canceled")

// recoveredErr wraps a recovered panic value in task context. Error
// values keep their chain (%w) so upper layers can classify the cause —
// errors.Is(err, trace.ErrCorruptSpill) must see through "bank sweep
// failed: ..." for the suite's quarantine-and-retry round to trigger.
func recoveredErr(prefix string, r any) error {
	if err, ok := r.(error); ok {
		return fmt.Errorf("%s: %w", prefix, err)
	}
	return fmt.Errorf("%s: %v", prefix, r)
}

// SuiteResult aggregates InputResults across benchmark inputs, dynamic-
// occurrence weighted, which is how every paper figure reports data.
type SuiteResult struct {
	// Inputs holds the per-input results in suite order.
	Inputs []*InputResult

	// Distribution is the suite-wide joint distribution (Table 2, Figures
	// 1-2): each static branch weighted by its dynamic count, classified
	// within its own input's profile.
	Distribution core.Distribution

	// Exec and Miss are the summed class-attributed counts.
	Exec JointCounts
	Miss [NumKinds][NumHistories]JointCounts

	// HardByBench histograms Figure 15 distances per benchmark.
	HardByBench map[string]*stats.Histogram

	// Mem folds the per-input memory-shape counters (recording
	// footprint, spill page-ins, decoded-pool traffic): counters sum
	// across inputs, the peaks are the largest single input's (inputs
	// run concurrently, so suite-wide peaks are not additive).
	Mem MemStats

	// Dropped records the inputs skipped during aggregation — workloads
	// that failed to produce a result — each with its spec and the
	// recovered cause, so a failed run is diagnosable.
	Dropped []InputError
}

// RunSuite runs every spec through the two-pass pipeline and aggregates.
//
// The default engine is one global work-stealing scheduler over
// (input, bank-batch) tasks: each input starts as a profile+record
// task, and each completed recording fans out its 34-slot PAs/GAs sweep
// as worker-sized batches into the same queue, so late-arriving fan-out
// from a heavy input backfills cores freed by small ones instead of
// queueing behind a private per-input pool. Every sweep batch is a pure
// function of its input's recorded stream, so scheduling order cannot
// change results (bit-for-bit identical to the nested-pool and
// NoRecord engines; see TestScheduledMatchesLegacy).
//
// cfg.NoSched (or cfg.NoRecord, whose regenerating pipeline has no
// schedulable sweep stage) selects the legacy shape instead: a bounded
// pool of whole-input workers, each sharding its own bank.
func RunSuite(specs []workload.Spec, cfg Config) *SuiteResult {
	if cfg.NoSched || cfg.NoRecord {
		return runSuitePool(specs, cfg)
	}
	return runSuiteScheduled(specs, cfg)
}

func (c Config) suiteWorkers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// runSuiteScheduled is the global-scheduler engine. With cfg.Sched set
// the suite rides that shared scheduler; otherwise a private one is
// built and stopped around the run.
func runSuiteScheduled(specs []workload.Spec, cfg Config) *SuiteResult {
	s := cfg.Sched
	if s == nil {
		// Workers are NOT clamped to len(specs): the sweep fan-out gives
		// every core work even for a single-input suite.
		s = sched.New(cfg.suiteWorkers())
		defer s.Close()
	}
	return RunSuiteOn(s, specs, cfg)
}

// RunSuiteOn runs the scheduled engine's task grid for specs as one
// completion-tracked group on s, which may be shared by any number of
// concurrent suite runs: each call gets a private barrier (and private
// panic propagation) while every call's profile, attribution and sweep
// tasks steal-balance over the same workers. The scheduler is left
// running. Configs selecting the pool engines (NoSched, NoRecord) have
// no schedulable task grid and run their private pools instead, s
// untouched. Results are bit-identical to RunSuite for every engine and
// any number of concurrent callers — scheduling order is
// result-invisible by construction.
func RunSuiteOn(s *sched.Scheduler, specs []workload.Spec, cfg Config) *SuiteResult {
	if cfg.NoSched || cfg.NoRecord {
		return runSuitePool(specs, cfg)
	}
	return RunSuiteGroup(s.NewGroup(), specs, cfg)
}

// RunSuiteGroup is RunSuiteOn with a caller-owned group: the suite's
// whole task grid joins g, so the caller can Cancel it mid-run (a
// disconnected client, a deadline) — canceled inputs land in
// SuiteResult.Dropped with ErrCanceled and the call returns once the
// queued tasks drain, in bounded time because every grid checks the
// flag at task boundaries.
//
// It is also where spill corruption is recovered: an input that failed
// because its cached recording no longer decodes (errors.Is
// trace.ErrCorruptSpill — a checksum mismatch, a truncated file) has
// the cache entry quarantined and is re-run once on the same group.
// The retry finds no recording and re-records from the generator, so
// its result is bit-identical to an uncorrupted run; a second failure
// stays in Dropped with its cause.
func RunSuiteGroup(g *sched.Group, specs []workload.Spec, cfg Config) *SuiteResult {
	if cfg.NoSched || cfg.NoRecord {
		return runSuitePool(specs, cfg)
	}
	workers := g.Scheduler().Workers()
	results := make([]*InputResult, len(specs))
	errs := make([]error, len(specs))
	submit := func(i int) {
		g.Submit(func(w *sched.Worker) {
			profileTask(w, specs[i], cfg, workers, &results[i], &errs[i])
		})
	}
	for i := range specs {
		submit(i)
	}
	g.Wait()
	if cfg.Cache != nil && !g.Canceled() {
		retried := false
		for i := range specs {
			if results[i] == nil && errors.Is(errs[i], trace.ErrCorruptSpill) {
				cfg.Cache.Quarantine(cfg.cacheKey(specs[i]))
				errs[i] = nil
				submit(i)
				retried = true
			}
		}
		if retried {
			g.Wait()
		}
	}
	return aggregate(results, specs, errs, cfg)
}

// profileTask runs one input's pass 1 and fans out its bank sweep as a
// (slot × chunk-range) task grid (or whole-trace slot batches under
// cfg.ChunkTasks < 0). In the chunked engine the attribution pre-pass
// is itself a parallel task grid (attribGrid) between pass 1 and the
// sweep, and the sweep checks chunks out of a byte-budgeted decoded
// pool instead of a fully retained column array. A panicking workload
// is converted to a per-input error (the result stays nil and is
// reported via SuiteResult.Dropped); the suite run continues. The last
// sweep task to finish folds the counters and publishes the result —
// Scheduler.Wait's barrier makes the write visible to the aggregation.
func profileTask(w *sched.Worker, spec workload.Spec, cfg Config, workers int, out **InputResult, errOut *error) {
	if w.Canceled() {
		*errOut = ErrCanceled
		return
	}
	if cfg.ChunkTasks < 0 {
		// Slot-only baseline: sequential attribution, whole-trace batches.
		var res *InputResult
		var classIdx []uint8
		func() {
			defer func() {
				if r := recover(); r != nil {
					*errOut = recoveredErr("workload panicked", r)
				}
			}()
			res, classIdx = profileStage(spec, cfg)
		}()
		if res == nil {
			return
		}
		slotOnlySweep(w, cfg, workers, res, classIdx, out, errOut)
		return
	}
	if res, classIdx, ok := profileCached(spec, cfg); ok {
		// Cached profile: no generator, no attribution — straight to sweep.
		pool := cfg.newDecodedPool(res.Recorded)
		startSweep(w, cfg, res, classIdx, pool, out, errOut)
		return
	}
	var res *InputResult
	func() {
		defer func() {
			if r := recover(); r != nil {
				*errOut = recoveredErr("workload panicked", r)
			}
		}()
		res = passOne(spec, cfg)
	}()
	if res == nil {
		return
	}
	newAttribGrid(cfg, spec, res, workers, out, errOut).launch(w)
}

// startChunkSweep fans an input's bank sweep out as numBankSlots chains
// over the decoded-chunk pool. Chain heads go out oldest-first: the
// submitting worker pops the last chain LIFO and rides it range by
// range (hot predictor tables), while thieves peel whole un-started
// chains FIFO.
func startChunkSweep(w *sched.Worker, cfg Config, res *InputResult, classIdx []uint8, pool *trace.DecodedPool, out **InputResult, errOut *error) {
	cs := newChunkSweep(cfg, res, classIdx, pool, out, errOut)
	if cs.live.Load() == 0 {
		// Empty recording: nothing to sweep, publish immediately.
		finalizeMem(res, pool)
		*out = res
		return
	}
	for i := range cs.chains {
		i := i
		w.Submit(func(w *sched.Worker) { cs.advance(w, i) })
	}
}

// slotOnlySweep is the PR-2 sweep shape, kept bit-identical as the
// chunk-axis baseline (cfg.ChunkTasks < 0): BankWorkers whole-trace
// batches, clamped to the worker count because each batch decodes the
// trace itself — exactly the redundancy the chunk-range grid removes.
// Cancellation is checked per batch (the coarsest boundary this shape
// has): a canceled batch poisons the sweep with ErrCanceled and the
// input lands in Dropped unpublished.
func slotOnlySweep(w *sched.Worker, cfg Config, workers int, res *InputResult, classIdx []uint8, out **InputResult, errOut *error) {
	batches := cfg.bankWorkers()
	if batches > workers {
		batches = workers
	}
	misses := make([]missCell, numBankSlots)
	groups := bankGroups(batches, misses)
	var remaining atomic.Int32
	var failed atomic.Bool
	remaining.Store(int32(len(groups)))
	for _, group := range groups {
		group := group
		w.Submit(func(w *sched.Worker) {
			if failed.Load() {
				return
			}
			if w.Canceled() {
				if failed.CompareAndSwap(false, true) {
					*errOut = ErrCanceled
				}
				return
			}
			sweepSlots(group, res.Recorded, classIdx)
			if remaining.Add(-1) == 0 {
				foldMisses(res, misses)
				finalizeMem(res, nil)
				*out = res
			}
		})
	}
}

// chunkSweep is one input's in-flight (slot × chunk-range) sweep grid.
// Every bank slot is its own chain over the shared decoded-chunk pool
// (Checkout decodes — or pages from the spill file — on miss, the
// budget bounds what stays resident between visits); a chain's ranges
// run strictly in order (the predictor state hands off from range to
// range by living in the chain), so results are bit-identical to a
// serial sweep, while distinct chains are independent and steal-
// balanced across every core. Each range accumulates into its own
// partial missCell; fold reduces the partials in (slot, range) order
// once the last chain finishes.
type chunkSweep struct {
	res      *InputResult
	classIdx []uint8
	pool     *trace.DecodedPool
	nchunks  int
	stride   int // chunks per range task
	ra       int // read-ahead depth (Config.ReadAhead); 0 = no hints
	chains   []sweepChain
	live     atomic.Int32 // chains not yet exhausted
	failed   atomic.Bool  // poison: a chain hit a paging failure
	out      **InputResult
	errOut   *error
}

// sweepChain is one bank slot's sequential march over the chunk axis.
// next, pf and partials are only touched by the chain's current task,
// and the scheduler orders task (slot, r) before (slot, r+1) by
// construction, so the chain needs no locking.
type sweepChain struct {
	slot     int
	p        chunkSweeper
	next     int        // next chunk index to sweep
	pf       int        // first chunk index not yet hinted to the prefetcher
	partials []missCell // one per completed range, in range order
}

func newChunkSweep(cfg Config, res *InputResult, classIdx []uint8, pool *trace.DecodedPool, out **InputResult, errOut *error) *chunkSweep {
	nchunks := res.Recorded.Chunks()
	cs := &chunkSweep{
		res:      res,
		classIdx: classIdx,
		pool:     pool,
		nchunks:  nchunks,
		stride:   cfg.chunkTasks(),
		ra:       cfg.ReadAhead,
		chains:   make([]sweepChain, numBankSlots),
		out:      out,
		errOut:   errOut,
	}
	// Capacity hint only; over-wide strides still append exactly one
	// partial per completed range.
	ranges := nchunks/cs.stride + 1
	if nchunks > 0 {
		cs.live.Store(int32(numBankSlots))
	}
	for i := range cs.chains {
		cs.chains[i] = sweepChain{slot: i, p: bankSlotPredictor(i), partials: make([]missCell, 0, ranges)}
	}
	return cs
}

// advance runs one (slot, chunk-range) task: check the chain's next
// stride chunks out of the pool, sweep them, bank the range's partial,
// and either re-queue the chain's continuation or — as the last chain
// to exhaust the trace — fold and publish the input's result. A panic
// (a spill paging failure) poisons the grid: the cause is recorded
// once, sibling chains bail out at their next range, live never
// reaches zero, and the unpublished input is reported via
// SuiteResult.Dropped. Group cancellation poisons the same way with
// ErrCanceled, so a canceled request's chains stop at their next range
// instead of sweeping the rest of the trace.
func (cs *chunkSweep) advance(w *sched.Worker, ci int) {
	defer func() {
		if r := recover(); r != nil {
			if cs.failed.CompareAndSwap(false, true) {
				*cs.errOut = recoveredErr("bank sweep failed", r)
				// The grid never publishes (finalizeMem never runs), so
				// the poisoning task stops the prefetch workers itself.
				cs.pool.CancelPrefetch()
				cs.pool.ClosePrefetch()
			}
		}
	}()
	if cs.failed.Load() {
		return
	}
	if w.Canceled() {
		if cs.failed.CompareAndSwap(false, true) {
			*cs.errOut = ErrCanceled
			cs.pool.CancelPrefetch()
			cs.pool.ClosePrefetch()
		}
		return
	}
	ch := &cs.chains[ci]
	end := ch.next + cs.stride
	if end > cs.nchunks || end < 0 { // < 0: stride overflow near MaxInt
		end = cs.nchunks
	}
	var cell missCell
	var wrong [(trace.DefaultChunkEvents + 63) / 64]uint64
	scratch := wrong[:]
	for k := ch.next; k < end; k++ {
		if cs.ra > 0 {
			// Hint the chain's upcoming window (across range boundaries —
			// the chain marches the whole chunk axis) so paging and decode
			// run ahead of the cursor.
			hi := k + 1 + cs.ra
			if hi > cs.nchunks {
				hi = cs.nchunks
			}
			if ch.pf <= k {
				ch.pf = k + 1
			}
			for ; ch.pf < hi; ch.pf++ {
				cs.pool.Prefetch(ch.pf)
			}
		}
		d := cs.pool.Checkout(k)
		if words := (d.N + 63) / 64; words > len(scratch) {
			scratch = make([]uint64, words)
		}
		sweepDecodedChunk(ch.p, d, cs.classIdx[d.Base:d.Base+int64(d.N)], &cell, scratch)
		cs.pool.Release(k)
	}
	ch.partials = append(ch.partials, cell)
	ch.next = end
	if end < cs.nchunks {
		if cs.ra > 0 {
			// Read-ahead mode convoys the chains: breadth-first
			// continuations keep all the slots' cursors clustered, so a
			// transit chunk decoded (or prefetched) for one chain is
			// still resident when the other 33 arrive, instead of every
			// chain re-paying the decode on its own depth-first march.
			w.SubmitFair(func(w *sched.Worker) { cs.advance(w, ci) })
		} else {
			w.Submit(func(w *sched.Worker) { cs.advance(w, ci) })
		}
		return
	}
	if cs.live.Add(-1) == 0 {
		cs.fold()
		finalizeMem(cs.res, cs.pool)
		*cs.out = cs.res
	}
}

// fold is the chunk-axis reduction: per-range partials sum into flat
// per-slot cells in deterministic (slot, range) order — int64 addition,
// so any order would be bit-identical anyway — and land in res.Miss via
// foldMisses.
func (cs *chunkSweep) fold() {
	flat := make([]missCell, numBankSlots)
	for i := range cs.chains {
		ch := &cs.chains[i]
		for r := range ch.partials {
			addCell(&flat[ch.slot], &ch.partials[r])
		}
	}
	foldMisses(cs.res, flat)
}

// runSuitePool is the legacy nested-pool engine: exactly
// min(Workers, len(specs)) goroutines pull input indices from a shared
// queue and run whole inputs (each sharding its own bank via RunInput),
// so worker count — not just concurrency — stays fixed no matter how
// large the suite is.
func runSuitePool(specs []workload.Spec, cfg Config) *SuiteResult {
	workers := cfg.suiteWorkers()
	if workers > len(specs) {
		workers = len(specs)
	}
	results := make([]*InputResult, len(specs))
	errs := make([]error, len(specs))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				runOne(specs[i], cfg, &results[i], &errs[i])
			}
		}()
	}
	for i := range specs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return aggregate(results, specs, errs, cfg)
}

// runOne runs a single input, converting a panicking workload into a nil
// result with a recorded cause (reported via SuiteResult.Dropped) so one
// bad generator cannot take down a whole suite run.
func runOne(spec workload.Spec, cfg Config, out **InputResult, errOut *error) {
	defer func() {
		if r := recover(); r != nil {
			*out = nil
			*errOut = fmt.Errorf("workload panicked: %v", r)
		}
	}()
	*out = RunInput(spec, cfg)
}

// Aggregate folds per-input results into a SuiteResult. Nil entries —
// inputs that never produced a result — are skipped and reported via
// Dropped rather than panicking the whole suite.
func Aggregate(results []*InputResult, cfg Config) *SuiteResult {
	return aggregate(results, nil, nil, cfg)
}

// aggregate is Aggregate plus the per-input context RunSuite has:
// specs[i] and errs[i] explain a nil results[i]. Either slice may be
// nil.
func aggregate(results []*InputResult, specs []workload.Spec, errs []error, cfg Config) *SuiteResult {
	suite := &SuiteResult{
		Inputs:      make([]*InputResult, 0, len(results)),
		HardByBench: make(map[string]*stats.Histogram),
	}
	for i, r := range results {
		if r == nil {
			ie := InputError{Err: errNoResult}
			if specs != nil {
				ie.Spec = specs[i]
			}
			if errs != nil && errs[i] != nil {
				ie.Err = errs[i]
			}
			suite.Dropped = append(suite.Dropped, ie)
			continue
		}
		suite.Inputs = append(suite.Inputs, r)
		suite.Distribution.AddProfiles(r.Profiles)
		suite.Exec.Add(&r.Exec)
		suite.Mem.Add(&r.Mem)
		for kind := Kind(0); kind < NumKinds; kind++ {
			for k := 0; k < NumHistories; k++ {
				suite.Miss[kind][k].Add(&r.Miss[kind][k])
			}
		}
		h := suite.HardByBench[r.Spec.Bench]
		if h == nil {
			h = stats.NewHistogram(cfg.window() + 1)
			suite.HardByBench[r.Spec.Bench] = h
		}
		for i, c := range r.HardDistances.Bins {
			h.Bins[i] += c
		}
	}
	return suite
}

// Benchmarks lists the distinct benchmark names present, in input order.
func (s *SuiteResult) Benchmarks() []string {
	seen := make(map[string]bool)
	var out []string
	for _, r := range s.Inputs {
		if !seen[r.Spec.Bench] {
			seen[r.Spec.Bench] = true
			out = append(out, r.Spec.Bench)
		}
	}
	sort.Strings(out)
	return out
}

// TotalEvents sums dynamic branches across inputs.
func (s *SuiteResult) TotalEvents() int64 {
	var sum int64
	for _, r := range s.Inputs {
		sum += r.Events
	}
	return sum
}
