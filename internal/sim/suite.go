package sim

import (
	"runtime"
	"sort"
	"sync"

	"btr/internal/core"
	"btr/internal/stats"
	"btr/internal/workload"
)

// SuiteResult aggregates InputResults across benchmark inputs, dynamic-
// occurrence weighted, which is how every paper figure reports data.
type SuiteResult struct {
	// Inputs holds the per-input results in suite order.
	Inputs []*InputResult

	// Distribution is the suite-wide joint distribution (Table 2, Figures
	// 1-2): each static branch weighted by its dynamic count, classified
	// within its own input's profile.
	Distribution core.Distribution

	// Exec and Miss are the summed class-attributed counts.
	Exec JointCounts
	Miss [NumKinds][NumHistories]JointCounts

	// HardByBench histograms Figure 15 distances per benchmark.
	HardByBench map[string]*stats.Histogram

	// Dropped counts nil per-input results skipped during aggregation
	// (a workload that failed to produce a result, e.g. panicked).
	Dropped int
}

// RunSuite runs every spec through the two-pass pipeline, in parallel up
// to cfg.Workers, and aggregates. The pool is bounded: exactly
// min(Workers, len(specs)) goroutines pull input indices from a shared
// queue, so worker count — not just concurrency — stays fixed no matter
// how large the suite is.
func RunSuite(specs []workload.Spec, cfg Config) *SuiteResult {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(specs) {
		workers = len(specs)
	}
	results := make([]*InputResult, len(specs))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				runOne(specs[i], cfg, &results[i])
			}
		}()
	}
	for i := range specs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return Aggregate(results, cfg)
}

// runOne runs a single input, converting a panicking workload into a nil
// result (reported by Aggregate as Dropped) so one bad generator cannot
// take down a whole suite run.
func runOne(spec workload.Spec, cfg Config, out **InputResult) {
	defer func() {
		if recover() != nil {
			*out = nil
		}
	}()
	*out = RunInput(spec, cfg)
}

// Aggregate folds per-input results into a SuiteResult. Nil entries —
// inputs that never produced a result — are skipped and reported via
// Dropped rather than panicking the whole suite.
func Aggregate(results []*InputResult, cfg Config) *SuiteResult {
	suite := &SuiteResult{
		Inputs:      make([]*InputResult, 0, len(results)),
		HardByBench: make(map[string]*stats.Histogram),
	}
	for _, r := range results {
		if r == nil {
			suite.Dropped++
			continue
		}
		suite.Inputs = append(suite.Inputs, r)
		suite.Distribution.AddProfiles(r.Profiles)
		suite.Exec.Add(&r.Exec)
		for kind := Kind(0); kind < NumKinds; kind++ {
			for k := 0; k < NumHistories; k++ {
				suite.Miss[kind][k].Add(&r.Miss[kind][k])
			}
		}
		h := suite.HardByBench[r.Spec.Bench]
		if h == nil {
			h = stats.NewHistogram(cfg.window() + 1)
			suite.HardByBench[r.Spec.Bench] = h
		}
		for i, c := range r.HardDistances.Bins {
			h.Bins[i] += c
		}
	}
	return suite
}

// Benchmarks lists the distinct benchmark names present, in input order.
func (s *SuiteResult) Benchmarks() []string {
	seen := make(map[string]bool)
	var out []string
	for _, r := range s.Inputs {
		if !seen[r.Spec.Bench] {
			seen[r.Spec.Bench] = true
			out = append(out, r.Spec.Bench)
		}
	}
	sort.Strings(out)
	return out
}

// TotalEvents sums dynamic branches across inputs.
func (s *SuiteResult) TotalEvents() int64 {
	var sum int64
	for _, r := range s.Inputs {
		sum += r.Events
	}
	return sum
}
