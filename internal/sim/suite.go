package sim

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"btr/internal/core"
	"btr/internal/sched"
	"btr/internal/stats"
	"btr/internal/workload"
)

// InputError records one input that produced no result, with the
// recovered cause (e.g. a panicking workload generator).
type InputError struct {
	// Spec names the failed input; zero when the caller aggregated a nil
	// result without spec context.
	Spec workload.Spec
	// Err is the recovered cause.
	Err error
}

// Error renders "bench/input: cause".
func (e InputError) Error() string {
	name := e.Spec.Name()
	if e.Spec.Bench == "" && e.Spec.Input == "" {
		name = "input"
	}
	return fmt.Sprintf("%s: %v", name, e.Err)
}

// Unwrap exposes the cause to errors.Is/As.
func (e InputError) Unwrap() error { return e.Err }

// errNoResult is the cause recorded when a nil result carries no
// explanation of its own.
var errNoResult = errors.New("produced no result")

// SuiteResult aggregates InputResults across benchmark inputs, dynamic-
// occurrence weighted, which is how every paper figure reports data.
type SuiteResult struct {
	// Inputs holds the per-input results in suite order.
	Inputs []*InputResult

	// Distribution is the suite-wide joint distribution (Table 2, Figures
	// 1-2): each static branch weighted by its dynamic count, classified
	// within its own input's profile.
	Distribution core.Distribution

	// Exec and Miss are the summed class-attributed counts.
	Exec JointCounts
	Miss [NumKinds][NumHistories]JointCounts

	// HardByBench histograms Figure 15 distances per benchmark.
	HardByBench map[string]*stats.Histogram

	// Dropped records the inputs skipped during aggregation — workloads
	// that failed to produce a result — each with its spec and the
	// recovered cause, so a failed run is diagnosable.
	Dropped []InputError
}

// RunSuite runs every spec through the two-pass pipeline and aggregates.
//
// The default engine is one global work-stealing scheduler over
// (input, bank-batch) tasks: each input starts as a profile+record
// task, and each completed recording fans out its 34-slot PAs/GAs sweep
// as worker-sized batches into the same queue, so late-arriving fan-out
// from a heavy input backfills cores freed by small ones instead of
// queueing behind a private per-input pool. Every sweep batch is a pure
// function of its input's recorded stream, so scheduling order cannot
// change results (bit-for-bit identical to the nested-pool and
// NoRecord engines; see TestScheduledMatchesLegacy).
//
// cfg.NoSched (or cfg.NoRecord, whose regenerating pipeline has no
// schedulable sweep stage) selects the legacy shape instead: a bounded
// pool of whole-input workers, each sharding its own bank.
func RunSuite(specs []workload.Spec, cfg Config) *SuiteResult {
	if cfg.NoSched || cfg.NoRecord {
		return runSuitePool(specs, cfg)
	}
	return runSuiteScheduled(specs, cfg)
}

func (c Config) suiteWorkers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// runSuiteScheduled is the global-scheduler engine.
func runSuiteScheduled(specs []workload.Spec, cfg Config) *SuiteResult {
	// Workers are NOT clamped to len(specs): the sweep fan-out gives
	// every core work even for a single-input suite.
	workers := cfg.suiteWorkers()
	s := sched.New(workers)
	results := make([]*InputResult, len(specs))
	errs := make([]error, len(specs))
	// Sweep batches per input: the bank pool sizing, clamped to the
	// scheduler's worker count — more batches than workers would only
	// buy redundant serial trace decodes (each batch decodes the trace
	// once). One worker therefore means one batch and a single decode.
	// Batch count is result-invisible (TestScheduledBatchCountIrrelevant).
	batches := cfg.bankWorkers()
	if batches > workers {
		batches = workers
	}
	for i := range specs {
		i := i
		s.Submit(func(w *sched.Worker) {
			profileTask(w, specs[i], cfg, batches, &results[i], &errs[i])
		})
	}
	s.Wait()
	return aggregate(results, specs, errs, cfg)
}

// profileTask runs one input's pass 1 and fans out its bank sweep. A
// panicking workload is converted to a per-input error (the result
// stays nil and is reported via SuiteResult.Dropped); the suite run
// continues. The last sweep batch to finish folds the counters and
// publishes the result — Scheduler.Wait's barrier makes the write
// visible to the aggregation.
func profileTask(w *sched.Worker, spec workload.Spec, cfg Config, batches int, out **InputResult, errOut *error) {
	var res *InputResult
	var classIdx []uint8
	func() {
		defer func() {
			if r := recover(); r != nil {
				*errOut = fmt.Errorf("workload panicked: %v", r)
			}
		}()
		res, classIdx = profileStage(spec, cfg)
	}()
	if res == nil {
		return
	}
	misses := make([]missCell, numBankSlots)
	groups := bankGroups(batches, misses)
	var remaining atomic.Int32
	remaining.Store(int32(len(groups)))
	for _, group := range groups {
		group := group
		w.Submit(func(*sched.Worker) {
			sweepSlots(group, res.Recorded, classIdx)
			if remaining.Add(-1) == 0 {
				foldMisses(res, misses)
				*out = res
			}
		})
	}
}

// runSuitePool is the legacy nested-pool engine: exactly
// min(Workers, len(specs)) goroutines pull input indices from a shared
// queue and run whole inputs (each sharding its own bank via RunInput),
// so worker count — not just concurrency — stays fixed no matter how
// large the suite is.
func runSuitePool(specs []workload.Spec, cfg Config) *SuiteResult {
	workers := cfg.suiteWorkers()
	if workers > len(specs) {
		workers = len(specs)
	}
	results := make([]*InputResult, len(specs))
	errs := make([]error, len(specs))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				runOne(specs[i], cfg, &results[i], &errs[i])
			}
		}()
	}
	for i := range specs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return aggregate(results, specs, errs, cfg)
}

// runOne runs a single input, converting a panicking workload into a nil
// result with a recorded cause (reported via SuiteResult.Dropped) so one
// bad generator cannot take down a whole suite run.
func runOne(spec workload.Spec, cfg Config, out **InputResult, errOut *error) {
	defer func() {
		if r := recover(); r != nil {
			*out = nil
			*errOut = fmt.Errorf("workload panicked: %v", r)
		}
	}()
	*out = RunInput(spec, cfg)
}

// Aggregate folds per-input results into a SuiteResult. Nil entries —
// inputs that never produced a result — are skipped and reported via
// Dropped rather than panicking the whole suite.
func Aggregate(results []*InputResult, cfg Config) *SuiteResult {
	return aggregate(results, nil, nil, cfg)
}

// aggregate is Aggregate plus the per-input context RunSuite has:
// specs[i] and errs[i] explain a nil results[i]. Either slice may be
// nil.
func aggregate(results []*InputResult, specs []workload.Spec, errs []error, cfg Config) *SuiteResult {
	suite := &SuiteResult{
		Inputs:      make([]*InputResult, 0, len(results)),
		HardByBench: make(map[string]*stats.Histogram),
	}
	for i, r := range results {
		if r == nil {
			ie := InputError{Err: errNoResult}
			if specs != nil {
				ie.Spec = specs[i]
			}
			if errs != nil && errs[i] != nil {
				ie.Err = errs[i]
			}
			suite.Dropped = append(suite.Dropped, ie)
			continue
		}
		suite.Inputs = append(suite.Inputs, r)
		suite.Distribution.AddProfiles(r.Profiles)
		suite.Exec.Add(&r.Exec)
		for kind := Kind(0); kind < NumKinds; kind++ {
			for k := 0; k < NumHistories; k++ {
				suite.Miss[kind][k].Add(&r.Miss[kind][k])
			}
		}
		h := suite.HardByBench[r.Spec.Bench]
		if h == nil {
			h = stats.NewHistogram(cfg.window() + 1)
			suite.HardByBench[r.Spec.Bench] = h
		}
		for i, c := range r.HardDistances.Bins {
			h.Bins[i] += c
		}
	}
	return suite
}

// Benchmarks lists the distinct benchmark names present, in input order.
func (s *SuiteResult) Benchmarks() []string {
	seen := make(map[string]bool)
	var out []string
	for _, r := range s.Inputs {
		if !seen[r.Spec.Bench] {
			seen[r.Spec.Bench] = true
			out = append(out, r.Spec.Bench)
		}
	}
	sort.Strings(out)
	return out
}

// TotalEvents sums dynamic branches across inputs.
func (s *SuiteResult) TotalEvents() int64 {
	var sum int64
	for _, r := range s.Inputs {
		sum += r.Events
	}
	return sum
}
