package sim

import (
	"fmt"
	"runtime"
	"testing"

	"btr/internal/trace"
	"btr/internal/workload"
)

// TestStreamedMatrixMatchesRetained is the golden equivalence matrix
// for the out-of-core streaming pipeline: {retained, spill-backed with
// small budgets, cache-nothing decoded pool} × workers {1, 4,
// GOMAXPROCS} must all produce bit-identical SuiteResults. A small
// ChunkEvents forces many chunks at test scale so the budgets genuinely
// evict, page and re-decode; the memory-shape counters are asserted to
// prove the streamed runs actually ran out of core rather than
// trivially passing because everything fit.
func TestStreamedMatrixMatchesRetained(t *testing.T) {
	specs := []workload.Spec{
		testSpec(t, "compress", "bigtest.in"),
		testSpec(t, "gcc", "genoutput.i"),
		testSpec(t, "li", "ref.lsp"),
	}
	base := Config{Scale: testScale, ChunkEvents: 256}
	retained := RunSuite(specs, base)
	if m := retained.Mem; m.PageIns != 0 {
		t.Fatalf("retained run unexpectedly streamed: %+v", m)
	}
	for _, r := range retained.Inputs {
		if r.Mem.ResidentPeak != r.Mem.RecordedBytes {
			t.Fatalf("%s: retained recording not fully resident: %+v", r.Spec.Name(), r.Mem)
		}
	}

	budgets := []struct {
		name    string
		mem     int64 // Config.MemBudget
		decoded int64 // Config.DecodedBudget
		ranges  int   // Config.SnapshotRanges
		mmap    bool  // Config.MmapSpill
		ra      int   // Config.ReadAhead
	}{
		{"spill+pool", 4096, 6000, 0, false, 0},
		{"spill+cache-nothing", 4096, -1, 0, false, 0},
		{"resident+pool", 0, 6000, 0, false, 0},
		{"spill+pool+snapshot", 4096, 6000, 3, false, 0},
		{"spill+pool+mmap", 4096, 6000, 0, true, 0},
		// Read-ahead legs get a pool that can hold the windows (still
		// well under the decoded whole, so eviction stays exercised):
		// prefetching into a pool drowning in demand churn is all waste.
		{"spill+pool+ra2", 4096, 20000, 0, false, 2},
		{"spill+pool+ra8", 4096, 20000, 0, false, 8},
		{"spill+pool+snapshot+ra", 4096, 20000, 3, false, 4},
		{"resident+pool+ra", 0, 20000, 0, false, 2},
	}
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		for _, b := range budgets {
			cfg := base
			cfg.Workers = workers
			cfg.MemBudget = b.mem
			cfg.DecodedBudget = b.decoded
			cfg.SnapshotRanges = b.ranges
			cfg.MmapSpill = b.mmap
			cfg.ReadAhead = b.ra
			label := fmt.Sprintf("%s/workers=%d", b.name, workers)
			got := RunSuite(specs, cfg)
			assertSuitesEqual(t, label, retained, got)
			m := got.Mem
			if b.mem > 0 {
				for _, r := range got.Inputs {
					if r.Mem.ResidentPeak >= r.Mem.RecordedBytes {
						t.Fatalf("%s/%s: streaming kept everything resident (peak %d, recorded %d)",
							label, r.Spec.Name(), r.Mem.ResidentPeak, r.Mem.RecordedBytes)
					}
				}
				if m.PageIns == 0 {
					t.Fatalf("%s: streamed run never paged from its spill", label)
				}
			}
			if b.decoded != 0 && m.DecodedEvicted == 0 {
				t.Fatalf("%s: bounded decoded pool never evicted (mem %+v)", label, m)
			}
			if b.ranges > 1 {
				if m.SnapshotCount == 0 || m.SnapshotBytes == 0 || m.SnapshotPeak == 0 {
					t.Fatalf("%s: checkpointed streamed run took no snapshots (mem %+v)", label, m)
				}
			} else if m.SnapshotCount != 0 {
				t.Fatalf("%s: chained run took snapshots (mem %+v)", label, m)
			}
			if b.mmap {
				for _, r := range got.Inputs {
					if !r.Recorded.Mmapped() {
						t.Fatalf("%s/%s: MmapSpill run paged via pread", label, r.Spec.Name())
					}
				}
			}
			if b.ra > 0 {
				if m.PrefetchInFlightPeak == 0 {
					t.Fatalf("%s: read-ahead run recorded no in-flight decodes (mem %+v)", label, m)
				}
				// Spill-backed legs must actually have prefetched: warm
				// installs (and waits on in-flight prefetch decodes) count
				// as prefetch hits. Demand page-ins block in ReadAt, which
				// hands the prefetch workers the CPU even at GOMAXPROCS=1;
				// fully-resident legs give no such guarantee on one core,
				// so only bit-identity is asserted for them.
				if b.mem > 0 && m.PrefetchHits == 0 {
					t.Fatalf("%s: read-ahead run recorded no prefetch hits (mem %+v)", label, m)
				}
			} else if m.PrefetchHits != 0 || m.PrefetchWasted != 0 {
				t.Fatalf("%s: non-read-ahead run recorded prefetch traffic (mem %+v)", label, m)
			}
		}
	}

	// The legacy engines stream too: NoSched routes through RunInput's
	// WaitGroup sweep, whose replays page straight off the handle.
	noSched := base
	noSched.NoSched = true
	noSched.MemBudget = 4096
	got := RunSuite(specs, noSched)
	assertSuitesEqual(t, "nosched-streamed", retained, got)
	if got.Mem.PageIns == 0 {
		t.Fatal("nosched-streamed: never paged from its spill")
	}
}

// TestStreamedCacheRoundTrip pins the streamed recording's cache
// interplay: with a spill directory, a budgeted run writes its
// recording straight into the cache's spill path, and a second context
// (fresh cache over the same directory) replays it bit-identically
// without running any generator.
func TestStreamedCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	specs := []workload.Spec{testSpec(t, "perl", "primes.pl")}
	mk := func() Config {
		return Config{
			Scale:       testScale,
			ChunkEvents: 256,
			MemBudget:   4096,
			Cache:       trace.NewCache(4096, dir, workload.RegistryFingerprint()),
		}
	}
	first := RunSuite(specs, mk())
	second := RunSuite(specs, mk())
	assertSuitesEqual(t, "streamed-cache-second-run", first, second)
	if second.Mem.PageIns == 0 {
		t.Fatal("second run should have paged the cached spill back in")
	}
	retained := RunSuite(specs, Config{Scale: testScale, ChunkEvents: 256})
	assertSuitesEqual(t, "streamed-cache-vs-retained", retained, first)
}

// TestProfileCacheEviction pins the profile cache's byte budget: a
// budget smaller than two entries keeps only the most recent one,
// counts the eviction, and an evicted input simply recomputes —
// bit-identically — on its next run.
func TestProfileCacheEviction(t *testing.T) {
	spec1 := testSpec(t, "gcc", "genoutput.i")
	spec2 := testSpec(t, "li", "ref.lsp")
	pc := NewProfileCacheBytes(1) // below any entry: every put evicts the previous
	cache := trace.NewCache(0, "", workload.RegistryFingerprint())
	cfg := Config{Scale: testScale, Profiles: pc, Cache: cache}

	first := RunInput(spec1, cfg)
	RunInput(spec2, cfg)
	s := pc.Stats()
	if s.Resident != 1 {
		t.Fatalf("resident entries = %d, want 1 (budget keeps only the newest)", s.Resident)
	}
	if s.Evicted == 0 {
		t.Fatalf("stats %+v: second put must evict the first entry", s)
	}
	if s.ResidentBytes <= 0 {
		t.Fatalf("stats %+v: resident entry not charged", s)
	}

	// spec1 was evicted: its rerun misses the profile cache, recomputes,
	// and must match the original bit for bit.
	misses := pc.Stats().Misses
	again := RunInput(spec1, cfg)
	if pc.Stats().Misses == misses {
		t.Fatal("rerun of the evicted input should have missed the profile cache")
	}
	if first.Exec != again.Exec || first.Miss != again.Miss {
		t.Fatal("recomputed result diverged from the original")
	}

	// A budget with room keeps both and serves hits.
	roomy := NewProfileCacheBytes(1 << 20)
	cfg2 := Config{Scale: testScale, Profiles: roomy, Cache: trace.NewCache(0, "", workload.RegistryFingerprint())}
	RunInput(spec1, cfg2)
	RunInput(spec1, cfg2)
	if s := roomy.Stats(); s.Hits == 0 || s.Evicted != 0 || s.Resident != 1 {
		t.Fatalf("roomy cache stats %+v: want a hit, no evictions", s)
	}
}
