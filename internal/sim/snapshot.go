package sim

import (
	"fmt"
	mathbits "math/bits"
	"runtime"
	"sync"
	"sync/atomic"

	"btr/internal/bpred"
	"btr/internal/sched"
	"btr/internal/trace"
)

// The checkpointed intra-slot engine. The chunk-chain sweep caps one
// input's parallelism at numBankSlots (34) because predictor state
// rides each chain sequentially. Here the chunk axis of every slot is
// split into SnapshotRanges ranges, and the state handoff is broken by
// checkpointing: a predict-free warmup chain per slot replays the trace
// through UpdateChunk — Predict has no side effects, so the state it
// leaves is bit-identical to a predicting sweep's — and snapshots the
// predictor at every range boundary. Each (slot, range) then becomes an
// independent task that restores its boundary snapshot, sweeps its
// range into a private partial missCell, and the partials fold in
// (slot, range) order exactly as the chained engine folds its chains —
// bit-for-bit identical results (TestSnapshotMatrixMatchesChained), but
// numBankSlots × SnapshotRanges tasks of fan-out instead of 34.
//
// The warmup is overhead (all but the last range is replayed twice:
// once updating, once predicting), so the engine wins only when cores
// outnumber slots; it is off by default.

// snapshotSweeper is what the checkpointed engine needs from a bank
// slot's predictor: the batch sweep protocol, the predict-free batch
// update for warmup chains, and bpred's checkpoint protocol. PAs and
// GAs satisfy it.
type snapshotSweeper interface {
	chunkSweeper
	UpdateChunk(pcs, dirs []uint64, n int)
	bpred.Snapshotter
}

// snapshotBounds splits nchunks into at most ranges contiguous ranges
// of near-equal size: range r covers chunks [bounds[r], bounds[r+1]).
// ranges is clamped to nchunks so no range is empty.
func snapshotBounds(nchunks, ranges int) []int {
	if ranges > nchunks {
		ranges = nchunks
	}
	if ranges < 1 {
		ranges = 1
	}
	b := make([]int, ranges+1)
	for r := 0; r <= ranges; r++ {
		b[r] = r * nchunks / ranges
	}
	return b
}

// snapshotSweep is one input's in-flight (slot × range) checkpointed
// sweep. pending counts sweep tasks only (numBankSlots × ranges, preset
// before any submission); warmup tasks gate sweep submission, so a
// poisoned warmup leaves pending above zero and the input unpublished —
// the same drop-via-Dropped semantics as the chained engine.
type snapshotSweep struct {
	res      *InputResult
	classIdx []uint8
	pool     *trace.DecodedPool
	nchunks  int
	ra       int // read-ahead depth (Config.ReadAhead); 0 = no hints
	bounds   []int
	slots    []snapSlot
	pending  atomic.Int32
	failed   atomic.Bool

	// Snapshot accounting: count/total are cumulative, live tracks
	// outstanding snapshot bytes (each is freed when its range restores
	// it), peak is live's high-water mark.
	snapCount atomic.Int64
	snapTotal atomic.Int64
	snapLive  atomic.Int64
	snapPeak  atomic.Int64

	out    **InputResult
	errOut *error
}

// snapSlot is one bank slot's share of the grid. warm is only touched
// by the slot's warmup chain (tasks ordered by resubmission); snaps[r]
// is written by the warmup before the range-r sweep is submitted and
// consumed (restored, then dropped) by that sweep; partials[r] is
// written only by the range-r sweep.
type snapSlot struct {
	warm     snapshotSweeper
	snaps    [][]byte
	partials []missCell
}

func startSnapshotSweep(w *sched.Worker, cfg Config, ranges int, res *InputResult, classIdx []uint8, pool *trace.DecodedPool, out **InputResult, errOut *error) {
	ss := &snapshotSweep{
		res:      res,
		classIdx: classIdx,
		pool:     pool,
		nchunks:  res.Recorded.Chunks(),
		ra:       cfg.ReadAhead,
		bounds:   snapshotBounds(res.Recorded.Chunks(), ranges),
		out:      out,
		errOut:   errOut,
	}
	ranges = len(ss.bounds) - 1
	ss.slots = make([]snapSlot, numBankSlots)
	for i := range ss.slots {
		ss.slots[i] = snapSlot{
			warm:     bankSlotPredictor(i).(snapshotSweeper),
			snaps:    make([][]byte, ranges),
			partials: make([]missCell, ranges),
		}
	}
	ss.pending.Store(int32(numBankSlots * ranges))
	// Range 0 needs no snapshot — a fresh predictor IS the initial state
	// — so its sweeps launch immediately alongside the warmup chains that
	// unlock ranges 1..ranges-1. Sweeps are submitted first: the
	// submitting worker pops its last warmup LIFO and rides warmup chains
	// (they are the critical path), while thieves peel the range-0 sweeps
	// FIFO.
	for i := range ss.slots {
		i := i
		w.Submit(func(w *sched.Worker) { ss.sweepRange(w, i, 0) })
	}
	if ranges > 1 {
		for i := range ss.slots {
			i := i
			w.Submit(func(w *sched.Worker) { ss.warmup(w, i, 0) })
		}
	}
}

// guard converts a task panic (a spill paging failure) into the grid's
// poison: the cause is recorded once, sibling tasks bail out on their
// next look at failed, pending never reaches zero, and the input is
// reported via SuiteResult.Dropped.
func (ss *snapshotSweep) guard() {
	if r := recover(); r != nil {
		ss.poison(recoveredErr("snapshot sweep failed", r))
	}
}

// poison records the grid's first failure cause and stops the prefetch
// workers (the grid never publishes, so finalizeMem never runs).
func (ss *snapshotSweep) poison(err error) {
	if ss.failed.CompareAndSwap(false, true) {
		*ss.errOut = err
		ss.pool.CancelPrefetch()
		ss.pool.ClosePrefetch()
	}
}

// bail reports whether the task should unwind without doing work:
// the grid is already poisoned, or its group has been canceled (which
// poisons it with ErrCanceled).
func (ss *snapshotSweep) bail(w *sched.Worker) bool {
	if ss.failed.Load() {
		return true
	}
	if w.Canceled() {
		ss.poison(ErrCanceled)
		return true
	}
	return false
}

// prefetchWindow hints the chunks (k, min(k+1+ra, end)) that have not
// been hinted yet, advancing *pf. Each chain keeps a private cursor, so
// every chunk is hinted at most once per chain.
func (ss *snapshotSweep) prefetchWindow(pf *int, k, end int) {
	if ss.ra <= 0 {
		return
	}
	hi := k + 1 + ss.ra
	if hi > end {
		hi = end
	}
	if *pf <= k {
		*pf = k + 1
	}
	for ; *pf < hi; *pf++ {
		ss.pool.Prefetch(*pf)
	}
}

// warmup advances slot's warmup predictor over range r update-only,
// checkpoints the state — which is exactly the chained sweep's state at
// the start of range r+1 — and releases that range's sweep to run.
// The chain covers ranges 0..ranges-2: the final range's end state is
// never needed.
func (ss *snapshotSweep) warmup(w *sched.Worker, slot, r int) {
	defer ss.guard()
	if ss.bail(w) {
		return
	}
	s := &ss.slots[slot]
	pf := ss.bounds[r] + 1
	for k := ss.bounds[r]; k < ss.bounds[r+1]; k++ {
		ss.prefetchWindow(&pf, k, ss.bounds[r+1])
		d := ss.pool.Checkout(k)
		s.warm.UpdateChunk(d.PCs, d.Dirs, d.N)
		ss.pool.Release(k)
	}
	snap := make([]byte, s.warm.SnapshotBytes())
	s.warm.SnapshotTo(snap)
	ss.accountSnapshot(int64(len(snap)))
	next := r + 1
	s.snaps[next] = snap
	w.Submit(func(w *sched.Worker) { ss.sweepRange(w, slot, next) })
	if next < len(ss.bounds)-2 {
		w.Submit(func(w *sched.Worker) { ss.warmup(w, slot, next) })
	}
}

func (ss *snapshotSweep) accountSnapshot(n int64) {
	ss.snapCount.Add(1)
	ss.snapTotal.Add(n)
	live := ss.snapLive.Add(n)
	for {
		peak := ss.snapPeak.Load()
		if live <= peak || ss.snapPeak.CompareAndSwap(peak, live) {
			return
		}
	}
}

// sweepRange runs one (slot, range) task: restore the range's boundary
// snapshot into a fresh predictor (range 0 uses the fresh predictor
// as-is), sweep the range's chunks into the range's private partial,
// and — as the last task of the whole grid — fold and publish.
func (ss *snapshotSweep) sweepRange(w *sched.Worker, slot, r int) {
	defer ss.guard()
	if ss.bail(w) {
		return
	}
	s := &ss.slots[slot]
	p := bankSlotPredictor(slot).(snapshotSweeper)
	if r > 0 {
		snap := s.snaps[r]
		p.RestoreFrom(snap)
		s.snaps[r] = nil // the snapshot is dead once restored
		ss.snapLive.Add(-int64(len(snap)))
	}
	var cell missCell
	var wrong [(trace.DefaultChunkEvents + 63) / 64]uint64
	scratch := wrong[:]
	pf := ss.bounds[r] + 1
	for k := ss.bounds[r]; k < ss.bounds[r+1]; k++ {
		ss.prefetchWindow(&pf, k, ss.bounds[r+1])
		d := ss.pool.Checkout(k)
		if words := (d.N + 63) / 64; words > len(scratch) {
			scratch = make([]uint64, words)
		}
		sweepDecodedChunk(p, d, ss.classIdx[d.Base:d.Base+int64(d.N)], &cell, scratch)
		ss.pool.Release(k)
	}
	s.partials[r] = cell
	if ss.pending.Add(-1) == 0 {
		ss.fold()
		finalizeMem(ss.res, ss.pool)
		ss.res.Mem.SnapshotCount = ss.snapCount.Load()
		ss.res.Mem.SnapshotBytes = ss.snapTotal.Load()
		ss.res.Mem.SnapshotPeak = ss.snapPeak.Load()
		*ss.out = ss.res
	}
}

// fold reduces the per-range partials into flat per-slot cells in
// deterministic (slot, range) order — int64 sums, so any order would be
// bit-identical anyway — and lands them in res.Miss.
func (ss *snapshotSweep) fold() {
	flat := make([]missCell, numBankSlots)
	for i := range ss.slots {
		for r := range ss.slots[i].partials {
			addCell(&flat[i], &ss.slots[i].partials[r])
		}
	}
	foldMisses(ss.res, flat)
}

// startSweep launches an input's bank sweep on the engine Config
// selects: the checkpointed (slot × range) grid when SnapshotRanges
// asks for more than one range and the recording has chunks to split,
// otherwise the chained (slot × chunk-range) grid.
func startSweep(w *sched.Worker, cfg Config, res *InputResult, classIdx []uint8, pool *trace.DecodedPool, out **InputResult, errOut *error) {
	if ranges := cfg.snapshotRanges(res.Recorded.Chunks()); ranges > 1 {
		startSnapshotSweep(w, cfg, ranges, res, classIdx, pool, out, errOut)
		return
	}
	startChunkSweep(w, cfg, res, classIdx, pool, out, errOut)
}

// SnapshotPredictor is the contract RunPredictorSnapshot needs from a
// predictor: bpred's base and checkpoint protocols plus both batch
// loops. PAs and GAs satisfy it.
type SnapshotPredictor interface {
	bpred.Predictor
	bpred.Snapshotter
	SweepChunk(pcs, dirs []uint64, n int, wrong []uint64)
	UpdateChunk(pcs, dirs []uint64, n int)
}

// SnapshotRunStats reports a RunPredictorSnapshot run's shape.
type SnapshotRunStats struct {
	// Ranges is the number of parallel ranges actually used (the
	// requested count clamped to the chunk count).
	Ranges int
	// Snapshots and SnapshotBytes count the checkpoints taken.
	Snapshots     int64
	SnapshotBytes int64
}

// RunPredictorSnapshot replays a recorded trace through one predictor
// with checkpointed range parallelism — the single-predictor analogue
// of Config.SnapshotRanges, used by brsim. mk builds a fresh predictor
// (called once for the warmup chain and once per worker); the trace is
// split into ranges ranges, a sequential update-only warmup emits a
// snapshot at every boundary, and workers (0 = GOMAXPROCS) replay the
// ranges concurrently from their snapshots, folding per-range miss
// counts in range order. The result is bit-identical to bpred.Run over
// the same handle. Paging errors panic, as they do in Handle replays.
func RunPredictorSnapshot(h *trace.Handle, mk func() SnapshotPredictor, ranges, workers int) (bpred.Result, SnapshotRunStats) {
	bounds := snapshotBounds(h.Chunks(), ranges)
	nr := len(bounds) - 1
	warm := mk()
	res := bpred.Result{Name: warm.Name(), Events: h.Events()}
	stats := SnapshotRunStats{Ranges: nr}
	if h.Chunks() == 0 {
		return res, stats
	}
	// Sequential warmup: snapshot the initial state too, so every range
	// — including range 0, whichever worker claims it — restores rather
	// than relying on construction-order freshness.
	snaps := make([][]byte, nr)
	takeSnap := func(r int) {
		snap := make([]byte, warm.SnapshotBytes())
		warm.SnapshotTo(snap)
		snaps[r] = snap
		stats.Snapshots++
		stats.SnapshotBytes += int64(len(snap))
	}
	takeSnap(0)
	var pcs, dirs []uint64
	for r := 0; r+1 < nr; r++ {
		for k := bounds[r]; k < bounds[r+1]; k++ {
			d, err := h.DecodeChunkInto(k, pcs, dirs)
			if err != nil {
				panic(fmt.Sprintf("trace: paging chunk %d: %v", k, err))
			}
			pcs, dirs = d.PCs, d.Dirs
			warm.UpdateChunk(d.PCs, d.Dirs, d.N)
		}
		takeSnap(r + 1)
	}

	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > nr {
		workers = nr
	}
	missByRange := make([]int64, nr)
	var next atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := mk()
			var pcs, dirs, wrong []uint64
			for {
				r := int(next.Add(1)) - 1
				if r >= nr {
					return
				}
				p.RestoreFrom(snaps[r])
				var miss int64
				for k := bounds[r]; k < bounds[r+1]; k++ {
					d, err := h.DecodeChunkInto(k, pcs, dirs)
					if err != nil {
						panic(fmt.Sprintf("trace: paging chunk %d: %v", k, err))
					}
					pcs, dirs = d.PCs, d.Dirs
					words := (d.N + 63) / 64
					if len(wrong) < words {
						wrong = make([]uint64, words)
					}
					for w := range wrong[:words] {
						wrong[w] = 0
					}
					p.SweepChunk(d.PCs, d.Dirs, d.N, wrong[:words])
					for _, bits := range wrong[:words] {
						miss += int64(mathbits.OnesCount64(bits))
					}
				}
				missByRange[r] = miss
			}
		}()
	}
	wg.Wait()
	for _, m := range missByRange {
		res.Misses += m
	}
	return res, stats
}
