package sim

import (
	"fmt"
	"runtime"
	"testing"

	"btr/internal/bpred"
	"btr/internal/workload"
)

// TestSnapshotMatrixMatchesChained is the golden equivalence matrix for
// the checkpointed intra-slot engine: {chained, snapshot ranges
// {2, 5, all-chunks}} × workers {1, 4, GOMAXPROCS} × {retained,
// spill+pool} must all produce bit-identical SuiteResults. A small
// ChunkEvents forces many chunks at test scale so every requested range
// count genuinely splits the chunk axis; the snapshot counters are
// asserted so the checkpointed legs provably checkpointed rather than
// trivially passing through the chained path.
func TestSnapshotMatrixMatchesChained(t *testing.T) {
	specs := []workload.Spec{
		testSpec(t, "compress", "bigtest.in"),
		testSpec(t, "gcc", "genoutput.i"),
		testSpec(t, "li", "ref.lsp"),
	}
	base := Config{Scale: testScale, ChunkEvents: 256}
	chained := RunSuite(specs, base)
	if m := chained.Mem; m.SnapshotCount != 0 || m.SnapshotBytes != 0 {
		t.Fatalf("chained run took snapshots: %+v", m)
	}

	budgets := []struct {
		name    string
		mem     int64
		decoded int64
	}{
		{"retained", 0, 0},
		{"spill+pool", 4096, 6000},
	}
	const allRanges = 1 << 30
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		for _, b := range budgets {
			for _, ranges := range []int{2, 5, allRanges} {
				cfg := base
				cfg.Workers = workers
				cfg.MemBudget = b.mem
				cfg.DecodedBudget = b.decoded
				cfg.SnapshotRanges = ranges
				label := fmt.Sprintf("snapshot/%s/workers=%d/ranges=%d", b.name, workers, ranges)
				got := RunSuite(specs, cfg)
				assertSuitesEqual(t, label, chained, got)
				m := got.Mem
				if m.SnapshotCount == 0 || m.SnapshotBytes == 0 || m.SnapshotPeak == 0 {
					t.Fatalf("%s: checkpointed run took no snapshots: %+v", label, m)
				}
				for _, r := range got.Inputs {
					if r.Mem.SnapshotPeak > r.Mem.SnapshotBytes {
						t.Fatalf("%s/%s: snapshot peak %d exceeds total %d",
							label, r.Spec.Name(), r.Mem.SnapshotPeak, r.Mem.SnapshotBytes)
					}
				}
			}
		}
	}
}

// TestSnapshotTaskFanOut pins the engine's reason to exist: with R
// ranges, every bank slot checkpoints R-1 boundary states, so the grid
// ran numBankSlots × R independent sweep tasks — well past the 34-chain
// ceiling.
func TestSnapshotTaskFanOut(t *testing.T) {
	const ranges = 5
	spec := testSpec(t, "gcc", "genoutput.i")
	cfg := Config{Scale: testScale, ChunkEvents: 256, SnapshotRanges: ranges, Workers: 4}
	suite := RunSuite([]workload.Spec{spec}, cfg)
	if len(suite.Inputs) != 1 {
		t.Fatalf("inputs %d (dropped: %v)", len(suite.Inputs), suite.Dropped)
	}
	got := suite.Inputs[0].Mem.SnapshotCount
	if want := int64(numBankSlots * (ranges - 1)); got != want {
		t.Fatalf("snapshot count %d, want %d (numBankSlots × (ranges-1))", got, want)
	}
}

// TestSnapshotRangesClampToChunks pins the degenerate geometries: more
// ranges than chunks clamps cleanly, and 0/1 ranges stay on the chained
// engine (no snapshots at all).
func TestSnapshotRangesClampToChunks(t *testing.T) {
	spec := testSpec(t, "perl", "primes.pl")
	base := Config{Scale: testScale, ChunkEvents: 256}
	chained := RunSuite([]workload.Spec{spec}, base)
	for _, ranges := range []int{0, 1} {
		cfg := base
		cfg.SnapshotRanges = ranges
		got := RunSuite([]workload.Spec{spec}, cfg)
		assertSuitesEqual(t, fmt.Sprintf("ranges=%d", ranges), chained, got)
		if got.Mem.SnapshotCount != 0 {
			t.Fatalf("ranges=%d took %d snapshots, want none", ranges, got.Mem.SnapshotCount)
		}
	}
}

func TestSnapshotBounds(t *testing.T) {
	cases := []struct {
		nchunks, ranges int
		want            []int
	}{
		{10, 2, []int{0, 5, 10}},
		{10, 3, []int{0, 3, 6, 10}},
		{3, 10, []int{0, 1, 2, 3}}, // clamped to nchunks
		{7, 1, []int{0, 7}},
		{5, 0, []int{0, 5}}, // degenerate: single range
	}
	for _, c := range cases {
		got := snapshotBounds(c.nchunks, c.ranges)
		if len(got) != len(c.want) {
			t.Fatalf("bounds(%d,%d) = %v, want %v", c.nchunks, c.ranges, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("bounds(%d,%d) = %v, want %v", c.nchunks, c.ranges, got, c.want)
			}
		}
	}
}

// TestRunPredictorSnapshotMatchesRun pins the single-predictor runner
// brsim uses: for PAs and GAs over a recorded trace, checkpointed range
// parallelism at any geometry must reproduce the sequential bpred.Run
// miss count exactly.
func TestRunPredictorSnapshotMatchesRun(t *testing.T) {
	spec := testSpec(t, "li", "ref.lsp")
	res := passOne(spec, Config{Scale: testScale, ChunkEvents: 256})
	h := res.Recorded

	builders := map[string]func() SnapshotPredictor{
		"PAs(6)":  func() SnapshotPredictor { return bpred.NewPAs(6) },
		"GAs(10)": func() SnapshotPredictor { return bpred.NewGAs(10) },
	}
	for name, mk := range builders {
		want, err := bpred.Run(mk(), h.Source())
		if err != nil {
			t.Fatalf("%s: sequential run: %v", name, err)
		}
		for _, ranges := range []int{1, 3, 7, 1 << 30} {
			for _, workers := range []int{1, 4} {
				got, stats := RunPredictorSnapshot(h, mk, ranges, workers)
				if got.Misses != want.Misses || got.Events != want.Events {
					t.Fatalf("%s ranges=%d workers=%d: misses/events %d/%d, want %d/%d",
						name, ranges, workers, got.Misses, got.Events, want.Misses, want.Events)
				}
				if int64(stats.Ranges) != stats.Snapshots {
					t.Fatalf("%s ranges=%d: %d snapshots for %d ranges (initial state included)",
						name, ranges, stats.Snapshots, stats.Ranges)
				}
			}
		}
	}
}
