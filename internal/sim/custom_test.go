package sim

import (
	"testing"

	"btr/internal/rng"
	"btr/internal/workload"
)

// Crafted specs give exact control of the branch stream, so attribution
// can be asserted precisely.

// alternatorSpec emits one branch that strictly alternates.
func alternatorSpec() workload.Spec {
	return workload.NewSpec("synthetic", "alternator", 1000, 1,
		func(t *workload.T, r *rng.Rand, target int64) {
			i := int64(0)
			for t.N() < target {
				t.B(1, i%2 == 0)
				i++
			}
		})
}

// hardPairSpec emits a hard (5/5-class) branch every 4th event, with
// uniform-random outcomes, padded by an always-taken branch.
func hardPairSpec() workload.Spec {
	return workload.NewSpec("synthetic", "hardpair", 4000, 7,
		func(t *workload.T, r *rng.Rand, target int64) {
			for t.N() < target {
				t.B(1, true)
				t.B(1, true)
				t.B(1, true)
				t.B(2, r.Bool(0.5))
			}
		})
}

func TestCustomSpecAlternatorAttribution(t *testing.T) {
	res := RunInput(alternatorSpec(), Config{Scale: 1})
	if res.Sites != 1 {
		t.Fatalf("sites %d", res.Sites)
	}
	// The single branch must land in joint class 5/10.
	if res.Exec[5][10] != res.Events {
		t.Fatalf("alternator attributed to wrong cell: exec[5][10]=%d events=%d",
			res.Exec[5][10], res.Events)
	}
	// PAs k=0 must be pathological on it, PAs k>=1 near perfect.
	missK0 := res.Miss[KindPAs][0][5][10]
	missK1 := res.Miss[KindPAs][1][5][10]
	if float64(missK0) < 0.9*float64(res.Events) {
		t.Fatalf("PAs(0) missed only %d/%d on the alternator", missK0, res.Events)
	}
	if float64(missK1) > 0.05*float64(res.Events) {
		t.Fatalf("PAs(1) missed %d/%d on the alternator", missK1, res.Events)
	}
}

func TestCustomSpecHardDistances(t *testing.T) {
	// The hard branch occurs every 4 dynamic branches, so every recorded
	// distance must be exactly 4 — if the random site actually lands in
	// the 5/5 cell at this sample size.
	res := RunInput(hardPairSpec(), Config{Scale: 1})
	jc, ok := res.Classes.Lookup(hardPairSpec().PCBase() + 2<<2)
	if !ok {
		t.Fatal("random branch not profiled")
	}
	if !jc.Hard() {
		t.Skipf("random branch sampled into class %s, not 5/5; nothing to assert", jc)
	}
	if res.HardDistances.Total() == 0 {
		t.Fatal("no hard distances recorded")
	}
	for d, count := range res.HardDistances.Bins {
		if count > 0 && d != 4 {
			t.Fatalf("distance %d recorded %d times; all distances must be 4", d, count)
		}
	}
}

func TestCustomSpecInSuite(t *testing.T) {
	suite := RunSuite([]workload.Spec{alternatorSpec(), hardPairSpec()}, Config{Scale: 1, Workers: 2})
	if len(suite.Inputs) != 2 {
		t.Fatal("inputs")
	}
	if suite.HardByBench["synthetic"] == nil {
		t.Fatal("per-bench histogram missing for custom bench name")
	}
	// The alternator contributes all its weight to transition class 10.
	marg := suite.Distribution.TransitionMarginal()
	if marg[10] < 0.15 {
		t.Fatalf("transition class 10 share %.3f; alternator weight missing", marg[10])
	}
}
