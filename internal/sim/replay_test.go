package sim

import (
	"reflect"
	"strings"
	"testing"

	"btr/internal/rng"
	"btr/internal/workload"
)

// TestReplayMatchesRegenerate is the golden equivalence test for the
// record-once/replay-many engine: for several real workloads, the sharded
// replay pipeline must reproduce the regenerate-twice pipeline's Exec,
// Miss, and HardDistances counts bit-for-bit.
func TestReplayMatchesRegenerate(t *testing.T) {
	workloads := []struct{ bench, input string }{
		{"compress", "bigtest.in"},
		{"gcc", "genoutput.i"},
		{"vortex", "vortex.lit"},
		{"perl", "primes.pl"},
	}
	for _, wl := range workloads {
		wl := wl
		t.Run(wl.bench+"/"+wl.input, func(t *testing.T) {
			t.Parallel()
			spec := testSpec(t, wl.bench, wl.input)
			cfg := Config{Scale: testScale}

			replay := RunInput(spec, cfg)

			legacy := cfg
			legacy.NoRecord = true
			direct := RunInput(spec, legacy)

			if replay.Events != direct.Events || replay.Sites != direct.Sites {
				t.Fatalf("events/sites diverged: %d/%d vs %d/%d",
					replay.Events, replay.Sites, direct.Events, direct.Sites)
			}
			if replay.Exec != direct.Exec {
				t.Fatal("Exec attribution diverged")
			}
			if replay.Miss != direct.Miss {
				for kind := Kind(0); kind < NumKinds; kind++ {
					for k := 0; k < NumHistories; k++ {
						if replay.Miss[kind][k] != direct.Miss[kind][k] {
							t.Fatalf("Miss diverged at %v k=%d: replay total %d, direct total %d",
								kind, k, replay.Miss[kind][k].Total(), direct.Miss[kind][k].Total())
						}
					}
				}
				t.Fatal("Miss diverged")
			}
			if !reflect.DeepEqual(replay.HardDistances.Bins, direct.HardDistances.Bins) {
				t.Fatalf("HardDistances diverged: %v vs %v",
					replay.HardDistances.Bins, direct.HardDistances.Bins)
			}
			if !reflect.DeepEqual(replay.Classes, direct.Classes) {
				t.Fatal("class maps diverged")
			}
		})
	}
}

// TestReplayBankWorkerCountIrrelevant pins the sharding determinism claim:
// any worker count produces identical miss counts.
func TestReplayBankWorkerCountIrrelevant(t *testing.T) {
	spec := testSpec(t, "m88ksim", "ctl.lit")
	base := RunInput(spec, Config{Scale: testScale, BankWorkers: 1})
	for _, workers := range []int{2, 7, int(NumKinds) * NumHistories} {
		got := RunInput(spec, Config{Scale: testScale, BankWorkers: workers})
		if got.Miss != base.Miss || got.Exec != base.Exec {
			t.Fatalf("BankWorkers=%d changed results", workers)
		}
	}
}

// TestReplayChunkSizeIrrelevant pins that chunk granularity is invisible
// in results, including chunk sizes that leave a partial final chunk.
func TestReplayChunkSizeIrrelevant(t *testing.T) {
	spec := testSpec(t, "li", "ref.lsp")
	base := RunInput(spec, Config{Scale: testScale})
	for _, chunk := range []int{64, 1000, 1 << 20} {
		got := RunInput(spec, Config{Scale: testScale, ChunkEvents: chunk})
		if got.Miss != base.Miss || got.Exec != base.Exec {
			t.Fatalf("ChunkEvents=%d changed results", chunk)
		}
		if !reflect.DeepEqual(got.HardDistances.Bins, base.HardDistances.Bins) {
			t.Fatalf("ChunkEvents=%d changed hard distances", chunk)
		}
	}
}

// TestRunSuitePanickingWorkloadDropped pins suite resilience: a workload
// whose generator panics is dropped and reported — spec and recovered
// panic value included — and the rest of the suite completes. All three
// engines (chunked scheduler, slot-only scheduler, legacy pool) must
// behave identically.
func TestRunSuitePanickingWorkloadDropped(t *testing.T) {
	cases := []struct {
		label string
		cfg   Config
	}{
		{"chunked", Config{Scale: testScale, Workers: 2}},
		{"slot-only", Config{Scale: testScale, Workers: 2, ChunkTasks: -1}},
		{"legacy-pool", Config{Scale: testScale, Workers: 2, NoSched: true}},
	}
	for _, tc := range cases {
		bad := workload.NewSpec("synthetic", "panics", 100, 1,
			func(tr *workload.T, r *rng.Rand, target int64) {
				panic("synthetic workload failure")
			})
		good := testSpec(t, "perl", "primes.pl")
		suite := RunSuite([]workload.Spec{bad, good}, tc.cfg)
		if len(suite.Dropped) != 1 {
			t.Fatalf("%s: Dropped = %v, want 1 entry", tc.label, suite.Dropped)
		}
		d := suite.Dropped[0]
		if d.Spec.Bench != "synthetic" || d.Spec.Input != "panics" {
			t.Fatalf("%s: dropped spec %q, want synthetic/panics", tc.label, d.Spec.Name())
		}
		if d.Err == nil || !strings.Contains(d.Err.Error(), "synthetic workload failure") {
			t.Fatalf("%s: dropped err %v must carry the panic value", tc.label, d.Err)
		}
		if !strings.Contains(d.Error(), "synthetic/panics") {
			t.Fatalf("%s: Error() = %q must name the input", tc.label, d.Error())
		}
		if len(suite.Inputs) != 1 || suite.Inputs[0].Spec.Bench != "perl" {
			t.Fatalf("%s: surviving inputs wrong: %d", tc.label, len(suite.Inputs))
		}
		if suite.TotalEvents() == 0 {
			t.Fatalf("%s: surviving workload's events lost", tc.label)
		}
	}
}

// TestAggregateSkipsNil pins the nil-guard: a workload that produced no
// result must be dropped and reported, not panic the suite.
func TestAggregateSkipsNil(t *testing.T) {
	spec := testSpec(t, "perl", "primes.pl")
	res := RunInput(spec, Config{Scale: testScale})
	suite := Aggregate([]*InputResult{nil, res, nil}, Config{Scale: testScale})
	if len(suite.Dropped) != 2 {
		t.Fatalf("Dropped = %v, want 2 entries", suite.Dropped)
	}
	for _, d := range suite.Dropped {
		if d.Err == nil || d.Error() == "" {
			t.Fatalf("dropped entry %v must carry a cause", d)
		}
	}
	if len(suite.Inputs) != 1 {
		t.Fatalf("Inputs kept %d entries, want 1", len(suite.Inputs))
	}
	if suite.Exec != res.Exec {
		t.Fatal("surviving input's counts lost")
	}
	if suite.TotalEvents() != res.Events {
		t.Fatal("TotalEvents must ignore dropped inputs")
	}
	if got := Aggregate(nil, Config{}); len(got.Dropped) != 0 || len(got.Inputs) != 0 {
		t.Fatal("aggregating nothing must yield an empty suite")
	}
}
