package sim

import (
	"sync"

	"btr/internal/trace"
)

// DefaultProfileCacheBytes is NewProfileCache's budget: large enough
// that a whole suite's attribution columns stay resident at the default
// scale, small enough that a paper-scale run (where one column alone is
// tens of gigabytes) keeps only the most recently used inputs.
const DefaultProfileCacheBytes = 1 << 28 // 256 MiB

// ProfileCache caches the classified pass-1 result of an input — the
// InputResult shell sans Miss (profiles, classes, Exec, hard-distance
// histogram) plus the per-event attribution column — so a later run
// with a matching key skips the profiling replay entirely, not just the
// generator run a trace.Cache hit saves. Keys are the (name,
// fingerprint, scale, chunk) quadruple of trace.CacheKey — which pins a
// recording (and therefore its derived classification) bit for bit —
// plus the hard-distance window, which sizes the cached histogram.
// Callers must pass normalised trace keys (trace.CacheKey.Normalised)
// so configs that spell the defaults differently share entries.
//
// Entries deliberately do NOT hold the recorded trace: the recording's
// lifetime belongs to the trace.Cache and its LRU byte budget, and a
// profile entry pinning it would defeat that bound. profileStage re-
// fetches the recording on a hit and recomputes from scratch in the
// rare case it was evicted without a spill path. What an entry does
// retain — the attribution column (~1 byte/event) and the per-branch
// profile maps — is an order of magnitude lighter than the recordings,
// but still O(trace), so the cache carries its own LRU byte budget:
// entries past it are evicted least-recently-used and simply recomputed
// on the next run, the same degrade-to-recompute contract the trace
// cache has.
//
// Served results share the immutable pass-1 artifacts (Profiles map,
// ClassMap, histogram, class column) with every other run of the same
// key; only the returned InputResult struct itself is a fresh copy,
// whose zero Miss the caller's own sweep fills in. Callers must treat
// the shared artifacts as read-only — the pipeline does. Eviction never
// invalidates a served result: the artifacts stay reachable through the
// result, the cache merely drops its own reference.
type ProfileCache struct {
	mu       sync.Mutex
	entries  map[profileKey]*profileEntry
	maxBytes int64 // 0 = unbounded
	bytes    int64
	tick     int64
	stats    ProfileCacheStats
}

// profileKey pins everything a cached pass-1 result depends on: the
// recording's identity plus the hard-distance window, which shapes the
// cached histogram's bin count — configs with different windows must
// not serve each other's histograms.
type profileKey struct {
	trace.CacheKey
	window int
}

type profileEntry struct {
	tmpl     InputResult // Miss all-zero, Recorded nil; the rest filled
	classIdx []uint8
	size     int64 // estimated footprint, charged against the budget
	used     int64 // LRU clock tick of the last touch
}

// ProfileCacheStats counts cache traffic. ResidentBytes is the
// estimated footprint of the retained entries; Evicted counts entries
// dropped to respect the byte budget.
type ProfileCacheStats struct {
	Hits          int64
	Misses        int64
	Evicted       int64
	Resident      int
	ResidentBytes int64
}

// NewProfileCache returns an empty profile cache with the default byte
// budget (DefaultProfileCacheBytes).
func NewProfileCache() *ProfileCache {
	return NewProfileCacheBytes(DefaultProfileCacheBytes)
}

// NewProfileCacheBytes returns an empty profile cache bounded to
// roughly maxBytes of retained pass-1 artifacts; 0 (or negative) means
// unbounded.
func NewProfileCacheBytes(maxBytes int64) *ProfileCache {
	if maxBytes < 0 {
		maxBytes = 0
	}
	return &ProfileCache{entries: make(map[profileKey]*profileEntry), maxBytes: maxBytes}
}

// entrySize estimates an entry's heap footprint: the attribution column
// dominates; the profile and class maps are charged at rough per-entry
// costs (bucket + key + value struct), the histogram at its bins, plus
// a fixed overhead for the shell itself.
func entrySize(e *profileEntry) int64 {
	size := int64(len(e.classIdx)) + 256
	if e.tmpl.HardDistances != nil {
		size += int64(len(e.tmpl.HardDistances.Bins)) * 8
	}
	size += int64(len(e.tmpl.Profiles)) * 96
	size += int64(len(e.tmpl.Classes)) * 24
	return size
}

// get returns a sweep-ready copy of the cached shell for key, with
// Recorded still nil — the caller supplies the recording.
func (c *ProfileCache) get(key trace.CacheKey, window int) (*InputResult, []uint8, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.entries[profileKey{key, window}]
	if e == nil {
		c.stats.Misses++
		return nil, nil, false
	}
	c.stats.Hits++
	c.tick++
	e.used = c.tick
	res := e.tmpl // struct copy: private Miss, shared pass-1 artifacts
	return &res, e.classIdx, true
}

// put snapshots res (which must not have Miss filled yet — profileStage
// calls it before any sweep runs) under key, dropping the recording
// reference so the trace.Cache stays the recording's only owner, then
// evicts least-recently-used entries past the byte budget. First writer
// wins; a concurrent duplicate of the same deterministic result is
// dropped.
func (c *ProfileCache) put(key trace.CacheKey, window int, res *InputResult, classIdx []uint8) {
	pk := profileKey{key, window}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[pk]; ok {
		return
	}
	e := &profileEntry{tmpl: *res, classIdx: classIdx}
	e.tmpl.Recorded = nil
	e.size = entrySize(e)
	c.tick++
	e.used = c.tick
	c.entries[pk] = e
	c.bytes += e.size
	c.evictLocked()
}

// evictLocked drops least-recently-used entries until the budget holds.
// The newest entry is the most recently used, so a single oversized
// entry survives alone rather than thrashing the whole cache.
func (c *ProfileCache) evictLocked() {
	if c.maxBytes <= 0 {
		return
	}
	for c.bytes > c.maxBytes && len(c.entries) > 1 {
		var victim profileKey
		oldest := int64(1<<63 - 1)
		for k, e := range c.entries {
			if e.used < oldest {
				oldest = e.used
				victim = k
			}
		}
		c.bytes -= c.entries[victim].size
		delete(c.entries, victim)
		c.stats.Evicted++
	}
}

// Stats returns a snapshot of the counters.
func (c *ProfileCache) Stats() ProfileCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Resident = len(c.entries)
	s.ResidentBytes = c.bytes
	return s
}
