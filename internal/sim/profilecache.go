package sim

import (
	"sync"

	"btr/internal/trace"
)

// ProfileCache caches the classified pass-1 result of an input — the
// InputResult shell sans Miss (profiles, classes, Exec, hard-distance
// histogram) plus the per-event attribution column — so a later run
// with a matching key skips the profiling replay entirely, not just the
// generator run a trace.Cache hit saves. Keys are the (name,
// fingerprint, scale, chunk) quadruple of trace.CacheKey — which pins a
// recording (and therefore its derived classification) bit for bit —
// plus the hard-distance window, which sizes the cached histogram.
// Callers must pass normalised trace keys (trace.CacheKey.Normalised)
// so configs that spell the defaults differently share entries.
//
// Entries deliberately do NOT hold the recorded trace: the recording's
// lifetime belongs to the trace.Cache and its LRU byte budget, and a
// profile entry pinning it would defeat that bound. profileStage re-
// fetches the recording on a hit and recomputes from scratch in the
// rare case it was evicted without a spill path. What an entry does
// retain — the attribution column (~1 byte/event) and the per-branch
// profile maps — is an order of magnitude lighter than the recordings.
//
// Served results share the immutable pass-1 artifacts (Profiles map,
// ClassMap, histogram, class column) with every other run of the same
// key; only the returned InputResult struct itself is a fresh copy,
// whose zero Miss the caller's own sweep fills in. Callers must treat
// the shared artifacts as read-only — the pipeline does.
type ProfileCache struct {
	mu      sync.Mutex
	entries map[profileKey]*profileEntry
	stats   ProfileCacheStats
}

// profileKey pins everything a cached pass-1 result depends on: the
// recording's identity plus the hard-distance window, which shapes the
// cached histogram's bin count — configs with different windows must
// not serve each other's histograms.
type profileKey struct {
	trace.CacheKey
	window int
}

type profileEntry struct {
	tmpl     InputResult // Miss all-zero, Recorded nil; the rest filled
	classIdx []uint8
}

// ProfileCacheStats counts cache traffic.
type ProfileCacheStats struct {
	Hits   int64
	Misses int64
}

// NewProfileCache returns an empty profile cache. It is unbounded: one
// entry costs roughly a byte per recorded event (the attribution column)
// plus the per-branch profile maps, an order of magnitude less than the
// recordings a trace.Cache holds for the same suite.
func NewProfileCache() *ProfileCache {
	return &ProfileCache{entries: make(map[profileKey]*profileEntry)}
}

// get returns a sweep-ready copy of the cached shell for key, with
// Recorded still nil — the caller supplies the recording.
func (c *ProfileCache) get(key trace.CacheKey, window int) (*InputResult, []uint8, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.entries[profileKey{key, window}]
	if e == nil {
		c.stats.Misses++
		return nil, nil, false
	}
	c.stats.Hits++
	res := e.tmpl // struct copy: private Miss, shared pass-1 artifacts
	return &res, e.classIdx, true
}

// put snapshots res (which must not have Miss filled yet — profileStage
// calls it before any sweep runs) under key, dropping the recording
// reference so the trace.Cache stays the recording's only owner. First
// writer wins; a concurrent duplicate of the same deterministic result
// is dropped.
func (c *ProfileCache) put(key trace.CacheKey, window int, res *InputResult, classIdx []uint8) {
	pk := profileKey{key, window}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[pk]; ok {
		return
	}
	e := &profileEntry{tmpl: *res, classIdx: classIdx}
	e.tmpl.Recorded = nil
	c.entries[pk] = e
}

// Stats returns a snapshot of the hit/miss counters.
func (c *ProfileCache) Stats() ProfileCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}
