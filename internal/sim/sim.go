// Package sim is the experiment harness: it drives the instrumented
// workloads through a two-pass pipeline (profile, then predict) and
// produces the class-attributed miss statistics behind every figure and
// table in the paper.
//
// Pass 1 replays a workload into a core.Profiler, yielding each static
// branch's taken/transition profile and joint class. Pass 2 replays the
// identical stream into a bank of predictors — PAs(k) and GAs(k) for every
// history length k — attributing each hit/miss to the branch's joint class
// from pass 1. Classification uses the *complete* run's rates, exactly as
// the paper's profiling does.
package sim

import (
	"fmt"

	"btr/internal/bpred"
	"btr/internal/core"
	"btr/internal/stats"
	"btr/internal/trace"
	"btr/internal/workload"
)

// Kind selects the two-level predictor family of the paper's sweep.
type Kind int

const (
	// KindPAs is the per-address-history two-level predictor.
	KindPAs Kind = iota
	// KindGAs is the global-history two-level predictor.
	KindGAs
	// NumKinds counts the families swept.
	NumKinds
)

// String names the kind as the paper does.
func (k Kind) String() string {
	switch k {
	case KindPAs:
		return "pas"
	case KindGAs:
		return "gas"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// NumHistories is the number of history lengths swept (0..MaxHistory).
const NumHistories = bpred.MaxHistory + 1

// Config controls a run.
type Config struct {
	// Scale multiplies every input's dynamic branch target; 1.0 is the
	// registry default (the paper's Table 1 counts divided by 1000).
	Scale float64
	// Workers bounds concurrent inputs; 0 means GOMAXPROCS.
	Workers int
	// HardDistanceWindow is the number of Figure 15 distance bins; the
	// last bin is open ("8+"). 0 means 8.
	HardDistanceWindow int
}

func (c Config) window() int {
	if c.HardDistanceWindow <= 0 {
		return 8
	}
	return c.HardDistanceWindow
}

// JointCounts is an 11x11 matrix of per-joint-class event counts.
type JointCounts [core.NumClasses][core.NumClasses]int64

// Add accumulates other into j.
func (j *JointCounts) Add(other *JointCounts) {
	for a := range j {
		for b := range j[a] {
			j[a][b] += other[a][b]
		}
	}
}

// Total sums all cells.
func (j *JointCounts) Total() int64 {
	var sum int64
	for a := range j {
		for b := range j[a] {
			sum += j[a][b]
		}
	}
	return sum
}

// TakenMarginal sums each taken-class row.
func (j *JointCounts) TakenMarginal() [core.NumClasses]int64 {
	var out [core.NumClasses]int64
	for t := range j {
		for tr := range j[t] {
			out[t] += j[t][tr]
		}
	}
	return out
}

// TransitionMarginal sums each transition-class column.
func (j *JointCounts) TransitionMarginal() [core.NumClasses]int64 {
	var out [core.NumClasses]int64
	for t := range j {
		for tr := range j[t] {
			out[tr] += j[t][tr]
		}
	}
	return out
}

// InputResult holds everything measured for one benchmark input.
type InputResult struct {
	Spec   workload.Spec
	Events int64
	Sites  int

	// Profiles is the per-branch profile from pass 1.
	Profiles map[uint64]*core.Profile
	// Classes is the joint classification derived from Profiles.
	Classes core.ClassMap

	// Exec attributes every dynamic execution to its branch's joint class.
	Exec JointCounts
	// Miss[kind][k] attributes mispredictions of predictor kind with
	// history length k to joint classes.
	Miss [NumKinds][NumHistories]JointCounts

	// HardDistances histograms the dynamic-branch distance between
	// consecutive executions of hard (5/5) branches: bins 1..window,
	// last bin open (Figure 15). Bin 0 is unused.
	HardDistances *stats.Histogram
}

// ProfileInput runs pass 1 only: profile and classify one input.
func ProfileInput(spec workload.Spec, scale float64) (*core.Profiler, core.ClassMap) {
	profiler := core.NewProfiler()
	spec.Run(profiler, scale)
	return profiler, core.Classify(profiler.Profiles())
}

// RunInput runs the full two-pass pipeline for one input.
func RunInput(spec workload.Spec, cfg Config) *InputResult {
	profiler, classes := ProfileInput(spec, cfg.Scale)

	res := &InputResult{
		Spec:          spec,
		Events:        profiler.Events(),
		Sites:         profiler.Sites(),
		Profiles:      profiler.Profiles(),
		Classes:       classes,
		HardDistances: stats.NewHistogram(cfg.window() + 1),
	}

	// Build the predictor bank: PAs(k) and GAs(k), k = 0..MaxHistory.
	var pas [NumHistories]*bpred.PAs
	var gas [NumHistories]*bpred.GAs
	for k := 0; k < NumHistories; k++ {
		pas[k] = bpred.NewPAs(k)
		gas[k] = bpred.NewGAs(k)
	}

	var pos, lastHard int64
	sawHard := false
	sink := trace.SinkFunc(func(pc uint64, taken bool) {
		jc := classes[pc]
		t, tr := jc.Taken, jc.Transition
		res.Exec[t][tr]++
		for k := 0; k < NumHistories; k++ {
			if pas[k].Predict(pc) != taken {
				res.Miss[KindPAs][k][t][tr]++
			}
			pas[k].Update(pc, taken)
			if gas[k].Predict(pc) != taken {
				res.Miss[KindGAs][k][t][tr]++
			}
			gas[k].Update(pc, taken)
		}
		pos++
		if jc.Hard() {
			if sawHard {
				res.HardDistances.Add(int(pos - lastHard))
			}
			sawHard = true
			lastHard = pos
		}
	})
	spec.Run(sink, cfg.Scale)
	return res
}
