// Package sim is the experiment harness: it drives the instrumented
// workloads through a two-pass pipeline (profile, then predict) and
// produces the class-attributed miss statistics behind every figure and
// table in the paper.
//
// Pass 1 runs a workload into a core.Profiler, yielding each static
// branch's taken/transition profile and joint class, while a chunked
// trace.ChunkRecorder captures the stream. Pass 2 replays the recorded
// chunks — not the generator — into a bank of predictors, PAs(k) and
// GAs(k) for every history length k, attributing each hit/miss to the
// branch's joint class from pass 1. Classification uses the *complete*
// run's rates, exactly as the paper's profiling does.
//
// Because every predictor is a pure function of the event stream
// (bpred's contract), the bank sweep shards its (kind, k) slots across
// goroutines, each replaying the recorded trace independently; the
// result is bit-for-bit identical to driving the bank serially.
package sim

import (
	"fmt"
	mathbits "math/bits"
	"runtime"
	"sync"

	"btr/internal/bpred"
	"btr/internal/core"
	"btr/internal/sched"
	"btr/internal/stats"
	"btr/internal/trace"
	"btr/internal/workload"
)

// Kind selects the two-level predictor family of the paper's sweep.
type Kind int

const (
	// KindPAs is the per-address-history two-level predictor.
	KindPAs Kind = iota
	// KindGAs is the global-history two-level predictor.
	KindGAs
	// NumKinds counts the families swept.
	NumKinds
)

// String names the kind as the paper does.
func (k Kind) String() string {
	switch k {
	case KindPAs:
		return "pas"
	case KindGAs:
		return "gas"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// NumHistories is the number of history lengths swept (0..MaxHistory).
const NumHistories = bpred.MaxHistory + 1

// Config controls a run.
type Config struct {
	// Scale multiplies every input's dynamic branch target; 1.0 is the
	// registry default (the paper's Table 1 counts divided by 1000).
	Scale float64
	// Workers bounds concurrent inputs; 0 means GOMAXPROCS.
	Workers int
	// HardDistanceWindow is the number of Figure 15 distance bins; the
	// last bin is open ("8+"). 0 means 8.
	HardDistanceWindow int
	// BankWorkers bounds the goroutines sharding one input's PAs/GAs
	// predictor-bank sweep over its recorded trace; 0 means GOMAXPROCS.
	// It is capped at the number of bank slots (NumKinds*NumHistories).
	BankWorkers int
	// ChunkEvents sets the recorded trace's chunk granularity in events;
	// 0 means trace.DefaultChunkEvents.
	ChunkEvents int
	// NoRecord disables the record-once/replay-many engine: every pass
	// regenerates the workload and the bank runs serially, as the original
	// pipeline did. It exists as the equivalence baseline and for
	// memory-constrained runs; results are bit-for-bit identical.
	NoRecord bool
	// NoSched disables RunSuite's global work-stealing scheduler and
	// falls back to the nested pools (a bounded pool of whole inputs,
	// each sharding its bank across a private pool). It exists as the
	// equivalence baseline; results are bit-for-bit identical. NoRecord
	// implies NoSched, since the scheduler's sweep tasks replay the
	// recorded trace.
	NoSched bool
	// ChunkTasks sets the chunk-axis granularity of the scheduled sweep:
	// each (slot, chunk-range) task advances one predictor slot over this
	// many recorded chunks before re-queueing its chain's continuation,
	// so one input's sweep decomposes into numBankSlots chains of
	// tens-of-microseconds tasks instead of BankWorkers whole-trace
	// batches. 0 means DefaultChunkTasks. Negative restores the PR-2
	// slot-only shape (whole-trace slot-batch tasks, one decode per
	// batch), kept as the equivalence and benchmark baseline. The value
	// is result-invisible: every granularity is bit-for-bit identical
	// (TestChunkedMatrixMatchesLegacy).
	ChunkTasks int
	// Profiles, when non-nil, caches each input's classified pass-1
	// result (profiles, classes, Exec, hard distances, attribution
	// column — everything except Miss) keyed like Cache. A hit skips the
	// profiling replay entirely, not just the generator run, so a second
	// experiment context performs zero pass-1 work. Ignored under
	// NoRecord.
	Profiles *ProfileCache
	// Cache, when non-nil, is consulted before pass 1: a recording with
	// a matching (name, scale, chunk) key replays into the profiler
	// instead of running the generator, and fresh recordings are
	// published for later runs and other experiment contexts. Ignored
	// under NoRecord.
	Cache *trace.Cache
	// MemBudget, when > 0, streams pass 1 through a bounded window
	// instead of retaining the whole recording: events are written to a
	// BTR1 spill file as they are generated (the trace cache's spill
	// directory when one is configured, otherwise an anonymous temp
	// file) and at most about MemBudget bytes of leading chunk columns
	// stay resident; replays page the remainder back in sequentially.
	// Peak recording memory becomes O(MemBudget), not O(trace), and
	// results are bit-for-bit identical (TestStreamedMatrixMatchesRetained).
	// 0 keeps recordings fully resident, the default. Ignored under
	// NoRecord.
	MemBudget int64
	// SnapshotRanges selects the checkpointed intra-slot sweep engine:
	// every bank slot's chunk axis splits into this many ranges, a
	// predict-free warmup chain per slot checkpoints the predictor's
	// state at each range boundary (flat byte-slice snapshots, accounted
	// in MemStats), and the ranges sweep concurrently from restored
	// snapshots — numBankSlots × SnapshotRanges independent tasks, so a
	// single input can saturate more than 34 cores. 0 or 1 keeps the
	// chained engine, the default: the warmup replays all but the last
	// range twice, so checkpointing only wins when cores outnumber
	// slots. The value is result-invisible — every setting is
	// bit-for-bit identical to the chained sweep
	// (TestSnapshotMatrixMatchesChained). Honoured by the scheduled
	// chunked engine only; NoSched, NoRecord and ChunkTasks < 0 ignore
	// it.
	SnapshotRanges int
	// MmapSpill, when true, maps spill-backed recordings into memory and
	// decodes paged chunks straight from the mapping instead of issuing
	// pread calls — replays of paper-scale spill files ride the page
	// cache without per-chunk syscalls. Handles without spill backing
	// (or platforms without mmap) silently keep the pread path. The
	// value is result-invisible.
	MmapSpill bool
	// Sched, when non-nil, is a long-lived shared scheduler the suite
	// run submits onto as one completion-tracked task group instead of
	// building (and stopping) a private scheduler: concurrent RunSuite
	// calls — brserve sessions — interleave their task grids over one
	// worker pool, steal-balancing across requests. The scheduler is
	// left running for the next caller, and Workers is ignored in
	// favour of its worker count. Honoured by the scheduled engine
	// only; NoSched and NoRecord fall back to private pools as before.
	Sched *sched.Scheduler
	// DecodedBudget bounds the decoded-chunk pool the scheduled sweep
	// checks chunks out of: 0 retains every decoded column for the
	// duration of the input's sweep (the pre-streaming behaviour), > 0
	// is a byte budget — checked-out chunks are pinned, LRU columns
	// beyond the budget are dropped and re-decoded on the next visit —
	// and < 0 caches nothing beyond the chunks currently checked out.
	// Like MemBudget, the value is result-invisible.
	DecodedBudget int64
	// ReadAhead, when > 0, overlaps spill I/O and BTR1 decode with
	// predictor compute: every sweep chain (chained, checkpointed, and
	// the attribution pre-pass) hints its next ReadAhead chunks to the
	// decoded pool's background prefetcher, which decodes them —
	// coalescing adjacent spill reads into one ReadAt — before the
	// chain's cursor arrives. Prefetched columns are charged against
	// DecodedBudget and evicted LRU like any other, so peak decoded
	// memory stays O(budget). The value is result-invisible
	// (TestStreamedMatrixMatchesRetained); honoured by the scheduled
	// chunked engines only — NoSched, NoRecord, ChunkTasks < 0 and
	// cache-nothing pools (DecodedBudget < 0) ignore it.
	ReadAhead int
}

// newDecodedPool builds a sweep's decoded-chunk pool over h, attaching
// the background prefetcher when ReadAhead asks for one. Pools built
// here are shut down by finalizeMem on publish, or by the owning grid's
// poison path on failure.
func (c Config) newDecodedPool(h *trace.Handle) *trace.DecodedPool {
	p := trace.NewDecodedPool(h, c.DecodedBudget)
	if c.ReadAhead > 0 {
		p.EnablePrefetch(0, 0)
	}
	return p
}

// cacheKey is the recording's identity for Config.Cache and
// Config.Profiles lookups, in normalised form so configs that spell the
// defaults differently (Scale 0 vs 1, ChunkEvents 0 vs the default)
// share entries in both caches. The spec fingerprint keeps same-named
// custom specs (different target, seed or generator parameters) from
// aliasing each other's recordings.
func (c Config) cacheKey(spec workload.Spec) trace.CacheKey {
	return trace.CacheKey{
		Name:        spec.Name(),
		Fingerprint: spec.Fingerprint(),
		Scale:       c.Scale,
		ChunkEvents: c.ChunkEvents,
	}.Normalised()
}

func (c Config) window() int {
	if c.HardDistanceWindow <= 0 {
		return 8
	}
	return c.HardDistanceWindow
}

// DefaultChunkTasks is the chunk-range width of one scheduled sweep
// task: one recorded chunk (DefaultChunkEvents events) per slot per task
// lands in the tens-of-microseconds range — coarse enough that the
// lock-free deque overhead is noise, fine enough that work stealing can
// level the tail of a single huge input across every core.
const DefaultChunkTasks = 1

func (c Config) chunkTasks() int {
	if c.ChunkTasks == 0 {
		return DefaultChunkTasks
	}
	return c.ChunkTasks
}

// snapshotRanges resolves Config.SnapshotRanges against a recording's
// chunk count: the checkpointed engine only engages when more than one
// non-empty range is possible.
func (c Config) snapshotRanges(nchunks int) int {
	r := c.SnapshotRanges
	if r > nchunks {
		r = nchunks
	}
	return r
}

func (c Config) bankWorkers() int {
	n := c.BankWorkers
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if max := int(NumKinds) * NumHistories; n > max {
		n = max
	}
	return n
}

// JointCounts is an 11x11 matrix of per-joint-class event counts.
type JointCounts [core.NumClasses][core.NumClasses]int64

// Add accumulates other into j.
func (j *JointCounts) Add(other *JointCounts) {
	for a := range j {
		for b := range j[a] {
			j[a][b] += other[a][b]
		}
	}
}

// Total sums all cells.
func (j *JointCounts) Total() int64 {
	var sum int64
	for a := range j {
		for b := range j[a] {
			sum += j[a][b]
		}
	}
	return sum
}

// TakenMarginal sums each taken-class row.
func (j *JointCounts) TakenMarginal() [core.NumClasses]int64 {
	var out [core.NumClasses]int64
	for t := range j {
		for tr := range j[t] {
			out[t] += j[t][tr]
		}
	}
	return out
}

// TransitionMarginal sums each transition-class column.
func (j *JointCounts) TransitionMarginal() [core.NumClasses]int64 {
	var out [core.NumClasses]int64
	for t := range j {
		for tr := range j[t] {
			out[tr] += j[t][tr]
		}
	}
	return out
}

// InputResult holds everything measured for one benchmark input.
type InputResult struct {
	Spec   workload.Spec
	Events int64
	Sites  int

	// Profiles is the per-branch profile from pass 1.
	Profiles map[uint64]*core.Profile
	// Classes is the joint classification derived from Profiles.
	Classes core.ClassMap

	// Exec attributes every dynamic execution to its branch's joint class.
	Exec JointCounts
	// Miss[kind][k] attributes mispredictions of predictor kind with
	// history length k to joint classes.
	Miss [NumKinds][NumHistories]JointCounts

	// HardDistances histograms the dynamic-branch distance between
	// consecutive executions of hard (5/5) branches: bins 1..window,
	// last bin open (Figure 15). Bin 0 is unused.
	HardDistances *stats.Histogram

	// Recorded is the input's event stream as captured during pass 1 —
	// a handle that may be memory-resident, spill-backed (under
	// Config.MemBudget), or both; downstream analyses (ablations,
	// confidence studies) replay it instead of re-running the
	// generator. Nil when Config.NoRecord.
	Recorded *trace.Handle

	// Mem reports the input's memory-shape counters (recording
	// footprint, page-ins, decoded-pool traffic). Zero under NoRecord.
	Mem MemStats
}

// MemStats describes how an input's trace data moved through the
// bounded-memory pipeline. Counters are cumulative over the input's
// run; the peaks are high-water marks.
type MemStats struct {
	// RecordedBytes is the recording's full encoded footprint (what
	// retaining it all would cost).
	RecordedBytes int64
	// ResidentPeak is the high-water mark of the recording's resident
	// chunk columns (== RecordedBytes when fully retained).
	ResidentPeak int64
	// PageIns counts chunks re-read from the spill file.
	PageIns int64
	// DecodedHits / DecodedRedecodes / DecodedEvicted / DecodedPeak are
	// the sweep's decoded-chunk pool counters (see
	// trace.DecodedPoolStats); zero when the sweep ran without a pool
	// (slot-only and pool engines).
	DecodedHits      int64
	DecodedRedecodes int64
	DecodedEvicted   int64
	DecodedPeak      int64
	// PrefetchHits / PrefetchWasted / PrefetchInFlightPeak describe the
	// read-ahead pipeline (Config.ReadAhead): checkouts served by a
	// prefetched column, prefetched columns evicted before any checkout
	// touched them, and the high-water mark of concurrent decodes —
	// the overlap depth actually achieved. Zero without read-ahead.
	PrefetchHits         int64
	PrefetchWasted       int64
	PrefetchInFlightPeak int64
	// SnapshotCount / SnapshotBytes / SnapshotPeak describe the
	// checkpointed sweep's predictor snapshots (Config.SnapshotRanges):
	// how many were taken, their cumulative size, and the high-water
	// mark of snapshot bytes live at once (each snapshot dies when its
	// range restores it). Zero under the chained engine.
	SnapshotCount int64
	SnapshotBytes int64
	SnapshotPeak  int64
}

// Add accumulates other into m: counters sum, peaks take the max (the
// suite-level peak is per-input, inputs being concurrent).
func (m *MemStats) Add(other *MemStats) {
	m.RecordedBytes += other.RecordedBytes
	m.PageIns += other.PageIns
	m.DecodedHits += other.DecodedHits
	m.DecodedRedecodes += other.DecodedRedecodes
	m.DecodedEvicted += other.DecodedEvicted
	m.PrefetchHits += other.PrefetchHits
	m.PrefetchWasted += other.PrefetchWasted
	m.SnapshotCount += other.SnapshotCount
	m.SnapshotBytes += other.SnapshotBytes
	if other.PrefetchInFlightPeak > m.PrefetchInFlightPeak {
		m.PrefetchInFlightPeak = other.PrefetchInFlightPeak
	}
	if other.ResidentPeak > m.ResidentPeak {
		m.ResidentPeak = other.ResidentPeak
	}
	if other.DecodedPeak > m.DecodedPeak {
		m.DecodedPeak = other.DecodedPeak
	}
	if other.SnapshotPeak > m.SnapshotPeak {
		m.SnapshotPeak = other.SnapshotPeak
	}
}

// Replay drives the input's event stream through sink: the recorded trace
// when present, otherwise a fresh generator run at the given scale.
func (r *InputResult) Replay(sink trace.Sink, scale float64) {
	if r.Recorded != nil {
		r.Recorded.Replay(sink)
		return
	}
	r.Spec.Run(sink, scale)
}

// ProfileInput runs pass 1 only: profile and classify one input.
func ProfileInput(spec workload.Spec, scale float64) (*core.Profiler, core.ClassMap) {
	profiler := core.NewProfiler()
	spec.Run(profiler, scale)
	return profiler, core.Classify(profiler.Profiles())
}

// RunInput runs the full two-pass pipeline for one input.
//
// The default engine records the stream once during the profiling pass
// and drives pass 2 by replaying the recorded chunks, sharding the
// predictor bank across cfg.BankWorkers goroutines. Set cfg.NoRecord to
// regenerate the workload per pass with a serial bank instead; both paths
// produce identical results.
func RunInput(spec workload.Spec, cfg Config) *InputResult {
	if cfg.NoRecord {
		return runInputRegenerate(spec, cfg)
	}
	res, classIdx := profileStage(spec, cfg)

	// Pass 2: shard the (kind, k) bank slots round-robin across workers.
	// Each worker replays the trace chunk-major — one decode per chunk,
	// shared by all of its slots — so decode cost scales with workers, not
	// with the 34 bank slots, and a single-core run decodes the trace
	// exactly once. Each slot's miss counts are a pure function of the
	// recorded stream and land in a distinct cell of res.Miss, so no
	// synchronisation beyond the WaitGroup is needed and the sharding
	// cannot change results.
	misses := make([]missCell, numBankSlots)
	groups := bankGroups(cfg.bankWorkers(), misses)
	var wg sync.WaitGroup
	for _, group := range groups {
		wg.Add(1)
		go func(group []bankSlot) {
			defer wg.Done()
			sweepSlots(group, res.Recorded, classIdx)
		}(group)
	}
	wg.Wait()
	foldMisses(res, misses)
	finalizeMem(res, nil)
	return res
}

// finalizeMem snapshots the input's memory-shape counters off its
// recording handle and (when the sweep used one) decoded pool. It also
// shuts the pool's prefetcher down — the sweep is over — so every
// prefetch install is accounted before the stats are read.
func finalizeMem(res *InputResult, pool *trace.DecodedPool) {
	h := res.Recorded
	if h == nil {
		return
	}
	if pool != nil {
		pool.ClosePrefetch()
	}
	res.Mem.RecordedBytes = h.EncodedBytes()
	res.Mem.ResidentPeak = h.ResidentPeak()
	res.Mem.PageIns = h.PageIns()
	if pool != nil {
		s := pool.Stats()
		res.Mem.DecodedHits = s.Hits
		res.Mem.DecodedRedecodes = s.Redecodes
		res.Mem.DecodedEvicted = s.Evicted
		res.Mem.DecodedPeak = s.HighWater
		res.Mem.PrefetchHits = s.PrefetchHits
		res.Mem.PrefetchWasted = s.PrefetchWasted
		res.Mem.PrefetchInFlightPeak = s.InFlightPeak
	}
}

// profileRecorded runs pass 1 — profile and record in one generator run
// — consulting cfg.Cache first: on a hit the cached recording replays
// into the profiler and the generator never runs. Either way the
// returned handle is the input's exact event stream. Under
// cfg.MemBudget the recording streams straight to a spill file with a
// bounded resident prefix instead of being retained whole.
func profileRecorded(spec workload.Spec, cfg Config) (*core.Profiler, *trace.Handle) {
	profiler := core.NewProfiler()
	if cfg.Cache != nil {
		if h, ok := cfg.Cache.GetHandle(cfg.cacheKey(spec)); ok {
			cfg.mmapHandle(h)
			h.Replay(profiler)
			return profiler, h
		}
	}
	if cfg.MemBudget > 0 {
		if h, ok := streamRecord(spec, cfg, profiler); ok {
			cfg.mmapHandle(h)
			return profiler, h
		}
		// The spill file could not be created or sealed: fall back to the
		// fully resident path with a fresh profiler (the failed attempt
		// may have fed it a partial stream).
		profiler = core.NewProfiler()
	}
	recorder := trace.NewChunkRecorder(cfg.ChunkEvents)
	spec.Run(trace.Tee(profiler, recorder), cfg.Scale)
	h := trace.NewResidentHandle(recorder.Trace())
	if cfg.Cache != nil {
		// A failed spill loses persistence only — the recording is
		// still cached in memory — and is counted in the cache stats
		// (CacheStats.SpillFailures) for the CLIs to report.
		_ = cfg.Cache.PutHandle(cfg.cacheKey(spec), h)
	}
	return profiler, h
}

// streamRecord is the bounded-window pass 1: the generator's stream is
// teed into the profiler and a StreamRecorder writing BTR1 directly —
// to the cache's spill path when one exists (so later processes probe
// straight into it), else an anonymous temp file. ok is false when the
// spill backing could not be set up; the caller falls back to
// retaining.
func streamRecord(spec workload.Spec, cfg Config, profiler *core.Profiler) (*trace.Handle, bool) {
	path := ""
	if cfg.Cache != nil {
		path = cfg.Cache.SpillPathFor(cfg.cacheKey(spec))
	}
	sr, err := trace.NewStreamRecorder(path, cfg.ChunkEvents, cfg.MemBudget)
	if err != nil {
		return nil, false
	}
	sealed := false
	defer func() {
		if !sealed {
			sr.Discard() // a panicking generator must not leak the temp file
		}
	}()
	spec.Run(trace.Tee(profiler, sr), cfg.Scale)
	h, err := sr.Seal()
	sealed = true
	if err != nil {
		return nil, false
	}
	if cfg.Cache != nil {
		_ = cfg.Cache.PutHandle(cfg.cacheKey(spec), h)
	}
	return h, true
}

// hardIdx is the 5/5 joint class ("hard" branches), flattened the way
// classIdx stores classes.
const hardIdx = 5*core.NumClasses + 5

// passOne profiles, records and classifies one input: the result shell
// with Exec, distances and the attribution column still empty — those
// belong to the attribution pass (attributeSequential, or the
// scheduler's parallel attribution grid).
func passOne(spec workload.Spec, cfg Config) *InputResult {
	profiler, recorded := profileRecorded(spec, cfg)
	return &InputResult{
		Spec:          spec,
		Events:        profiler.Events(),
		Sites:         profiler.Sites(),
		Profiles:      profiler.Profiles(),
		Classes:       core.Classify(profiler.Profiles()),
		HardDistances: stats.NewHistogram(cfg.window() + 1),
		Recorded:      recorded,
	}
}

// attributeSequential is the attribution pre-pass: one replay resolves
// each event's joint class, filling Exec and the Figure 15 distances
// and the per-event class column so the bank workers index an array
// instead of hitting the class map once per slot per event. Workload
// PCs are base + site<<2 with dense site IDs, so when the PC range is
// compact the class map itself collapses into a direct-indexed table.
// classIdx must hold res.Recorded.Events() entries.
func attributeSequential(res *InputResult, classIdx []uint8) {
	lookup := denseClasses(res.Classes)
	var pos, lastHard int64
	sawHard := false
	rep := res.Recorded.ChunkReader()
	for {
		pcs, dirs, n, ok := rep.NextChunk()
		if !ok {
			break
		}
		_ = dirs
		for i := 0; i < n; i++ {
			ci := lookup.classOf(pcs[i], res.Classes)
			res.Exec[ci/core.NumClasses][ci%core.NumClasses]++
			classIdx[pos] = ci
			pos++
			if ci == hardIdx {
				if sawHard {
					res.HardDistances.Add(int(pos - lastHard))
				}
				sawHard = true
				lastHard = pos
			}
		}
	}
}

// profileStage is the non-scheduled first half of RunInput: pass 1
// plus the sequential attribution pre-pass (the scheduler's
// profileTask parallelises attribution along the chunk axis instead).
// It returns the result shell (Exec, classes, distances and the
// recording handle filled in; Miss still zero) and the per-event class
// column the bank sweep attributes against.
//
// cfg.Profiles is consulted first: on a hit the cached shell is copied
// (Miss starts zero in the template, so the copy is sweep-ready), the
// recording it was derived from comes back from cfg.Cache — the
// recording's lifetime stays under the trace cache's LRU budget, not
// pinned by profile entries — and no generator, profiler or attribution
// work runs at all. If the recording was evicted without a spill path
// the hit is unusable (the sweep needs the stream) and the stage falls
// through to a full recompute.
func profileStage(spec workload.Spec, cfg Config) (*InputResult, []uint8) {
	if res, classIdx, ok := profileCached(spec, cfg); ok {
		return res, classIdx
	}
	res := passOne(spec, cfg)
	classIdx := make([]uint8, res.Recorded.Events())
	attributeSequential(res, classIdx)
	if cfg.Profiles != nil && !cfg.NoRecord {
		cfg.Profiles.put(cfg.cacheKey(spec), cfg.window(), res, classIdx)
	}
	return res, classIdx
}

// profileCached serves the profile-cache fast path shared by both
// engines: a cached pass-1 shell plus the recording handle re-fetched
// from the trace cache.
func profileCached(spec workload.Spec, cfg Config) (*InputResult, []uint8, bool) {
	if cfg.Profiles == nil || cfg.Cache == nil || cfg.NoRecord {
		return nil, nil, false
	}
	res, classIdx, ok := cfg.Profiles.get(cfg.cacheKey(spec), cfg.window())
	if !ok {
		return nil, nil, false
	}
	h, ok := cfg.Cache.GetHandle(cfg.cacheKey(spec))
	if !ok {
		return nil, nil, false
	}
	cfg.mmapHandle(h)
	res.Recorded = h
	return res, classIdx, true
}

// mmapHandle applies Config.MmapSpill to a freshly acquired recording
// handle. Failure (no spill backing, unsupported platform, map error)
// silently keeps the pread path: the knob is a paging-strategy hint,
// never a correctness requirement.
func (c Config) mmapHandle(h *trace.Handle) {
	if c.MmapSpill && h.Spilled() {
		_ = h.EnableMmap()
	}
}

// missCell is one bank slot's flat class-attributed miss counters.
type missCell = [core.NumClasses * core.NumClasses]int64

// addCell accumulates src into dst; int64 sums make every reduction
// order bit-identical.
func addCell(dst, src *missCell) {
	for i := range dst {
		dst[i] += src[i]
	}
}

// numBankSlots counts the (kind, k) configurations of the paper's sweep.
const numBankSlots = int(NumKinds) * NumHistories

// bankSlotPredictor builds the predictor for flat bank slot i — the one
// place the slot-index ↔ (kind, k) mapping is realised, shared by the
// batch engine (bankGroups) and the chunk-chain engine (newChunkSweep).
func bankSlotPredictor(i int) chunkSweeper {
	kind, k := Kind(i/NumHistories), i%NumHistories
	switch kind {
	case KindPAs:
		return bpred.NewPAs(k)
	case KindGAs:
		return bpred.NewGAs(k)
	default:
		panic(fmt.Sprintf("sim: bank slot %d has no predictor kind", i))
	}
}

// bankGroups builds the predictor bank — PAs(k) and GAs(k) for every
// history length — and splits its slots round-robin into at most
// `groups` batches. Each batch shares one chunk decode per replayed
// chunk (see sweepSlots), so decode cost scales with the batch count,
// not the 34 slots, and a single batch decodes the trace exactly once.
// misses must hold numBankSlots cells; slot i writes only cell i.
func bankGroups(groups int, misses []missCell) [][]bankSlot {
	if groups > numBankSlots {
		groups = numBankSlots
	}
	out := make([][]bankSlot, groups)
	for i := 0; i < numBankSlots; i++ {
		out[i%groups] = append(out[i%groups], bankSlot{p: bankSlotPredictor(i), miss: &misses[i]})
	}
	return out
}

// foldMisses copies the flat per-slot counters into res.Miss.
func foldMisses(res *InputResult, misses []missCell) {
	for i := 0; i < numBankSlots; i++ {
		kind, k := Kind(i/NumHistories), i%NumHistories
		for t := 0; t < core.NumClasses; t++ {
			for tr := 0; tr < core.NumClasses; tr++ {
				res.Miss[kind][k][t][tr] = misses[i][t*core.NumClasses+tr]
			}
		}
	}
}

// classLookup resolves branch PCs to flattened joint-class indices,
// either through a direct-indexed table (dense != nil) or the class map.
type classLookup struct {
	dense []uint8
	minPC uint64
}

// classOf resolves one PC, falling back to the class map when the
// dense table was not built.
func (l *classLookup) classOf(pc uint64, classes core.ClassMap) uint8 {
	if l.dense != nil {
		return l.dense[(pc-l.minPC)>>2]
	}
	jc := classes[pc]
	return uint8(int(jc.Taken)*core.NumClasses + int(jc.Transition))
}

// denseClasses flattens a class map into a direct-indexed table when its
// PC range is compact (instrumented workloads always are: PCs are
// base + site<<2 with small site IDs). A sparse map — e.g. a stored
// trace with arbitrary addresses — keeps map lookups.
func denseClasses(classes core.ClassMap) classLookup {
	if len(classes) == 0 {
		return classLookup{}
	}
	minPC, maxPC := ^uint64(0), uint64(0)
	aligned := true
	for pc := range classes {
		if pc < minPC {
			minPC = pc
		}
		if pc > maxPC {
			maxPC = pc
		}
		aligned = aligned && pc&3 == 0
	}
	// Unaligned PCs would alias under the >>2 index; only word-aligned
	// streams (everything workload.T emits) take the dense path.
	if !aligned {
		return classLookup{}
	}
	span := (maxPC-minPC)>>2 + 1
	// Cap the table at 4 MiB of entries; beyond that the map wins.
	if span > 1<<22 {
		return classLookup{}
	}
	dense := make([]uint8, span)
	for pc, jc := range classes {
		dense[(pc-minPC)>>2] = uint8(int(jc.Taken)*core.NumClasses + int(jc.Transition))
	}
	return classLookup{dense: dense, minPC: minPC}
}

// chunkSweeper is the batch protocol the bank's predictors provide: one
// call advances the predictor over a whole decoded chunk and reports
// mispredictions as a bitmap, keeping the per-event loop concrete inside
// the predictor (see bpred.PAs.SweepChunk).
type chunkSweeper interface {
	SweepChunk(pcs, dirs []uint64, n int, wrong []uint64)
}

// bankSlot is one predictor configuration of the bank plus its flat
// class-attributed miss counters.
type bankSlot struct {
	p    chunkSweeper
	miss *[core.NumClasses * core.NumClasses]int64
}

// sweepSlots replays the recorded trace through a group of bank slots,
// chunk-major: each chunk is decoded (or paged in) once, every slot's
// predictor batch-processes the decoded columns via sweepDecodedChunk,
// attributing set bits to the per-event joint classes in classIdx.
func sweepSlots(slots []bankSlot, recorded *trace.Handle, classIdx []uint8) {
	rep := recorded.ChunkReader()
	var wrong []uint64
	var base int64
	for {
		pcs, dirs, n, ok := rep.NextChunk()
		if !ok {
			return
		}
		if words := (n + 63) / 64; len(wrong) < words {
			wrong = make([]uint64, words)
		}
		d := trace.DecodedChunk{PCs: pcs, Dirs: dirs, N: n, Base: base}
		cls := classIdx[base : base+int64(n)]
		for _, s := range slots {
			sweepDecodedChunk(s.p, &d, cls, s.miss, wrong)
		}
		base += int64(n)
	}
}

// sweepDecodedChunk advances one bank slot over one decoded chunk,
// attributing mispredictions into cell — the shared inner loop of both
// sweep shapes (per-batch-decoded sweepSlots and the chunk-range tasks'
// pre-decoded columns). wrong is the caller's scratch bitmap, at least
// (n+63)/64 words.
//
// The popcount pre-scan totals the chunk's mispredictions first: an
// all-correct chunk — the common case for easy classes at high k —
// skips attribution entirely, and otherwise the running count stops the
// word walk as soon as the last miss has been attributed, bulk-skipping
// the zero tail.
func sweepDecodedChunk(p chunkSweeper, d *trace.DecodedChunk, cls []uint8, cell *missCell, wrong []uint64) {
	words := (d.N + 63) / 64
	for w := range wrong[:words] {
		wrong[w] = 0
	}
	p.SweepChunk(d.PCs, d.Dirs, d.N, wrong)
	total := 0
	for w := 0; w < words; w++ {
		total += mathbits.OnesCount64(wrong[w])
	}
	if total == 0 {
		return
	}
	for w := 0; total > 0; w++ {
		bits := wrong[w]
		if bits == 0 {
			continue
		}
		total -= mathbits.OnesCount64(bits)
		for ; bits != 0; bits &= bits - 1 {
			cell[cls[w*64+mathbits.TrailingZeros64(bits)]]++
		}
	}
}

// runInputRegenerate is the original regenerate-twice pipeline: pass 2
// re-runs the workload generator and drives the whole predictor bank
// serially from one sink. RunInput's replay engine must match it
// bit-for-bit (see TestReplayMatchesRegenerate).
func runInputRegenerate(spec workload.Spec, cfg Config) *InputResult {
	profiler, classes := ProfileInput(spec, cfg.Scale)

	res := &InputResult{
		Spec:          spec,
		Events:        profiler.Events(),
		Sites:         profiler.Sites(),
		Profiles:      profiler.Profiles(),
		Classes:       classes,
		HardDistances: stats.NewHistogram(cfg.window() + 1),
	}

	// Build the predictor bank: PAs(k) and GAs(k), k = 0..MaxHistory.
	var pas [NumHistories]*bpred.PAs
	var gas [NumHistories]*bpred.GAs
	for k := 0; k < NumHistories; k++ {
		pas[k] = bpred.NewPAs(k)
		gas[k] = bpred.NewGAs(k)
	}

	var pos, lastHard int64
	sawHard := false
	sink := trace.SinkFunc(func(pc uint64, taken bool) {
		jc := classes[pc]
		t, tr := jc.Taken, jc.Transition
		res.Exec[t][tr]++
		for k := 0; k < NumHistories; k++ {
			if pas[k].Predict(pc) != taken {
				res.Miss[KindPAs][k][t][tr]++
			}
			pas[k].Update(pc, taken)
			if gas[k].Predict(pc) != taken {
				res.Miss[KindGAs][k][t][tr]++
			}
			gas[k].Update(pc, taken)
		}
		pos++
		if jc.Hard() {
			if sawHard {
				res.HardDistances.Add(int(pos - lastHard))
			}
			sawHard = true
			lastHard = pos
		}
	})
	spec.Run(sink, cfg.Scale)
	return res
}
