package sim

import (
	"errors"
	"os"
	"testing"
	"time"

	"btr/internal/sched"
	"btr/internal/trace"
	"btr/internal/workload"
)

// corruptFile XORs one bit three quarters of the way into the file —
// deep enough to land in chunk-frame territory, so either the probe
// scan or a page-in checksum must reject it.
func corruptFile(t *testing.T, path string) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		t.Fatal(err)
	}
	off := st.Size() * 3 / 4
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0x10
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
}

// TestSuiteRecoversFromCorruptSpill is the end-to-end degradation
// contract: damage every cached spill file on disk, rerun the suite
// against the same directory, and the run must quarantine the damage,
// re-record from the generators and produce a result bit-identical to
// the clean baseline — no dropped inputs, no wrong numbers.
func TestSuiteRecoversFromCorruptSpill(t *testing.T) {
	dir := t.TempDir()
	specs := []workload.Spec{
		testSpec(t, "perl", "primes.pl"),
		testSpec(t, "li", "ref.lsp"),
	}
	mk := func() Config {
		return Config{
			Scale:       testScale,
			ChunkEvents: 256,
			MemBudget:   4096,
			Cache:       trace.NewCache(4096, dir, workload.RegistryFingerprint()),
		}
	}

	seed := mk()
	baseline := RunSuite(specs, seed)
	if len(baseline.Dropped) != 0 {
		t.Fatalf("clean baseline dropped inputs: %v", baseline.Dropped)
	}
	for _, spec := range specs {
		path := seed.Cache.SpillPathFor(seed.cacheKey(spec))
		if _, err := os.Stat(path); err != nil {
			t.Fatalf("baseline left no spill for %s: %v", spec.Name(), err)
		}
		corruptFile(t, path)
	}

	cfg := mk()
	got := RunSuite(specs, cfg)
	if len(got.Dropped) != 0 {
		t.Fatalf("recovery run dropped inputs: %v", got.Dropped)
	}
	assertSuitesEqual(t, "corrupt-spill-recovery", baseline, got)
	if q := cfg.Cache.Stats().Quarantined; q == 0 {
		t.Fatalf("Quarantined = %d, want >= 1 (stats: %+v)", q, cfg.Cache.Stats())
	}

	// The re-recorded spill files are sound: a third run replays them.
	cfg3 := mk()
	third := RunSuite(specs, cfg3)
	assertSuitesEqual(t, "post-recovery-replay", baseline, third)
	if q := cfg3.Cache.Stats().Quarantined; q != 0 {
		t.Fatalf("third run quarantined %d file(s); recovery left damage behind", q)
	}
}

// TestSuiteGroupPreCanceled: a group canceled before submission drops
// every input with ErrCanceled, and the shared scheduler stays healthy
// for the next tenant.
func TestSuiteGroupPreCanceled(t *testing.T) {
	specs := []workload.Spec{
		testSpec(t, "perl", "primes.pl"),
		testSpec(t, "li", "ref.lsp"),
	}
	s := sched.New(4)
	defer s.Close()

	g := s.NewGroup()
	g.Cancel()
	res := RunSuiteGroup(g, specs, Config{Scale: testScale})
	if len(res.Dropped) != len(specs) {
		t.Fatalf("dropped %d inputs, want %d: %v", len(res.Dropped), len(specs), res.Dropped)
	}
	for _, d := range res.Dropped {
		if !errors.Is(d.Err, ErrCanceled) {
			t.Fatalf("dropped input %s with %v, want ErrCanceled", d.Spec.Name(), d.Err)
		}
	}
	if len(res.Inputs) != 0 {
		t.Fatalf("canceled run produced %d input results", len(res.Inputs))
	}

	// Same scheduler, fresh group: a clean run is unaffected.
	clean := RunSuiteGroup(s.NewGroup(), specs, Config{Scale: testScale})
	if len(clean.Dropped) != 0 {
		t.Fatalf("clean rerun dropped inputs: %v", clean.Dropped)
	}
	want := RunSuite(specs, Config{Scale: testScale})
	assertSuitesEqual(t, "post-cancel-clean-run", want, clean)
}

// TestSuiteGroupCancelMidRun races a cancel against a running suite.
// Whatever the interleaving, the invariants hold: Wait returns, every
// input either produced a result or was dropped with ErrCanceled, and
// the scheduler survives for a clean rerun.
func TestSuiteGroupCancelMidRun(t *testing.T) {
	specs := []workload.Spec{
		testSpec(t, "compress", "bigtest.in"),
		testSpec(t, "gcc", "genoutput.i"),
		testSpec(t, "perl", "primes.pl"),
		testSpec(t, "li", "ref.lsp"),
	}
	s := sched.New(4)
	defer s.Close()

	g := s.NewGroup()
	go func() {
		time.Sleep(2 * time.Millisecond)
		g.Cancel()
	}()
	res := RunSuiteGroup(g, specs, Config{Scale: testScale, ChunkEvents: 256})

	if len(res.Inputs)+len(res.Dropped) != len(specs) {
		t.Fatalf("inputs %d + dropped %d != %d specs",
			len(res.Inputs), len(res.Dropped), len(specs))
	}
	for _, d := range res.Dropped {
		if !errors.Is(d.Err, ErrCanceled) {
			t.Fatalf("dropped input %s with %v, want ErrCanceled", d.Spec.Name(), d.Err)
		}
	}

	clean := RunSuiteGroup(s.NewGroup(), specs, Config{Scale: testScale, ChunkEvents: 256})
	if len(clean.Dropped) != 0 {
		t.Fatalf("clean rerun after cancel dropped inputs: %v", clean.Dropped)
	}
}
