package sim

import (
	"sync/atomic"

	"btr/internal/core"
	"btr/internal/sched"
	"btr/internal/stats"
	"btr/internal/trace"
	"btr/internal/workload"
)

// attribGrid is the scheduled engine's parallel attribution pre-pass:
// the per-event class column, Exec counts and Figure 15 hard distances
// that attributeSequential derives in one replay are instead computed
// per chunk range, in parallel, through the same decoded-chunk pool the
// bank sweep will use (warming it in the process). Class resolution and
// Exec attribution are embarrassingly parallel — each range writes a
// disjoint classIdx segment and its own counters — while the hard
// distances, whose chain crosses range boundaries, are stitched
// sequentially from per-range (first, last) hard positions once every
// range has finished. The stitch is exact, not approximate: within-range
// distances use the same raw positions the sequential pass subtracts,
// and each boundary distance is firstHard(range r) − lastHard(range
// r−1), so the result is bit-identical (TestScheduledMatchesLegacy).
//
// The last range to finish performs the stitch, publishes the profile
// cache entry, and launches the bank sweep on the shared pool.
type attribGrid struct {
	cfg      Config
	spec     workload.Spec
	res      *InputResult
	classIdx []uint8
	lookup   classLookup
	pool     *trace.DecodedPool
	stride   int // chunks per range
	parts    []attribPart

	remaining atomic.Int32
	failed    atomic.Bool
	out       **InputResult
	errOut    *error
}

// attribPart is one range's private attribution state. firstHard and
// lastHard are raw global event indices (-1 = no hard branch in range);
// hist holds the range-internal distances.
type attribPart struct {
	exec                JointCounts
	hist                *stats.Histogram
	firstHard, lastHard int64
}

// newAttribGrid sizes the grid at roughly four ranges per worker —
// coarse enough that per-range state (a JointCounts and a histogram) is
// noise, fine enough to steal-balance the pre-pass across cores.
func newAttribGrid(cfg Config, spec workload.Spec, res *InputResult, workers int, out **InputResult, errOut *error) *attribGrid {
	nchunks := res.Recorded.Chunks()
	stride := 1
	if target := 4 * workers; target > 0 && nchunks > target {
		stride = (nchunks + target - 1) / target
	}
	ranges := 0
	if nchunks > 0 {
		ranges = (nchunks + stride - 1) / stride
	}
	g := &attribGrid{
		cfg:      cfg,
		spec:     spec,
		res:      res,
		classIdx: make([]uint8, res.Recorded.Events()),
		lookup:   denseClasses(res.Classes),
		pool:     cfg.newDecodedPool(res.Recorded),
		stride:   stride,
		parts:    make([]attribPart, ranges),
		out:      out,
		errOut:   errOut,
	}
	g.remaining.Store(int32(ranges))
	return g
}

// launch submits every range as an independent task; an empty recording
// skips straight to the (empty) stitch and sweep.
func (g *attribGrid) launch(w *sched.Worker) {
	if len(g.parts) == 0 {
		g.finish(w)
		return
	}
	for r := range g.parts {
		r := r
		w.Submit(func(w *sched.Worker) { g.runPart(w, r) })
	}
}

// runPart attributes one chunk range. A panic (a paging failure, or a
// corrupt spill) poisons the grid: the cause is recorded once, the
// remaining counter never reaches zero, the sweep never launches, and
// the input is reported via SuiteResult.Dropped. Group cancellation
// poisons the same way with ErrCanceled.
func (g *attribGrid) runPart(w *sched.Worker, r int) {
	defer func() {
		if rec := recover(); rec != nil {
			if g.failed.CompareAndSwap(false, true) {
				*g.errOut = recoveredErr("attribution failed", rec)
				// The sweep never launches, so finalizeMem never stops the
				// prefetcher; the poisoning task does it here.
				g.pool.CancelPrefetch()
				g.pool.ClosePrefetch()
			}
		}
	}()
	if g.failed.Load() {
		return
	}
	if w.Canceled() {
		if g.failed.CompareAndSwap(false, true) {
			*g.errOut = ErrCanceled
			g.pool.CancelPrefetch()
			g.pool.ClosePrefetch()
		}
		return
	}
	p := &g.parts[r]
	p.hist = stats.NewHistogram(len(g.res.HardDistances.Bins))
	p.firstHard, p.lastHard = -1, -1
	nchunks := g.res.Recorded.Chunks()
	end := (r + 1) * g.stride
	if end > nchunks || end < 0 {
		end = nchunks
	}
	pf := r*g.stride + 1
	for k := r * g.stride; k < end; k++ {
		if g.cfg.ReadAhead > 0 {
			// Hint the range's upcoming window; ranges are disjoint, so
			// hints stop at the range boundary.
			hi := k + 1 + g.cfg.ReadAhead
			if hi > end {
				hi = end
			}
			if pf <= k {
				pf = k + 1
			}
			for ; pf < hi; pf++ {
				g.pool.Prefetch(pf)
			}
		}
		d := g.pool.Checkout(k)
		for i := 0; i < d.N; i++ {
			ci := g.lookup.classOf(d.PCs[i], g.res.Classes)
			pos := d.Base + int64(i)
			g.classIdx[pos] = ci
			p.exec[ci/core.NumClasses][ci%core.NumClasses]++
			if ci == hardIdx {
				if p.lastHard >= 0 {
					p.hist.Add(int(pos - p.lastHard))
				} else {
					p.firstHard = pos
				}
				p.lastHard = pos
			}
		}
		g.pool.Release(k)
	}
	if g.remaining.Add(-1) == 0 {
		g.finish(w)
	}
}

// finish stitches the ranges in order (boundary hard distances, Exec
// sums, histogram merge), publishes the profile-cache entry, and hands
// the shared pool to the bank sweep.
func (g *attribGrid) finish(w *sched.Worker) {
	prevLast := int64(-1)
	for r := range g.parts {
		p := &g.parts[r]
		g.res.Exec.Add(&p.exec)
		for i, c := range p.hist.Bins {
			g.res.HardDistances.Bins[i] += c
		}
		if p.firstHard >= 0 && prevLast >= 0 {
			g.res.HardDistances.Add(int(p.firstHard - prevLast))
		}
		if p.lastHard >= 0 {
			prevLast = p.lastHard
		}
	}
	if g.cfg.Profiles != nil {
		g.cfg.Profiles.put(g.cfg.cacheKey(g.spec), g.cfg.window(), g.res, g.classIdx)
	}
	startSweep(w, g.cfg, g.res, g.classIdx, g.pool, g.out, g.errOut)
}
