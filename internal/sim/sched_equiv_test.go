package sim

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"btr/internal/workload"
)

// TestScheduledMatchesLegacy is the golden equivalence test for the
// global work-stealing scheduler: over several real workloads and
// worker counts {1, 4, GOMAXPROCS}, the scheduled engine must reproduce
// the legacy nested-pool engine — and the NoRecord regenerating engine
// — bit-for-bit, per input and in aggregate.
func TestScheduledMatchesLegacy(t *testing.T) {
	specs := []workload.Spec{
		testSpec(t, "compress", "bigtest.in"),
		testSpec(t, "gcc", "genoutput.i"),
		testSpec(t, "vortex", "vortex.lit"),
		testSpec(t, "perl", "primes.pl"),
		testSpec(t, "li", "ref.lsp"),
	}
	base := Config{Scale: testScale}

	legacyCfg := base
	legacyCfg.NoSched = true
	legacy := RunSuite(specs, legacyCfg)

	norecCfg := base
	norecCfg.NoRecord = true
	norec := RunSuite(specs, norecCfg)
	assertSuitesEqual(t, "norecord-vs-legacy", legacy, norec)

	workerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}
	for _, workers := range workerCounts {
		cfg := base
		cfg.Workers = workers
		sched := RunSuite(specs, cfg)
		assertSuitesEqual(t, "scheduled-vs-legacy", legacy, sched)
	}
}

// TestChunkedMatrixMatchesLegacy is the chunk-axis equivalence matrix:
// {legacy pool, slot-only scheduler, slot×chunk scheduler} × workers
// {1, 4, GOMAXPROCS} × chunk-task sizes {1, 7, all} must all produce
// bit-identical SuiteResults. A small ChunkEvents forces many chunks at
// test scale so the chunk axis genuinely has ranges to split.
func TestChunkedMatrixMatchesLegacy(t *testing.T) {
	specs := []workload.Spec{
		testSpec(t, "compress", "bigtest.in"),
		testSpec(t, "gcc", "genoutput.i"),
		testSpec(t, "li", "ref.lsp"),
	}
	base := Config{Scale: testScale, ChunkEvents: 256}

	legacyCfg := base
	legacyCfg.NoSched = true
	legacy := RunSuite(specs, legacyCfg)

	const allChunks = 1 << 30
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		slotCfg := base
		slotCfg.Workers = workers
		slotCfg.ChunkTasks = -1
		assertSuitesEqual(t, fmt.Sprintf("slot-only/workers=%d", workers),
			legacy, RunSuite(specs, slotCfg))
		for _, stride := range []int{1, 7, allChunks} {
			cfg := base
			cfg.Workers = workers
			cfg.ChunkTasks = stride
			assertSuitesEqual(t, fmt.Sprintf("chunked/workers=%d/stride=%d", workers, stride),
				legacy, RunSuite(specs, cfg))
		}
	}
}

func assertSuitesEqual(t *testing.T, label string, want, got *SuiteResult) {
	t.Helper()
	if len(want.Inputs) != len(got.Inputs) {
		t.Fatalf("%s: input counts %d vs %d", label, len(want.Inputs), len(got.Inputs))
	}
	for i := range want.Inputs {
		w, g := want.Inputs[i], got.Inputs[i]
		if w.Spec.Name() != g.Spec.Name() {
			t.Fatalf("%s: input order diverged: %s vs %s", label, w.Spec.Name(), g.Spec.Name())
		}
		if w.Events != g.Events || w.Sites != g.Sites {
			t.Fatalf("%s/%s: events/sites %d/%d vs %d/%d",
				label, w.Spec.Name(), w.Events, w.Sites, g.Events, g.Sites)
		}
		if w.Exec != g.Exec {
			t.Fatalf("%s/%s: Exec attribution diverged", label, w.Spec.Name())
		}
		if w.Miss != g.Miss {
			t.Fatalf("%s/%s: Miss counts diverged", label, w.Spec.Name())
		}
		if !reflect.DeepEqual(w.HardDistances.Bins, g.HardDistances.Bins) {
			t.Fatalf("%s/%s: hard distances diverged", label, w.Spec.Name())
		}
		if !reflect.DeepEqual(w.Classes, g.Classes) {
			t.Fatalf("%s/%s: class maps diverged", label, w.Spec.Name())
		}
	}
	if want.Exec != got.Exec || want.Miss != got.Miss {
		t.Fatalf("%s: aggregate counts diverged", label)
	}
	if !reflect.DeepEqual(want.Distribution, got.Distribution) {
		t.Fatalf("%s: distributions diverged", label)
	}
}

// TestScheduledSingleInputManyWorkers pins the fan-out balance claim:
// a one-input suite still uses every worker via sweep batches, and the
// result is identical to RunInput.
func TestScheduledSingleInputManyWorkers(t *testing.T) {
	spec := testSpec(t, "m88ksim", "ctl.lit")
	direct := RunInput(spec, Config{Scale: testScale})
	suite := RunSuite([]workload.Spec{spec}, Config{Scale: testScale, Workers: 8})
	if len(suite.Inputs) != 1 {
		t.Fatalf("inputs %d", len(suite.Inputs))
	}
	got := suite.Inputs[0]
	if got.Exec != direct.Exec || got.Miss != direct.Miss {
		t.Fatal("single-input scheduled run diverged from RunInput")
	}
}

// TestScheduledBatchCountIrrelevant pins that the per-input sweep batch
// count (BankWorkers) is invisible in scheduled results.
func TestScheduledBatchCountIrrelevant(t *testing.T) {
	spec := testSpec(t, "ijpeg", "vigo.ppm")
	specs := []workload.Spec{spec}
	base := RunSuite(specs, Config{Scale: testScale, BankWorkers: 1})
	for _, bw := range []int{2, 5, numBankSlots} {
		got := RunSuite(specs, Config{Scale: testScale, BankWorkers: bw})
		if got.Exec != base.Exec || got.Miss != base.Miss {
			t.Fatalf("BankWorkers=%d changed scheduled results", bw)
		}
	}
}
