package sim

import (
	"btr/internal/core"
	"btr/internal/stats"
)

// Reductions from the raw class-attributed counts to the series each
// figure plots. All rates are dynamic-occurrence weighted; empty classes
// report 0.

// MissRateByTaken returns the per-taken-class miss rate for one predictor
// configuration (one column of Figures 5/7, one curve point of 9/11).
func (s *SuiteResult) MissRateByTaken(kind Kind, k int) [core.NumClasses]float64 {
	var out [core.NumClasses]float64
	exec := s.Exec.TakenMarginal()
	miss := s.Miss[kind][k].TakenMarginal()
	for c := range out {
		out[c] = stats.Ratio(float64(miss[c]), float64(exec[c]))
	}
	return out
}

// MissRateByTransition returns the per-transition-class miss rate for one
// configuration (Figures 6/8, 10/12).
func (s *SuiteResult) MissRateByTransition(kind Kind, k int) [core.NumClasses]float64 {
	var out [core.NumClasses]float64
	exec := s.Exec.TransitionMarginal()
	miss := s.Miss[kind][k].TransitionMarginal()
	for c := range out {
		out[c] = stats.Ratio(float64(miss[c]), float64(exec[c]))
	}
	return out
}

// MissRateJoint returns the 11x11 joint-class miss-rate matrix for one
// configuration.
func (s *SuiteResult) MissRateJoint(kind Kind, k int) [core.NumClasses][core.NumClasses]float64 {
	var out [core.NumClasses][core.NumClasses]float64
	for t := 0; t < core.NumClasses; t++ {
		for tr := 0; tr < core.NumClasses; tr++ {
			out[t][tr] = stats.Ratio(
				float64(s.Miss[kind][k][t][tr]),
				float64(s.Exec[t][tr]))
		}
	}
	return out
}

// HistoryCurveTaken returns the miss rate of one taken class across every
// history length (the Figure 9/11 curves).
func (s *SuiteResult) HistoryCurveTaken(kind Kind, class core.Class) []float64 {
	out := make([]float64, NumHistories)
	for k := 0; k < NumHistories; k++ {
		out[k] = s.MissRateByTaken(kind, k)[class]
	}
	return out
}

// HistoryCurveTransition returns the miss rate of one transition class
// across every history length (the Figure 10/12 curves).
func (s *SuiteResult) HistoryCurveTransition(kind Kind, class core.Class) []float64 {
	out := make([]float64, NumHistories)
	for k := 0; k < NumHistories; k++ {
		out[k] = s.MissRateByTransition(kind, k)[class]
	}
	return out
}

// OptimalHistoryTaken returns, per taken class, the history length with
// the lowest class miss rate and that rate (Figure 3's "optimal history
// length per class").
func (s *SuiteResult) OptimalHistoryTaken(kind Kind) (ks [core.NumClasses]int, rates [core.NumClasses]float64) {
	for c := core.Class(0); int(c) < core.NumClasses; c++ {
		curve := s.HistoryCurveTaken(kind, c)
		best := stats.ArgMin(curve)
		ks[c] = best
		rates[c] = curve[best]
	}
	return ks, rates
}

// OptimalHistoryTransition is OptimalHistoryTaken for transition classes
// (Figure 4).
func (s *SuiteResult) OptimalHistoryTransition(kind Kind) (ks [core.NumClasses]int, rates [core.NumClasses]float64) {
	for c := core.Class(0); int(c) < core.NumClasses; c++ {
		curve := s.HistoryCurveTransition(kind, c)
		best := stats.ArgMin(curve)
		ks[c] = best
		rates[c] = curve[best]
	}
	return ks, rates
}

// OptimalJoint returns the joint-class miss-rate matrix where each cell
// uses its own best history length (Figures 13-14), plus the chosen
// lengths.
func (s *SuiteResult) OptimalJoint(kind Kind) (rates [core.NumClasses][core.NumClasses]float64, ks [core.NumClasses][core.NumClasses]int) {
	for t := 0; t < core.NumClasses; t++ {
		for tr := 0; tr < core.NumClasses; tr++ {
			if s.Exec[t][tr] == 0 {
				continue
			}
			curve := make([]float64, NumHistories)
			for k := 0; k < NumHistories; k++ {
				curve[k] = stats.Ratio(
					float64(s.Miss[kind][k][t][tr]),
					float64(s.Exec[t][tr]))
			}
			best := stats.ArgMin(curve)
			ks[t][tr] = best
			rates[t][tr] = curve[best]
		}
	}
	return rates, ks
}

// OverallMissRate returns the whole-suite miss rate for one configuration.
func (s *SuiteResult) OverallMissRate(kind Kind, k int) float64 {
	return stats.Ratio(float64(s.Miss[kind][k].Total()), float64(s.Exec.Total()))
}
