package sim

import (
	"testing"

	"btr/internal/core"
	"btr/internal/workload"
)

const testScale = 0.002

func testSpec(t *testing.T, bench, input string) workload.Spec {
	t.Helper()
	spec, err := workload.Find(bench, input)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func TestJointCountsOps(t *testing.T) {
	var a, b JointCounts
	a[3][4] = 10
	a[5][5] = 2
	b[3][4] = 5
	a.Add(&b)
	if a[3][4] != 15 || a.Total() != 17 {
		t.Fatalf("add/total: %d %d", a[3][4], a.Total())
	}
	tm := a.TakenMarginal()
	if tm[3] != 15 || tm[5] != 2 {
		t.Fatalf("taken marginal %v", tm)
	}
	rm := a.TransitionMarginal()
	if rm[4] != 15 || rm[5] != 2 {
		t.Fatalf("transition marginal %v", rm)
	}
}

func TestKindString(t *testing.T) {
	if KindPAs.String() != "pas" || KindGAs.String() != "gas" {
		t.Fatal("kind names")
	}
	if Kind(9).String() == "" {
		t.Fatal("unknown kind must still render")
	}
}

func TestProfileInputDeterminism(t *testing.T) {
	spec := testSpec(t, "gcc", "genoutput.i")
	p1, c1 := ProfileInput(spec, testScale)
	p2, c2 := ProfileInput(spec, testScale)
	if p1.Events() != p2.Events() || p1.Sites() != p2.Sites() {
		t.Fatal("profiling is not deterministic")
	}
	if len(c1) != len(c2) {
		t.Fatal("class maps differ")
	}
	for pc, jc := range c1 {
		if c2[pc] != jc {
			t.Fatalf("class for %#x differs", pc)
		}
	}
}

func TestRunInputConsistency(t *testing.T) {
	spec := testSpec(t, "perl", "primes.pl")
	res := RunInput(spec, Config{Scale: testScale})

	// Pass 2 must see exactly the events pass 1 profiled.
	if got := res.Exec.Total(); got != res.Events {
		t.Fatalf("attributed executions %d != profiled events %d", got, res.Events)
	}
	// Each configuration's misses are bounded by the class executions.
	for kind := Kind(0); kind < NumKinds; kind++ {
		for k := 0; k < NumHistories; k++ {
			for a := 0; a < core.NumClasses; a++ {
				for b := 0; b < core.NumClasses; b++ {
					if res.Miss[kind][k][a][b] > res.Exec[a][b] {
						t.Fatalf("%v k=%d class %d/%d: misses %d > execs %d",
							kind, k, a, b, res.Miss[kind][k][a][b], res.Exec[a][b])
					}
				}
			}
		}
	}
	// Profiled sites and classes must agree.
	if len(res.Classes) != res.Sites {
		t.Fatalf("classes %d != sites %d", len(res.Classes), res.Sites)
	}
}

func TestRunInputMissRatesPlausible(t *testing.T) {
	spec := testSpec(t, "compress", "bigtest.in")
	res := RunInput(spec, Config{Scale: testScale})
	suite := Aggregate([]*InputResult{res}, Config{Scale: testScale})

	for kind := Kind(0); kind < NumKinds; kind++ {
		zero := suite.OverallMissRate(kind, 0)
		best := zero
		for k := 1; k < NumHistories; k++ {
			if r := suite.OverallMissRate(kind, k); r < best {
				best = r
			}
		}
		if zero <= 0 || zero >= 0.5 {
			t.Fatalf("%v k=0 overall miss rate %.3f implausible", kind, zero)
		}
		if best > zero+0.01 {
			t.Fatalf("%v best-over-k %.3f worse than k=0 %.3f", kind, best, zero)
		}
	}
}

func TestSuiteAggregation(t *testing.T) {
	specs := []workload.Spec{
		testSpec(t, "perl", "primes.pl"),
		testSpec(t, "gcc", "genoutput.i"),
	}
	cfg := Config{Scale: testScale, Workers: 2}
	suite := RunSuite(specs, cfg)
	if len(suite.Inputs) != 2 {
		t.Fatalf("inputs %d", len(suite.Inputs))
	}
	var events int64
	for _, in := range suite.Inputs {
		events += in.Events
	}
	if suite.TotalEvents() != events {
		t.Fatal("TotalEvents mismatch")
	}
	if suite.Exec.Total() != events {
		t.Fatalf("aggregated exec %d != %d", suite.Exec.Total(), events)
	}
	if suite.Distribution.Total != float64(events) {
		t.Fatalf("distribution total %v != %d", suite.Distribution.Total, events)
	}
	benches := suite.Benchmarks()
	if len(benches) != 2 {
		t.Fatalf("benchmarks %v", benches)
	}
}

func TestSuiteParallelMatchesSerial(t *testing.T) {
	specs := []workload.Spec{
		testSpec(t, "gcc", "genoutput.i"),
		testSpec(t, "gcc", "genrecog.i"),
		testSpec(t, "perl", "primes.pl"),
	}
	serial := RunSuite(specs, Config{Scale: testScale, Workers: 1})
	parallel := RunSuite(specs, Config{Scale: testScale, Workers: 3})
	if serial.Exec != parallel.Exec {
		t.Fatal("parallel aggregation changed exec attribution")
	}
	for kind := Kind(0); kind < NumKinds; kind++ {
		for k := 0; k < NumHistories; k++ {
			if serial.Miss[kind][k] != parallel.Miss[kind][k] {
				t.Fatalf("parallel run diverged for %v k=%d", kind, k)
			}
		}
	}
}

func TestReductions(t *testing.T) {
	spec := testSpec(t, "vortex", "vortex.lit")
	suite := RunSuite([]workload.Spec{spec}, Config{Scale: testScale})

	byTaken := suite.MissRateByTaken(KindPAs, 4)
	byTrans := suite.MissRateByTransition(KindPAs, 4)
	joint := suite.MissRateJoint(KindPAs, 4)
	for c := 0; c < core.NumClasses; c++ {
		if byTaken[c] < 0 || byTaken[c] > 1 || byTrans[c] < 0 || byTrans[c] > 1 {
			t.Fatalf("class %d rates out of range", c)
		}
		for b := 0; b < core.NumClasses; b++ {
			if joint[c][b] < 0 || joint[c][b] > 1 {
				t.Fatalf("joint %d/%d out of range", c, b)
			}
		}
	}

	curve := suite.HistoryCurveTaken(KindGAs, 10)
	if len(curve) != NumHistories {
		t.Fatalf("curve length %d", len(curve))
	}

	ks, rates := suite.OptimalHistoryTaken(KindPAs)
	for c := 0; c < core.NumClasses; c++ {
		if ks[c] < 0 || ks[c] > 16 {
			t.Fatalf("optimal k %d", ks[c])
		}
		// The optimum must not exceed any point on the curve.
		cc := suite.HistoryCurveTaken(KindPAs, core.Class(c))
		for _, v := range cc {
			if rates[c] > v+1e-12 {
				t.Fatalf("class %d: optimal %v > curve point %v", c, rates[c], v)
			}
		}
	}

	_, _ = suite.OptimalHistoryTransition(KindGAs)
	jr, jk := suite.OptimalJoint(KindPAs)
	for a := 0; a < core.NumClasses; a++ {
		for b := 0; b < core.NumClasses; b++ {
			if jr[a][b] < 0 || jr[a][b] > 1 || jk[a][b] < 0 || jk[a][b] > 16 {
				t.Fatalf("optimal joint %d/%d bad: %v k=%d", a, b, jr[a][b], jk[a][b])
			}
		}
	}
}

func TestHardDistances(t *testing.T) {
	// vortex's random-key compares generate 5/5 branches, so its Figure 15
	// histogram must be non-empty at a reasonable scale.
	spec := testSpec(t, "vortex", "vortex.lit")
	suite := RunSuite([]workload.Spec{spec}, Config{Scale: 0.005})
	h := suite.HardByBench["vortex"]
	if h == nil {
		t.Fatal("no hard-distance histogram for vortex")
	}
	if h.Total() == 0 {
		t.Skip("no 5/5 branches at this scale; acceptable but nothing to check")
	}
	if h.Bins[0] != 0 {
		t.Fatal("distance 0 is impossible (bin 0 must stay empty)")
	}
}

func TestConfigWindow(t *testing.T) {
	if (Config{}).window() != 8 {
		t.Fatal("default window")
	}
	if (Config{HardDistanceWindow: 12}).window() != 12 {
		t.Fatal("explicit window")
	}
}
