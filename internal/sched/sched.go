// Package sched is the process-wide work-stealing scheduler behind
// sim.RunSuite: one pool of workers executing a single queue of tasks,
// where a running task may fan out follow-up tasks into the same queue.
//
// The shape it replaces — a per-suite pool of input goroutines, each
// spawning a private pool for its predictor-bank sweep — either
// oversubscribes (Workers × BankWorkers goroutines) or idles: once the
// small inputs drain, one large input's sweep is stuck on its private
// pool while every other core sits empty. Here there is exactly one
// pool. Each worker owns a deque; tasks it spawns push onto the bottom
// of its own deque and are popped LIFO (the sweep batches of the input
// it just profiled are the hottest work it has), while idle workers
// steal from the top of a victim's deque FIFO (the oldest task is most
// likely an un-started profile task — the biggest unit available, so a
// thief amortises its steal). Late-arriving fan-out from a big input
// therefore backfills cores freed by small ones.
//
// Tasks here are coarse — a whole workload profile run or a bank-batch
// sweep over a full recorded trace, milliseconds to seconds each — so
// the deques are small mutexed slices rather than lock-free Chase-Lev
// arrays: queue operations are nanoseconds against task runtimes, and
// the simple structure is easy to reason about under -race.
package sched

import (
	"runtime"
	"sync"
)

// Task is one schedulable unit of work. It runs on one of the
// scheduler's workers and may submit follow-up tasks via w.
type Task func(w *Worker)

// Scheduler owns a fixed set of workers draining one logical queue.
// Submit tasks (from outside or from running tasks), then Wait.
type Scheduler struct {
	deques []deque
	wg     sync.WaitGroup

	mu       sync.Mutex
	cond     *sync.Cond
	pending  int    // tasks submitted but not yet finished
	stamp    uint64 // bumped on every submit; guards the sleep path
	quit     bool
	next     int // round-robin cursor for external submits
	panicked []any
}

// Worker is the per-goroutine handle a Task receives. Submitting
// through it pushes onto the worker's own deque, keeping fan-out local
// until a thief takes it.
type Worker struct {
	s   *Scheduler
	id  int
	rnd uint64 // xorshift state for victim selection
}

// New starts a scheduler with n workers (n <= 0 means GOMAXPROCS).
func New(n int) *Scheduler {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	s := &Scheduler{deques: make([]deque, n)}
	s.cond = sync.NewCond(&s.mu)
	s.wg.Add(n)
	for i := 0; i < n; i++ {
		go s.run(i)
	}
	return s
}

// Workers returns the worker count.
func (s *Scheduler) Workers() int { return len(s.deques) }

// Submit enqueues a task from outside the pool, distributing
// round-robin across worker deques. Tasks must not be submitted after
// Wait has returned.
func (s *Scheduler) Submit(t Task) {
	s.mu.Lock()
	i := s.next % len(s.deques)
	s.next++
	s.enqueueLocked(&s.deques[i], t)
	s.mu.Unlock()
}

// Submit enqueues a follow-up task onto this worker's own deque.
func (w *Worker) Submit(t Task) {
	s := w.s
	s.mu.Lock()
	s.enqueueLocked(&s.deques[w.id], t)
	s.mu.Unlock()
}

// enqueueLocked registers the task (pending, stamp) and pushes it.
// Pending is incremented before the push so Wait can never observe a
// queued-but-uncounted task; the broadcast wakes sleeping workers.
func (s *Scheduler) enqueueLocked(d *deque, t Task) {
	s.pending++
	s.stamp++
	d.pushBottom(t)
	s.cond.Broadcast()
}

// Wait blocks until every submitted task — including tasks submitted by
// running tasks — has finished, then stops the workers. Pending cannot
// reach zero while any task runs (the running task's own slot is still
// counted, and its fan-out is registered before it finishes), so zero
// means fully drained. If any task panicked, Wait re-panics with the
// first recovered value after the workers have stopped. The scheduler
// is spent after Wait; build a new one for more work.
func (s *Scheduler) Wait() {
	s.mu.Lock()
	for s.pending > 0 {
		s.cond.Wait()
	}
	s.quit = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
	if len(s.panicked) > 0 {
		panic(s.panicked[0])
	}
}

func (s *Scheduler) run(id int) {
	defer s.wg.Done()
	w := &Worker{s: s, id: id, rnd: uint64(id)*2654435761 + 0x9e3779b97f4a7c15}
	for {
		if t := s.deques[id].popBottom(); t != nil {
			s.exec(w, t)
			continue
		}
		if t := s.steal(w); t != nil {
			s.exec(w, t)
			continue
		}
		// Sleep path. Read the stamp, re-scan every deque, and only
		// sleep if no submit happened since the read: a task enqueued
		// before the read is found by the re-scan, one enqueued after
		// it changes the stamp and aborts the sleep. Either way no
		// wakeup is lost.
		s.mu.Lock()
		stamp := s.stamp
		quit := s.quit
		s.mu.Unlock()
		if quit {
			return
		}
		if t := s.scan(w); t != nil {
			s.exec(w, t)
			continue
		}
		s.mu.Lock()
		for s.stamp == stamp && !s.quit {
			s.cond.Wait()
		}
		s.mu.Unlock()
	}
}

// exec runs one task, always decrementing pending (and waking Wait at
// zero) even if the task panics. Panics are captured and re-raised by
// Wait: a panicking workload is handled by the sim layer's own recover,
// so anything reaching here is a real bug that must not deadlock the
// suite run.
func (s *Scheduler) exec(w *Worker, t Task) {
	defer func() {
		r := recover()
		s.mu.Lock()
		if r != nil {
			s.panicked = append(s.panicked, r)
		}
		s.pending--
		if s.pending == 0 {
			s.cond.Broadcast()
		}
		s.mu.Unlock()
	}()
	t(w)
}

// steal takes the oldest task from another worker's deque, scanning
// victims from a per-worker random start so thieves spread out.
func (s *Scheduler) steal(w *Worker) Task {
	n := len(s.deques)
	if n == 1 {
		return nil
	}
	w.rnd ^= w.rnd << 13
	w.rnd ^= w.rnd >> 7
	w.rnd ^= w.rnd << 17
	start := int(w.rnd % uint64(n))
	for i := 0; i < n; i++ {
		v := (start + i) % n
		if v == w.id {
			continue
		}
		if t := s.deques[v].stealTop(); t != nil {
			return t
		}
	}
	return nil
}

// scan checks the worker's own deque and then every victim — the full
// re-check before sleeping.
func (s *Scheduler) scan(w *Worker) Task {
	if t := s.deques[w.id].popBottom(); t != nil {
		return t
	}
	return s.steal(w)
}

// deque is a mutexed double-ended task queue: the owner pushes and pops
// at the bottom (LIFO), thieves take from the top (FIFO).
type deque struct {
	mu    sync.Mutex
	tasks []Task
}

func (d *deque) pushBottom(t Task) {
	d.mu.Lock()
	d.tasks = append(d.tasks, t)
	d.mu.Unlock()
}

func (d *deque) popBottom() Task {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := len(d.tasks)
	if n == 0 {
		return nil
	}
	t := d.tasks[n-1]
	d.tasks[n-1] = nil
	d.tasks = d.tasks[:n-1]
	return t
}

func (d *deque) stealTop() Task {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.tasks) == 0 {
		return nil
	}
	t := d.tasks[0]
	d.tasks[0] = nil
	d.tasks = d.tasks[1:]
	return t
}
