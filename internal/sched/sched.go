// Package sched is the process-wide work-stealing scheduler behind
// sim.RunSuite: one pool of workers executing a single logical queue of
// tasks, where a running task may fan out follow-up tasks into the same
// queue.
//
// The shape it replaces — a per-suite pool of input goroutines, each
// spawning a private pool for its predictor-bank sweep — either
// oversubscribes (Workers × BankWorkers goroutines) or idles: once the
// small inputs drain, one large input's sweep is stuck on its private
// pool while every other core sits empty. Here there is exactly one
// pool. Each worker owns a lock-free Chase-Lev deque; tasks it spawns
// push onto the bottom of its own deque and are popped LIFO (the next
// chunk range of the sweep chain it just advanced is the hottest work it
// has — the predictor tables are still in cache), while idle workers
// steal from the top of a victim's deque FIFO (the oldest task is most
// likely an un-started chain head or profile task — the biggest unit
// available, so a thief amortises its steal). External submissions land
// in a shared injector queue that workers drain when their own deque is
// empty.
//
// Tasks used to be coarse — milliseconds to seconds — and the deques
// were small mutexed slices. The chunk-axis sweep decomposition shrank
// tasks to tens of microseconds, which put queue operations on the
// measured path: push/pop/steal are now entirely lock-free (see deque),
// and the only mutex left guards the sleep path. Workers that find no
// work park on a condition variable behind a Dekker-style handshake: a
// submitter bumps an atomic stamp after publishing its task and wakes
// sleepers only when the atomic parked counter is non-zero; a parking
// worker registers itself, re-checks the stamp, and sleeps only if no
// submit happened since its last full scan. Sequentially consistent
// atomics make the lost-wakeup interleaving impossible.
package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Task is one schedulable unit of work. It runs on one of the
// scheduler's workers and may submit follow-up tasks via w.
type Task func(w *Worker)

// Scheduler owns a fixed set of workers draining one logical queue.
// Submit tasks (from outside or from running tasks), then Wait — or, for
// a long-lived scheduler shared by many independent waits (a server),
// submit through per-request Groups and Close the scheduler only at
// shutdown.
type Scheduler struct {
	deques   []deque
	injector injector

	pending atomic.Int64  // tasks submitted but not yet finished
	stamp   atomic.Uint64 // bumped on every submit; guards the sleep path
	parked  atomic.Int32  // workers currently inside the condvar wait
	quit    atomic.Bool

	// Cheap cumulative counters behind Stats. One uncontended-ish atomic
	// add per event; tasks are tens of microseconds, so the adds are
	// noise even at full steal churn.
	statExec    atomic.Int64 // tasks completed
	statSteals  atomic.Int64 // successful steals
	statSubmits atomic.Int64 // external (injector) submissions
	statParks   atomic.Int64 // condvar sleeps entered

	wg sync.WaitGroup

	mu       sync.Mutex // guards cond and panicked only
	cond     *sync.Cond
	panicked []any
}

// Stats is a point-in-time snapshot of the scheduler's counters: the
// cumulative task/steal/submit/park tallies plus the instantaneous
// queue depth (tasks submitted but not yet finished) and worker count.
// It is what a /metrics endpoint or a CLI summary line reports.
type Stats struct {
	Workers         int   `json:"workers"`
	Executed        int64 `json:"executed"`
	Steals          int64 `json:"steals"`
	InjectorSubmits int64 `json:"injector_submits"`
	Parks           int64 `json:"parks"`
	Pending         int64 `json:"pending"`
}

// Stats returns a snapshot of the counters. Safe from any goroutine;
// the fields are read independently, so the snapshot is approximate
// under concurrent traffic (each counter is exact, their combination is
// not a consistent cut).
func (s *Scheduler) Stats() Stats {
	return Stats{
		Workers:         len(s.deques),
		Executed:        s.statExec.Load(),
		Steals:          s.statSteals.Load(),
		InjectorSubmits: s.statSubmits.Load(),
		Parks:           s.statParks.Load(),
		Pending:         s.pending.Load(),
	}
}

// Worker is the per-goroutine handle a Task receives. Submitting
// through it pushes onto the worker's own lock-free deque; it must only
// be called from the task currently running on this worker (the deque
// bottom is single-owner).
type Worker struct {
	s   *Scheduler
	id  int
	g   *Group // group of the task currently executing, nil outside one
	rnd uint64 // xorshift state for victim selection
}

// Canceled reports whether the group of the currently-running task has
// been canceled. Tasks outside any group are never canceled. Workloads
// that decompose into many small tasks check this at task boundaries
// and unwind instead of doing real work, which is what makes Group
// cancellation land in bounded time.
func (w *Worker) Canceled() bool { return w.g != nil && w.g.Canceled() }

// New starts a scheduler with n workers (n <= 0 means GOMAXPROCS).
func New(n int) *Scheduler {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	s := &Scheduler{deques: make([]deque, n)}
	s.cond = sync.NewCond(&s.mu)
	for i := range s.deques {
		s.deques[i].init()
	}
	s.wg.Add(n)
	for i := 0; i < n; i++ {
		go s.run(i)
	}
	return s
}

// Workers returns the worker count.
func (s *Scheduler) Workers() int { return len(s.deques) }

// Submit enqueues a task from outside the pool into the shared injector
// queue. Safe from any goroutine. Tasks must not be submitted after
// Wait has returned.
func (s *Scheduler) Submit(t Task) {
	// Pending is incremented before the task is published so Wait can
	// never observe a queued-but-uncounted task.
	s.pending.Add(1)
	s.statSubmits.Add(1)
	s.injector.push(t)
	s.notify()
}

// Submit enqueues a follow-up task onto this worker's own deque, where
// it will be popped LIFO (or stolen FIFO by an idle worker). Must be
// called from the task running on w. A task submitted from inside a
// Group's task joins that group: the fan-out a request's tasks produce
// is tracked by the request's Group without the submitting code knowing
// groups exist.
func (w *Worker) Submit(t Task) {
	if w.g != nil {
		t = w.g.wrap(t)
	}
	s := w.s
	s.pending.Add(1)
	s.deques[w.id].pushBottom(t)
	s.notify()
}

// SubmitFair enqueues a follow-up task into the shared injector FIFO
// instead of the worker's own deque, keeping the submitter's group.
// Where Submit makes the continuation the worker's very next task
// (depth-first: a chain of self-resubmitting tasks runs to completion
// before its siblings start), SubmitFair runs it after everything
// already queued, so sibling chains advance breadth-first, in rough
// lockstep. Task chains that share cached state — sweep chains over
// one decoded-chunk pool — use this to convoy: the chunk one chain
// just paid to decode is still resident when its siblings arrive.
func (w *Worker) SubmitFair(t Task) {
	if w.g != nil {
		t = w.g.wrap(t)
	}
	s := w.s
	s.pending.Add(1)
	s.statSubmits.Add(1)
	s.injector.push(t)
	s.notify()
}

// notify publishes "new work exists" to parking workers. The stamp bump
// must follow the task's publication (it does: both are seq-cst atomics
// in program order) and precede the parked check; see run for the other
// half of the handshake.
func (s *Scheduler) notify() {
	s.stamp.Add(1)
	if s.parked.Load() > 0 {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	}
}

// Wait blocks until every submitted task — including tasks submitted by
// running tasks — has finished, then stops the workers. Pending cannot
// reach zero while any task runs (the running task's own slot is still
// counted, and its fan-out is registered before it finishes), so zero
// means fully drained. If any task panicked, Wait re-panics with the
// first recovered value after the workers have stopped. The scheduler
// is spent after Wait; build a new one for more work.
func (s *Scheduler) Wait() {
	s.mu.Lock()
	for s.pending.Load() > 0 {
		s.cond.Wait()
	}
	s.mu.Unlock()
	s.Close()
	if len(s.panicked) > 0 {
		panic(s.panicked[0])
	}
}

// Close stops the workers. Unlike Wait it does not require the queue to
// be drained first — workers finish every task they can still find
// (including fan-out submitted while closing) and exit once idle, so
// Close blocks until all queued work has run. It is the shutdown path
// for a long-lived scheduler whose lifetime spans many Group waits;
// Close is idempotent, and task panics captured at scheduler level are
// not re-raised (Groups surface their own). The scheduler is spent
// after Close.
func (s *Scheduler) Close() {
	if s.quit.Swap(true) {
		return
	}
	s.stamp.Add(1) // abort in-flight park attempts
	s.mu.Lock()
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
}

func (s *Scheduler) run(id int) {
	defer s.wg.Done()
	w := &Worker{s: s, id: id, rnd: uint64(id)*2654435761 + 0x9e3779b97f4a7c15}
	d := &s.deques[id]
	for {
		if t := d.popBottom(); t != nil {
			s.exec(w, t)
			continue
		}
		if t := s.injector.pop(); t != nil {
			s.exec(w, t)
			continue
		}
		if t, retry := s.steal(w); t != nil {
			s.exec(w, t)
			continue
		} else if retry {
			// Lost a CAS race: the victim may still hold work, so spin
			// another round rather than risking a park.
			continue
		}
		// Park path. Read the stamp, re-scan everything, and only sleep
		// if no submit happened since the read: a task enqueued before
		// the read is found by the re-scan; one enqueued after it bumps
		// the stamp, and either the parking worker sees the new stamp or
		// the submitter sees the parked counter — seq-cst order forbids
		// both loads missing (the Dekker argument), so no wakeup is lost.
		stamp := s.stamp.Load()
		if s.quit.Load() {
			return
		}
		if t, retry := s.scan(w); t != nil {
			s.exec(w, t)
			continue
		} else if retry {
			continue
		}
		s.mu.Lock()
		s.parked.Add(1)
		if s.stamp.Load() == stamp && !s.quit.Load() {
			s.statParks.Add(1) // one park episode, however many spurious wakes
			for s.stamp.Load() == stamp && !s.quit.Load() {
				s.cond.Wait()
			}
		}
		s.parked.Add(-1)
		s.mu.Unlock()
	}
}

// exec runs one task, always decrementing pending (and waking Wait at
// zero) even if the task panics. Panics are captured and re-raised by
// Wait: a panicking workload is handled by the sim layer's own recover,
// so anything reaching here is a real bug that must not deadlock the
// suite run.
func (s *Scheduler) exec(w *Worker, t Task) {
	defer func() {
		if r := recover(); r != nil {
			s.mu.Lock()
			s.panicked = append(s.panicked, r)
			s.mu.Unlock()
		}
		s.statExec.Add(1)
		if s.pending.Add(-1) == 0 {
			s.mu.Lock()
			s.cond.Broadcast()
			s.mu.Unlock()
		}
	}()
	t(w)
}

// steal takes the oldest task from another worker's deque, scanning
// victims from a per-worker random start so thieves spread out. retry
// reports that some victim was non-empty but a CAS was lost — the
// caller must not park on that evidence.
func (s *Scheduler) steal(w *Worker) (Task, bool) {
	n := len(s.deques)
	if n == 1 {
		return nil, false
	}
	w.rnd ^= w.rnd << 13
	w.rnd ^= w.rnd >> 7
	w.rnd ^= w.rnd << 17
	start := int(w.rnd % uint64(n))
	sawContention := false
	for i := 0; i < n; i++ {
		v := (start + i) % n
		if v == w.id {
			continue
		}
		if t, retry := s.deques[v].stealTop(); t != nil {
			s.statSteals.Add(1)
			return t, false
		} else if retry {
			sawContention = true
		}
	}
	return nil, sawContention
}

// scan checks the worker's own deque, the injector, and every victim —
// the full re-check before parking.
func (s *Scheduler) scan(w *Worker) (Task, bool) {
	if t := s.deques[w.id].popBottom(); t != nil {
		return t, false
	}
	if t := s.injector.pop(); t != nil {
		return t, false
	}
	return s.steal(w)
}

// injector is the shared FIFO for external submissions. It is mutexed —
// external submits are per-input, orders of magnitude rarer than the
// per-chunk-range worker traffic that rides the lock-free deques — and
// pops amortise the head index against the backing slice.
type injector struct {
	mu   sync.Mutex
	q    []Task
	head int
}

func (in *injector) push(t Task) {
	in.mu.Lock()
	in.q = append(in.q, t)
	in.mu.Unlock()
}

func (in *injector) pop() Task {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.head >= len(in.q) {
		return nil
	}
	t := in.q[in.head]
	in.q[in.head] = nil
	in.head++
	if in.head == len(in.q) {
		in.q = in.q[:0]
		in.head = 0
	}
	return t
}
