package sched

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestRunsEverySubmittedTask(t *testing.T) {
	for _, workers := range []int{1, 2, 7} {
		s := New(workers)
		var ran atomic.Int64
		const n = 100
		for i := 0; i < n; i++ {
			s.Submit(func(*Worker) { ran.Add(1) })
		}
		s.Wait()
		if got := ran.Load(); got != n {
			t.Fatalf("workers=%d: ran %d of %d tasks", workers, got, n)
		}
	}
}

func TestDefaultWorkerCount(t *testing.T) {
	s := New(0)
	if s.Workers() < 1 {
		t.Fatalf("Workers() = %d", s.Workers())
	}
	s.Submit(func(*Worker) {})
	s.Wait()
}

// TestFanOut pins the scheduler's central contract: tasks submitted by
// running tasks (recursively) all execute before Wait returns.
func TestFanOut(t *testing.T) {
	s := New(4)
	var ran atomic.Int64
	var spawn func(w *Worker, depth int)
	spawn = func(w *Worker, depth int) {
		ran.Add(1)
		if depth == 0 {
			return
		}
		for i := 0; i < 3; i++ {
			d := depth - 1
			w.Submit(func(w *Worker) { spawn(w, d) })
		}
	}
	s.Submit(func(w *Worker) { spawn(w, 4) })
	s.Wait()
	// 1 + 3 + 9 + 27 + 81 tasks.
	if got := ran.Load(); got != 121 {
		t.Fatalf("ran %d tasks, want 121", got)
	}
}

// TestStealing proves fan-out lands on other workers: four tasks spawned
// by one worker block on a shared barrier that only releases when all
// four are running simultaneously, which requires four distinct workers.
func TestStealing(t *testing.T) {
	const n = 4
	s := New(n)
	var wg sync.WaitGroup
	wg.Add(n)
	s.Submit(func(w *Worker) {
		for i := 0; i < n; i++ {
			w.Submit(func(*Worker) {
				wg.Done()
				wg.Wait() // deadlocks (test timeout) unless all n run concurrently
			})
		}
	})
	s.Wait()
}

func TestWaitWithNoTasks(t *testing.T) {
	s := New(3)
	s.Wait()
}

func TestPanicPropagates(t *testing.T) {
	s := New(2)
	var ran atomic.Int64
	s.Submit(func(*Worker) { panic("task bug") })
	s.Submit(func(*Worker) { ran.Add(1) })
	defer func() {
		if r := recover(); r != "task bug" {
			t.Fatalf("Wait recovered %v, want the task's panic", r)
		}
		if ran.Load() != 1 {
			t.Fatal("non-panicking task must still run")
		}
	}()
	s.Wait()
	t.Fatal("Wait must re-panic")
}

func TestManyConcurrentSubmitters(t *testing.T) {
	s := New(3)
	var ran atomic.Int64
	var submitters sync.WaitGroup
	for g := 0; g < 8; g++ {
		submitters.Add(1)
		go func() {
			defer submitters.Done()
			for i := 0; i < 50; i++ {
				s.Submit(func(*Worker) { ran.Add(1) })
			}
		}()
	}
	submitters.Wait()
	s.Wait()
	if got := ran.Load(); got != 400 {
		t.Fatalf("ran %d of 400", got)
	}
}

func TestDequeOrder(t *testing.T) {
	var d deque
	d.init()
	mk := func(id int, out *[]int) Task {
		return func(*Worker) { *out = append(*out, id) }
	}
	var got []int
	d.pushBottom(mk(1, &got))
	d.pushBottom(mk(2, &got))
	d.pushBottom(mk(3, &got))
	st, _ := d.stealTop()
	st(nil)            // oldest: 1
	d.popBottom()(nil) // newest: 3
	d.popBottom()(nil) // 2
	if !d.empty() {
		t.Fatal("deque must report empty")
	}
	if st, _ := d.stealTop(); d.popBottom() != nil || st != nil {
		t.Fatal("deque must be empty")
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 3 || got[2] != 2 {
		t.Fatalf("order %v, want [1 3 2]", got)
	}
}

// TestDequeGrow pushes far past the initial ring capacity and drains
// from both ends, pinning that growth preserves order and loses nothing.
func TestDequeGrow(t *testing.T) {
	var d deque
	d.init()
	const n = 10 * initialRingCap
	seen := make([]bool, n)
	for i := 0; i < n; i++ {
		i := i
		d.pushBottom(func(*Worker) { seen[i] = true })
	}
	// Alternate steals (oldest) and pops (newest) until drained.
	for drained := 0; drained < n; {
		if st, _ := d.stealTop(); st != nil {
			st(nil)
			drained++
		}
		if drained < n {
			if p := d.popBottom(); p != nil {
				p(nil)
				drained++
			}
		}
	}
	if !d.empty() {
		t.Fatal("deque must be empty after draining")
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("task %d lost across ring growth", i)
		}
	}
}

// TestStress100kMicroTasks floods the scheduler with 1e5 microsecond-
// scale tasks — a mix of external submissions and worker fan-out — and
// verifies every one runs exactly once. This is the -race workout for
// the Chase-Lev deque and the park/unpark protocol.
func TestStress100kMicroTasks(t *testing.T) {
	const (
		roots  = 1_000
		perFan = 99 // 1_000 roots × (1 + 99) = 100_000 tasks
	)
	for _, workers := range []int{1, 4, 16} {
		s := New(workers)
		counts := make([]atomic.Int32, roots*(perFan+1))
		for r := 0; r < roots; r++ {
			r := r
			s.Submit(func(w *Worker) {
				counts[r*(perFan+1)].Add(1)
				for j := 1; j <= perFan; j++ {
					j := j
					w.Submit(func(*Worker) {
						counts[r*(perFan+1)+j].Add(1)
					})
				}
			})
		}
		s.Wait()
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("workers=%d: task %d ran %d times, want exactly 1", workers, i, got)
			}
		}
	}
}

// TestStealContentionExactlyOnce aims every worker at one victim's deque
// simultaneously: a single task fans out a large batch, a barrier holds
// all workers until the batch is fully published, and per-task counters
// then prove no task was lost or duplicated through the CAS races.
func TestStealContentionExactlyOnce(t *testing.T) {
	const tasks = 4096
	for round := 0; round < 8; round++ {
		workers := 8
		s := New(workers)
		counts := make([]atomic.Int32, tasks)
		var gate sync.WaitGroup
		gate.Add(1)
		// Park the other workers on the gate so the fan-out below all
		// lands in one deque before the thieves pounce at once.
		for i := 0; i < workers-1; i++ {
			s.Submit(func(*Worker) { gate.Wait() })
		}
		s.Submit(func(w *Worker) {
			for i := 0; i < tasks; i++ {
				i := i
				w.Submit(func(*Worker) { counts[i].Add(1) })
			}
			gate.Done()
		})
		s.Wait()
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("round %d: task %d ran %d times, want exactly 1", round, i, got)
			}
		}
	}
}
