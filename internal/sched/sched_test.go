package sched

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestRunsEverySubmittedTask(t *testing.T) {
	for _, workers := range []int{1, 2, 7} {
		s := New(workers)
		var ran atomic.Int64
		const n = 100
		for i := 0; i < n; i++ {
			s.Submit(func(*Worker) { ran.Add(1) })
		}
		s.Wait()
		if got := ran.Load(); got != n {
			t.Fatalf("workers=%d: ran %d of %d tasks", workers, got, n)
		}
	}
}

func TestDefaultWorkerCount(t *testing.T) {
	s := New(0)
	if s.Workers() < 1 {
		t.Fatalf("Workers() = %d", s.Workers())
	}
	s.Submit(func(*Worker) {})
	s.Wait()
}

// TestFanOut pins the scheduler's central contract: tasks submitted by
// running tasks (recursively) all execute before Wait returns.
func TestFanOut(t *testing.T) {
	s := New(4)
	var ran atomic.Int64
	var spawn func(w *Worker, depth int)
	spawn = func(w *Worker, depth int) {
		ran.Add(1)
		if depth == 0 {
			return
		}
		for i := 0; i < 3; i++ {
			d := depth - 1
			w.Submit(func(w *Worker) { spawn(w, d) })
		}
	}
	s.Submit(func(w *Worker) { spawn(w, 4) })
	s.Wait()
	// 1 + 3 + 9 + 27 + 81 tasks.
	if got := ran.Load(); got != 121 {
		t.Fatalf("ran %d tasks, want 121", got)
	}
}

// TestStealing proves fan-out lands on other workers: four tasks spawned
// by one worker block on a shared barrier that only releases when all
// four are running simultaneously, which requires four distinct workers.
func TestStealing(t *testing.T) {
	const n = 4
	s := New(n)
	var wg sync.WaitGroup
	wg.Add(n)
	s.Submit(func(w *Worker) {
		for i := 0; i < n; i++ {
			w.Submit(func(*Worker) {
				wg.Done()
				wg.Wait() // deadlocks (test timeout) unless all n run concurrently
			})
		}
	})
	s.Wait()
}

func TestWaitWithNoTasks(t *testing.T) {
	s := New(3)
	s.Wait()
}

func TestPanicPropagates(t *testing.T) {
	s := New(2)
	var ran atomic.Int64
	s.Submit(func(*Worker) { panic("task bug") })
	s.Submit(func(*Worker) { ran.Add(1) })
	defer func() {
		if r := recover(); r != "task bug" {
			t.Fatalf("Wait recovered %v, want the task's panic", r)
		}
		if ran.Load() != 1 {
			t.Fatal("non-panicking task must still run")
		}
	}()
	s.Wait()
	t.Fatal("Wait must re-panic")
}

func TestManyConcurrentSubmitters(t *testing.T) {
	s := New(3)
	var ran atomic.Int64
	var submitters sync.WaitGroup
	for g := 0; g < 8; g++ {
		submitters.Add(1)
		go func() {
			defer submitters.Done()
			for i := 0; i < 50; i++ {
				s.Submit(func(*Worker) { ran.Add(1) })
			}
		}()
	}
	submitters.Wait()
	s.Wait()
	if got := ran.Load(); got != 400 {
		t.Fatalf("ran %d of 400", got)
	}
}

func TestDequeOrder(t *testing.T) {
	var d deque
	mk := func(id int, out *[]int) Task {
		return func(*Worker) { *out = append(*out, id) }
	}
	var got []int
	d.pushBottom(mk(1, &got))
	d.pushBottom(mk(2, &got))
	d.pushBottom(mk(3, &got))
	d.stealTop()(nil)  // oldest: 1
	d.popBottom()(nil) // newest: 3
	d.popBottom()(nil) // 2
	if d.popBottom() != nil || d.stealTop() != nil {
		t.Fatal("deque must be empty")
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 3 || got[2] != 2 {
		t.Fatalf("order %v, want [1 3 2]", got)
	}
}
