package sched

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestGroupWaitsOnlyForItsOwnTasks is the multi-tenant contract: two
// groups on one scheduler, the first group's Wait returns while the
// second group is still blocked, and the scheduler survives both.
func TestGroupWaitsOnlyForItsOwnTasks(t *testing.T) {
	s := New(4)
	defer s.Close()

	var fastRan atomic.Int64
	gate := make(chan struct{})
	slow := s.NewGroup()
	slow.Submit(func(*Worker) { <-gate })

	fast := s.NewGroup()
	for i := 0; i < 64; i++ {
		fast.Submit(func(*Worker) { fastRan.Add(1) })
	}
	fast.Wait()
	if got := fastRan.Load(); got != 64 {
		t.Fatalf("fast group ran %d tasks, want 64", got)
	}
	close(gate)
	slow.Wait()
}

// TestGroupTracksFanOut pins the sticky-membership rule: follow-up
// tasks submitted via Worker.Submit from inside a group's task belong
// to the group, so Wait covers the whole task tree.
func TestGroupTracksFanOut(t *testing.T) {
	s := New(4)
	defer s.Close()

	var ran atomic.Int64
	g := s.NewGroup()
	g.Submit(func(w *Worker) {
		ran.Add(1)
		for i := 0; i < 10; i++ {
			w.Submit(func(w *Worker) {
				ran.Add(1)
				w.Submit(func(*Worker) { ran.Add(1) })
			})
		}
	})
	g.Wait()
	if got := ran.Load(); got != 21 {
		t.Fatalf("group waited over %d tasks, want 21 (1 + 10 + 10)", got)
	}
}

// TestGroupPanicIsolation: a panicking task surfaces on its own group's
// Wait, other groups and the scheduler keep working.
func TestGroupPanicIsolation(t *testing.T) {
	s := New(2)
	defer s.Close()

	bad := s.NewGroup()
	bad.Submit(func(w *Worker) {
		w.Submit(func(*Worker) { panic("tenant bug") })
	})
	func() {
		defer func() {
			if r := recover(); r != "tenant bug" {
				t.Errorf("bad group Wait recovered %v, want tenant bug", r)
			}
		}()
		bad.Wait()
		t.Error("bad group Wait did not panic")
	}()

	var ran atomic.Int64
	good := s.NewGroup()
	for i := 0; i < 32; i++ {
		good.Submit(func(*Worker) { ran.Add(1) })
	}
	good.Wait()
	if got := ran.Load(); got != 32 {
		t.Fatalf("good group ran %d tasks after sibling panic, want 32", got)
	}
}

// TestConcurrentGroupsStress interleaves many groups from many
// goroutines over one scheduler, each fanning out microtasks — the
// -race workout for the group membership handoff on the worker.
func TestConcurrentGroupsStress(t *testing.T) {
	s := New(4)
	defer s.Close()

	const groups, roots, fan = 16, 8, 25
	var wg sync.WaitGroup
	counts := make([]atomic.Int64, groups)
	for gi := 0; gi < groups; gi++ {
		gi := gi
		wg.Add(1)
		go func() {
			defer wg.Done()
			g := s.NewGroup()
			for r := 0; r < roots; r++ {
				g.Submit(func(w *Worker) {
					counts[gi].Add(1)
					for f := 0; f < fan; f++ {
						w.Submit(func(*Worker) { counts[gi].Add(1) })
					}
				})
			}
			g.Wait()
			if got := counts[gi].Load(); got != roots*(1+fan) {
				t.Errorf("group %d: %d tasks, want %d", gi, got, roots*(1+fan))
			}
		}()
	}
	wg.Wait()
}

// TestStatsCounters: executed counts every task exactly once, injector
// submits count external Submits, and a fan-out pinned to one blocked
// worker's deque forces the other three to steal.
func TestStatsCounters(t *testing.T) {
	s := New(4)
	var gate sync.WaitGroup
	gate.Add(4)
	s.Submit(func(w *Worker) {
		// Three tasks land on this worker's deque while it blocks below,
		// so they can only run by being stolen — and the gate needs all
		// four workers, so they must be.
		for j := 0; j < 3; j++ {
			w.Submit(func(*Worker) { gate.Done(); gate.Wait() })
		}
		gate.Done()
		gate.Wait()
	})
	for i := 0; i < 99; i++ {
		s.Submit(func(*Worker) {})
	}
	s.Wait()

	st := s.Stats()
	if st.Executed != 103 {
		t.Fatalf("Executed = %d, want 103", st.Executed)
	}
	if st.InjectorSubmits != 100 {
		t.Fatalf("InjectorSubmits = %d, want 100", st.InjectorSubmits)
	}
	if st.Steals < 3 {
		t.Fatalf("Steals = %d, want >= 3 (the gated fan-out is steal-only)", st.Steals)
	}
	if st.Pending != 0 {
		t.Fatalf("Pending = %d after Wait, want 0", st.Pending)
	}
	if st.Workers != 4 {
		t.Fatalf("Workers = %d, want 4", st.Workers)
	}
}

// TestCloseRunsQueuedWork: Close without a prior Wait still executes
// everything already submitted, and is idempotent.
func TestCloseRunsQueuedWork(t *testing.T) {
	s := New(2)
	var ran atomic.Int64
	for i := 0; i < 100; i++ {
		s.Submit(func(w *Worker) {
			ran.Add(1)
			w.Submit(func(*Worker) { ran.Add(1) })
		})
	}
	s.Close()
	s.Close()
	if got := ran.Load(); got != 200 {
		t.Fatalf("Close drained %d tasks, want 200", got)
	}
}

// TestGroupCancelDrains pins the cooperative-cancellation contract:
// Cancel flips the flag every member task can observe via
// Worker.Canceled, every queued task still runs (so the pending count
// drains and Wait returns), and tasks that check the flag skip their
// work.
func TestGroupCancelDrains(t *testing.T) {
	s := New(4)
	defer s.Close()

	var did, skipped atomic.Int64
	gate := make(chan struct{})
	g := s.NewGroup()
	g.Submit(func(*Worker) { <-gate }) // hold the group open
	for i := 0; i < 128; i++ {
		g.Submit(func(w *Worker) {
			if w.Canceled() {
				skipped.Add(1)
				return
			}
			did.Add(1)
		})
	}
	g.Cancel()
	close(gate)
	g.Wait()

	if !g.Canceled() {
		t.Fatal("Canceled() = false after Cancel")
	}
	if did.Load()+skipped.Load() != 128 {
		t.Fatalf("drained %d tasks, want 128 (did=%d skipped=%d)",
			did.Load()+skipped.Load(), did.Load(), skipped.Load())
	}
	if skipped.Load() == 0 {
		t.Fatal("no task observed the cancellation")
	}
	if st := s.Stats(); st.Pending != 0 {
		t.Fatalf("Pending = %d after canceled Wait, want 0", st.Pending)
	}
}

// TestGroupCancelIsolation: canceling one group must not leak into a
// sibling group on the same scheduler.
func TestGroupCancelIsolation(t *testing.T) {
	s := New(4)
	defer s.Close()

	canceled := s.NewGroup()
	canceled.Cancel()
	canceled.Wait()

	var ran atomic.Int64
	live := s.NewGroup()
	for i := 0; i < 64; i++ {
		live.Submit(func(w *Worker) {
			if !w.Canceled() {
				ran.Add(1)
			}
		})
	}
	live.Wait()
	if live.Canceled() {
		t.Fatal("sibling group reports Canceled")
	}
	if got := ran.Load(); got != 64 {
		t.Fatalf("sibling group ran %d tasks, want 64", got)
	}
}

// TestGroupCancelFanOut: tasks fanned out via Worker.Submit after the
// cancel inherit the group, so the whole task tree drains and observes
// the flag.
func TestGroupCancelFanOut(t *testing.T) {
	s := New(4)
	defer s.Close()

	var seen atomic.Int64
	g := s.NewGroup()
	g.Submit(func(w *Worker) {
		g.Cancel()
		for i := 0; i < 10; i++ {
			w.Submit(func(w *Worker) {
				if w.Canceled() {
					seen.Add(1)
				}
			})
		}
	})
	g.Wait()
	if got := seen.Load(); got != 10 {
		t.Fatalf("%d fanned-out tasks observed the cancel, want 10", got)
	}
}
