package sched

import (
	"sync"
	"sync/atomic"
)

// Group tracks the completion of one related set of tasks — typically
// one request's task grid — on a scheduler whose lifetime spans many
// such sets. Scheduler.Wait drains the whole queue and spends the
// scheduler; a Group waits only for its own tasks, so concurrent
// requests interleave their grids over one worker pool and each caller
// still gets a private barrier.
//
// Membership is sticky through fan-out: a task submitted via
// Group.Submit runs with the worker's group pointer set, so any
// follow-up it pushes through Worker.Submit is wrapped into the same
// group without the submitting code knowing groups exist. That is what
// lets sim's sweep grids — which fan out thousands of chunk-range
// continuations — ride a shared server scheduler unchanged.
//
// A panic escaping a group's task is captured in the group (not the
// scheduler) and re-raised by the group's own Wait: one tenant's bug
// surfaces on that tenant's waiter instead of poisoning the shared
// pool.
type Group struct {
	s        *Scheduler
	pending  atomic.Int64
	canceled atomic.Bool

	mu       sync.Mutex // guards cond and panicked
	cond     *sync.Cond
	panicked []any
}

// NewGroup returns an empty group on s. A group is reusable in the weak
// sense that Wait returns whenever the count is zero, but the intended
// shape is submit-all-then-Wait per request.
func (s *Scheduler) NewGroup() *Group {
	g := &Group{s: s}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// Scheduler returns the scheduler the group runs on.
func (g *Group) Scheduler() *Scheduler { return g.s }

// Cancel flags the group as canceled. The scheduler keeps running every
// already-queued member to completion — tasks are cheap and the count
// must drain for Wait to return — but cooperative workloads observe the
// flag (Worker.Canceled) at their task boundaries and unwind instead of
// doing real work. Idempotent and safe from any goroutine, including
// concurrently with Wait.
func (g *Group) Cancel() { g.canceled.Store(true) }

// Canceled reports whether Cancel was called.
func (g *Group) Canceled() bool { return g.canceled.Load() }

// Submit enqueues a task into the scheduler's injector queue as a
// member of g. Safe from any goroutine.
func (g *Group) Submit(t Task) {
	g.s.Submit(g.wrap(t))
}

// wrap registers one task with the group before it is published (so
// Wait can never observe a queued-but-uncounted member) and returns the
// closure that maintains the worker's group pointer, captures panics,
// and signals the barrier on the last completion.
func (g *Group) wrap(t Task) Task {
	g.pending.Add(1)
	return func(w *Worker) {
		prev := w.g
		w.g = g
		defer func() {
			r := recover()
			w.g = prev
			if r != nil {
				g.mu.Lock()
				g.panicked = append(g.panicked, r)
				g.mu.Unlock()
			}
			// The decrement comes after any fan-out the task performed
			// (Worker.Submit runs inside t), so the count can only reach
			// zero when the group's whole task tree has finished.
			if g.pending.Add(-1) == 0 {
				g.mu.Lock()
				g.cond.Broadcast()
				g.mu.Unlock()
			}
		}()
		t(w)
	}
}

// Wait blocks until every task submitted to the group — including fan-
// out submitted by running group tasks — has finished. If any group
// task panicked, Wait re-panics with the first recovered value (and
// clears the record, so a recovered caller can keep using the
// scheduler). The scheduler itself keeps running; other groups are
// unaffected.
func (g *Group) Wait() {
	g.mu.Lock()
	for g.pending.Load() > 0 {
		g.cond.Wait()
	}
	p := g.panicked
	g.panicked = nil
	g.mu.Unlock()
	if len(p) > 0 {
		panic(p[0])
	}
}
