package sched

import "sync/atomic"

// deque is a lock-free Chase-Lev work-stealing deque (Chase & Lev,
// "Dynamic Circular Work-Stealing Deque", SPAA 2005, with the memory-
// order discipline of Lê et al., PPoPP 2013). The owning worker pushes
// and pops at the bottom without synchronisation beyond atomic loads and
// stores; thieves take from the top with a single CAS. The ring buffer
// grows when full and is published through an atomic pointer, so a thief
// holding a stale ring still reads valid slots: growth copies the live
// window [top, bottom) and the owner never writes into an old ring again.
//
// The mutexed slice this replaces was fine when tasks were milliseconds;
// chunk-range sweep tasks are tens of microseconds, so queue operations
// moved onto the measured path. Every slot is an atomic.Pointer so the
// race detector sees the (intentional) owner/thief slot races as what
// they are: atomics, resolved by the CAS on top.
type deque struct {
	bottom atomic.Int64
	top    atomic.Int64
	ring   atomic.Pointer[ring]
}

// ring is one power-of-two circular buffer generation. Slot i of the
// logical deque lives at index i&mask regardless of generation, which is
// what keeps stale-ring reads coherent after growth.
type ring struct {
	mask  int64
	slots []atomic.Pointer[Task]
}

const initialRingCap = 64

func newRing(capacity int64) *ring {
	return &ring{mask: capacity - 1, slots: make([]atomic.Pointer[Task], capacity)}
}

func (r *ring) cap() int64             { return r.mask + 1 }
func (r *ring) load(i int64) *Task     { return r.slots[i&r.mask].Load() }
func (r *ring) store(i int64, t *Task) { r.slots[i&r.mask].Store(t) }

func (d *deque) init() {
	d.ring.Store(newRing(initialRingCap))
}

// pushBottom appends a task at the bottom. Owner only.
func (d *deque) pushBottom(t Task) {
	b := d.bottom.Load()
	top := d.top.Load()
	r := d.ring.Load()
	if b-top >= r.cap() {
		r = d.grow(r, b, top)
	}
	r.store(b, &t)
	d.bottom.Store(b + 1)
}

// grow doubles the ring, copying the live window. Owner only; thieves
// keep reading their stale ring, whose live slots the owner will never
// overwrite (it pushes only into the new ring).
func (d *deque) grow(old *ring, b, top int64) *ring {
	r := newRing(old.cap() * 2)
	for i := top; i < b; i++ {
		r.store(i, old.load(i))
	}
	d.ring.Store(r)
	return r
}

// popBottom takes the newest task (LIFO). Owner only. The only contended
// case is a single remaining element, resolved by the same CAS on top
// that thieves use: whoever wins the CAS owns the task.
//
// Consumed slots are cleared so finished task closures (and whatever
// they capture — for sweep tasks, an input's entire decoded column set)
// don't stay reachable from the ring until the index wraps. Clearing is
// safe here because no thief can claim the cleared index anymore: in
// the b > t case top can reach b only after bottom is already b (thieves
// then see an empty deque), and in the last-element case the slot is
// cleared only after top has moved past it, so any straggler's CAS
// fails before it would dereference.
func (d *deque) popBottom() Task {
	b := d.bottom.Load() - 1
	r := d.ring.Load()
	d.bottom.Store(b)
	t := d.top.Load()
	if t > b {
		// Empty: undo the reservation.
		d.bottom.Store(t)
		return nil
	}
	task := r.load(b)
	if b > t {
		r.store(b, nil)
		return *task
	}
	// Last element: race thieves for it.
	var out Task
	if d.top.CompareAndSwap(t, t+1) {
		out = *task
	}
	r.store(t, nil)
	d.bottom.Store(t + 1)
	return out
}

// stealTop takes the oldest task (FIFO). Safe from any goroutine.
// retry reports a CAS loss against a concurrent thief or the owner's
// last-element pop — the deque may still hold work, so a caller deciding
// whether to park must not treat it as empty.
func (d *deque) stealTop() (task Task, retry bool) {
	t := d.top.Load()
	b := d.bottom.Load()
	if t >= b {
		return nil, false
	}
	r := d.ring.Load()
	got := r.load(t)
	if !d.top.CompareAndSwap(t, t+1) {
		return nil, true
	}
	// Clear the claimed slot so the closure isn't pinned until the index
	// wraps. Must be a CAS, not a store: the owner may already have
	// wrapped bottom around the ring and pushed a fresh task into this
	// physical slot (pushBottom allocates a distinct *Task every call,
	// so pointer equality identifies exactly our claimed entry), and a
	// plain store would destroy that task.
	r.slots[t&r.mask].CompareAndSwap(got, nil)
	return *got, false
}

// empty reports whether the deque currently appears drained.
func (d *deque) empty() bool {
	return d.top.Load() >= d.bottom.Load()
}
