// Package report renders experiment results as aligned ASCII tables,
// text gray-scale heatmaps (for the paper's colormap figures), and CSV.
// Everything writes through io.Writer so the cmd tools, examples and tests
// share one formatting path.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table with padded columns.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n%s\n", t.Title, strings.Repeat("=", len(t.Title))); err != nil {
			return err
		}
	}
	writeRow := func(cells []string) error {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		_, err := fmt.Fprintln(w, b.String())
		return err
	}
	if err := writeRow(t.Headers); err != nil {
		return err
	}
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if err := writeRow(sep); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

// RenderCSV writes the table as CSV (no quoting needed for our content,
// but commas in cells are escaped defensively).
func (t *Table) RenderCSV(w io.Writer) error {
	writeRow := func(cells []string) error {
		escaped := make([]string, len(cells))
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				escaped[i] = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			} else {
				escaped[i] = c
			}
		}
		_, err := fmt.Fprintln(w, strings.Join(escaped, ","))
		return err
	}
	if err := writeRow(t.Headers); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

// Percent formats a fraction as "12.34%".
func Percent(v float64) string { return fmt.Sprintf("%.2f%%", v*100) }

// Rate formats a miss rate with three decimals.
func Rate(v float64) string { return fmt.Sprintf("%.3f", v) }

// shades orders characters light to dark for text heatmaps.
const shades = " .:-=+*#%@"

// Shade maps v in [lo, hi] to a gray-scale rune (dark = large), matching
// the paper's "dark areas represent larger miss rates" convention.
func Shade(v, lo, hi float64) byte {
	if hi <= lo {
		return shades[0]
	}
	t := (v - lo) / (hi - lo)
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	i := int(t * float64(len(shades)-1))
	return shades[i]
}

// Heatmap renders a matrix as a text colormap with numeric side tables.
type Heatmap struct {
	Title    string
	RowLabel string // e.g. "branch history length"
	ColLabel string // e.g. "taken rate class"
	RowNames []string
	ColNames []string
	Values   [][]float64 // [row][col]
	Lo, Hi   float64     // shading range; Hi <= Lo auto-scales
	Annotate bool        // also print the numeric matrix
}

// Render writes the shaded map and, if Annotate, the numbers.
func (h *Heatmap) Render(w io.Writer) error {
	lo, hi := h.Lo, h.Hi
	if hi <= lo {
		lo, hi = h.autoRange()
	}
	if h.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n%s\n", h.Title, strings.Repeat("=", len(h.Title))); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "cols: %s | rows: %s | shade '%s' spans [%.3f, %.3f], darker = higher\n",
		h.ColLabel, h.RowLabel, shades, lo, hi); err != nil {
		return err
	}
	rowW := 0
	for _, n := range h.RowNames {
		if len(n) > rowW {
			rowW = len(n)
		}
	}
	var head strings.Builder
	head.WriteString(strings.Repeat(" ", rowW+1))
	for _, c := range h.ColNames {
		head.WriteString(fmt.Sprintf("%2s ", c))
	}
	if _, err := fmt.Fprintln(w, head.String()); err != nil {
		return err
	}
	for i, row := range h.Values {
		var b strings.Builder
		name := ""
		if i < len(h.RowNames) {
			name = h.RowNames[i]
		}
		b.WriteString(fmt.Sprintf("%*s ", rowW, name))
		for _, v := range row {
			s := Shade(v, lo, hi)
			b.WriteByte(' ')
			b.WriteByte(s)
			b.WriteByte(s)
		}
		if _, err := fmt.Fprintln(w, b.String()); err != nil {
			return err
		}
	}
	if !h.Annotate {
		return nil
	}
	if _, err := fmt.Fprintln(w, "values:"); err != nil {
		return err
	}
	for i, row := range h.Values {
		var b strings.Builder
		name := ""
		if i < len(h.RowNames) {
			name = h.RowNames[i]
		}
		b.WriteString(fmt.Sprintf("%*s ", rowW, name))
		for _, v := range row {
			b.WriteString(fmt.Sprintf(" %.3f", v))
		}
		if _, err := fmt.Fprintln(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

func (h *Heatmap) autoRange() (lo, hi float64) {
	first := true
	for _, row := range h.Values {
		for _, v := range row {
			if first {
				lo, hi = v, v
				first = false
				continue
			}
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	return lo, hi
}

// LineSeries renders several named curves over a shared integer x-axis as
// a table plus a coarse ASCII plot, which is how the line-plot figures
// (9-12) are reproduced in text.
type LineSeries struct {
	Title  string
	XLabel string
	XVals  []int
	Names  []string
	Series [][]float64 // [series][x]
}

// Render writes the numeric table followed by a bar sketch per series.
func (l *LineSeries) Render(w io.Writer) error {
	tbl := Table{Title: l.Title}
	tbl.Headers = append([]string{l.XLabel}, l.Names...)
	for xi, x := range l.XVals {
		row := []string{fmt.Sprintf("%d", x)}
		for si := range l.Series {
			row = append(row, Rate(l.Series[si][xi]))
		}
		tbl.AddRow(row...)
	}
	if err := tbl.Render(w); err != nil {
		return err
	}
	// sketch: one row per series, one shaded cell per x
	var lo, hi float64
	first := true
	for _, s := range l.Series {
		for _, v := range s {
			if first {
				lo, hi = v, v
				first = false
				continue
			}
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	if _, err := fmt.Fprintf(w, "sketch (darker = higher miss rate, range [%.3f, %.3f]):\n", lo, hi); err != nil {
		return err
	}
	nameW := 0
	for _, n := range l.Names {
		if len(n) > nameW {
			nameW = len(n)
		}
	}
	for si, name := range l.Names {
		var b strings.Builder
		b.WriteString(fmt.Sprintf("%*s ", nameW, name))
		for xi := range l.XVals {
			s := Shade(l.Series[si][xi], lo, hi)
			b.WriteByte(s)
			b.WriteByte(s)
		}
		if _, err := fmt.Fprintln(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}
