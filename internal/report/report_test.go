package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tbl := Table{
		Title:   "Demo",
		Headers: []string{"name", "value"},
	}
	tbl.AddRow("alpha", "1")
	tbl.AddRow("b", "22222")
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Demo", "====", "name", "alpha", "22222", "-----"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + underline + header + separator + 2 rows
	if len(lines) != 6 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// Columns align: "value" column starts at the same offset everywhere.
	headerIdx := strings.Index(lines[2], "value")
	rowIdx := strings.Index(lines[4], "1")
	if headerIdx != rowIdx {
		t.Fatalf("column misaligned: header at %d, row at %d\n%s", headerIdx, rowIdx, out)
	}
}

func TestTableCSV(t *testing.T) {
	tbl := Table{Headers: []string{"a", "b"}}
	tbl.AddRow("plain", `has "quotes", and comma`)
	var buf bytes.Buffer
	if err := tbl.RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"has ""quotes"", and comma"`) {
		t.Fatalf("CSV escaping broken:\n%s", out)
	}
	if !strings.HasPrefix(out, "a,b\n") {
		t.Fatalf("CSV header broken:\n%s", out)
	}
}

func TestPercentAndRate(t *testing.T) {
	if Percent(0.1234) != "12.34%" {
		t.Fatalf("Percent: %s", Percent(0.1234))
	}
	if Rate(0.12345) != "0.123" {
		t.Fatalf("Rate: %s", Rate(0.12345))
	}
}

func TestShade(t *testing.T) {
	if Shade(0, 0, 1) != ' ' {
		t.Fatal("low values must shade light")
	}
	if Shade(1, 0, 1) != '@' {
		t.Fatal("high values must shade dark")
	}
	if Shade(-5, 0, 1) != ' ' || Shade(5, 0, 1) != '@' {
		t.Fatal("out-of-range values must clamp")
	}
	if Shade(0.5, 1, 1) != ' ' {
		t.Fatal("degenerate range must not panic")
	}
	// monotone
	prev := byte(' ')
	order := " .:-=+*#%@"
	for v := 0.0; v <= 1.0; v += 0.05 {
		s := Shade(v, 0, 1)
		if strings.IndexByte(order, s) < strings.IndexByte(order, prev) {
			t.Fatalf("shade not monotone at %v", v)
		}
		prev = s
	}
}

func TestHeatmapRender(t *testing.T) {
	hm := Heatmap{
		Title:    "HM",
		RowLabel: "row",
		ColLabel: "col",
		RowNames: []string{"r0", "r1"},
		ColNames: []string{"c0", "c1", "c2"},
		Values:   [][]float64{{0, 0.25, 0.5}, {0.5, 0.25, 0}},
		Annotate: true,
	}
	var buf bytes.Buffer
	if err := hm.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"HM", "r0", "r1", "c2", "values:", "0.250"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestHeatmapAutoRange(t *testing.T) {
	hm := Heatmap{
		RowNames: []string{"r"},
		ColNames: []string{"a", "b"},
		Values:   [][]float64{{2, 4}},
	}
	var buf bytes.Buffer
	if err := hm.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "[2.000, 4.000]") {
		t.Fatalf("auto range missing:\n%s", buf.String())
	}
}

func TestLineSeriesRender(t *testing.T) {
	ls := LineSeries{
		Title:  "LS",
		XLabel: "k",
		XVals:  []int{0, 1, 2},
		Names:  []string{"one", "two"},
		Series: [][]float64{{0.3, 0.2, 0.1}, {0.1, 0.2, 0.3}},
	}
	var buf bytes.Buffer
	if err := ls.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"LS", "k", "one", "two", "0.300", "sketch"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}
