package btr

// The benchmark harness: one Benchmark per paper artifact (Table 1-2,
// Figures 1-15, the §4.2 coverage stat, and the §5 ablations), plus
// micro-benchmarks of the substrates.
//
// The per-artifact benchmarks share one suite sweep (computed once at a
// reduced scale so `go test -bench=.` stays laptop-friendly) and measure
// the artifact regeneration itself. To regenerate the paper-scale
// artifacts, run `go run ./cmd/brexp -scale 1.0` instead.

import (
	"io"
	"sync"
	"testing"

	"btr/internal/bpred"
	"btr/internal/core"
	"btr/internal/trace"
)

const benchScale = 0.005

var (
	benchCtxOnce sync.Once
	benchCtx     *ExperimentContext
)

func benchContext(b *testing.B) *ExperimentContext {
	b.Helper()
	benchCtxOnce.Do(func() {
		benchCtx = NewExperimentContext(SimConfig{Scale: benchScale})
		benchCtx.Suite() // pay the sweep before timing starts
	})
	return benchCtx
}

func benchExperiment(b *testing.B, id string) {
	ctx := benchContext(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := RunExperiment(ctx, id, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1(b *testing.B)   { benchExperiment(b, "T1") }
func BenchmarkTable2(b *testing.B)   { benchExperiment(b, "T2") }
func BenchmarkCoverage(b *testing.B) { benchExperiment(b, "S1") }
func BenchmarkFig01(b *testing.B)    { benchExperiment(b, "F1") }
func BenchmarkFig02(b *testing.B)    { benchExperiment(b, "F2") }
func BenchmarkFig03(b *testing.B)    { benchExperiment(b, "F3") }
func BenchmarkFig04(b *testing.B)    { benchExperiment(b, "F4") }
func BenchmarkFig05(b *testing.B)    { benchExperiment(b, "F5") }
func BenchmarkFig06(b *testing.B)    { benchExperiment(b, "F6") }
func BenchmarkFig07(b *testing.B)    { benchExperiment(b, "F7") }
func BenchmarkFig08(b *testing.B)    { benchExperiment(b, "F8") }
func BenchmarkFig09(b *testing.B)    { benchExperiment(b, "F9") }
func BenchmarkFig10(b *testing.B)    { benchExperiment(b, "F10") }
func BenchmarkFig11(b *testing.B)    { benchExperiment(b, "F11") }
func BenchmarkFig12(b *testing.B)    { benchExperiment(b, "F12") }
func BenchmarkFig13(b *testing.B)    { benchExperiment(b, "F13") }
func BenchmarkFig14(b *testing.B)    { benchExperiment(b, "F14") }
func BenchmarkFig15(b *testing.B)    { benchExperiment(b, "F15") }

// The ablations run fresh predictor passes per iteration; keep them under
// -bench filters rather than the default set by guarding on -short.
func BenchmarkHybridAblation(b *testing.B)  { benchExperiment(b, "A1") }
func BenchmarkConfidence(b *testing.B)      { benchExperiment(b, "A2") }
func BenchmarkOptimalHistory(b *testing.B)  { benchExperiment(b, "A3") }
func BenchmarkInterference(b *testing.B)    { benchExperiment(b, "A4") }
func BenchmarkImplicitSchemes(b *testing.B) { benchExperiment(b, "A5") }

// BenchmarkSuiteSweep measures the full two-pass pipeline itself (events
// per op reported via custom metric): the record-once/replay-many engine
// with the predictor bank sharded across goroutines. Scale 1.0 is the
// registry-default input sizing, so the measurement reflects the
// pipeline as experiments actually run it.
func BenchmarkSuiteSweep(b *testing.B) {
	benchSweep(b, SimConfig{Scale: 1.0})
}

// BenchmarkSuiteSweepRegenerate measures the original pipeline — the
// generator re-runs for pass 2 and the bank is driven serially — as the
// baseline the replay engine is compared against.
func BenchmarkSuiteSweepRegenerate(b *testing.B) {
	benchSweep(b, SimConfig{Scale: 1.0, NoRecord: true})
}

// BenchmarkSuiteSweepScheduled measures the same pipeline driven by the
// global work-stealing scheduler (the RunSuite default): the profile
// task fans its 34-slot bank sweep out as per-slot chains of chunk-range
// tasks over shared pre-decoded columns, so even this single-input suite
// fills every core and never decodes the trace twice. It must beat
// BenchmarkSuiteSweepRegenerate wall-clock at GOMAXPROCS > 1 and stay
// ahead of the legacy pool at GOMAXPROCS = 1 (the sweep reuses the
// attribution pass's decode instead of paying its own).
func BenchmarkSuiteSweepScheduled(b *testing.B) {
	benchSweepSuite(b, SimConfig{Scale: 1.0})
}

// BenchmarkSuiteSweepSlotOnly is the PR-2 scheduler shape — whole-trace
// slot-batch tasks, one decode per batch — kept for isolating the
// chunk-axis contribution on the same suite sweep.
func BenchmarkSuiteSweepSlotOnly(b *testing.B) {
	benchSweepSuite(b, SimConfig{Scale: 1.0, ChunkTasks: -1})
}

// BenchmarkSuiteSweepLegacyPool is the PR-1 nested-pool suite engine
// over the same input, for isolating the scheduler's contribution.
func BenchmarkSuiteSweepLegacyPool(b *testing.B) {
	benchSweepSuite(b, SimConfig{Scale: 1.0, NoSched: true})
}

// BenchmarkSuiteSweepStreaming is the out-of-core pipeline on the same
// input: pass 1 streams the recording to a spill file keeping at most
// ~4 KiB of chunk columns resident (the recording is ~30 KiB, so the
// run genuinely pages), and the sweep's decoded pool is capped below
// the decoded trace. The gap to BenchmarkSuiteSweepScheduled is the
// price of bounded memory — spill I/O plus re-decodes — on a trace
// that would comfortably fit; paper-scale traces have no retained
// alternative to compare against.
func BenchmarkSuiteSweepStreaming(b *testing.B) {
	benchSweepSuite(b, SimConfig{Scale: 1.0, MemBudget: 4 << 10, DecodedBudget: 128 << 10})
}

// BenchmarkSuiteSweepStreamingReadAhead is BenchmarkSuiteSweepStreaming
// with the read-ahead pipeline on: every sweep chain hints 4 chunks
// ahead, so spill page-ins and BTR1 decode run on the prefetch workers
// (coalesced into run-sized reads) instead of stalling the chains. The
// delta to BenchmarkSuiteSweepStreaming is the recovered streaming tax;
// the residual gap to BenchmarkSuiteSweepScheduled is what bounded
// memory still costs.
func BenchmarkSuiteSweepStreamingReadAhead(b *testing.B) {
	benchSweepSuite(b, SimConfig{Scale: 1.0, MemBudget: 4 << 10, DecodedBudget: 128 << 10, ReadAhead: 4})
}

// BenchmarkSingleInputStreaming is the streaming counterpart of
// BenchmarkSingleInputSaturation: the same ~650k-event input with the
// recording bounded to ~64 KiB resident (vs ~850 KiB encoded) and a
// 1 MiB decoded pool (~8 of its ~40 decoded chunks).
func BenchmarkSingleInputStreaming(b *testing.B) {
	benchSingleInput(b, SimConfig{Scale: singleInputScale, MemBudget: 64 << 10, DecodedBudget: 1 << 20})
}

// BenchmarkSingleInputStreamingReadAhead is BenchmarkSingleInputStreaming
// with 4 chunks of read-ahead per sweep chain: the saturation input's
// ~40-chunk spill pages in through the prefetch workers ahead of the
// cursors instead of one demand pread at a time.
func BenchmarkSingleInputStreamingReadAhead(b *testing.B) {
	benchSingleInput(b, SimConfig{Scale: singleInputScale, MemBudget: 64 << 10, DecodedBudget: 1 << 20, ReadAhead: 4})
}

// singleInputScale sizes the saturation benchmarks' one input at ~650k
// events (≈40 recorded chunks): big enough that its sweep is a real
// (34 slot × 40 chunk) grid with a visible tail, small enough for CI.
const singleInputScale = 50.0

// BenchmarkSingleInputSaturation is the chunk-axis headline: ONE large
// input (gcc/genoutput.i at 50× registry scale) on GOMAXPROCS workers
// under the (slot × chunk-range) grid. Every core gets chunk-range
// tasks stolen off the 34 slot chains, and no task re-decodes the trace.
// Compare against BenchmarkSingleInputSlotOnly, the PR-2 decomposition
// of exactly the same run: on a multi-core runner the grid's finer tail
// and shared decode are the difference; at GOMAXPROCS = 1 the shared
// decode alone keeps it ahead.
func BenchmarkSingleInputSaturation(b *testing.B) {
	benchSingleInput(b, SimConfig{Scale: singleInputScale})
}

// BenchmarkSingleInputSlotOnly is the slot-only baseline for
// BenchmarkSingleInputSaturation: same input, same workers, whole-trace
// slot-batch tasks clamped to the worker count.
func BenchmarkSingleInputSlotOnly(b *testing.B) {
	benchSingleInput(b, SimConfig{Scale: singleInputScale, ChunkTasks: -1})
}

// BenchmarkSingleInputSnapshot is the checkpointed intra-slot engine on
// the saturation input: every one of the 34 bank slots splits into 4
// checkpointed chunk ranges, so the sweep runs as 136 independent tasks
// (reported as sweeptasks/op — well past the 34-chain ceiling) on
// GOMAXPROCS workers. Against BenchmarkSingleInputSaturation the delta
// is the checkpointing overhead (the update-only warmup replays all but
// the last range twice, plus snapshot copies); the engine wins
// wall-clock only when cores outnumber the 34 slots, which is why it is
// off by default.
func BenchmarkSingleInputSnapshot(b *testing.B) {
	const ranges = 4
	spec, err := FindWorkload("gcc", "genoutput.i")
	if err != nil {
		b.Fatal(err)
	}
	specs := []WorkloadSpec{spec}
	cfg := SimConfig{Scale: singleInputScale, SnapshotRanges: ranges}
	b.ResetTimer()
	var events, snaps int64
	for i := 0; i < b.N; i++ {
		suite := RunSuite(specs, cfg)
		events += suite.TotalEvents()
		snaps += suite.Mem.SnapshotCount
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/op")
	// snapshots/op = slots × (ranges-1), so tasks/op = snapshots × R/(R-1).
	b.ReportMetric(float64(snaps)/float64(b.N)*ranges/(ranges-1), "sweeptasks/op")
}

// BenchmarkSingleInputStreamingMmap is BenchmarkSingleInputStreaming
// with the spill file mmapped: paged chunks decode straight from the
// mapping instead of issuing one pread per page-in. The delta between
// the two is the syscall + copy cost of pread-based paging.
func BenchmarkSingleInputStreamingMmap(b *testing.B) {
	benchSingleInput(b, SimConfig{Scale: singleInputScale, MemBudget: 64 << 10, DecodedBudget: 1 << 20, MmapSpill: true})
}

func benchSingleInput(b *testing.B, cfg SimConfig) {
	spec, err := FindWorkload("gcc", "genoutput.i")
	if err != nil {
		b.Fatal(err)
	}
	specs := []WorkloadSpec{spec}
	b.ResetTimer()
	var events int64
	for i := 0; i < b.N; i++ {
		suite := RunSuite(specs, cfg)
		events += suite.TotalEvents()
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/op")
}

func benchSweep(b *testing.B, cfg SimConfig) {
	spec, err := FindWorkload("gcc", "genoutput.i")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var events int64
	for i := 0; i < b.N; i++ {
		res := RunInput(spec, cfg)
		events += res.Events
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/op")
}

func benchSweepSuite(b *testing.B, cfg SimConfig) {
	spec, err := FindWorkload("gcc", "genoutput.i")
	if err != nil {
		b.Fatal(err)
	}
	specs := []WorkloadSpec{spec}
	b.ResetTimer()
	var events int64
	for i := 0; i < b.N; i++ {
		suite := RunSuite(specs, cfg)
		events += suite.TotalEvents()
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/op")
}

// --- substrate micro-benchmarks ---

func benchPredictor(b *testing.B, p Predictor) {
	r := uint64(12345)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r ^= r << 13
		r ^= r >> 7
		r ^= r << 17
		pc := 0x400000 + (r%1024)*4
		taken := r&8 != 0
		if p.Predict(pc) != taken {
			_ = taken
		}
		p.Update(pc, taken)
	}
}

func BenchmarkPAsK8(b *testing.B)     { benchPredictor(b, NewPAs(8)) }
func BenchmarkGAsK10(b *testing.B)    { benchPredictor(b, NewGAs(10)) }
func BenchmarkGShareK12(b *testing.B) { benchPredictor(b, NewGShare(17, 12)) }
func BenchmarkBimodal(b *testing.B)   { benchPredictor(b, NewBimodal(17)) }

func BenchmarkTransitionHybrid(b *testing.B) {
	spec, err := FindWorkload("gcc", "genoutput.i")
	if err != nil {
		b.Fatal(err)
	}
	prof := ProfileWorkload(spec, 0.01)
	classes := Classify(prof.Profiles())
	benchPredictor(b, NewTransitionHybrid(classes, prof.Profiles()))
}

func BenchmarkProfiler(b *testing.B) {
	p := NewProfiler()
	r := uint64(999)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r ^= r << 13
		r ^= r >> 7
		r ^= r << 17
		p.Branch(0x400000+(r%512)*4, r&4 != 0)
	}
}

func BenchmarkWorkloadCompress(b *testing.B) {
	spec, err := FindWorkload("compress", "bigtest.in")
	if err != nil {
		b.Fatal(err)
	}
	sink := &trace.CountingSink{}
	b.ResetTimer()
	var events int64
	for i := 0; i < b.N; i++ {
		events += spec.Run(sink, 0.002)
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/op")
}

func BenchmarkTraceEncode(b *testing.B) {
	w, err := trace.NewWriter(io.Discard)
	if err != nil {
		b.Fatal(err)
	}
	r := uint64(7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r ^= r << 13
		r ^= r >> 7
		r ^= r << 17
		w.Branch(0x400000+(r%256)*4, r&2 != 0)
	}
}

func BenchmarkClassOf(b *testing.B) {
	var sink core.Class
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = core.ClassOf(float64(i%1000) / 1000)
	}
	_ = sink
}

func BenchmarkCounterTable(b *testing.B) {
	t := bpred.NewCounterTable(17)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx := uint64(i) * 2654435761
		if t.Predict(idx) {
			t.Update(idx, false)
		} else {
			t.Update(idx, true)
		}
	}
}
